//! Umbrella crate for the BlockMaestro reproduction workspace.
//!
//! This package exists to host the workspace-level `examples/` and `tests/`
//! directories. All functionality lives in the member crates:
//!
//! * [`bm_ptx`] — mini-PTX ISA, parser, and static analysis
//! * [`bm_simt`] — GPU timing simulator substrate
//! * [`bm_cmdq`] — CUDA-like command queue model
//! * [`bm_depgraph`] — bipartite dependency graphs and encodings
//! * [`bm_workloads`] — the evaluation benchmark suite
//! * [`bm_multi`] — TB-grain multi-GPU execution
//! * [`blockmaestro`] — the paper's core contribution

pub use blockmaestro;
pub use bm_cmdq;
pub use bm_depgraph;
pub use bm_multi;
pub use bm_ptx;
pub use bm_serve;
pub use bm_simt;
pub use bm_workloads;
