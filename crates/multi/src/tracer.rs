//! Per-device tracer adapter: offsets SM identifiers so every device gets
//! its own lane block in the merged trace stream.
//!
//! Device `d`'s engine believes it owns SMs `0..num_sms`; the adapter maps
//! those onto the global lane range `d * num_sms .. (d + 1) * num_sms`
//! before forwarding. The Chrome exporter, seeing a
//! [`TraceEvent::MultiTopology`] preamble, renders lane `s` as
//! `D{s / sms_per_device}·SM{s % sms_per_device}`.

use bm_trace::{TraceEvent, Tracer};

/// Wraps a base tracer, shifting SM-carrying events by a fixed offset.
pub struct DeviceTracer<'a, T> {
    inner: &'a T,
    sm_offset: u32,
}

impl<'a, T: Tracer> DeviceTracer<'a, T> {
    pub fn new(inner: &'a T, device: u32, sms_per_device: u32) -> Self {
        DeviceTracer {
            inner,
            sm_offset: device * sms_per_device,
        }
    }
}

impl<T: Tracer> Tracer for DeviceTracer<'_, T> {
    const ENABLED: bool = T::ENABLED;

    fn emit(&self, ev: TraceEvent) {
        let shifted = match ev {
            TraceEvent::TbSpan {
                id,
                sm,
                start,
                finish,
            } => TraceEvent::TbSpan {
                id,
                sm: sm + self.sm_offset,
                start,
                finish,
            },
            TraceEvent::SmOccupancy {
                cycle,
                sm,
                resident,
            } => TraceEvent::SmOccupancy {
                cycle,
                sm: sm + self.sm_offset,
                resident,
            },
            other => other,
        };
        self.inner.emit(shifted);
    }

    fn recorded_len(&self) -> usize {
        self.inner.recorded_len()
    }

    fn recorded_since(&self, from: usize) -> Vec<TraceEvent> {
        self.inner.recorded_since(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_trace::{RecordingTracer, TbId};

    #[test]
    fn sm_events_are_offset_others_pass_through() {
        let base = RecordingTracer::new();
        let dt = DeviceTracer::new(&base, 2, 4);
        let id = TbId { kernel: 0, tb: 7 };
        dt.emit(TraceEvent::TbSpan {
            id,
            sm: 1,
            start: 10,
            finish: 20,
        });
        dt.emit(TraceEvent::SmOccupancy {
            cycle: 10,
            sm: 3,
            resident: 2,
        });
        dt.emit(TraceEvent::TbReady { cycle: 5, id });
        let evs = base.recorded_since(0);
        assert!(matches!(evs[0], TraceEvent::TbSpan { sm: 9, .. }));
        assert!(matches!(evs[1], TraceEvent::SmOccupancy { sm: 11, .. }));
        assert!(matches!(evs[2], TraceEvent::TbReady { .. }));
    }
}
