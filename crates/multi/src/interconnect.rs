//! The virtual interconnect: a deterministic latency/bandwidth model for
//! cross-device messages.
//!
//! Every directed `(src, dst)` link is a serial pipe. A data message sent
//! at cycle `t` starts transmitting at `max(t, busy[src][dst])`, occupies
//! the link for `ceil(bytes / bandwidth)` cycles, and lands after the
//! propagation latency on top. Zero configured latency is modeled as one
//! cycle so a message can never arrive in the epoch that sent it — the
//! bounded-lag round protocol in [`crate::run`] relies on that.
//!
//! Fault injection rides the same path: [`blockmaestro::FaultPlan`]'s
//! `link_drop_nth` / `link_corrupt_nth` target the n-th *data* transfer.
//! A faulted transfer is charged like any other but never delivered; the
//! interconnect records the detection cycle so the coordinator can abandon
//! the multi-device attempt.

use crate::MultiGpuConfig;
use bm_trace::{TbId, TraceEvent, Tracer};

/// Deterministic per-link-pair transfer model with fault injection.
pub struct Interconnect {
    devices: u32,
    /// Effective propagation latency: configured latency, floored at one
    /// cycle to preserve round causality.
    eff_latency: u64,
    bandwidth: u64,
    /// `busy[src * devices + dst]`: cycle at which the directed link frees.
    busy: Vec<u64>,
    /// 0-based index of the next data transfer (fault targeting).
    next_id: u64,
    drop_nth: Option<u64>,
    corrupt_nth: Option<u64>,
    /// Cycle at which the first dropped/corrupted transfer was detected.
    pub fault_detected: Option<u64>,
    /// Completed (charged) data transfers, including faulted ones.
    pub transfers: u64,
    /// Total bytes moved across devices.
    pub transfer_bytes: u64,
    /// Total cycles spent in flight, summed over transfers.
    pub transfer_cycles: u64,
}

impl Interconnect {
    pub fn new(mcfg: &MultiGpuConfig, drop_nth: Option<u64>, corrupt_nth: Option<u64>) -> Self {
        let devices = mcfg.devices.max(1);
        Interconnect {
            devices,
            eff_latency: mcfg.link_latency_cycles.max(1),
            bandwidth: mcfg.link_bandwidth_bytes_per_cycle.max(1),
            busy: vec![0; (devices as usize) * (devices as usize)],
            next_id: 0,
            drop_nth,
            corrupt_nth,
            fault_detected: None,
            transfers: 0,
            transfer_bytes: 0,
            transfer_cycles: 0,
        }
    }

    /// The effective propagation latency — also the bounded-lag lookahead.
    pub fn lookahead(&self) -> u64 {
        self.eff_latency
    }

    /// Charges a data transfer of `bytes` from `src` to `dst` sent at
    /// `send_t`, carrying the dependency message for child TB `id`.
    /// Returns `Some(arrival)` or `None` if this transfer is the fault
    /// plan's victim (dropped or corrupted in flight).
    pub fn send_data<T: Tracer>(
        &mut self,
        tracer: &T,
        send_t: u64,
        src: u32,
        dst: u32,
        bytes: u64,
        id: TbId,
    ) -> Option<u64> {
        let nth = self.next_id;
        self.next_id += 1;
        let slot = (src * self.devices + dst) as usize;
        let start = send_t.max(self.busy[slot]);
        let occupy = bytes.div_ceil(self.bandwidth);
        self.busy[slot] = start + occupy;
        let arrival = start + occupy + self.eff_latency;
        self.transfers += 1;
        self.transfer_bytes += bytes;
        self.transfer_cycles += arrival - send_t;
        if T::ENABLED {
            tracer.emit(TraceEvent::XferStart {
                cycle: send_t,
                src,
                dst,
                id,
                bytes,
            });
        }
        let faulted = self.drop_nth == Some(nth) || self.corrupt_nth == Some(nth);
        if faulted {
            // The damage is detected at the would-be arrival (drop: timeout
            // at the delivery deadline; corrupt: integrity check on
            // receipt). Only the first fault matters.
            self.fault_detected.get_or_insert(arrival);
            return None;
        }
        if T::ENABLED {
            tracer.emit(TraceEvent::XferDone {
                cycle: arrival,
                sent: send_t,
                src,
                dst,
                id,
                bytes,
            });
        }
        Some(arrival)
    }

    /// Arrival time of a zero-payload control message (completion
    /// broadcasts): propagation latency only, no link occupancy and no
    /// transfer accounting.
    pub fn send_control(&self, send_t: u64) -> u64 {
        send_t + self.eff_latency
    }

    /// Flattened link-busy matrix, for checkpointing.
    pub fn busy_matrix(&self) -> &[u64] {
        &self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_trace::NullTracer;

    fn tb(n: u32) -> TbId {
        TbId { kernel: 0, tb: n }
    }

    fn cfg(devices: u32, latency: u64, bw: u64) -> MultiGpuConfig {
        MultiGpuConfig {
            devices,
            link_latency_cycles: latency,
            link_bandwidth_bytes_per_cycle: bw,
            ..MultiGpuConfig::default()
        }
    }

    #[test]
    fn serialization_on_one_link() {
        let mut ic = Interconnect::new(&cfg(2, 100, 8), None, None);
        // 64 bytes at 8 B/cycle = 8 cycles occupancy + 100 latency.
        let a = ic.send_data(&NullTracer, 0, 0, 1, 64, tb(0)).unwrap();
        assert_eq!(a, 108);
        // Sent at 0 too, but the link frees at 8 → arrives at 116.
        let b = ic.send_data(&NullTracer, 0, 0, 1, 64, tb(0)).unwrap();
        assert_eq!(b, 116);
        // The reverse direction is a separate link.
        let c = ic.send_data(&NullTracer, 0, 1, 0, 64, tb(1)).unwrap();
        assert_eq!(c, 108);
        assert_eq!(ic.transfers, 3);
        assert_eq!(ic.transfer_bytes, 192);
    }

    #[test]
    fn zero_latency_is_floored_to_one_cycle() {
        let mut ic = Interconnect::new(&cfg(2, 0, 1_000_000), None, None);
        assert_eq!(ic.lookahead(), 1);
        let a = ic.send_data(&NullTracer, 10, 0, 1, 4, tb(2)).unwrap();
        assert!(a > 10, "a message must never arrive in its send cycle");
    }

    #[test]
    fn nth_transfer_is_dropped_and_detected() {
        let mut ic = Interconnect::new(&cfg(2, 10, 8), Some(1), None);
        assert!(ic.send_data(&NullTracer, 0, 0, 1, 8, tb(3)).is_some());
        assert!(ic.send_data(&NullTracer, 0, 0, 1, 8, tb(3)).is_none());
        assert!(ic.fault_detected.is_some());
        // Still charged: the bytes went over the wire before the loss.
        assert_eq!(ic.transfers, 2);
    }
}
