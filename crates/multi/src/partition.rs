//! TB-grain partitioning of a kernel sequence across devices.
//!
//! Every kernel's TB range `[0, n_tbs)` is cut into `devices` contiguous
//! shards. Contiguity is what makes the cut cheap to represent (one
//! boundary vector per kernel), cheap to query (`device_of` is a scan over
//! `devices` entries), and — because the paper's dependency patterns are
//! overwhelmingly banded (P2/P4/P5: a child depends on a small window of
//! nearby parents) — close to the minimum cut anyway.
//!
//! Kernel 0 is split proportionally. Each later kernel with an *explicit*
//! graph against its predecessor gets a bounded local search: every
//! interior boundary slides within a band around the proportional split
//! and lands where the fewest explicit parent→child edges cross a device
//! boundary, given the predecessor's (already fixed) cut. Symbolic graphs
//! (fully-connected, independent) are split proportionally — a barrier
//! crosses everything no matter where the knife falls, and independence
//! crosses nothing.

use blockmaestro::JitKernel;
use bm_depgraph::GraphKind;

/// Half-width of the boundary search band, as a fraction of one shard:
/// each interior boundary may move up to `shard_len / BAND_DIVISOR` TBs
/// away from the proportional split. Bounded so partitioning stays
/// O(edges) even for the 500-kernel apps.
const BAND_DIVISOR: u32 = 8;

/// A contiguous TB-range partition of every kernel across `devices`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// Number of devices the cut targets.
    pub devices: u32,
    /// `cuts[k]` has `devices + 1` monotone entries; device `d` owns TBs
    /// `[cuts[k][d], cuts[k][d + 1])` of kernel `k`.
    pub cuts: Vec<Vec<u32>>,
    /// Explicit parent→child edges whose endpoints landed on different
    /// devices.
    pub cut_edges: u64,
    /// Total explicit parent→child edges considered.
    pub total_edges: u64,
}

impl Partition {
    /// Cuts `jit`'s kernels across `devices` devices.
    pub fn build(jit: &[JitKernel], devices: u32) -> Partition {
        let devices = devices.max(1);
        let mut cuts: Vec<Vec<u32>> = Vec::with_capacity(jit.len());
        for (k, kernel) in jit.iter().enumerate() {
            let n = kernel.profile.n_tbs;
            let cut = match (k, kernel.graph.kind()) {
                (0, _) | (_, GraphKind::Independent) | (_, GraphKind::FullyConnected) => {
                    proportional(n, devices)
                }
                (_, GraphKind::Explicit(_)) => {
                    banded_search(&kernel.graph, &cuts[k - 1], n, devices)
                }
            };
            cuts.push(cut);
        }
        let (cut_edges, total_edges) = count_cut_edges(jit, &cuts);
        Partition {
            devices,
            cuts,
            cut_edges,
            total_edges,
        }
    }

    /// The shard `[lo, hi)` of kernel `k` owned by device `d`.
    pub fn shard(&self, k: usize, d: u32) -> (u32, u32) {
        (self.cuts[k][d as usize], self.cuts[k][d as usize + 1])
    }

    /// The device owning TB `tb` of kernel `k`.
    pub fn device_of(&self, k: usize, tb: u32) -> u32 {
        let cut = &self.cuts[k];
        for d in 0..self.devices as usize {
            if tb < cut[d + 1] {
                return d as u32;
            }
        }
        self.devices - 1
    }

    /// Devices whose shard of kernel `k` is non-empty.
    pub fn active_devices(&self, k: usize) -> u32 {
        (0..self.devices)
            .filter(|&d| {
                let (lo, hi) = self.shard(k, d);
                hi > lo
            })
            .count() as u32
    }
}

/// The proportional cut: `devices + 1` boundaries with every shard within
/// one TB of `n / devices`.
fn proportional(n: u32, devices: u32) -> Vec<u32> {
    (0..=devices as u64)
        .map(|d| (n as u64 * d / devices as u64) as u32)
        .collect()
}

/// Slides each interior boundary within a band around the proportional
/// split to the position crossed by the fewest explicit edges, given the
/// parent kernel's fixed cut. Boundaries are fixed left to right, so the
/// result is deterministic and monotone by construction.
fn banded_search(
    graph: &bm_depgraph::BipartiteGraph,
    parent_cut: &[u32],
    n: u32,
    devices: u32,
) -> Vec<u32> {
    let prop = proportional(n, devices);
    if devices <= 1 || n == 0 {
        return prop;
    }
    let parents = graph.parents_of_children();
    let shard_len = (n / devices).max(1);
    let slack = (shard_len / BAND_DIVISOR).max(1);
    let mut cut = prop.clone();
    for d in 1..devices as usize {
        let target = prop[d];
        let lo = target.saturating_sub(slack).max(cut[d - 1]);
        let hi = (target + slack).min(n);
        let pb = parent_cut[d];
        let mut best = (u64::MAX, u32::MAX, target);
        for b in lo..=hi {
            // Local cost of placing boundary `d` at `b`: for each child in
            // the band, an edge crosses this boundary when the child and
            // its parent fall on different sides of their respective cuts.
            let mut cost = 0u64;
            for c in lo..hi {
                for &p in &parents[c as usize] {
                    if (c < b) != (p < pb) {
                        cost += 1;
                    }
                }
            }
            let dist = b.abs_diff(target);
            if (cost, dist, b) < best {
                best = (cost, dist, b);
            }
        }
        cut[d] = best.2;
    }
    cut
}

/// Counts `(cut, total)` explicit edges over the finished partition.
fn count_cut_edges(jit: &[JitKernel], cuts: &[Vec<u32>]) -> (u64, u64) {
    let mut cut_edges = 0u64;
    let mut total = 0u64;
    let devices = cuts.first().map_or(1, |c| c.len() - 1);
    let device_of = |cut: &[u32], tb: u32| -> usize {
        (0..devices)
            .find(|&d| tb < cut[d + 1])
            .unwrap_or(devices - 1)
    };
    for (k, kernel) in jit.iter().enumerate().skip(1) {
        if let GraphKind::Explicit(children) = kernel.graph.kind() {
            for (p, kids) in children.iter().enumerate() {
                let pd = device_of(&cuts[k - 1], p as u32);
                for &c in kids {
                    total += 1;
                    if device_of(&cuts[k], c) != pd {
                        cut_edges += 1;
                    }
                }
            }
        }
    }
    (cut_edges, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_is_monotone_and_covers() {
        for n in [0u32, 1, 7, 96] {
            for d in [1u32, 2, 3, 4, 7] {
                let cut = proportional(n, d);
                assert_eq!(cut.len(), d as usize + 1);
                assert_eq!(cut[0], 0);
                assert_eq!(*cut.last().unwrap(), n);
                assert!(cut.windows(2).all(|w| w[0] <= w[1]), "{cut:?}");
            }
        }
    }
}
