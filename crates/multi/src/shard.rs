//! The per-device thread-block source: one device's contiguous shard of
//! every kernel, driven by the same admission / readiness / retirement
//! rules as the single-device engine source, plus a message layer for the
//! dependencies that cross device boundaries.
//!
//! ## What is mirrored, what is not
//!
//! Admission (window, pre-launch floor, `PrelaunchOff` blocking, GPU-wide
//! launch and API costs), initial-readiness seeding, barrier semantics,
//! skip gates, consumer-priority placement order, and in-order retirement
//! all follow `EngineSource` exactly — that is what makes `devices = 1`
//! behaviourally meaningful and `devices = N` comparable. Every device
//! replays the full host timeline and issues every kernel (its *shard*
//! may be empty); real multi-GPU runtimes broadcast the launch stream the
//! same way.
//!
//! Deliberately **not** mirrored: the dependency-list / parent-counter
//! buffer hardware (spill modeling, pressure-driven window shrink) — the
//! shard source keeps plain counter arrays. Multi-device reports
//! therefore carry zero scheduler-buffer traffic; capacity pressure is a
//! single-device phenomenon in this model.
//!
//! ## Cross-device protocol
//!
//! * [`Msg::Dec`] — a parent TB on another device completed; decrement
//!   the named child TB's parent counter. Carries data (the producer's
//!   output the consumer reads), so it is charged through the
//!   interconnect's bandwidth model.
//! * [`Msg::ShardDone`] — a device finished its shard of a kernel.
//!   Control-only. A kernel is *globally* complete on a device once it
//!   has seen one `ShardDone` per active shard (its own included);
//!   retirement, whole-kernel barriers, and skip gates all key off global
//!   completion, so every device observes the same kernel ordering.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

use blockmaestro::{DegradationRung, EngineError, ExecMode, HwError, JitKernel};
use bm_depgraph::GraphKind;
use bm_simt::{GpuConfig, TbDescriptor, TbKey, TbSource};
use bm_trace::{TbId, TraceEvent, Tracer};

use crate::partition::Partition;

/// A cross-device message. `Ord` so inbox heaps are deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Msg {
    /// A remote parent of `(kernel, tb)` completed: decrement its counter.
    Dec {
        /// Child kernel sequence number.
        kernel: u32,
        /// Child TB (global id).
        tb: u32,
    },
    /// Device `from` completed its shard of `kernel`.
    ShardDone {
        /// The kernel.
        kernel: u32,
        /// The completing device.
        from: u32,
    },
}

/// An outgoing message, drained by the coordinator after each round.
#[derive(Debug, Clone, Copy)]
pub struct Outgoing {
    /// Destination device, or `None` for broadcast to every other device.
    pub dst: Option<u32>,
    /// Send cycle (the sender's clock at the triggering completion).
    pub sent: u64,
    /// Payload.
    pub msg: Msg,
}

/// One kernel's state on one device.
struct ShardKernel {
    /// Global TB range `[lo, hi)` owned by this device.
    lo: u32,
    hi: u32,
    threads: u32,
    shared_bytes: u32,
    duration: u64,
    /// Remaining parent counts per owned TB, indexed by `tb - lo`
    /// (fine-grain explicit graphs only; empty otherwise).
    counts: Vec<u32>,
    /// Data-ready times per owned TB, indexed by `tb - lo`.
    data_ready: Vec<Option<u64>>,
    done: Vec<bool>,
    pushed: Vec<bool>,
    /// Ready queue of *global* TB ids.
    ready: VecDeque<u32>,
    gates: Vec<u32>,
    completed: u32,
    arrival: Option<u64>,
    /// This device finished its shard.
    complete_local: bool,
    /// `ShardDone` received from every active shard (own included).
    complete_global: bool,
    /// Active shards counted toward global completion.
    active_shards: u32,
    /// `ShardDone` messages seen so far.
    shard_done_seen: u32,
}

impl ShardKernel {
    fn owns(&self, tb: u32) -> bool {
        tb >= self.lo && tb < self.hi
    }

    fn len(&self) -> u32 {
        self.hi - self.lo
    }
}

/// Per-device [`TbSource`]: executes one shard of every kernel, exchanging
/// cross-device dependencies as messages.
pub struct ShardSource<'a, T: Tracer> {
    pub device: u32,
    mode: ExecMode,
    window: usize,
    jit: &'a [JitKernel],
    part: &'a Partition,
    kernels: Vec<ShardKernel>,
    retired: usize,
    issued_count: usize,
    next_issue_floor: u64,
    host_ready: Vec<u64>,
    launch_cycles: u64,
    api_cycles: u64,
    arrivals: BinaryHeap<Reverse<(u64, usize)>>,
    /// Delivered cross-device messages awaiting their arrival cycle.
    /// `(arrival, delivery_seq, msg)` — the sequence number is assigned by
    /// the coordinator in its fixed routing order, making same-cycle
    /// delivery order deterministic.
    inbox: BinaryHeap<Reverse<(u64, u64, Msg)>>,
    next_inbox_seq: u64,
    /// Messages produced since the coordinator last drained us.
    pub outbox: Vec<Outgoing>,
    consumer_toggle: bool,
    error: Option<EngineError>,
    tracer: &'a T,
    /// Only device 0 narrates the (identical) kernel lifecycle.
    emit_kernel_events: bool,
    issue_cycles: Vec<u64>,
    pub sent_msgs: u64,
    pub recv_msgs: u64,
}

impl<'a, T: Tracer> ShardSource<'a, T> {
    /// Builds device `device`'s source and runs the boot sequence
    /// (initial readiness, first admission, trivially-complete kernels).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        cfg: &GpuConfig,
        jit: &'a [JitKernel],
        mode: ExecMode,
        part: &'a Partition,
        device: u32,
        host_ready: Vec<u64>,
        tracer: &'a T,
    ) -> Self {
        let fine = mode.fine_grain();
        let kernels: Vec<ShardKernel> = jit
            .iter()
            .enumerate()
            .map(|(k, kernel)| {
                let (lo, hi) = part.shard(k, device);
                let n = hi - lo;
                let counts = if fine {
                    match kernel.graph.kind() {
                        GraphKind::Explicit(_) => {
                            let full = kernel.graph.parent_counts();
                            full[lo as usize..hi as usize].to_vec()
                        }
                        _ => Vec::new(),
                    }
                } else {
                    Vec::new()
                };
                let active_shards = part.active_devices(k);
                ShardKernel {
                    lo,
                    hi,
                    threads: kernel.profile.threads,
                    shared_bytes: kernel.profile.shared_bytes,
                    duration: kernel.profile.duration,
                    counts,
                    data_ready: vec![None; n as usize],
                    done: vec![false; n as usize],
                    pushed: vec![false; n as usize],
                    ready: VecDeque::new(),
                    gates: kernel.skip_gates.clone(),
                    completed: 0,
                    arrival: None,
                    complete_local: n == 0,
                    complete_global: false,
                    active_shards,
                    shard_done_seen: 0,
                }
            })
            .collect();
        let mut src = ShardSource {
            device,
            mode,
            window: mode.window() as usize,
            jit,
            part,
            kernels,
            retired: 0,
            issued_count: 0,
            next_issue_floor: if matches!(mode, ExecMode::GraphLaunch) {
                cfg.kernel_launch_cycles
            } else {
                0
            },
            host_ready,
            launch_cycles: if mode.has_launch_overhead() {
                cfg.kernel_launch_cycles
            } else {
                0
            },
            api_cycles: if mode.has_launch_overhead() {
                cfg.launch_api_cycles
            } else {
                0
            },
            arrivals: BinaryHeap::new(),
            inbox: BinaryHeap::new(),
            next_inbox_seq: 0,
            outbox: Vec::new(),
            consumer_toggle: false,
            error: None,
            tracer,
            emit_kernel_events: device == 0,
            issue_cycles: vec![0; jit.len()],
            sent_msgs: 0,
            recv_msgs: 0,
        };
        for k in 0..src.jit.len() {
            src.seed_initial_readiness(k);
        }
        src.admit_kernels(0);
        // A kernel no device has TBs for (zero-TB kernels; defensive) is
        // globally complete at birth. Empty *shards* of a non-empty kernel
        // need nothing here: they are excluded from `active_shards`, so no
        // device waits on them.
        for k in 0..src.kernels.len() {
            if src.kernels[k].active_shards == 0 {
                src.on_global_complete(k, 0);
            }
        }
        src.cascade_retirement(0);
        src
    }

    /// Delivers a coordinator-routed message into the inbox.
    pub fn deliver(&mut self, arrival: u64, msg: Msg) {
        self.inbox
            .push(Reverse((arrival, self.next_inbox_seq, msg)));
        self.next_inbox_seq += 1;
        self.recv_msgs += 1;
    }

    /// Progress accounting for the coordinator's per-device stats.
    pub fn issue_cycles(&self) -> &[u64] {
        &self.issue_cycles
    }

    /// Data-ready time of an owned TB (for stall accounting).
    pub fn data_ready_of(&self, key: TbKey) -> Option<u64> {
        let st = &self.kernels[key.kernel_seq as usize];
        st.owns(key.tb)
            .then(|| st.data_ready[(key.tb - st.lo) as usize])
            .flatten()
    }

    /// Per-kernel `(completed, owned)` TB counts, for checkpoints.
    pub fn progress(&self) -> Vec<(u32, u32)> {
        self.kernels
            .iter()
            .map(|k| (k.completed, k.len()))
            .collect()
    }

    /// The typed error behind an [`TbSource::aborted`] return.
    pub fn take_error(&mut self) -> Option<EngineError> {
        self.error.take()
    }

    fn kernel_is_barriered(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        match self.jit[k].graph.kind() {
            GraphKind::Independent => false,
            GraphKind::FullyConnected => true,
            GraphKind::Explicit(_) => !self.mode.fine_grain(),
        }
    }

    fn seed_initial_readiness(&mut self, k: usize) {
        let fine = self.mode.fine_grain();
        let barrier = self.kernel_is_barriered(k);
        let st = &mut self.kernels[k];
        if (k == 0 || !barrier) && st.counts.is_empty() {
            for i in 0..st.len() as usize {
                st.data_ready[i] = Some(0);
            }
            return;
        }
        if fine {
            for i in 0..st.len() as usize {
                if st.counts.get(i).copied().unwrap_or(0) == 0 && !st.counts.is_empty() {
                    st.data_ready[i] = Some(0);
                }
            }
        }
    }

    fn admit_kernels(&mut self, now: u64) {
        while self.issued_count < self.jit.len() && self.issued_count < self.retired + self.window {
            let k = self.issued_count;
            if k > self.retired
                && self.jit[self.retired..=k]
                    .iter()
                    .any(|j| j.degradation.rung == DegradationRung::PrelaunchOff)
            {
                break;
            }
            let issue = now
                .max(self.host_ready.get(k).copied().unwrap_or(0))
                .max(self.next_issue_floor);
            self.next_issue_floor = issue + self.api_cycles;
            let arrival = issue + self.launch_cycles;
            self.issue_cycles[k] = issue;
            if T::ENABLED && self.emit_kernel_events {
                self.tracer.emit(TraceEvent::KernelIssue {
                    cycle: issue,
                    seq: k as u32,
                    name: self.jit[k].name.clone(),
                    prelaunched: k > self.retired,
                });
            }
            self.arrivals.push(Reverse((arrival, k)));
            self.issued_count += 1;
        }
    }

    fn gates_open(&self, k: usize) -> bool {
        self.kernels[k]
            .gates
            .iter()
            .all(|&g| self.kernels[g as usize].complete_global)
    }

    fn flush_ready(&mut self, k: usize) {
        if self.kernels[k].arrival.is_none() || !self.gates_open(k) {
            return;
        }
        let st = &mut self.kernels[k];
        for i in 0..st.len() as usize {
            if !st.pushed[i] && st.data_ready[i].is_some() {
                st.pushed[i] = true;
                st.ready.push_back(st.lo + i as u32);
            }
        }
    }

    /// Marks an *owned* TB (global id) data-ready, enqueuing if eligible.
    fn mark_data_ready(&mut self, k: usize, tb: u32, now: u64) {
        let eligible = self.kernels[k].arrival.is_some() && self.gates_open(k);
        let st = &mut self.kernels[k];
        debug_assert!(st.owns(tb), "readiness for a TB we do not own");
        let i = (tb - st.lo) as usize;
        if st.data_ready[i].is_none() {
            st.data_ready[i] = Some(now);
            if T::ENABLED {
                self.tracer.emit(TraceEvent::TbReady {
                    cycle: now,
                    id: TbId {
                        kernel: k as u32,
                        tb,
                    },
                });
            }
        }
        let st = &mut self.kernels[k];
        let i = (tb - st.lo) as usize;
        if eligible && !st.pushed[i] {
            st.pushed[i] = true;
            st.ready.push_back(tb);
        }
    }

    /// This device finished its shard of `k`: count ourselves, tell the
    /// others, and check for global completion.
    fn on_local_complete(&mut self, k: usize, now: u64) {
        let st = &mut self.kernels[k];
        st.complete_local = true;
        st.shard_done_seen += 1;
        self.sent_msgs += 1;
        self.outbox.push(Outgoing {
            dst: None,
            sent: now,
            msg: Msg::ShardDone {
                kernel: k as u32,
                from: self.device,
            },
        });
        if self.kernels[k].shard_done_seen == self.kernels[k].active_shards {
            self.on_global_complete(k, now);
        }
    }

    /// Every active shard of `k` is done, from this device's vantage.
    fn on_global_complete(&mut self, k: usize, now: u64) {
        if self.kernels[k].complete_global {
            return;
        }
        self.kernels[k].complete_global = true;
        if k + 1 < self.kernels.len() && self.kernel_is_barriered(k + 1) {
            let (lo, hi) = (self.kernels[k + 1].lo, self.kernels[k + 1].hi);
            for tb in lo..hi {
                self.mark_data_ready(k + 1, tb, now);
            }
        }
        for j in 0..self.kernels.len() {
            if self.kernels[j].gates.contains(&(k as u32)) {
                self.flush_ready(j);
            }
        }
        self.cascade_retirement(now);
    }

    fn cascade_retirement(&mut self, now: u64) {
        while self.retired < self.kernels.len() && self.kernels[self.retired].complete_global {
            if T::ENABLED && self.emit_kernel_events {
                self.tracer.emit(TraceEvent::KernelRetire {
                    cycle: now,
                    seq: self.retired as u32,
                });
            }
            self.retired += 1;
        }
        self.admit_kernels(now);
    }

    fn record_error(&mut self, e: EngineError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Decrements an owned child TB's parent counter (local completion or
    /// remote [`Msg::Dec`]); zero releases the TB.
    fn decrement(&mut self, k: usize, tb: u32, now: u64) {
        let key = TbKey {
            kernel_seq: k as u32,
            tb,
        };
        let stored = {
            let Some(st) = self.kernels.get(k) else {
                self.record_error(EngineError::Hw {
                    err: HwError::CounterNotResident { key },
                    cycle: now,
                });
                return;
            };
            if !st.owns(tb) || st.counts.is_empty() {
                self.record_error(EngineError::Hw {
                    err: HwError::CounterNotResident { key },
                    cycle: now,
                });
                return;
            }
            st.counts[(tb - st.lo) as usize]
        };
        if stored == 0 {
            self.record_error(EngineError::Hw {
                err: HwError::CounterUnderflow { key },
                cycle: now,
            });
            return;
        }
        let st = &mut self.kernels[k];
        st.counts[(tb - st.lo) as usize] = stored - 1;
        if stored == 1 {
            self.mark_data_ready(k, tb, now);
        }
    }

    fn active_range(&self) -> std::ops::Range<usize> {
        self.retired..self.issued_count
    }
}

impl<T: Tracer> TbSource for ShardSource<'_, T> {
    fn pop_ready(&mut self, _now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
        let range = self.active_range();
        let order: Vec<usize> = if self.mode.consumer_priority() {
            self.consumer_toggle = !self.consumer_toggle;
            if self.consumer_toggle {
                range.rev().collect()
            } else {
                range.collect()
            }
        } else {
            range.collect()
        };
        for k in order {
            let st = &self.kernels[k];
            if st.arrival.is_none() || st.ready.is_empty() {
                continue;
            }
            if !fits(st.threads, st.shared_bytes) {
                continue;
            }
            let st = &mut self.kernels[k];
            let tb = st.ready.pop_front().expect("checked non-empty");
            return Some(TbDescriptor {
                key: TbKey {
                    kernel_seq: k as u32,
                    tb,
                },
                threads: st.threads,
                shared_bytes: st.shared_bytes,
                duration: st.duration,
            });
        }
        None
    }

    fn on_tb_start(&mut self, key: TbKey, now: u64) {
        if T::ENABLED {
            let k = key.kernel_seq as usize;
            let ready_at = self.data_ready_of(key).unwrap_or(now);
            if now > ready_at {
                let reason = if self.kernels[k].arrival.is_some_and(|a| a > ready_at) {
                    bm_trace::StallReason::KernelArrival
                } else {
                    bm_trace::StallReason::Resources
                };
                self.tracer.emit(TraceEvent::TbStall {
                    cycle: now,
                    id: TbId {
                        kernel: key.kernel_seq,
                        tb: key.tb,
                    },
                    ready_at,
                    reason,
                });
            }
        }
    }

    fn on_tb_complete(&mut self, key: TbKey, now: u64) {
        if self.error.is_some() {
            return;
        }
        let k = key.kernel_seq as usize;
        {
            let st = &mut self.kernels[k];
            debug_assert!(st.owns(key.tb), "completion for a TB we do not own");
            let i = (key.tb - st.lo) as usize;
            debug_assert!(!st.done[i], "double completion");
            st.done[i] = true;
            st.completed += 1;
        }
        // Fine-grain child decrements: local children directly, remote
        // children as data messages over the interconnect.
        if self.mode.fine_grain() {
            if let Some(next) = self.jit.get(k + 1) {
                if matches!(next.graph.kind(), GraphKind::Explicit(_)) {
                    let ck = k + 1;
                    for c in next.graph.children_of(key.tb) {
                        if self.kernels[ck].owns(c) {
                            self.decrement(ck, c, now);
                            if self.error.is_some() {
                                return;
                            }
                        } else {
                            self.sent_msgs += 1;
                            self.outbox.push(Outgoing {
                                dst: Some(self.part.device_of(ck, c)),
                                sent: now,
                                msg: Msg::Dec {
                                    kernel: ck as u32,
                                    tb: c,
                                },
                            });
                        }
                    }
                }
            }
        }
        if self.kernels[k].completed == self.kernels[k].len() && !self.kernels[k].complete_local {
            self.on_local_complete(k, now);
        }
    }

    fn next_event_at(&self, _now: u64) -> Option<u64> {
        let arrival = self.arrivals.peek().map(|Reverse((t, _))| *t);
        let msg = self.inbox.peek().map(|Reverse((t, ..))| *t);
        match (arrival, msg) {
            (Some(a), Some(m)) => Some(a.min(m)),
            (a, m) => a.or(m),
        }
    }

    fn on_time_advance(&mut self, now: u64) {
        // Drained to a fixpoint: processing a message can retire a kernel
        // and admit the next one with a *zero* launch cost (ideal modes),
        // pushing a fresh arrival at `now` itself — which the engine will
        // never advance to. Re-scan until neither queue has due events.
        loop {
            let mut progressed = false;
            while let Some(Reverse((t, k))) = self.arrivals.peek().copied() {
                if t > now {
                    break;
                }
                progressed = true;
                self.arrivals.pop();
                self.kernels[k].arrival = Some(t);
                if T::ENABLED && self.emit_kernel_events {
                    self.tracer.emit(TraceEvent::KernelArrive {
                        cycle: t,
                        seq: k as u32,
                    });
                }
                self.flush_ready(k);
            }
            while let Some(&Reverse((t, _, msg))) = self.inbox.peek() {
                if t > now {
                    break;
                }
                progressed = true;
                self.inbox.pop();
                match msg {
                    Msg::Dec { kernel, tb } => self.decrement(kernel as usize, tb, t),
                    Msg::ShardDone { kernel, .. } => {
                        let k = kernel as usize;
                        self.kernels[k].shard_done_seen += 1;
                        if self.kernels[k].shard_done_seen == self.kernels[k].active_shards
                            && !self.kernels[k].complete_global
                        {
                            self.on_global_complete(k, t);
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.retired == self.kernels.len()
    }

    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn diagnostics(&self) -> Vec<String> {
        let mut out = Vec::new();
        for k in self.active_range() {
            let st = &self.kernels[k];
            if st.complete_global {
                continue;
            }
            let pending = st.counts.iter().filter(|&&c| c > 0).count();
            out.push(format!(
                "device {} kernel {k} `{}`: shard [{}, {}), {}/{} TBs complete, \
                 ready-queue depth {}, {} pending parent counters, arrival {:?}, \
                 shard-done {}/{}",
                self.device,
                self.jit[k].name,
                st.lo,
                st.hi,
                st.completed,
                st.len(),
                st.ready.len(),
                pending,
                st.arrival,
                st.shard_done_seen,
                st.active_shards,
            ));
        }
        out
    }
}
