//! # bm-multi — TB-grain multi-GPU execution
//!
//! Shards an application's thread blocks across N simulated GPUs and
//! executes the shards as coupled discrete-event simulations over a
//! deterministic virtual interconnect.
//!
//! * [`partition`] cuts every kernel's TB range into contiguous
//!   per-device shards, sliding each boundary locally to minimize the
//!   explicit dependency edges that cross devices.
//! * [`shard`] is the per-device [`bm_simt::TbSource`]: the same
//!   admission / readiness / retirement rules as the single-device
//!   engine, with cross-device parent→child decrements carried as
//!   messages.
//! * [`interconnect`] charges those messages with configurable link
//!   latency and bandwidth, serializing per directed link pair — and
//!   injects the [`blockmaestro::FaultClass::LinkFault`] plans.
//! * [`run`] advances the device engines in conservative bounded-lag
//!   rounds; the effective link latency is the lookahead that makes the
//!   rounds both causally safe and bit-reproducible.
//! * [`snapshot`] captures coordinator state into the `BMSNAP02`
//!   container's multi section.
//!
//! `devices = 1` never enters any of this machinery: the entry points
//! delegate verbatim to the single-device engine, so single-GPU reports
//! and traces are bit-identical to `blockmaestro`'s own.
//!
//! ## Cross-device pre-launch semantics
//!
//! A child TB on device B whose parents live on device A becomes
//! eligible once those parents retire *plus* the transfer delay of the
//! dependency message — pre-launching still masks launch overhead across
//! devices, but data now pays for the wire. A dropped or corrupted
//! transfer abandons the multi-device attempt and re-runs the app on one
//! device, recorded as [`DegradationReason::LinkFault`] in the report —
//! graceful degradation, never a panic.

pub mod interconnect;
pub mod partition;
mod run;
pub mod shard;
pub mod snapshot;
pub mod tracer;

use blockmaestro::{
    try_jit_analyze_app, BmError, DegradationReason, ExecMode, FaultPlan, JitKernel, MultiStats,
    RunReport, RunSnapshot, SnapshotError,
};
use bm_cmdq::Application;
use bm_depgraph::HazardMode;
use bm_simt::GpuConfig;
use bm_trace::{NullTracer, Tracer};

pub use partition::Partition;
pub use snapshot::MultiCheckpoint;
pub use tracer::DeviceTracer;

use run::MultiAbort;

/// Multi-GPU execution parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MultiGpuConfig {
    /// Simulated devices. `1` delegates to the single-device engine.
    pub devices: u32,
    /// Per-hop link propagation latency in cycles. `0` is modeled as one
    /// cycle (a message can never arrive in the cycle it was sent).
    pub link_latency_cycles: u64,
    /// Link bandwidth in bytes per cycle per directed link.
    pub link_bandwidth_bytes_per_cycle: u64,
    /// Payload bytes charged per cross-device dependency edge.
    pub bytes_per_edge: u64,
}

impl Default for MultiGpuConfig {
    /// NVLink-flavoured defaults at the simulator's 1 GHz / 1 ns-per-cycle
    /// convention: ~600 ns hop latency, 32 B/cycle (~32 GB/s) per
    /// direction, one 256 B line per dependency edge.
    fn default() -> Self {
        MultiGpuConfig {
            devices: 1,
            link_latency_cycles: 600,
            link_bandwidth_bytes_per_cycle: 32,
            bytes_per_edge: 256,
        }
    }
}

impl MultiGpuConfig {
    /// A config for `devices` devices with default link parameters.
    pub fn devices(devices: u32) -> Self {
        MultiGpuConfig {
            devices: devices.max(1),
            ..MultiGpuConfig::default()
        }
    }
}

/// Runs `app` across `mcfg.devices` simulated GPUs (RAW hazard tracking,
/// no faults, untraced).
///
/// # Errors
///
/// Any [`BmError`], exactly as the single-device entry points. A link
/// fault is *not* an error: it degrades to single-device execution.
pub fn try_run_app_multi(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
) -> Result<RunReport, BmError> {
    try_run_app_multi_faulty(
        cfg,
        mcfg,
        app,
        mode,
        hazard,
        &FaultPlan::default(),
        &NullTracer,
    )
}

/// [`try_run_app_multi`] with a trace sink. With `devices = 1` the
/// emitted stream is bit-identical to
/// [`blockmaestro::try_run_app_with_tracer`]; with more devices each
/// device's SM lanes are offset into its own block and cross-device
/// transfers appear as `XferStart`/`XferDone` events.
///
/// # Errors
///
/// As [`try_run_app_multi`].
pub fn try_run_app_multi_traced<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    tracer: &T,
) -> Result<RunReport, BmError> {
    try_run_app_multi_faulty(cfg, mcfg, app, mode, hazard, &FaultPlan::default(), tracer)
}

/// The full multi-device pipeline with an injected [`FaultPlan`]. Only
/// the plan's `link_drop_nth` / `link_corrupt_nth` fields are consumed —
/// the other fault classes perturb single-device scheduler hardware this
/// crate does not model. On a link fault the multi attempt is abandoned
/// and the app re-runs on one device; the returned report carries
/// [`MultiStats::fallback`] with [`DegradationReason::LinkFault`] and the
/// detection cycle.
///
/// # Errors
///
/// As [`try_run_app_multi`].
pub fn try_run_app_multi_faulty<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    tracer: &T,
) -> Result<RunReport, BmError> {
    if mcfg.devices <= 1 {
        return blockmaestro::try_run_app_with_tracer(cfg, app, mode, hazard, tracer);
    }
    app.validate()?;
    let jit = try_jit_analyze_app(cfg, app, hazard)?;
    run_analyzed(cfg, mcfg, app, &jit, mode, hazard, fault, tracer)
}

/// Multi-device execution of a pre-analyzed application — the entry the
/// determinism suites use to hold the analysis fixed while varying host
/// parallelism.
///
/// # Errors
///
/// As [`try_run_app_multi`].
pub fn try_run_analyzed_multi(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
) -> Result<RunReport, BmError> {
    try_run_analyzed_multi_traced(cfg, mcfg, app, jit, mode, &NullTracer)
}

/// [`try_run_analyzed_multi`] with a trace sink.
///
/// # Errors
///
/// As [`try_run_app_multi`].
pub fn try_run_analyzed_multi_traced<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    tracer: &T,
) -> Result<RunReport, BmError> {
    if mcfg.devices <= 1 {
        return blockmaestro::try_run_analyzed_traced(cfg, app, jit, mode, tracer)
            .map_err(BmError::from);
    }
    run_analyzed(
        cfg,
        mcfg,
        app,
        jit,
        mode,
        HazardMode::Raw,
        &FaultPlan::default(),
        tracer,
    )
}

/// [`try_run_analyzed_multi_traced`] that also returns the coordinator
/// state at the final round boundary, ready to embed into a `BMSNAP02`
/// container via [`embed_multi`]. Only meaningful for `devices ≥ 2`;
/// `devices = 1` has no coordinator and returns `None`.
///
/// # Errors
///
/// As [`try_run_app_multi`].
pub fn try_run_analyzed_multi_snapshotted<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    tracer: &T,
) -> Result<(RunReport, Option<MultiCheckpoint>), BmError> {
    if mcfg.devices <= 1 {
        let report = blockmaestro::try_run_analyzed_traced(cfg, app, jit, mode, tracer)?;
        return Ok((report, None));
    }
    match run::run_sharded(cfg, mcfg, app, jit, mode, None, None, tracer) {
        Ok(out) => Ok((out.report, Some(out.final_checkpoint))),
        Err(MultiAbort::Engine(e)) => Err(BmError::from(e)),
        Err(MultiAbort::LinkFault { .. }) => {
            unreachable!("no fault plan was supplied")
        }
    }
}

/// Shared `devices ≥ 2` path: shard, run, and on a link fault fall back
/// to a clean single-device execution stamped with the degradation.
#[allow(clippy::too_many_arguments)]
fn run_analyzed<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    tracer: &T,
) -> Result<RunReport, BmError> {
    match run::run_sharded(
        cfg,
        mcfg,
        app,
        jit,
        mode,
        fault.link_drop_nth,
        fault.link_corrupt_nth,
        tracer,
    ) {
        Ok(out) => Ok(out.report),
        Err(MultiAbort::Engine(e)) => Err(BmError::from(e)),
        Err(MultiAbort::LinkFault { cycle, stats }) => {
            // The damaged attempt is discarded wholesale; the app re-runs
            // on one device through the guarded single-device pipeline.
            let mut report = blockmaestro::try_run_app_faulty_traced(
                cfg,
                app,
                jit.to_vec(),
                mode,
                hazard,
                &FaultPlan::default(),
                tracer,
            )?;
            report.multi = Some(MultiStats {
                devices: mcfg.devices,
                link_latency_cycles: mcfg.link_latency_cycles,
                link_bandwidth_bytes_per_cycle: mcfg.link_bandwidth_bytes_per_cycle,
                cut_edges: stats.cut_edges,
                total_edges: stats.total_edges,
                transfers: stats.transfers,
                transfer_bytes: stats.transfer_bytes,
                transfer_cycles: stats.transfer_cycles,
                per_device: Vec::new(),
                fallback: Some((DegradationReason::LinkFault, cycle)),
            });
            Ok(report)
        }
    }
}

/// Embeds a multi-device checkpoint into a `BMSNAP02` container.
pub fn embed_multi(snap: &mut RunSnapshot, ckpt: &MultiCheckpoint) {
    snap.multi = ckpt.encode();
}

/// Extracts the multi-device section of a container, if present.
///
/// # Errors
///
/// [`SnapshotError::Malformed`] when the section exists but is corrupt.
pub fn extract_multi(snap: &RunSnapshot) -> Result<Option<MultiCheckpoint>, SnapshotError> {
    if snap.multi.is_empty() {
        return Ok(None);
    }
    MultiCheckpoint::decode(&snap.multi).map(Some)
}
