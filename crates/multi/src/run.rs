//! The epoch coordinator: conservative bounded-lag parallel DES over N
//! per-device engines.
//!
//! ## Round protocol
//!
//! Each round the coordinator computes `t_min` — the earliest pending
//! event (in-flight TB completion, kernel arrival, or delivered message)
//! across every unfinished device — and grants every device a horizon of
//! `t_min + L`, where `L` is the interconnect's effective latency (the
//! *lookahead*). Devices then drain in fixed id order: each steps its DES
//! until it blocks at the horizon or finishes, and its outgoing messages
//! are routed immediately.
//!
//! ## Why this is both correct and deterministic
//!
//! *Correctness* (no causality violation): any message sent during a
//! round is sent at some `t ≥ t_min` (completions processed this round
//! cannot predate the global minimum), so it arrives at
//! `t + L ≥ t_min + L = horizon` — strictly after every clock reached
//! this round. No device can ever receive a message "in its past", which
//! is why zero-latency links are floored to one cycle.
//!
//! *Determinism*: the coordinator is single-threaded and drains devices
//! in id order, message delivery order is fixed by per-inbox sequence
//! numbers assigned in routing order, and same-arrival messages order by
//! that sequence. Host-side thread counts only affect the (already
//! deterministic) JIT analysis, never this loop.

use blockmaestro::{
    host_plan_traced, EngineError, ExecMode, GuardReport, JitKernel, MultiStats, RunReport,
};
use bm_simt::{BoundedOutcome, DesEngine, DesError, DesStats, GpuConfig, TbSource};
use bm_trace::{TraceEvent, Tracer};

use crate::interconnect::Interconnect;
use crate::partition::Partition;
use crate::shard::{Msg, ShardSource};
use crate::snapshot::MultiCheckpoint;
use crate::tracer::DeviceTracer;
use crate::MultiGpuConfig;

/// Round-count watchdog: generous (every round advances at least one
/// event on some device) but finite, so a protocol bug surfaces as a
/// typed abort instead of a hang.
const MAX_ROUNDS: u64 = 200_000_000;

/// Why a multi-device attempt was abandoned.
pub(crate) enum MultiAbort {
    /// The interconnect dropped or corrupted a transfer at `cycle`; the
    /// caller falls back to single-device execution. Carries the partition
    /// and transfer accounting up to the fault so the fallback report can
    /// still describe the abandoned attempt.
    LinkFault { cycle: u64, stats: AbandonedStats },
    /// A real execution error — propagated, never masked by fallback.
    Engine(EngineError),
}

/// Partition + interconnect accounting of an abandoned multi attempt.
pub(crate) struct AbandonedStats {
    pub cut_edges: u64,
    pub total_edges: u64,
    pub transfers: u64,
    pub transfer_bytes: u64,
    pub transfer_cycles: u64,
}

/// Everything the caller needs besides the report itself.
pub(crate) struct MultiRunOutput {
    pub report: RunReport,
    /// Coordinator state at the final round boundary (complete run).
    pub final_checkpoint: MultiCheckpoint,
}

/// Runs `jit` across `mcfg.devices` shards and assembles the merged
/// report. `fault_drop`/`fault_corrupt` are the link-fault plan entries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_sharded<T: Tracer>(
    cfg: &GpuConfig,
    mcfg: &MultiGpuConfig,
    app: &bm_cmdq::Application,
    jit: &[JitKernel],
    mode: ExecMode,
    fault_drop: Option<u64>,
    fault_corrupt: Option<u64>,
    tracer: &T,
) -> Result<MultiRunOutput, MultiAbort> {
    let n = mcfg.devices.max(1) as usize;
    let part = Partition::build(jit, mcfg.devices);
    let (host_ready, epilogue) = host_plan_traced(cfg, app, mode, tracer);
    if T::ENABLED {
        tracer.emit(TraceEvent::MultiTopology {
            devices: n as u32,
            sms_per_device: cfg.num_sms,
        });
    }
    let mut ic = Interconnect::new(mcfg, fault_drop, fault_corrupt);
    let tracers: Vec<DeviceTracer<'_, T>> = (0..n as u32)
        .map(|d| DeviceTracer::new(tracer, d, cfg.num_sms))
        .collect();
    let mut sources: Vec<ShardSource<'_, DeviceTracer<'_, T>>> = (0..n as u32)
        .map(|d| {
            ShardSource::new(
                cfg,
                jit,
                mode,
                &part,
                d,
                host_ready.clone(),
                &tracers[d as usize],
            )
        })
        .collect();
    let mut engines: Vec<DesEngine> = (0..n).map(|_| DesEngine::new(cfg)).collect();
    let mut finished = vec![false; n];
    // The boot may already have produced messages (trivially-complete
    // kernels broadcasting), and the engine kickoff mirrors the
    // single-device driver's `on_time_advance(0)`.
    for src in sources.iter_mut().take(n) {
        src.on_time_advance(0);
    }
    if let Err(cycle) = route_round(&mut sources, &mut ic, mcfg, tracer) {
        return Err(link_fault(cycle, &part, &ic));
    }

    let lookahead = ic.lookahead();
    let mut round: u64 = 0;
    while !finished.iter().all(|&f| f) {
        round += 1;
        if round > MAX_ROUNDS {
            let cycle = engines.iter().map(|e| e.now()).max().unwrap_or(0);
            return Err(MultiAbort::Engine(EngineError::Aborted { cycle }));
        }
        // Earliest pending event across unfinished devices. After a round
        // every device has drained to its horizon, so all future activity
        // is anchored in a completion heap, an arrival timer, or a
        // delivered message — exactly what this minimum covers.
        let mut t_min: Option<u64> = None;
        for d in 0..n {
            if finished[d] {
                continue;
            }
            let next = [
                engines[d].next_completion_at(),
                sources[d].next_event_at(engines[d].now()),
            ]
            .into_iter()
            .flatten()
            .min();
            if let Some(t) = next {
                t_min = Some(t_min.map_or(t, |m| m.min(t)));
            }
        }
        let Some(t_min) = t_min else {
            // Nothing pending anywhere yet devices are unfinished: the
            // distributed dependency state is wedged.
            let cycle = engines.iter().map(|e| e.now()).max().unwrap_or(0);
            return Err(MultiAbort::Engine(EngineError::Aborted { cycle }));
        };
        let horizon = t_min.saturating_add(lookahead);
        for d in 0..n {
            if finished[d] {
                continue;
            }
            loop {
                match engines[d].step_bounded(&mut sources[d], &tracers[d], horizon) {
                    Ok(BoundedOutcome::Progressed) => continue,
                    Ok(BoundedOutcome::Blocked) => break,
                    Ok(BoundedOutcome::Finished) => {
                        finished[d] = true;
                        break;
                    }
                    Err(DesError::SourceAbort { cycle }) => {
                        let err = sources[d]
                            .take_error()
                            .unwrap_or(EngineError::Aborted { cycle });
                        return Err(MultiAbort::Engine(err));
                    }
                    Err(DesError::Deadlock(snap)) => {
                        // Unreachable under a horizon; typed for safety.
                        return Err(MultiAbort::Engine(EngineError::Deadlock(snap)));
                    }
                    Err(DesError::Cancelled { cycle, .. }) => {
                        return Err(MultiAbort::Engine(EngineError::Aborted { cycle }));
                    }
                }
            }
            if let Err(cycle) = route_round(&mut sources, &mut ic, mcfg, tracer) {
                return Err(link_fault(cycle, &part, &ic));
            }
        }
    }

    let final_checkpoint = capture(&engines, &sources, &ic, round, n as u32);
    let stats: Vec<DesStats> = engines.into_iter().map(DesEngine::finish).collect();
    let report = assemble_multi_report(
        mcfg, jit, mode, &part, &sources, &ic, stats, epilogue, tracer,
    );
    Ok(MultiRunOutput {
        report,
        final_checkpoint,
    })
}

fn link_fault(cycle: u64, part: &Partition, ic: &Interconnect) -> MultiAbort {
    MultiAbort::LinkFault {
        cycle,
        stats: AbandonedStats {
            cut_edges: part.cut_edges,
            total_edges: part.total_edges,
            transfers: ic.transfers,
            transfer_bytes: ic.transfer_bytes,
            transfer_cycles: ic.transfer_cycles,
        },
    }
}

/// Drains every outbox through the interconnect, delivering into the
/// destination inboxes. Returns `Err(cycle)` on a detected link fault.
fn route_round<T: Tracer>(
    sources: &mut [ShardSource<'_, DeviceTracer<'_, T>>],
    ic: &mut Interconnect,
    mcfg: &MultiGpuConfig,
    tracer: &T,
) -> Result<(), u64> {
    let n = sources.len();
    for d in 0..n {
        let outgoing = std::mem::take(&mut sources[d].outbox);
        for o in outgoing {
            match o.msg {
                Msg::Dec { kernel, tb } => {
                    let dst = o.dst.expect("dependency messages carry a destination");
                    let id = bm_trace::TbId { kernel, tb };
                    if let Some(arrival) =
                        ic.send_data(tracer, o.sent, d as u32, dst, mcfg.bytes_per_edge, id)
                    {
                        sources[dst as usize].deliver(arrival, o.msg);
                    }
                }
                Msg::ShardDone { .. } => {
                    let arrival = ic.send_control(o.sent);
                    for (dst, src) in sources.iter_mut().enumerate() {
                        if dst != d {
                            src.deliver(arrival, o.msg);
                        }
                    }
                }
            }
        }
        if let Some(cycle) = ic.fault_detected {
            return Err(cycle);
        }
    }
    Ok(())
}

/// Captures the coordinator state at a round boundary.
fn capture<T: Tracer>(
    engines: &[DesEngine],
    sources: &[ShardSource<'_, DeviceTracer<'_, T>>],
    ic: &Interconnect,
    round: u64,
    devices: u32,
) -> MultiCheckpoint {
    MultiCheckpoint {
        devices,
        round,
        clocks: engines.iter().map(|e| e.now()).collect(),
        des: engines.iter().map(|e| e.checkpoint()).collect(),
        progress: sources.iter().map(|s| s.progress()).collect(),
        link_busy: ic.busy_matrix().to_vec(),
        transfers: ic.transfers,
        transfer_bytes: ic.transfer_bytes,
        transfer_cycles: ic.transfer_cycles,
    }
}

/// Builds the merged [`RunReport`] from per-device results.
#[allow(clippy::too_many_arguments)]
fn assemble_multi_report<T: Tracer>(
    mcfg: &MultiGpuConfig,
    jit: &[JitKernel],
    mode: ExecMode,
    part: &Partition,
    sources: &[ShardSource<'_, DeviceTracer<'_, T>>],
    ic: &Interconnect,
    stats: Vec<DesStats>,
    epilogue: u64,
    tracer: &T,
) -> RunReport {
    let makespan = stats.iter().map(|s| s.total_cycles).max().unwrap_or(0);
    let total_integral: u128 = stats.iter().map(|s| s.concurrency_integral).sum();
    // Merge per-device schedules into one deterministic global order.
    let mut schedule: Vec<_> = stats
        .iter()
        .flat_map(|s| s.schedule.iter().copied())
        .collect();
    schedule.sort_unstable_by_key(|&(key, start, finish)| (start, key.kernel_seq, key.tb, finish));
    let mut stalls = Vec::with_capacity(schedule.len());
    for &(key, start, _finish) in &schedule {
        let dev = part.device_of(key.kernel_seq as usize, key.tb) as usize;
        let ready = sources[dev].data_ready_of(key).unwrap_or(start);
        let dur = jit[key.kernel_seq as usize].profile.duration.max(1) as f64;
        stalls.push(start.saturating_sub(ready) as f64 / dur);
    }
    let baseline_mem: u64 = jit
        .iter()
        .map(|k| k.profile.n_tbs as u64 * k.profile.txns_per_tb)
        .sum();
    let per_device = stats
        .iter()
        .enumerate()
        .map(|(d, s)| blockmaestro::DeviceStats {
            device: d as u32,
            tbs_executed: s.tbs_executed,
            busy_cycles: s.total_cycles,
            avg_concurrency: s.avg_concurrency(),
            sent_msgs: sources[d].sent_msgs,
            recv_msgs: sources[d].recv_msgs,
        })
        .collect();
    let issue_cycles = sources[0].issue_cycles();
    RunReport {
        mode,
        total_cycles: makespan + epilogue,
        kernel_region_cycles: makespan,
        avg_concurrency: if makespan == 0 {
            0.0
        } else {
            total_integral as f64 / makespan as f64
        },
        stalls_normalized: stalls,
        baseline_mem_requests: baseline_mem,
        // The shard sources keep plain counter arrays — no scheduler
        // buffer hardware is modeled, so no overhead traffic is charged.
        overhead_mem_requests: 0,
        hw_traffic: Default::default(),
        storage_encoded: jit.iter().map(|k| k.storage.encoded_bytes).sum(),
        storage_plain: jit.iter().map(|k| k.storage.plain_bytes).sum(),
        patterns: jit
            .iter()
            .map(|k| (k.name.clone(), k.storage.pattern))
            .collect(),
        schedule,
        num_kernels: jit.len(),
        dlb_high_water: 0,
        pcb_high_water: 0,
        guard: GuardReport::default(),
        degradation: jit
            .iter()
            .enumerate()
            .map(|(seq, k)| {
                let mut d = k.degradation;
                if d.is_degraded() {
                    d.at_cycle = issue_cycles.get(seq).copied().unwrap_or(0);
                    if T::ENABLED {
                        tracer.emit(TraceEvent::DegradationStamp {
                            cycle: d.at_cycle,
                            seq: seq as u32,
                            rung: d.rung.to_string(),
                            reason: d.reason.to_string(),
                        });
                    }
                }
                (k.name.clone(), d)
            })
            .collect(),
        cache_hits: jit.iter().filter(|k| k.cache_hit).count() as u64,
        cache_misses: jit.iter().filter(|k| !k.cache_hit).count() as u64,
        pressure_events: Vec::new(),
        multi: Some(MultiStats {
            devices: mcfg.devices,
            link_latency_cycles: mcfg.link_latency_cycles,
            link_bandwidth_bytes_per_cycle: mcfg.link_bandwidth_bytes_per_cycle,
            cut_edges: part.cut_edges,
            total_edges: part.total_edges,
            transfers: ic.transfers,
            transfer_bytes: ic.transfer_bytes,
            transfer_cycles: ic.transfer_cycles,
            per_device,
            fallback: None,
        }),
    }
}
