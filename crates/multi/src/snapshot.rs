//! The multi-device checkpoint section: coordinator state captured at a
//! round boundary, carried opaquely in a `BMSNAP02` container's
//! `TAG_MULTI` section.
//!
//! The codec is self-contained little-endian bytes, mirroring the
//! container's conventions: fixed-width integers, length-prefixed
//! sequences, and strict decoding — trailing bytes or truncation are
//! malformed, never ignored. Full multi-device *resume* is tracked as a
//! roadmap item; today the section makes multi-run progress inspectable
//! and crash-durable alongside the per-device engine images.

use blockmaestro::SnapshotError;
use bm_simt::{DesCheckpoint, DesStats, TbDescriptor, TbKey};

/// Complete coordinator state at a round boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiCheckpoint {
    /// Device count the run was sharded across.
    pub devices: u32,
    /// Coordinator rounds completed.
    pub round: u64,
    /// Per-device engine clocks at capture.
    pub clocks: Vec<u64>,
    /// Per-device engine images.
    pub des: Vec<DesCheckpoint>,
    /// Per-device, per-kernel `(completed, owned)` TB counts.
    pub progress: Vec<Vec<(u32, u32)>>,
    /// Flattened `devices × devices` link-busy matrix.
    pub link_busy: Vec<u64>,
    /// Interconnect accounting at capture.
    pub transfers: u64,
    pub transfer_bytes: u64,
    pub transfer_cycles: u64,
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(SnapshotError::Malformed("multi section truncated"))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn u128(&mut self) -> Result<u128, SnapshotError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Sequence length, sanity-bounded by the remaining bytes so corrupt
    /// lengths fail fast instead of attempting huge allocations.
    fn len(&mut self, min_elem_bytes: usize) -> Result<usize, SnapshotError> {
        let n = self.u32()? as usize;
        if n * min_elem_bytes > self.bytes.len() - self.pos {
            return Err(SnapshotError::Malformed("multi section length overflow"));
        }
        Ok(n)
    }
}

fn encode_des(out: &mut Vec<u8>, d: &DesCheckpoint) {
    put_u32(out, d.sms.len() as u32);
    for &(tbs, threads, shared) in &d.sms {
        put_u32(out, tbs);
        put_u32(out, threads);
        put_u32(out, shared);
    }
    put_u32(out, d.events.len() as u32);
    for &(t, seq, sm, desc) in &d.events {
        put_u64(out, t);
        put_u64(out, seq);
        put_u32(out, sm);
        encode_desc(out, &desc);
    }
    put_u64(out, d.seq);
    put_u64(out, d.now);
    put_u32(out, d.running);
    put_u64(out, d.last_t);
    put_u32(out, d.resident.len() as u32);
    for &r in &d.resident {
        put_u32(out, r);
    }
    put_u64(out, d.stats.total_cycles);
    put_u128(out, d.stats.concurrency_integral);
    put_u64(out, d.stats.tbs_executed);
    put_u32(out, d.stats.schedule.len() as u32);
    for &(key, start, finish) in &d.stats.schedule {
        put_u32(out, key.kernel_seq);
        put_u32(out, key.tb);
        put_u64(out, start);
        put_u64(out, finish);
    }
}

fn encode_desc(out: &mut Vec<u8>, d: &TbDescriptor) {
    put_u32(out, d.key.kernel_seq);
    put_u32(out, d.key.tb);
    put_u32(out, d.threads);
    put_u32(out, d.shared_bytes);
    put_u64(out, d.duration);
}

fn decode_desc(c: &mut Cursor<'_>) -> Result<TbDescriptor, SnapshotError> {
    Ok(TbDescriptor {
        key: TbKey {
            kernel_seq: c.u32()?,
            tb: c.u32()?,
        },
        threads: c.u32()?,
        shared_bytes: c.u32()?,
        duration: c.u64()?,
    })
}

fn decode_des(c: &mut Cursor<'_>) -> Result<DesCheckpoint, SnapshotError> {
    let n_sms = c.len(12)?;
    let mut sms = Vec::with_capacity(n_sms);
    for _ in 0..n_sms {
        sms.push((c.u32()?, c.u32()?, c.u32()?));
    }
    let n_events = c.len(40)?;
    let mut events = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let t = c.u64()?;
        let seq = c.u64()?;
        let sm = c.u32()?;
        events.push((t, seq, sm, decode_desc(c)?));
    }
    let seq = c.u64()?;
    let now = c.u64()?;
    let running = c.u32()?;
    let last_t = c.u64()?;
    let n_res = c.len(4)?;
    let mut resident = Vec::with_capacity(n_res);
    for _ in 0..n_res {
        resident.push(c.u32()?);
    }
    let total_cycles = c.u64()?;
    let concurrency_integral = c.u128()?;
    let tbs_executed = c.u64()?;
    let n_sched = c.len(24)?;
    let mut schedule = Vec::with_capacity(n_sched);
    for _ in 0..n_sched {
        let key = TbKey {
            kernel_seq: c.u32()?,
            tb: c.u32()?,
        };
        schedule.push((key, c.u64()?, c.u64()?));
    }
    Ok(DesCheckpoint {
        sms,
        events,
        seq,
        now,
        running,
        last_t,
        resident,
        stats: DesStats {
            total_cycles,
            concurrency_integral,
            tbs_executed,
            schedule,
        },
    })
}

impl MultiCheckpoint {
    /// Serializes into the opaque `TAG_MULTI` payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.devices);
        put_u64(&mut out, self.round);
        put_u32(&mut out, self.clocks.len() as u32);
        for &t in &self.clocks {
            put_u64(&mut out, t);
        }
        put_u32(&mut out, self.des.len() as u32);
        for d in &self.des {
            encode_des(&mut out, d);
        }
        put_u32(&mut out, self.progress.len() as u32);
        for per_kernel in &self.progress {
            put_u32(&mut out, per_kernel.len() as u32);
            for &(completed, owned) in per_kernel {
                put_u32(&mut out, completed);
                put_u32(&mut out, owned);
            }
        }
        put_u32(&mut out, self.link_busy.len() as u32);
        for &b in &self.link_busy {
            put_u64(&mut out, b);
        }
        put_u64(&mut out, self.transfers);
        put_u64(&mut out, self.transfer_bytes);
        put_u64(&mut out, self.transfer_cycles);
        out
    }

    /// Decodes a `TAG_MULTI` payload, rejecting truncation, trailing
    /// bytes, and shape inconsistencies.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] on any structural problem.
    pub fn decode(bytes: &[u8]) -> Result<MultiCheckpoint, SnapshotError> {
        let mut c = Cursor { bytes, pos: 0 };
        let devices = c.u32()?;
        let round = c.u64()?;
        let n_clocks = c.len(8)?;
        let mut clocks = Vec::with_capacity(n_clocks);
        for _ in 0..n_clocks {
            clocks.push(c.u64()?);
        }
        let n_des = c.len(1)?;
        let mut des = Vec::with_capacity(n_des);
        for _ in 0..n_des {
            des.push(decode_des(&mut c)?);
        }
        let n_prog = c.len(4)?;
        let mut progress = Vec::with_capacity(n_prog);
        for _ in 0..n_prog {
            let n_k = c.len(8)?;
            let mut per_kernel = Vec::with_capacity(n_k);
            for _ in 0..n_k {
                per_kernel.push((c.u32()?, c.u32()?));
            }
            progress.push(per_kernel);
        }
        let n_busy = c.len(8)?;
        let mut link_busy = Vec::with_capacity(n_busy);
        for _ in 0..n_busy {
            link_busy.push(c.u64()?);
        }
        let snap = MultiCheckpoint {
            devices,
            round,
            clocks,
            des,
            progress,
            link_busy,
            transfers: c.u64()?,
            transfer_bytes: c.u64()?,
            transfer_cycles: c.u64()?,
        };
        if c.pos != bytes.len() {
            return Err(SnapshotError::Malformed("multi section trailing bytes"));
        }
        if snap.clocks.len() != snap.devices as usize
            || snap.des.len() != snap.devices as usize
            || snap.progress.len() != snap.devices as usize
            || snap.link_busy.len() != (snap.devices as usize).pow(2)
        {
            return Err(SnapshotError::Malformed("multi section shape mismatch"));
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MultiCheckpoint {
        let key = TbKey {
            kernel_seq: 3,
            tb: 17,
        };
        let desc = TbDescriptor {
            key,
            threads: 128,
            shared_bytes: 2048,
            duration: 900,
        };
        let des = DesCheckpoint {
            sms: vec![(4, 2048, 49152), (3, 1920, 47104)],
            events: vec![(1000, 5, 1, desc)],
            seq: 6,
            now: 950,
            running: 1,
            last_t: 950,
            resident: vec![0, 1],
            stats: DesStats {
                total_cycles: 0,
                concurrency_integral: 123456789012345,
                tbs_executed: 5,
                schedule: vec![(key, 50, 950)],
            },
        };
        MultiCheckpoint {
            devices: 2,
            round: 42,
            clocks: vec![950, 910],
            des: vec![des.clone(), des],
            progress: vec![vec![(5, 8), (0, 8)], vec![(5, 8), (0, 8)]],
            link_busy: vec![0, 100, 220, 0],
            transfers: 7,
            transfer_bytes: 1792,
            transfer_cycles: 4321,
        }
    }

    #[test]
    fn round_trips_bit_exact() {
        let snap = sample();
        let bytes = snap.encode();
        let back = MultiCheckpoint::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn rejects_truncation_and_trailing_bytes() {
        let bytes = sample().encode();
        for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
            assert!(MultiCheckpoint::decode(&bytes[..cut]).is_err(), "cut {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(MultiCheckpoint::decode(&padded).is_err());
    }

    #[test]
    fn rejects_shape_mismatch() {
        let mut snap = sample();
        snap.link_busy.truncate(3);
        // Re-encode with the wrong busy-matrix size: decode must reject.
        let bytes = snap.encode();
        assert!(MultiCheckpoint::decode(&bytes).is_err());
    }
}
