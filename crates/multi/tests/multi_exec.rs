//! End-to-end behaviour of the multi-GPU path on real workloads:
//! delegation at `devices = 1`, architectural invisibility of the sharded
//! schedule, reproducibility, link-fault fallback, and the coordinator
//! checkpoint's round trip through a real `BMSNAP02` container.

use blockmaestro::{
    check_schedule, jit_analyze_app, DegradationReason, ExecMode, FaultPlan, RunSnapshot,
};
use bm_depgraph::HazardMode;
use bm_multi::{
    embed_multi, extract_multi, try_run_analyzed_multi_snapshotted, try_run_app_multi,
    try_run_app_multi_faulty, MultiGpuConfig,
};
use bm_simt::GpuConfig;
use bm_trace::NullTracer;
use bm_workloads::{suite, Scale};

fn build(name: &str) -> bm_cmdq::Application {
    let b = suite()
        .into_iter()
        .find(|b| b.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    (b.build)(Scale::Small)
}

const MODE: ExecMode = ExecMode::ConsumerPriority { window: 4 };

#[test]
fn one_device_delegates_to_the_single_device_engine() {
    let cfg = GpuConfig::small();
    let app = build("PATH");
    let single = blockmaestro::try_run_app_with(&cfg, &app, MODE, HazardMode::Raw).unwrap();
    let multi = try_run_app_multi(
        &cfg,
        &MultiGpuConfig::devices(1),
        &app,
        MODE,
        HazardMode::Raw,
    )
    .unwrap();
    assert_eq!(multi, single, "devices=1 must be bit-identical");
    assert!(multi.multi.is_none(), "no multi section on a 1-device run");
}

#[test]
fn two_devices_execute_every_tb_and_stay_architecturally_invisible() {
    let cfg = GpuConfig::small();
    for name in ["PATH", "HS", "NW"] {
        let app = build(name);
        let report = try_run_app_multi(
            &cfg,
            &MultiGpuConfig::devices(2),
            &app,
            MODE,
            HazardMode::Raw,
        )
        .unwrap();
        let multi = report.multi.as_ref().expect("multi stats present");
        assert_eq!(multi.devices, 2);
        assert_eq!(multi.per_device.len(), 2);
        assert!(multi.fallback.is_none());
        let total_tbs: u64 = multi.per_device.iter().map(|d| d.tbs_executed).sum();
        assert_eq!(total_tbs as usize, report.schedule.len(), "{name}");
        // The sharded schedule must still replay to the serialized result.
        check_schedule(&app, &report.schedule).unwrap_or_else(|e| {
            panic!("{name}: sharded schedule not architecturally invisible: {e:?}")
        });
        // Cross-device dependencies actually flowed.
        if multi.cut_edges > 0 {
            assert!(multi.transfers > 0, "{name}: cut edges but no transfers");
        }
    }
}

#[test]
fn repeated_runs_are_bit_identical() {
    let cfg = GpuConfig::small();
    let app = build("PATH");
    let mcfg = MultiGpuConfig::devices(2);
    let a = try_run_app_multi(&cfg, &mcfg, &app, MODE, HazardMode::Raw).unwrap();
    let b = try_run_app_multi(&cfg, &mcfg, &app, MODE, HazardMode::Raw).unwrap();
    assert_eq!(a, b);
}

#[test]
fn four_devices_handle_all_modes() {
    let cfg = GpuConfig::small();
    let app = build("HS");
    let mcfg = MultiGpuConfig::devices(4);
    for mode in [
        ExecMode::Baseline,
        ExecMode::IdealBaseline,
        ExecMode::GraphLaunch,
        ExecMode::PreLaunch { window: 4 },
        ExecMode::ProducerPriority { window: 4 },
        ExecMode::ConsumerPriority { window: 4 },
    ] {
        let report = try_run_app_multi(&cfg, &mcfg, &app, mode, HazardMode::Raw)
            .unwrap_or_else(|e| panic!("{mode:?}: {e}"));
        check_schedule(&app, &report.schedule)
            .unwrap_or_else(|e| panic!("{mode:?}: not invisible: {e:?}"));
    }
}

#[test]
fn coordinator_checkpoint_round_trips_through_a_container() {
    let cfg = GpuConfig::small();
    let app = build("HS");
    let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);

    // devices=1 has no coordinator, so no section to embed.
    let (_, none) = try_run_analyzed_multi_snapshotted(
        &cfg,
        &MultiGpuConfig::devices(1),
        &app,
        &jit,
        MODE,
        &NullTracer,
    )
    .unwrap();
    assert!(none.is_none(), "devices=1 yields no coordinator checkpoint");

    let (report, ckpt) = try_run_analyzed_multi_snapshotted(
        &cfg,
        &MultiGpuConfig::devices(2),
        &app,
        &jit,
        MODE,
        &NullTracer,
    )
    .unwrap();
    let ckpt = ckpt.expect("devices=2 yields the final coordinator checkpoint");
    assert_eq!(ckpt.devices, 2);
    assert_eq!(ckpt.clocks.len(), 2);
    assert!(ckpt.round > 0, "the coordinator advanced");
    let executed: u64 = ckpt.des.iter().map(|d| d.stats.tbs_executed).sum();
    assert_eq!(executed as usize, report.schedule.len());

    // Embed into a real BMSNAP02 container, encode, decode, extract:
    // the TAG_MULTI section must survive bit-exactly, and a container
    // without it must extract as None.
    let mut snap = RunSnapshot::default();
    assert_eq!(extract_multi(&snap).unwrap(), None);
    embed_multi(&mut snap, &ckpt);
    let bytes = snap.encode();
    let back = RunSnapshot::decode(&bytes).unwrap();
    let extracted = extract_multi(&back).unwrap().expect("section present");
    assert_eq!(extracted, ckpt);

    // Corruption inside the section surfaces as a typed decode error,
    // never a silent partial checkpoint.
    let mut torn = back.clone();
    torn.multi.truncate(torn.multi.len() / 2);
    assert!(extract_multi(&torn).is_err());
}

#[test]
fn dropped_transfer_falls_back_to_single_device() {
    let cfg = GpuConfig::small();
    let app = build("PATH");
    let plan = FaultPlan {
        link_drop_nth: Some(0),
        ..FaultPlan::default()
    };
    let report = try_run_app_multi_faulty(
        &cfg,
        &MultiGpuConfig::devices(2),
        &app,
        MODE,
        HazardMode::Raw,
        &plan,
        &NullTracer,
    )
    .unwrap();
    let multi = report.multi.as_ref().expect("fallback keeps multi stats");
    let (reason, cycle) = multi.fallback.expect("fallback recorded");
    assert_eq!(reason, DegradationReason::LinkFault);
    assert!(cycle > 0);
    assert!(multi.per_device.is_empty(), "no per-device stats survive");
    // The fallback result is a clean single-device run.
    let clean = blockmaestro::try_run_app_with(&cfg, &app, MODE, HazardMode::Raw).unwrap();
    let mut downgraded = report.clone();
    downgraded.multi = None;
    assert_eq!(downgraded, clean);
}
