//! Typed errors for command-queue applications.
//!
//! [`Application::validate`] screens an application before it enters the
//! execution pipeline: every call must reference a live allocation, host
//! payloads must fit their destination, and every launch must bind its
//! arguments. Catching these up front turns what would be mid-simulation
//! panics into a typed, recoverable rejection.

use crate::api::{ApiCall, Application};
use bm_ptx::error::PtxError;
use bm_ptx::interp::ExecError;
use bm_ptx::kernel::ArgValue;
use bm_ptx::mem::AllocId;
use std::fmt;

/// A structural defect in an application's call trace.
#[derive(Debug, Clone, PartialEq)]
pub enum CmdqError {
    /// A call references an allocation id the address space never created.
    UnknownAlloc {
        /// Index of the offending call in `Application::calls`.
        call: usize,
        /// The dangling allocation id.
        alloc: AllocId,
    },
    /// A memcpy moves more bytes than its allocation holds.
    OversizedCopy {
        /// Index of the offending call.
        call: usize,
        /// Destination/source allocation.
        alloc: AllocId,
        /// Bytes requested.
        bytes: u64,
        /// Allocation capacity.
        capacity: u64,
    },
    /// A kernel pointer argument points outside every allocation.
    UnmappedArg {
        /// Index of the offending call.
        call: usize,
        /// Kernel name.
        kernel: String,
        /// The unmapped device address.
        addr: u64,
    },
    /// A launch is structurally malformed (arity, zero-thread blocks).
    Launch(PtxError),
    /// Functional execution of the serialized reference failed.
    Exec(ExecError),
}

impl fmt::Display for CmdqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmdqError::UnknownAlloc { call, alloc } => {
                write!(f, "call #{call} references unknown allocation {alloc}")
            }
            CmdqError::OversizedCopy {
                call,
                alloc,
                bytes,
                capacity,
            } => write!(
                f,
                "call #{call} copies {bytes} B through {alloc} of {capacity} B"
            ),
            CmdqError::UnmappedArg { call, kernel, addr } => write!(
                f,
                "call #{call}: `{kernel}` argument {addr:#x} is outside every allocation"
            ),
            CmdqError::Launch(e) => write!(f, "invalid launch: {e}"),
            CmdqError::Exec(e) => write!(f, "serialized execution failed: {e}"),
        }
    }
}

impl std::error::Error for CmdqError {}

impl From<PtxError> for CmdqError {
    fn from(e: PtxError) -> Self {
        CmdqError::Launch(e)
    }
}

impl From<ExecError> for CmdqError {
    fn from(e: ExecError) -> Self {
        CmdqError::Exec(e)
    }
}

impl Application {
    /// Validates the application's structure against its address space.
    ///
    /// # Errors
    ///
    /// The first [`CmdqError`] found, scanning calls in program order.
    pub fn validate(&self) -> Result<(), CmdqError> {
        let n_allocs = self.space.allocs().len() as u32;
        for (i, call) in self.calls.iter().enumerate() {
            match call {
                ApiCall::Malloc { alloc } => {
                    if alloc.0 >= n_allocs {
                        return Err(CmdqError::UnknownAlloc {
                            call: i,
                            alloc: *alloc,
                        });
                    }
                }
                ApiCall::MemcpyH2D { alloc, bytes } | ApiCall::MemcpyD2H { alloc, bytes } => {
                    if alloc.0 >= n_allocs {
                        return Err(CmdqError::UnknownAlloc {
                            call: i,
                            alloc: *alloc,
                        });
                    }
                    let capacity = self.space.info(*alloc).size;
                    if *bytes > capacity {
                        return Err(CmdqError::OversizedCopy {
                            call: i,
                            alloc: *alloc,
                            bytes: *bytes,
                            capacity,
                        });
                    }
                }
                ApiCall::KernelLaunch(launch) => {
                    bm_ptx::error::validate_launch(launch)?;
                    for arg in &launch.args {
                        if let ArgValue::Ptr(addr) = arg {
                            if self.space.find(*addr).is_none() {
                                return Err(CmdqError::UnmappedArg {
                                    call: i,
                                    kernel: launch.kernel.name.clone(),
                                    addr: *addr,
                                });
                            }
                        }
                    }
                }
                ApiCall::DeviceSynchronize => {}
            }
        }
        Ok(())
    }

    /// Fallible serialized execution: validates first, then runs every
    /// kernel functionally in command order.
    ///
    /// # Errors
    ///
    /// Structural defects as [`CmdqError`] variants, execution failures as
    /// [`CmdqError::Exec`].
    pub fn try_run_serialized(&self) -> Result<bm_ptx::mem::GlobalMem, CmdqError> {
        self.validate()?;
        self.run_serialized().map_err(CmdqError::Exec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    fn kernel() -> Arc<bm_ptx::kernel::Kernel> {
        Arc::new(
            parse_kernel(
                r#".entry k(.param .u64 A) {
                     ld.param.u64 %rd1, [A];
                     st.global.f32 [%rd1], 0f3F800000;
                     ret;
                   }"#,
            )
            .unwrap(),
        )
    }

    fn app(space: AddressSpace, calls: Vec<ApiCall>) -> Application {
        Application {
            name: "t".into(),
            space,
            calls,
            host_data: HashMap::new(),
        }
    }

    #[test]
    fn valid_app_passes_and_runs() {
        let mut space = AddressSpace::new();
        let a = space.alloc(64);
        let calls = vec![
            ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 64,
            },
            ApiCall::KernelLaunch(Launch::new(
                kernel(),
                Dim3::x(1),
                Dim3::x(1),
                vec![ArgValue::Ptr(a.base)],
            )),
        ];
        let app = app(space, calls);
        assert_eq!(app.validate(), Ok(()));
        assert!(app.try_run_serialized().is_ok());
    }

    #[test]
    fn dangling_alloc_id_is_rejected() {
        let space = AddressSpace::new();
        let app = app(space, vec![ApiCall::Malloc { alloc: AllocId(7) }]);
        let err = app.validate().unwrap_err();
        assert!(
            matches!(err, CmdqError::UnknownAlloc { call: 0, .. }),
            "{err}"
        );
        assert!(app.try_run_serialized().is_err());
    }

    #[test]
    fn oversized_copy_is_rejected() {
        let mut space = AddressSpace::new();
        let a = space.alloc(64);
        let app = app(
            space,
            vec![ApiCall::MemcpyH2D {
                alloc: a.id,
                bytes: 1024,
            }],
        );
        let err = app.validate().unwrap_err();
        assert!(
            matches!(
                err,
                CmdqError::OversizedCopy {
                    bytes: 1024,
                    capacity: 64,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn unmapped_pointer_arg_is_rejected() {
        let mut space = AddressSpace::new();
        let _a = space.alloc(64);
        let app = app(
            space,
            vec![ApiCall::KernelLaunch(Launch::new(
                kernel(),
                Dim3::x(1),
                Dim3::x(1),
                vec![ArgValue::Ptr(0xDEAD_0000)],
            ))],
        );
        let err = app.validate().unwrap_err();
        assert!(matches!(err, CmdqError::UnmappedArg { .. }), "{err}");
        assert!(err.to_string().contains("0xdead0000"));
    }
}
