//! True data dependencies between host API calls.
//!
//! At the command-queue level, kernel internals are opaque: a launch is
//! conservatively assumed to read and write every allocation its pointer
//! arguments reference. That is exactly the granularity the reordering pass
//! of Fig. 5 needs — fine-grain TB-level analysis happens later, at kernel
//! launch time.

use crate::api::{ApiCall, Application};
use bm_ptx::mem::AllocId;
use std::collections::HashMap;

/// Per-call allocation effects.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CallEffects {
    /// Allocations read by the call.
    pub reads: Vec<AllocId>,
    /// Allocations written by the call.
    pub writes: Vec<AllocId>,
    /// Allocation defined (made valid) by the call.
    pub defines: Option<AllocId>,
    /// Whether the call is a full barrier (`cudaDeviceSynchronize`).
    pub barrier: bool,
}

/// Computes the effects of one call within `app`.
pub fn call_effects(app: &Application, call: &ApiCall) -> CallEffects {
    match call {
        ApiCall::Malloc { alloc } => CallEffects {
            defines: Some(*alloc),
            ..CallEffects::default()
        },
        ApiCall::MemcpyH2D { alloc, .. } => CallEffects {
            writes: vec![*alloc],
            ..CallEffects::default()
        },
        ApiCall::MemcpyD2H { alloc, .. } => CallEffects {
            reads: vec![*alloc],
            ..CallEffects::default()
        },
        ApiCall::KernelLaunch(l) => {
            let allocs = app.launch_allocs(l);
            CallEffects {
                reads: allocs.clone(),
                writes: allocs,
                ..CallEffects::default()
            }
        }
        ApiCall::DeviceSynchronize => CallEffects {
            barrier: true,
            ..CallEffects::default()
        },
    }
}

/// Dependency DAG over API calls: `preds[i]` lists indices of calls that
/// must complete before call `i` may run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallDag {
    /// Predecessor lists, one per call.
    pub preds: Vec<Vec<usize>>,
}

impl CallDag {
    /// Successor lists (transpose of `preds`).
    pub fn succs(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.preds.len()];
        for (i, ps) in self.preds.iter().enumerate() {
            for &p in ps {
                out[p].push(i);
            }
        }
        out
    }
}

/// Builds the true-dependency DAG of `app.calls`.
///
/// Edges: RAW/WAR/WAW per allocation, definition-before-use for mallocs,
/// and `DeviceSynchronize` as a barrier both ways. (Whether a barrier can
/// later be *bypassed* is a policy decision in the engine; the DAG records
/// program semantics.)
pub fn build_call_dag(app: &Application) -> CallDag {
    let n = app.calls.len();
    let effects: Vec<CallEffects> = app.calls.iter().map(|c| call_effects(app, c)).collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut last_writer: HashMap<AllocId, usize> = HashMap::new();
    let mut last_readers: HashMap<AllocId, Vec<usize>> = HashMap::new();
    let mut definer: HashMap<AllocId, usize> = HashMap::new();
    let mut last_barrier: Option<usize> = None;
    let mut since_barrier: Vec<usize> = Vec::new();
    for (i, eff) in effects.iter().enumerate() {
        let add = |preds: &mut Vec<Vec<usize>>, from: usize| {
            if !preds[i].contains(&from) {
                preds[i].push(from);
            }
        };
        if eff.barrier {
            // Barrier depends on every call since the previous barrier.
            for &j in &since_barrier {
                add(&mut preds, j);
            }
            last_barrier = Some(i);
            since_barrier.clear();
            since_barrier.push(i);
            continue;
        }
        if let Some(b) = last_barrier {
            add(&mut preds, b);
        }
        if let Some(d) = eff.defines {
            definer.insert(d, i);
        }
        for a in &eff.reads {
            if let Some(&d) = definer.get(a) {
                if d != i {
                    add(&mut preds, d);
                }
            }
            if let Some(&w) = last_writer.get(a) {
                if w != i {
                    add(&mut preds, w); // RAW
                }
            }
        }
        for a in &eff.writes {
            if let Some(&d) = definer.get(a) {
                if d != i {
                    add(&mut preds, d);
                }
            }
            if let Some(&w) = last_writer.get(a) {
                if w != i {
                    add(&mut preds, w); // WAW
                }
            }
            for &r in last_readers.get(a).map_or(&Vec::new(), |v| v) {
                if r != i {
                    add(&mut preds, r); // WAR
                }
            }
        }
        // Update views after computing edges.
        for a in &eff.reads {
            last_readers.entry(*a).or_default().push(i);
        }
        for a in &eff.writes {
            last_writer.insert(*a, i);
            last_readers.insert(*a, Vec::new());
        }
        since_barrier.push(i);
    }
    CallDag { preds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{ArgValue, Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Builds the Fig. 5a call trace:
    /// malloc A; memcpyH2D A; K1(A); malloc B; memcpyH2D B; K2(B); ...
    fn fig5_app() -> Application {
        let mut space = AddressSpace::new();
        let a = space.alloc(1024);
        let b = space.alloc(1024);
        let k = Arc::new(
            parse_kernel(
                r#".entry inc(.param .u64 A) {
                     ld.param.u64 %rd1, [A];
                     mov.u32 %r1, %tid.x;
                     mul.wide.u32 %rd2, %r1, 4;
                     add.u64 %rd3, %rd1, %rd2;
                     ld.global.f32 %f1, [%rd3];
                     add.f32 %f1, %f1, 0f3F800000;
                     st.global.f32 [%rd3], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |base: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(base)],
            ))
        };
        Application {
            name: "fig5".into(),
            space,
            calls: vec![
                ApiCall::Malloc { alloc: a.id }, // 0
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 1024,
                }, // 1
                launch(a.base),                  // 2  K1(A)
                ApiCall::Malloc { alloc: b.id }, // 3
                ApiCall::MemcpyH2D {
                    alloc: b.id,
                    bytes: 1024,
                }, // 4
                launch(b.base),                  // 5  K2(B)
                ApiCall::MemcpyD2H {
                    alloc: a.id,
                    bytes: 1024,
                }, // 6
            ],
            host_data: HashMap::new(),
        }
    }

    #[test]
    fn fig5_dag_shape() {
        let app = fig5_app();
        let dag = build_call_dag(&app);
        // K1 depends on memcpy(A) (and transitively malloc A).
        assert!(dag.preds[2].contains(&1));
        // K2 depends on memcpy(B) but NOT on K1 — that independence is what
        // reordering exploits.
        assert!(dag.preds[5].contains(&4));
        assert!(!dag.preds[5].contains(&2));
        // D2H(A) reads what K1 wrote.
        assert!(dag.preds[6].contains(&2));
        // Memcpy(B) has no dependence on anything touching A.
        assert!(!dag.preds[4].contains(&1));
        assert!(!dag.preds[4].contains(&2));
    }

    #[test]
    fn barrier_orders_both_sides() {
        let mut app = fig5_app();
        app.calls.insert(3, ApiCall::DeviceSynchronize);
        let dag = build_call_dag(&app);
        // The sync (index 3) depends on all prior calls...
        assert!(dag.preds[3].contains(&2));
        // ...and subsequent calls depend on the sync.
        assert!(dag.preds[4].contains(&3));
        assert!(dag.preds[6].contains(&3));
    }

    #[test]
    fn waw_between_h2d_and_kernel() {
        let app = fig5_app();
        let dag = build_call_dag(&app);
        // Successors of call 1 (memcpy A) include K1.
        let succs = dag.succs();
        assert!(succs[1].contains(&2));
    }
}
