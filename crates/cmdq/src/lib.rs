//! # bm-cmdq — CUDA-like command-queue model
//!
//! Host API calls (`cudaMalloc`, `cudaMemcpy`, kernel launches,
//! `cudaDeviceSynchronize`), their blocking semantics, the true-dependency
//! DAG between them, and the programmer-transparent reordering pass that
//! packs kernel launches together to maximize pre-launching opportunity
//! (paper §III-C, Fig. 5).
//!
//! ```
//! use bm_cmdq::{Application, ApiCall, reorder_for_prelaunch, is_valid_order};
//! # use bm_ptx::mem::AddressSpace;
//! # use std::collections::HashMap;
//! let mut space = AddressSpace::new();
//! let a = space.alloc(64);
//! let app = Application {
//!     name: "demo".into(),
//!     space,
//!     calls: vec![ApiCall::Malloc { alloc: a.id }],
//!     host_data: HashMap::new(),
//! };
//! let r = reorder_for_prelaunch(&app);
//! assert!(is_valid_order(&app, &r.order));
//! ```

pub mod api;
pub mod deps;
pub mod error;
pub mod reorder;

pub use api::{ApiCall, Application};
pub use deps::{build_call_dag, call_effects, CallDag, CallEffects};
pub use error::CmdqError;
pub use reorder::{
    is_valid_order, reorder_for_prelaunch, reorder_for_prelaunch_traced, Reordering,
};
