//! CUDA-like host API calls and whole-application descriptors.

use bm_ptx::kernel::{ArgValue, Launch};
use bm_ptx::mem::{AddressSpace, AllocId, GlobalMem};
use std::collections::HashMap;
use std::fmt;

/// One host API call, in program order.
///
/// These are the *Events* that enter the command queue (paper §II-A).
/// Blocking behaviour (the crux of Fig. 5) is a property of the call kind:
/// memory operations block the host, kernel launches do not.
#[derive(Debug, Clone)]
pub enum ApiCall {
    /// `cudaMalloc`: reserves a device allocation. Blocks the host but runs
    /// on a separate hardware engine (does not serialize the queue).
    Malloc {
        /// The allocation being materialized.
        alloc: AllocId,
    },
    /// `cudaMemcpy` host-to-device: writes the allocation. Blocking.
    MemcpyH2D {
        /// Destination allocation.
        alloc: AllocId,
        /// Bytes copied.
        bytes: u64,
    },
    /// `cudaMemcpy` device-to-host: reads the allocation. Blocking, and the
    /// one call whose host-RAW hazard BlockMaestro must still respect.
    MemcpyD2H {
        /// Source allocation.
        alloc: AllocId,
        /// Bytes copied.
        bytes: u64,
    },
    /// Asynchronous kernel launch.
    KernelLaunch(Launch),
    /// `cudaDeviceSynchronize`: host blocks until the queue drains.
    DeviceSynchronize,
}

impl ApiCall {
    /// Whether the call blocks the host until it completes (§III-C).
    pub fn is_host_blocking(&self) -> bool {
        !matches!(self, ApiCall::KernelLaunch(_))
    }

    /// Short display name for traces.
    pub fn name(&self) -> String {
        match self {
            ApiCall::Malloc { alloc } => format!("cudaMalloc({alloc})"),
            ApiCall::MemcpyH2D { alloc, .. } => format!("cudaMemcpyH2D({alloc})"),
            ApiCall::MemcpyD2H { alloc, .. } => format!("cudaMemcpyD2H({alloc})"),
            ApiCall::KernelLaunch(l) => format!("launch({})", l.kernel.name),
            ApiCall::DeviceSynchronize => "cudaDeviceSynchronize".into(),
        }
    }
}

impl fmt::Display for ApiCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

/// A complete multi-kernel GPU application: its device address space, the
/// host API-call trace, and initial host-side data.
#[derive(Debug, Clone)]
pub struct Application {
    /// Application name (e.g. `"GAUSSIAN"`).
    pub name: String,
    /// Device allocations referenced by the calls.
    pub space: AddressSpace,
    /// Host API calls in program order.
    pub calls: Vec<ApiCall>,
    /// Initial contents for H2D copies, keyed by allocation.
    pub host_data: HashMap<AllocId, Vec<f32>>,
}

impl Application {
    /// All kernel launches, in command order.
    pub fn launches(&self) -> Vec<&Launch> {
        self.calls
            .iter()
            .filter_map(|c| match c {
                ApiCall::KernelLaunch(l) => Some(l),
                _ => None,
            })
            .collect()
    }

    /// Number of kernel launches (the `# Kernels` column of Table II).
    pub fn num_kernels(&self) -> usize {
        self.launches().len()
    }

    /// Builds device memory and applies every H2D payload, giving the
    /// functional starting state for correctness runs.
    pub fn initial_memory(&self) -> GlobalMem {
        let mut mem = GlobalMem::for_space(&self.space);
        for call in &self.calls {
            if let ApiCall::MemcpyH2D { alloc, .. } = call {
                if let Some(data) = self.host_data.get(alloc) {
                    let base = self.space.info(*alloc).base;
                    mem.copy_from_host_f32(base, data);
                }
            }
        }
        mem
    }

    /// Runs every kernel functionally in command order (the architectural
    /// reference semantics) and returns the final memory.
    ///
    /// # Errors
    ///
    /// Propagates the first [`bm_ptx::interp::ExecError`].
    pub fn run_serialized(&self) -> Result<GlobalMem, bm_ptx::interp::ExecError> {
        let mut mem = self.initial_memory();
        for call in &self.calls {
            if let ApiCall::KernelLaunch(l) = call {
                bm_ptx::interp::execute_launch(l, &mut mem)?;
            }
        }
        Ok(mem)
    }

    /// The allocations a launch's pointer arguments reference.
    pub fn launch_allocs(&self, launch: &Launch) -> Vec<AllocId> {
        let mut out = Vec::new();
        for arg in &launch.args {
            if let ArgValue::Ptr(addr) = arg {
                if let Some(info) = self.space.find(*addr) {
                    if !out.contains(&info.id) {
                        out.push(info.id);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::Dim3;
    use bm_ptx::parser::parse_kernel;
    use std::sync::Arc;

    fn tiny_app() -> Application {
        let mut space = AddressSpace::new();
        let a = space.alloc(256);
        let b = space.alloc(256);
        let k = Arc::new(
            parse_kernel(
                r#".entry copy(.param .u64 A, .param .u64 B) {
                     ld.param.u64 %rd1, [A];
                     ld.param.u64 %rd2, [B];
                     mov.u32 %r1, %tid.x;
                     mul.wide.u32 %rd3, %r1, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = Launch::new(
            k,
            Dim3::x(1),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        let mut host_data = HashMap::new();
        host_data.insert(a.id, (0..64).map(|i| i as f32).collect());
        Application {
            name: "tiny".into(),
            space,
            calls: vec![
                ApiCall::Malloc { alloc: a.id },
                ApiCall::Malloc { alloc: b.id },
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 256,
                },
                ApiCall::KernelLaunch(launch),
                ApiCall::MemcpyD2H {
                    alloc: b.id,
                    bytes: 256,
                },
            ],
            host_data,
        }
    }

    #[test]
    fn blocking_classification() {
        let app = tiny_app();
        let blocking: Vec<bool> = app.calls.iter().map(|c| c.is_host_blocking()).collect();
        assert_eq!(blocking, vec![true, true, true, false, true]);
    }

    #[test]
    fn serialized_run_copies_data() {
        let app = tiny_app();
        let mem = app.run_serialized().unwrap();
        let b_base = app.space.allocs()[1].base;
        assert_eq!(mem.read_f32(b_base + 4 * 10), 10.0);
        assert_eq!(app.num_kernels(), 1);
    }

    #[test]
    fn launch_allocs_resolved_from_pointers() {
        let app = tiny_app();
        let launches = app.launches();
        let allocs = app.launch_allocs(launches[0]);
        assert_eq!(allocs.len(), 2);
    }
}
