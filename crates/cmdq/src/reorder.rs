//! Programmer-transparent API command reordering (paper Fig. 5c).
//!
//! Greedy list scheduling over the true-dependency DAG: whenever a
//! non-kernel call is ready it is emitted first, so memory operations are
//! hoisted ahead of kernel launches and the launches pack together —
//! maximizing the window in which the next kernel can be pre-launched.

use crate::api::{ApiCall, Application};
use crate::deps::build_call_dag;
use bm_trace::{CmdKind, NullTracer, TraceEvent, Tracer};

/// The result of reordering: the permutation and convenience accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reordering {
    /// `order[k]` is the original index of the k-th call after reordering.
    pub order: Vec<usize>,
}

impl Reordering {
    /// The identity reordering (baseline command order).
    pub fn identity(n: usize) -> Self {
        Reordering {
            order: (0..n).collect(),
        }
    }

    /// Applies the permutation to the application's calls.
    pub fn apply(&self, app: &Application) -> Vec<ApiCall> {
        self.order.iter().map(|&i| app.calls[i].clone()).collect()
    }
}

/// Computes the kernel-packing reorder of `app.calls`.
///
/// The permutation respects every true dependency (RAW/WAR/WAW per
/// allocation, malloc-before-use, synchronization barriers); among ready
/// calls, non-kernel commands go first (in original order), then kernels
/// (in original order) — which is exactly "move kernel launches as close
/// together as possible".
pub fn reorder_for_prelaunch(app: &Application) -> Reordering {
    reorder_for_prelaunch_traced(app, &NullTracer)
}

fn cmd_kind(call: &ApiCall) -> CmdKind {
    match call {
        ApiCall::Malloc { .. } => CmdKind::Malloc,
        ApiCall::MemcpyH2D { .. } => CmdKind::MemcpyH2D,
        ApiCall::MemcpyD2H { .. } => CmdKind::MemcpyD2H,
        ApiCall::KernelLaunch(_) => CmdKind::Launch,
        _ => CmdKind::Sync,
    }
}

/// [`reorder_for_prelaunch`] with a trace sink: emits one
/// [`TraceEvent::CmdqSubmit`] per call in the reordered stream (timestamped
/// on the stream-position clock), so the trace shows exactly how far each
/// command was hoisted. Pure observation — the returned [`Reordering`] is
/// identical to the untraced call.
pub fn reorder_for_prelaunch_traced<T: Tracer>(app: &Application, tracer: &T) -> Reordering {
    let dag = build_call_dag(app);
    let n = app.calls.len();
    let mut indegree: Vec<usize> = dag.preds.iter().map(|p| p.len()).collect();
    let succs = dag.succs();
    // A call "feeds a kernel" if some kernel launch transitively depends on
    // it. Only those are worth hoisting ahead of launches; pure sinks like
    // a trailing device-to-host copy should not wedge between kernels.
    let mut feeds_kernel = vec![false; n];
    for i in (0..n).rev() {
        if matches!(app.calls[i], ApiCall::KernelLaunch(_)) || feeds_kernel[i] {
            for &p in &dag.preds[i] {
                feeds_kernel[p] = true;
            }
        }
    }
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let ready = |i: &usize| !emitted[*i] && indegree[*i] == 0;
        // 1) non-kernel calls that unblock a future kernel,
        // 2) kernel launches,
        // 3) everything else — each class in original program order.
        let pick = (0..n)
            .find(|i| {
                ready(i) && feeds_kernel[*i] && !matches!(app.calls[*i], ApiCall::KernelLaunch(_))
            })
            .or_else(|| {
                (0..n).find(|i| ready(i) && matches!(app.calls[*i], ApiCall::KernelLaunch(_)))
            })
            .or_else(|| (0..n).find(ready));
        let i = pick.expect("dependency DAG must be acyclic");
        emitted[i] = true;
        order.push(i);
        for &s in &succs[i] {
            indegree[s] -= 1;
        }
    }
    if T::ENABLED {
        for (pos, &orig) in order.iter().enumerate() {
            tracer.emit(TraceEvent::CmdqSubmit {
                pos: pos as u32,
                orig: orig as u32,
                kind: cmd_kind(&app.calls[orig]),
            });
        }
    }
    Reordering { order }
}

/// Validates that `order` respects all dependencies of `app` — used by
/// property tests and debug assertions.
pub fn is_valid_order(app: &Application, order: &[usize]) -> bool {
    let dag = build_call_dag(app);
    let n = app.calls.len();
    if order.len() != n {
        return false;
    }
    let mut pos = vec![usize::MAX; n];
    for (k, &i) in order.iter().enumerate() {
        if i >= n || pos[i] != usize::MAX {
            return false;
        }
        pos[i] = k;
    }
    dag.preds
        .iter()
        .enumerate()
        .all(|(i, ps)| ps.iter().all(|&p| pos[p] < pos[i]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{ArgValue, Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Fig. 5a: malloc A; H2D A; K1(A); malloc B; H2D B; K2(B); D2H(A).
    fn fig5_app() -> Application {
        let mut space = AddressSpace::new();
        let a = space.alloc(1024);
        let b = space.alloc(1024);
        let k = Arc::new(
            parse_kernel(
                r#".entry inc(.param .u64 A) {
                     ld.param.u64 %rd1, [A];
                     mov.u32 %r1, %tid.x;
                     mul.wide.u32 %rd2, %r1, 4;
                     add.u64 %rd3, %rd1, %rd2;
                     ld.global.f32 %f1, [%rd3];
                     add.f32 %f1, %f1, 0f3F800000;
                     st.global.f32 [%rd3], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |base: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(1),
                Dim3::x(32),
                vec![ArgValue::Ptr(base)],
            ))
        };
        Application {
            name: "fig5".into(),
            space,
            calls: vec![
                ApiCall::Malloc { alloc: a.id },
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 1024,
                },
                launch(a.base),
                ApiCall::Malloc { alloc: b.id },
                ApiCall::MemcpyH2D {
                    alloc: b.id,
                    bytes: 1024,
                },
                launch(b.base),
                ApiCall::MemcpyD2H {
                    alloc: a.id,
                    bytes: 1024,
                },
            ],
            host_data: HashMap::new(),
        }
    }

    #[test]
    fn fig5_kernels_become_adjacent() {
        let app = fig5_app();
        let r = reorder_for_prelaunch(&app);
        assert!(is_valid_order(&app, &r.order));
        // Find positions of the two kernel launches (original idx 2 and 5).
        let pos = |orig: usize| r.order.iter().position(|&i| i == orig).unwrap();
        let (k1, k2) = (pos(2), pos(5));
        // All mallocs/memcpys except the D2H(A) land before K1, so the two
        // kernels are adjacent (Fig. 5c).
        assert_eq!(k2, k1 + 1, "kernels should pack together: {:?}", r.order);
        // Memory setup precedes kernels.
        assert!(pos(0) < k1 && pos(1) < k1 && pos(3) < k1 && pos(4) < k1);
        // D2H(A) still follows K1 (true RAW with the host).
        assert!(pos(6) > k1);
    }

    #[test]
    fn identity_is_valid() {
        let app = fig5_app();
        let id = Reordering::identity(app.calls.len());
        assert!(is_valid_order(&app, &id.order));
        assert_eq!(id.apply(&app).len(), app.calls.len());
    }

    #[test]
    fn barrier_limits_hoisting() {
        let mut app = fig5_app();
        // Sync between the two kernel regions pins ordering across it.
        app.calls.insert(3, ApiCall::DeviceSynchronize);
        let r = reorder_for_prelaunch(&app);
        assert!(is_valid_order(&app, &r.order));
        let pos = |orig: usize| r.order.iter().position(|&i| i == orig).unwrap();
        // Calls after the barrier stay after it.
        assert!(pos(4) > pos(3));
        assert!(pos(6) > pos(3));
        // K1 (orig 2) stays before the barrier.
        assert!(pos(2) < pos(3));
    }

    #[test]
    fn traced_reorder_is_inert_and_emits_submits() {
        use bm_trace::RecordingTracer;
        let app = fig5_app();
        let tracer = RecordingTracer::new();
        let traced = reorder_for_prelaunch_traced(&app, &tracer);
        assert_eq!(traced, reorder_for_prelaunch(&app));
        let events = tracer.events();
        assert_eq!(events.len(), app.calls.len());
        // Events are on the position clock, in stream order, and record
        // the permutation exactly.
        for (pos, ev) in events.iter().enumerate() {
            let bm_trace::TraceEvent::CmdqSubmit { pos: p, orig, kind } = ev else {
                panic!("expected CmdqSubmit, got {ev:?}");
            };
            assert_eq!(*p as usize, pos);
            assert_eq!(traced.order[pos], *orig as usize);
            if matches!(app.calls[*orig as usize], ApiCall::KernelLaunch(_)) {
                assert_eq!(*kind, bm_trace::CmdKind::Launch);
            }
        }
    }

    #[test]
    fn invalid_orders_rejected() {
        let app = fig5_app();
        // Kernel before its memcpy.
        assert!(!is_valid_order(&app, &[0, 2, 1, 3, 4, 5, 6]));
        // Wrong length.
        assert!(!is_valid_order(&app, &[0, 1, 2]));
        // Duplicate entries.
        assert!(!is_valid_order(&app, &[0, 0, 1, 2, 3, 4, 5]));
    }
}
