//! Deterministic randomness and a minimal property-test harness.
//!
//! The workspace builds in hermetic environments with no access to
//! crates.io, so the property tests and the fault-injection harness use
//! this dependency-free kit instead of `proptest`/`rand`: a [`Rng`] built
//! on SplitMix64 (fully reproducible from a seed) and [`run_cases`], which
//! drives a closure over many derived seeds and reports the first failing
//! seed so a case can be replayed in isolation.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic 64-bit PRNG (SplitMix64). Not cryptographic; excellent
/// statistical quality for test-case generation and fault injection, and
/// — unlike `HashMap` iteration order — identical on every run and
/// platform for a given seed.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng {
            // Avoid the all-zero fixed point without disturbing other seeds.
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below bound must be non-zero");
        // Multiply-shift range reduction; bias is negligible for test use.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform value in the half-open range `[lo, hi)`; `lo < hi` required.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng::range_u64 needs lo < hi");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i128` in the half-open range `[lo, hi)`.
    pub fn range_i128(&mut self, lo: i128, hi: i128) -> i128 {
        assert!(lo < hi, "Rng::range_i128 needs lo < hi");
        let span = (hi - lo) as u128;
        let r = ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span;
        lo + r as i128
    }

    /// Uniform `i64` in `[lo, hi)`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        self.range_i128(lo as i128, hi as i128) as i64
    }

    /// Fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Uniformly chosen element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::pick on empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// An independent generator seeded from this one's stream (for
    /// splitting one seed across sub-generators without correlation).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Outcome of a deterministic property run.
#[derive(Debug)]
pub struct CaseFailure {
    /// Seed of the failing case — rerun `f(&mut Rng::new(seed))` to replay.
    pub seed: u64,
    /// Index of the case within the run.
    pub case: usize,
    /// Failure message (assert text or panic payload).
    pub message: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "property failed at case {} (replay seed {:#x}): {}",
            self.case, self.seed, self.message
        )
    }
}

/// Runs `cases` deterministic property cases. Each case gets an [`Rng`]
/// seeded from `base_seed` and the case index; the closure either returns
/// `Ok(())`, returns an error message, or panics — panics are caught and
/// reported with the replay seed.
///
/// # Errors
///
/// Returns the first [`CaseFailure`].
pub fn run_cases<F>(base_seed: u64, cases: usize, mut f: F) -> Result<(), CaseFailure>
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    for case in 0..cases {
        // SplitMix the seed so neighbouring cases are uncorrelated.
        let seed =
            Rng::new(base_seed ^ (case as u64).wrapping_mul(0xA24B_AED4_963E_E407)).next_u64();
        let mut rng = Rng::new(seed);
        let outcome = catch_unwind(AssertUnwindSafe(|| f(&mut rng)));
        let message = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(msg)) => msg,
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "panic with non-string payload".into()),
        };
        return Err(CaseFailure {
            seed,
            case,
            message,
        });
    }
    Ok(())
}

/// Asserts a property over `cases` seeded cases, panicking with the replay
/// seed on the first failure. The test-side replacement for `proptest!`.
pub fn check_cases<F>(base_seed: u64, cases: usize, f: F)
where
    F: FnMut(&mut Rng) -> Result<(), String>,
{
    if let Err(fail) = run_cases(base_seed, cases, f) {
        panic!("{fail}");
    }
}

/// Convenience: build a `Result<(), String>` assertion, mirroring
/// `prop_assert!`.
#[macro_export]
macro_rules! prop_ensure {
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
    ($cond:expr) => {
        if !$cond {
            return Err(format!("condition failed: {}", stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Rng::new(7);
        for _ in 0..10_000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
            let i = rng.range_i128(-50, 3);
            assert!((-50..3).contains(&i));
        }
    }

    #[test]
    fn run_cases_reports_failing_seed() {
        let err = run_cases(1, 64, |rng| {
            let v = rng.range_u64(0, 100);
            if v >= 90 {
                Err(format!("bad value {v}"))
            } else {
                Ok(())
            }
        })
        .unwrap_err();
        // Replay reproduces the same failure.
        let mut rng = Rng::new(err.seed);
        let v = rng.range_u64(0, 100);
        assert!(v >= 90, "replay must reproduce: {v}");
    }

    #[test]
    fn run_cases_catches_panics() {
        let err = run_cases(3, 16, |_| -> Result<(), String> { panic!("boom") }).unwrap_err();
        assert!(err.message.contains("boom"));
        assert_eq!(err.case, 0);
    }

    #[test]
    fn chance_and_pick_behave() {
        let mut rng = Rng::new(11);
        assert!(!rng.chance(0, 10));
        assert!(rng.chance(10, 10));
        let items = [1, 2, 3];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }
}
