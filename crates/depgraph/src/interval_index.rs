//! Static interval index for fast "which parent TBs wrote these bytes"
//! queries — the sweep structure behind the scalable dependency-graph
//! builder.
//!
//! Classic augmented construction: intervals sorted by start, plus a prefix
//! tree of maximum end values enabling `O(log n + k)` stabbing queries.

/// An immutable index over half-open byte intervals tagged with a value.
#[derive(Debug, Clone)]
pub struct IntervalIndex<T> {
    // Sorted by start.
    starts: Vec<u64>,
    ends: Vec<u64>,
    tags: Vec<T>,
    // Segment-tree-ish sparse max of `ends` over ranges: max_end[level][i]
    // is the max end over a block of 2^level entries starting at i<<level.
    max_end: Vec<Vec<u64>>,
}

impl<T: Copy> IntervalIndex<T> {
    /// Builds an index from `(start, end, tag)` triples (half-open).
    /// Empty intervals are ignored.
    pub fn build(mut items: Vec<(u64, u64, T)>) -> Self {
        items.retain(|&(s, e, _)| s < e);
        items.sort_by_key(|&(s, _, _)| s);
        let starts: Vec<u64> = items.iter().map(|i| i.0).collect();
        let ends: Vec<u64> = items.iter().map(|i| i.1).collect();
        let tags: Vec<T> = items.iter().map(|i| i.2).collect();
        let mut max_end: Vec<Vec<u64>> = Vec::new();
        if !ends.is_empty() {
            max_end.push(ends.clone());
            let mut level = 0;
            while max_end[level].len() > 1 {
                let prev = &max_end[level];
                let next: Vec<u64> = prev
                    .chunks(2)
                    .map(|c| c.iter().copied().max().unwrap())
                    .collect();
                max_end.push(next);
                level += 1;
            }
        }
        IntervalIndex {
            starts,
            ends,
            tags,
            max_end,
        }
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Calls `hit` for every interval overlapping `[qs, qe)`.
    /// A tag may be reported multiple times if it owns several intervals.
    pub fn query(&self, qs: u64, qe: u64, hit: &mut impl FnMut(T)) {
        if qs >= qe || self.is_empty() {
            return;
        }
        // Candidates: index range [0, hi) where start < qe.
        let hi = self.starts.partition_point(|&s| s < qe);
        self.visit(0, self.max_end.len() - 1, hi, qs, hit);
    }

    // Recursively visit node `i` at `level` (covering entries
    // [i<<level, (i+1)<<level)), pruning subtrees whose max end <= qs and
    // entries at index >= hi.
    fn visit(&self, i: usize, level: usize, hi: usize, qs: u64, hit: &mut impl FnMut(T)) {
        let lo_entry = i << level;
        if lo_entry >= hi || i >= self.max_end[level].len() {
            return;
        }
        if self.max_end[level][i] <= qs {
            return;
        }
        if level == 0 {
            if self.ends[i] > qs {
                hit(self.tags[i]);
            }
            return;
        }
        self.visit(2 * i, level - 1, hi, qs, hit);
        self.visit(2 * i + 1, level - 1, hi, qs, hit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_testkit::{check_cases, Rng};

    fn naive(items: &[(u64, u64, u32)], qs: u64, qe: u64) -> Vec<u32> {
        if qs >= qe {
            return Vec::new();
        }
        let mut out: Vec<u32> = items
            .iter()
            .filter(|&&(s, e, _)| s < e && s < qe && qs < e)
            .map(|&(_, _, t)| t)
            .collect();
        out.sort_unstable();
        out
    }

    #[test]
    fn simple_queries() {
        let idx = IntervalIndex::build(vec![(0, 10, 1u32), (5, 15, 2), (20, 30, 3)]);
        let mut hits = Vec::new();
        idx.query(8, 22, &mut |t| hits.push(t));
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 2, 3]);
        hits.clear();
        idx.query(15, 20, &mut |t| hits.push(t));
        assert!(hits.is_empty());
        hits.clear();
        idx.query(10, 11, &mut |t| hits.push(t));
        assert_eq!(hits, vec![2]);
    }

    #[test]
    fn empty_index_and_empty_query() {
        let idx = IntervalIndex::<u32>::build(vec![]);
        let mut hits = Vec::new();
        idx.query(0, 100, &mut |t| hits.push(t));
        assert!(hits.is_empty());
        let idx = IntervalIndex::build(vec![(0, 10, 1u32)]);
        idx.query(5, 5, &mut |t| hits.push(t));
        assert!(hits.is_empty());
    }

    #[test]
    fn matches_naive_scan() {
        check_cases(0x1D1, 512, |rng: &mut Rng| {
            let n = rng.range_usize(0, 60);
            let items: Vec<(u64, u64, u32)> = (0..n)
                .map(|_| {
                    let a = rng.range_u64(0, 200);
                    let b = rng.range_u64(0, 200);
                    (a.min(b), a.max(b), rng.range_u32(0, 50))
                })
                .collect();
            let qs = rng.range_u64(0, 200);
            let qe = qs + rng.range_u64(0, 80);
            let idx = IntervalIndex::build(items.clone());
            let mut hits = Vec::new();
            idx.query(qs, qe, &mut |t| hits.push(t));
            hits.sort_unstable();
            let want = naive(&items, qs, qe);
            bm_testkit::prop_ensure!(
                hits == want,
                "query [{qs},{qe}) over {items:?}: got {hits:?}, want {want:?}"
            );
            Ok(())
        });
    }
}
