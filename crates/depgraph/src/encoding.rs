//! Encoded storage-cost model for dependency graphs (Table I, Table III).
//!
//! The thread-block scheduler stores each bipartite graph in global memory.
//! Recognized patterns are stored encoded; this module computes the encoded
//! and plain byte sizes so the evaluation can reproduce Table III's
//! normalized storage and Fig. 13's memory-request overhead.

use crate::graph::BipartiteGraph;
use crate::pattern::{classify, Pattern};

/// Bytes per stored id/counter word (32-bit, §IV-C area discussion).
pub const WORD_BYTES: u64 = 4;

/// Storage accounting for one inter-kernel dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphStorage {
    /// Pattern the encoder recognized.
    pub pattern: Pattern,
    /// Bytes used with pattern encoding.
    pub encoded_bytes: u64,
    /// Bytes used by plain (explicit edge-list) storage.
    pub plain_bytes: u64,
}

impl GraphStorage {
    /// `encoded / plain` — the quantity Table III reports per application.
    /// Returns 1.0 for empty plain storage (independent kernels store
    /// nothing either way).
    pub fn ratio(&self) -> f64 {
        if self.plain_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.plain_bytes as f64
        }
    }
}

/// Plain (unencoded) storage: a per-parent offset table, one 32-bit child
/// id per edge, and a 32-bit parent counter per child.
pub fn plain_bytes(g: &BipartiteGraph) -> u64 {
    if g.is_independent() {
        return 0;
    }
    WORD_BYTES * (g.n_parent() as u64 + g.num_edges() + g.n_child() as u64)
}

/// Encoded storage per Table I.
pub fn encoded_bytes(g: &BipartiteGraph, pattern: Pattern) -> u64 {
    let n = g.n_parent() as u64;
    let m = g.n_child() as u64;
    match pattern {
        Pattern::Independent => 0,
        // A single flag word: "wait for the whole parent kernel".
        Pattern::FullyConnected => WORD_BYTES,
        Pattern::OneToOne => WORD_BYTES * n,
        Pattern::OneToN => WORD_BYTES * (m + n),
        Pattern::NToOne => WORD_BYTES * n,
        Pattern::NGroupFullyConnected { .. } => WORD_BYTES * (m + n),
        Pattern::Overlapped { max_degree } => WORD_BYTES * (n + m * max_degree as u64),
        Pattern::Irregular => plain_bytes(g),
    }
}

/// Classifies `g` and computes both storage figures.
pub fn storage(g: &BipartiteGraph) -> GraphStorage {
    let pattern = classify(g);
    let encoded = encoded_bytes(g, pattern);
    let plain = plain_bytes(g);
    GraphStorage {
        pattern,
        // Encoding never does worse than plain storage: the device falls
        // back to the explicit list if the pattern encoding is larger.
        encoded_bytes: encoded.min(plain.max(if g.is_independent() { 0 } else { WORD_BYTES })),
        plain_bytes: plain,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;

    #[test]
    fn fully_connected_is_one_word() {
        let g = BipartiteGraph::fully_connected(100, 200);
        let s = storage(&g);
        assert_eq!(s.encoded_bytes, WORD_BYTES);
        // Plain would store all 20k edges plus tables.
        assert_eq!(s.plain_bytes, WORD_BYTES * (100 + 20_000 + 200));
        assert!(s.ratio() < 1e-3);
    }

    #[test]
    fn independent_stores_nothing() {
        let g = BipartiteGraph::independent(10, 10);
        let s = storage(&g);
        assert_eq!(s.encoded_bytes, 0);
        assert_eq!(s.plain_bytes, 0);
        assert_eq!(s.ratio(), 1.0);
    }

    #[test]
    fn one_to_one_linear() {
        let g = BipartiteGraph::from_children(4, 4, vec![vec![0], vec![1], vec![2], vec![3]]);
        let s = storage(&g);
        assert_eq!(s.encoded_bytes, WORD_BYTES * 4);
        assert_eq!(s.plain_bytes, WORD_BYTES * (4 + 4 + 4));
        assert!(s.ratio() < 1.0);
    }

    #[test]
    fn overlapped_scales_with_degree() {
        let n = 8u32;
        let mut children = vec![Vec::new(); n as usize];
        for c in 0..n {
            for p in c.saturating_sub(1)..=(c + 1).min(n - 1) {
                children[p as usize].push(c);
            }
        }
        let g = BipartiteGraph::from_children(n, n, children);
        let s = storage(&g);
        assert_eq!(
            s.pattern,
            crate::pattern::Pattern::Overlapped { max_degree: 3 }
        );
        assert_eq!(s.encoded_bytes, WORD_BYTES * (8 + 8 * 3));
    }

    #[test]
    fn irregular_equals_plain() {
        let g = BipartiteGraph::from_children(3, 2, vec![vec![0, 1], vec![1], vec![0]]);
        let s = storage(&g);
        assert_eq!(s.encoded_bytes, s.plain_bytes);
        assert_eq!(s.ratio(), 1.0);
    }

    #[test]
    fn encoding_never_exceeds_plain() {
        // A degenerate overlapped graph where the Table I formula would be
        // larger than plain storage must clamp to plain.
        let g = BipartiteGraph::from_children(2, 2, vec![vec![0, 1], vec![1]]);
        let s = storage(&g);
        assert!(s.encoded_bytes <= s.plain_bytes.max(WORD_BYTES));
    }
}
