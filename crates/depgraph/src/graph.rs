//! Bipartite inter-kernel thread-block dependency graphs.
//!
//! Nodes are thread blocks of two *consecutive* kernels (parent `K_p`,
//! child `K_c`); an edge means a child TB reads bytes a parent TB writes
//! (RAW). BlockMaestro limits dependency tracking to consecutive kernels by
//! enforcing in-order kernel completion (paper §III-B1), so a whole
//! application is a series of these graphs (Fig. 1).

use std::fmt;

/// Edge structure of a bipartite dependency graph.
///
/// Fully-connected and independent graphs are represented symbolically so
/// that a conv-layer pair with thousands of TBs does not materialize
/// millions of edges — mirroring the paper's O(1) encodings (Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphKind {
    /// No edges: the kernels are data-independent.
    Independent,
    /// Every child TB depends on every parent TB.
    FullyConnected,
    /// Explicit adjacency: `children[p]` lists child TBs depending on
    /// parent TB `p`, each list sorted ascending.
    Explicit(Vec<Vec<u32>>),
}

/// A bipartite dependency graph between a parent kernel with `n_parent` TBs
/// and a child kernel with `n_child` TBs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteGraph {
    n_parent: u32,
    n_child: u32,
    kind: GraphKind,
}

impl BipartiteGraph {
    /// An independent (edge-free) graph.
    pub fn independent(n_parent: u32, n_child: u32) -> Self {
        BipartiteGraph {
            n_parent,
            n_child,
            kind: GraphKind::Independent,
        }
    }

    /// A fully-connected graph.
    pub fn fully_connected(n_parent: u32, n_child: u32) -> Self {
        BipartiteGraph {
            n_parent,
            n_child,
            kind: GraphKind::FullyConnected,
        }
    }

    /// An explicit graph from per-parent child lists.
    ///
    /// Lists are sorted and deduplicated. If every possible edge is present
    /// the representation collapses to [`GraphKind::FullyConnected`]; if no
    /// edge is present it collapses to [`GraphKind::Independent`].
    ///
    /// # Panics
    ///
    /// Panics if `children.len() != n_parent as usize` or any child id is
    /// out of range.
    pub fn from_children(n_parent: u32, n_child: u32, mut children: Vec<Vec<u32>>) -> Self {
        assert_eq!(children.len(), n_parent as usize, "one list per parent TB");
        let mut edges = 0u64;
        for list in &mut children {
            list.sort_unstable();
            list.dedup();
            if let Some(&max) = list.last() {
                assert!(max < n_child, "child id {max} out of range");
            }
            edges += list.len() as u64;
        }
        let kind = if edges == 0 {
            GraphKind::Independent
        } else if n_parent > 0 && edges == n_parent as u64 * n_child as u64 {
            GraphKind::FullyConnected
        } else {
            GraphKind::Explicit(children)
        };
        BipartiteGraph {
            n_parent,
            n_child,
            kind,
        }
    }

    /// Number of parent-kernel thread blocks.
    pub fn n_parent(&self) -> u32 {
        self.n_parent
    }

    /// Number of child-kernel thread blocks.
    pub fn n_child(&self) -> u32 {
        self.n_child
    }

    /// The symbolic edge structure.
    pub fn kind(&self) -> &GraphKind {
        &self.kind
    }

    /// Total number of edges.
    pub fn num_edges(&self) -> u64 {
        match &self.kind {
            GraphKind::Independent => 0,
            GraphKind::FullyConnected => self.n_parent as u64 * self.n_child as u64,
            GraphKind::Explicit(c) => c.iter().map(|l| l.len() as u64).sum(),
        }
    }

    /// Whether there are no edges.
    pub fn is_independent(&self) -> bool {
        matches!(self.kind, GraphKind::Independent)
    }

    /// Whether every edge is present.
    pub fn is_fully_connected(&self) -> bool {
        matches!(self.kind, GraphKind::FullyConnected)
            || (self.n_parent > 0 && self.num_edges() == self.n_parent as u64 * self.n_child as u64)
    }

    /// Child TBs depending on parent TB `p`.
    pub fn children_of(&self, p: u32) -> Vec<u32> {
        match &self.kind {
            GraphKind::Independent => Vec::new(),
            GraphKind::FullyConnected => (0..self.n_child).collect(),
            GraphKind::Explicit(c) => c[p as usize].clone(),
        }
    }

    /// Number of parents each child TB depends on (its *parent count*,
    /// the quantity the hardware parent-counter buffer tracks).
    pub fn parent_counts(&self) -> Vec<u32> {
        match &self.kind {
            GraphKind::Independent => vec![0; self.n_child as usize],
            GraphKind::FullyConnected => vec![self.n_parent; self.n_child as usize],
            GraphKind::Explicit(c) => {
                let mut counts = vec![0u32; self.n_child as usize];
                for list in c {
                    for &ch in list {
                        counts[ch as usize] += 1;
                    }
                }
                counts
            }
        }
    }

    /// Parent lists per child (the transposed adjacency).
    pub fn parents_of_children(&self) -> Vec<Vec<u32>> {
        match &self.kind {
            GraphKind::Independent => vec![Vec::new(); self.n_child as usize],
            GraphKind::FullyConnected => {
                vec![(0..self.n_parent).collect(); self.n_child as usize]
            }
            GraphKind::Explicit(c) => {
                let mut out = vec![Vec::new(); self.n_child as usize];
                for (p, list) in c.iter().enumerate() {
                    for &ch in list {
                        out[ch as usize].push(p as u32);
                    }
                }
                out
            }
        }
    }

    /// Maximum parent count over all children (`deg_max` of Table I row 6).
    pub fn max_child_degree(&self) -> u32 {
        self.parent_counts().into_iter().max().unwrap_or(0)
    }

    /// Degrades the graph to fully connected (the hardware fallback when a
    /// child's degree exceeds the parent-counter width, §IV-C).
    pub fn degrade_to_fully_connected(&mut self) {
        if !self.is_independent() {
            self.kind = GraphKind::FullyConnected;
        }
    }
}

impl fmt::Display for BipartiteGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "bipartite({} parents, {} children, {} edges)",
            self.n_parent,
            self.n_child,
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn explicit_collapses_to_symbolic_forms() {
        let g = BipartiteGraph::from_children(2, 3, vec![vec![], vec![]]);
        assert!(g.is_independent());
        let g = BipartiteGraph::from_children(2, 2, vec![vec![0, 1], vec![1, 0]]);
        assert!(g.is_fully_connected());
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn children_and_parent_counts() {
        let g = BipartiteGraph::from_children(3, 3, vec![vec![0], vec![0, 1], vec![2]]);
        assert_eq!(g.children_of(1), vec![0, 1]);
        assert_eq!(g.parent_counts(), vec![2, 1, 1]);
        assert_eq!(g.max_child_degree(), 2);
        assert_eq!(g.num_edges(), 4);
    }

    #[test]
    fn transpose_round_trips_edge_count() {
        let g = BipartiteGraph::from_children(4, 2, vec![vec![0], vec![0], vec![1], vec![0, 1]]);
        let parents = g.parents_of_children();
        let total: usize = parents.iter().map(|p| p.len()).sum();
        assert_eq!(total as u64, g.num_edges());
        assert_eq!(parents[0], vec![0, 1, 3]);
    }

    #[test]
    fn degrade_keeps_independent_untouched() {
        let mut g = BipartiteGraph::independent(5, 5);
        g.degrade_to_fully_connected();
        assert!(g.is_independent());
        let mut g = BipartiteGraph::from_children(2, 2, vec![vec![0], vec![]]);
        g.degrade_to_fully_connected();
        assert!(g.is_fully_connected());
    }

    #[test]
    fn fully_connected_counts() {
        let g = BipartiteGraph::fully_connected(10, 20);
        assert_eq!(g.num_edges(), 200);
        assert_eq!(g.parent_counts(), vec![10; 20]);
        assert_eq!(g.children_of(3).len(), 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_child_id_panics() {
        BipartiteGraph::from_children(1, 2, vec![vec![5]]);
    }
}
