//! Builds bipartite dependency graphs from per-TB read/write sets
//! (the intersection step of Algorithm 1, line 23).

use crate::graph::BipartiteGraph;
use crate::interval_index::IntervalIndex;
use bm_ptx::access::KernelAccess;
use bm_ptx::par::{chunk_ranges, ParallelConfig};

/// Which inter-kernel hazards create dependency edges.
///
/// The paper tracks read-after-write only (§III-B2); `All` additionally
/// tracks WAR and WAW, an extension used by the strictest correctness tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HazardMode {
    /// Read-after-write only (paper default).
    #[default]
    Raw,
    /// RAW + WAR + WAW.
    All,
}

/// Builds the dependency graph between a parent and a child kernel launch.
///
/// A non-static kernel on either side degrades the graph to fully connected
/// — the paper's conservative bail-out — unless the kernels provably share
/// no bytes at all, in which case they are independent.
pub fn build_graph(
    parent: &KernelAccess,
    child: &KernelAccess,
    mode: HazardMode,
) -> BipartiteGraph {
    let np = parent.num_blocks() as u32;
    let nc = child.num_blocks() as u32;
    if parent.non_static || child.non_static {
        return BipartiteGraph::fully_connected(np, nc);
    }
    // Kernel-level screen: if the unions don't intersect there is no edge.
    let raw = child.kernel_reads.intersects(&parent.kernel_writes);
    let (war, waw) = match mode {
        HazardMode::Raw => (false, false),
        HazardMode::All => (
            child.kernel_writes.intersects(&parent.kernel_reads),
            child.kernel_writes.intersects(&parent.kernel_writes),
        ),
    };
    if !raw && !war && !waw {
        return BipartiteGraph::independent(np, nc);
    }
    // Index parent ranges once, query per child TB.
    let mut write_items = Vec::new();
    let mut read_items = Vec::new();
    for (p, acc) in parent.per_tb.iter().enumerate() {
        for &(s, e) in acc.writes.ranges() {
            write_items.push((s, e, p as u32));
        }
        if mode == HazardMode::All {
            for &(s, e) in acc.reads.ranges() {
                read_items.push((s, e, p as u32));
            }
        }
    }
    let writes_idx = IntervalIndex::build(write_items);
    let reads_idx = IntervalIndex::build(read_items);
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); np as usize];
    let mut seen = vec![u32::MAX; np as usize];
    for (c, acc) in child.per_tb.iter().enumerate() {
        let c = c as u32;
        let mut hit = |p: u32| {
            if seen[p as usize] != c {
                seen[p as usize] = c;
                children[p as usize].push(c);
            }
        };
        for &(s, e) in acc.reads.ranges() {
            writes_idx.query(s, e, &mut hit);
        }
        if mode == HazardMode::All {
            for &(s, e) in acc.writes.ranges() {
                writes_idx.query(s, e, &mut hit);
                reads_idx.query(s, e, &mut hit);
            }
        }
    }
    BipartiteGraph::from_children(np, nc, children)
}

/// [`build_graph`] with the per-child-TB query loop fanned out across
/// `par.threads` workers over contiguous child-TB chunks.
///
/// Each worker owns a private `seen` array and per-parent adjacency
/// fragment; fragments are concatenated in chunk order, and since a
/// chunk's child ids are all larger than the previous chunk's, the merged
/// adjacency lists are identical to the sequential builder's for every
/// thread count. `threads = 1` calls [`build_graph`] directly.
pub fn build_graph_par(
    parent: &KernelAccess,
    child: &KernelAccess,
    mode: HazardMode,
    par: &ParallelConfig,
) -> BipartiteGraph {
    let np = parent.num_blocks() as u32;
    let nc = child.num_blocks();
    let threads = par.tb_threads_work(nc, np as usize);
    if threads <= 1 {
        return build_graph(parent, child, mode);
    }
    if parent.non_static || child.non_static {
        return BipartiteGraph::fully_connected(np, nc as u32);
    }
    let raw = child.kernel_reads.intersects(&parent.kernel_writes);
    let (war, waw) = match mode {
        HazardMode::Raw => (false, false),
        HazardMode::All => (
            child.kernel_writes.intersects(&parent.kernel_reads),
            child.kernel_writes.intersects(&parent.kernel_writes),
        ),
    };
    if !raw && !war && !waw {
        return BipartiteGraph::independent(np, nc as u32);
    }
    let mut write_items = Vec::new();
    let mut read_items = Vec::new();
    for (p, acc) in parent.per_tb.iter().enumerate() {
        for &(s, e) in acc.writes.ranges() {
            write_items.push((s, e, p as u32));
        }
        if mode == HazardMode::All {
            for &(s, e) in acc.reads.ranges() {
                read_items.push((s, e, p as u32));
            }
        }
    }
    let writes_idx = IntervalIndex::build(write_items);
    let reads_idx = IntervalIndex::build(read_items);
    let chunks = chunk_ranges(nc, threads);
    let writes_idx = &writes_idx;
    let reads_idx = &reads_idx;
    let mut fragments: Vec<Vec<Vec<u32>>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let mut children: Vec<Vec<u32>> = vec![Vec::new(); np as usize];
                    let mut seen = vec![u32::MAX; np as usize];
                    for c in r {
                        let acc = &child.per_tb[c];
                        let c = c as u32;
                        let mut hit = |p: u32| {
                            if seen[p as usize] != c {
                                seen[p as usize] = c;
                                children[p as usize].push(c);
                            }
                        };
                        for &(s, e) in acc.reads.ranges() {
                            writes_idx.query(s, e, &mut hit);
                        }
                        if mode == HazardMode::All {
                            for &(s, e) in acc.writes.ranges() {
                                writes_idx.query(s, e, &mut hit);
                                reads_idx.query(s, e, &mut hit);
                            }
                        }
                    }
                    children
                })
            })
            .collect();
        for h in handles {
            fragments.push(h.join().expect("graph worker panicked"));
        }
    });
    let mut fragments = fragments.into_iter();
    let mut children: Vec<Vec<u32>> = fragments.next().expect("at least one chunk");
    for frag in fragments {
        for (dst, src) in children.iter_mut().zip(frag) {
            dst.extend(src);
        }
    }
    BipartiteGraph::from_children(np, nc as u32, children)
}

/// [`build_graph`] under an explicit edge budget: graphs whose explicit
/// edge count exceeds `max_edges` degrade to the fully-connected barrier
/// encoding. This bounds both the dependency-list storage the hardware
/// would have to stream and the worst-case graph-construction cost on the
/// launch path — the graph-layer rung of the degradation ladder. Returns
/// the (possibly degraded) graph and whether degradation fired.
pub fn build_graph_bounded(
    parent: &KernelAccess,
    child: &KernelAccess,
    mode: HazardMode,
    max_edges: u64,
) -> (BipartiteGraph, bool) {
    build_graph_bounded_par(parent, child, mode, max_edges, &ParallelConfig::reference())
}

/// [`build_graph_bounded`] under an explicit [`ParallelConfig`] (see
/// [`build_graph_par`]); the edge-budget check runs on the merged graph,
/// so degradation decisions are thread-count-invariant too.
pub fn build_graph_bounded_par(
    parent: &KernelAccess,
    child: &KernelAccess,
    mode: HazardMode,
    max_edges: u64,
    par: &ParallelConfig,
) -> (BipartiteGraph, bool) {
    let mut g = build_graph_par(parent, child, mode, par);
    let over =
        matches!(g.kind(), crate::graph::GraphKind::Explicit(_)) && g.num_edges() > max_edges;
    if over {
        g.degrade_to_fully_connected();
    }
    (g, over)
}

/// Reference O(N·M) builder used to validate [`build_graph`] in tests.
pub fn build_graph_naive(
    parent: &KernelAccess,
    child: &KernelAccess,
    mode: HazardMode,
) -> BipartiteGraph {
    let np = parent.num_blocks() as u32;
    let nc = child.num_blocks() as u32;
    if parent.non_static || child.non_static {
        return BipartiteGraph::fully_connected(np, nc);
    }
    let mut children: Vec<Vec<u32>> = vec![Vec::new(); np as usize];
    for (p, pa) in parent.per_tb.iter().enumerate() {
        for (c, ca) in child.per_tb.iter().enumerate() {
            let dep = ca.reads.intersects(&pa.writes)
                || (mode == HazardMode::All
                    && (ca.writes.intersects(&pa.writes) || ca.writes.intersects(&pa.reads)));
            if dep {
                children[p].push(c as u32);
            }
        }
    }
    BipartiteGraph::from_children(np, nc, children)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::access::{KernelAccess, RangeSet, TbAccess};
    use bm_testkit::{check_cases, Rng};

    fn ka(per_tb: Vec<TbAccess>, non_static: bool) -> KernelAccess {
        KernelAccess::from_per_tb(per_tb, non_static)
    }

    fn tb(reads: &[(u64, u64)], writes: &[(u64, u64)]) -> TbAccess {
        TbAccess {
            reads: reads.iter().copied().collect(),
            writes: writes.iter().copied().collect(),
        }
    }

    #[test]
    fn one_to_one_chain() {
        // Parent TB i writes [100i, 100i+100); child TB i reads the same.
        let parent = ka(
            (0..4)
                .map(|i| tb(&[], &[(100 * i, 100 * i + 100)]))
                .collect(),
            false,
        );
        let child = ka(
            (0..4)
                .map(|i| tb(&[(100 * i, 100 * i + 100)], &[]))
                .collect(),
            false,
        );
        let g = build_graph(&parent, &child, HazardMode::Raw);
        assert_eq!(g.num_edges(), 4);
        for p in 0..4 {
            assert_eq!(g.children_of(p), vec![p]);
        }
    }

    #[test]
    fn non_static_is_fully_connected() {
        let parent = ka(vec![tb(&[], &[(0, 10)]); 3], true);
        let child = ka(vec![tb(&[(0, 10)], &[]); 5], false);
        let g = build_graph(&parent, &child, HazardMode::Raw);
        assert!(g.is_fully_connected());
        assert_eq!(g.num_edges(), 15);
    }

    #[test]
    fn disjoint_buffers_are_independent() {
        let parent = ka(vec![tb(&[], &[(0, 100)])], false);
        let child = ka(vec![tb(&[(1000, 1100)], &[])], false);
        assert!(build_graph(&parent, &child, HazardMode::Raw).is_independent());
    }

    #[test]
    fn war_only_visible_in_all_mode() {
        // Child writes what parent reads.
        let parent = ka(vec![tb(&[(0, 100)], &[(500, 600)])], false);
        let child = ka(vec![tb(&[], &[(0, 100)])], false);
        assert!(build_graph(&parent, &child, HazardMode::Raw).is_independent());
        let g = build_graph(&parent, &child, HazardMode::All);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn stencil_overlap_produces_window_edges() {
        // Parent TB i writes [64i, 64i+64); child TB i reads [64i-4, 64i+68).
        let parent = ka(
            (0..8).map(|i| tb(&[], &[(64 * i, 64 * i + 64)])).collect(),
            false,
        );
        let child = ka(
            (0..8u64)
                .map(|i| tb(&[(64 * i - (i > 0) as u64 * 4, 64 * i + 68)], &[]))
                .collect(),
            false,
        );
        let g = build_graph(&parent, &child, HazardMode::Raw);
        // Interior child i depends on parents i-1, i, i+1.
        let parents = g.parents_of_children();
        assert_eq!(parents[3], vec![2, 3, 4]);
        assert_eq!(parents[0], vec![0, 1]);
        assert_eq!(parents[7], vec![6, 7]);
    }

    #[test]
    fn fast_matches_naive() {
        // Random access-set pairs: the sweep builder must agree with the
        // O(N·M) reference on every one.
        let gen_ranges = |rng: &mut Rng| -> Vec<Vec<(u64, u64)>> {
            let n_tbs = rng.range_usize(1, 12);
            (0..n_tbs)
                .map(|_| {
                    let n = rng.range_usize(0, 3);
                    (0..n)
                        .map(|_| (rng.range_u64(0, 400), rng.range_u64(1, 60)))
                        .collect()
                })
                .collect()
        };
        check_cases(0xB01D, 256, move |rng| {
            let pranges = gen_ranges(rng);
            let cranges = gen_ranges(rng);
            let mode = *rng.pick(&[HazardMode::Raw, HazardMode::All]);
            // Alternate ranges between reads and writes for variety.
            let mk = |spec: &Vec<Vec<(u64, u64)>>| -> KernelAccess {
                ka(
                    spec.iter()
                        .map(|rs| {
                            let mut reads = RangeSet::new();
                            let mut writes = RangeSet::new();
                            for (i, &(s, l)) in rs.iter().enumerate() {
                                if i % 2 == 0 {
                                    writes.insert(s, s + l);
                                } else {
                                    reads.insert(s, s + l);
                                }
                            }
                            TbAccess { reads, writes }
                        })
                        .collect(),
                    false,
                )
            };
            let parent = mk(&pranges);
            let child = mk(&cranges);
            let fast = build_graph(&parent, &child, mode);
            let naive = build_graph_naive(&parent, &child, mode);
            bm_testkit::prop_ensure!(
                fast == naive,
                "fast {fast:?} != naive {naive:?} for p={pranges:?} c={cranges:?} {mode:?}"
            );
            for threads in [2usize, 3, 8] {
                let par = build_graph_par(
                    &parent,
                    &child,
                    mode,
                    &ParallelConfig::with_threads(threads).oversubscribed(),
                );
                bm_testkit::prop_ensure!(
                    par == naive,
                    "par(t={threads}) {par:?} != naive {naive:?} for p={pranges:?} c={cranges:?} {mode:?}"
                );
            }
            Ok(())
        });
    }
}
