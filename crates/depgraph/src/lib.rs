//! # bm-depgraph — inter-kernel thread-block dependency graphs
//!
//! The representation layer of BlockMaestro's "Thread Blocks as Tasks"
//! paradigm: bipartite graphs between consecutive kernels (Fig. 1), built
//! from the per-TB read/write sets that `bm-ptx` extracts at kernel-launch
//! time, classified into the common dependency patterns of Fig. 8, and
//! stored encoded per Table I.
//!
//! ```
//! use bm_depgraph::{build_graph, classify, storage, HazardMode, Pattern};
//! use bm_ptx::access::{KernelAccess, TbAccess, RangeSet};
//!
//! // Parent TB i writes bytes [256i, 256i+256); child TB i reads the same.
//! let parent = KernelAccess::from_per_tb(
//!     (0..4).map(|i| TbAccess {
//!         reads: RangeSet::new(),
//!         writes: RangeSet::single(256 * i, 256 * i + 256),
//!     }).collect(), false);
//! let child = KernelAccess::from_per_tb(
//!     (0..4).map(|i| TbAccess {
//!         reads: RangeSet::single(256 * i, 256 * i + 256),
//!         writes: RangeSet::new(),
//!     }).collect(), false);
//!
//! let g = build_graph(&parent, &child, HazardMode::Raw);
//! assert_eq!(classify(&g), Pattern::OneToOne);
//! assert!(storage(&g).ratio() < 1.0); // encoding beats plain storage
//! ```

pub mod build;
pub mod encoding;
pub mod graph;
pub mod interval_index;
pub mod pattern;

pub use build::{
    build_graph, build_graph_bounded, build_graph_bounded_par, build_graph_naive, build_graph_par,
    HazardMode,
};
pub use encoding::{encoded_bytes, plain_bytes, storage, GraphStorage};
pub use graph::{BipartiteGraph, GraphKind};
pub use pattern::{classify, Pattern};
