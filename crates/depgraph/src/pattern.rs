//! Dependency-pattern classification (paper Fig. 8 / Table I).
//!
//! Real inter-kernel graphs are rarely arbitrary; classifying them lets the
//! hardware store them encoded (Table I) instead of as explicit edge lists.

use crate::graph::{BipartiteGraph, GraphKind};
use std::fmt;

/// The dependency-pattern classes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// (7) No dependencies between the kernels.
    Independent,
    /// (1) Every child TB depends on every parent TB — functionally a
    /// kernel-wide barrier.
    FullyConnected,
    /// (3) Each child has exactly one parent and vice versa (`M = N`).
    OneToOne,
    /// (4) Each parent owns an exclusive group of children.
    OneToN,
    /// (5) Each child aggregates an exclusive group of parents.
    NToOne,
    /// (2) Disjoint complete-bipartite blocks.
    NGroupFullyConnected {
        /// Number of groups.
        groups: u32,
    },
    /// (6) Children depend on sliding, overlapping windows of parents
    /// (stencil halos).
    Overlapped {
        /// Maximum parents per child.
        max_degree: u32,
    },
    /// No recognized structure: stored as a plain edge list.
    Irregular,
}

impl Pattern {
    /// Table I row number for this pattern.
    pub fn table_row(&self) -> u8 {
        match self {
            Pattern::FullyConnected => 1,
            Pattern::NGroupFullyConnected { .. } => 2,
            Pattern::OneToOne => 3,
            Pattern::OneToN => 4,
            Pattern::NToOne => 5,
            Pattern::Overlapped { .. } => 6,
            Pattern::Independent => 7,
            Pattern::Irregular => 0,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::Independent => f.write_str("independent"),
            Pattern::FullyConnected => f.write_str("fully-connected"),
            Pattern::OneToOne => f.write_str("1-to-1"),
            Pattern::OneToN => f.write_str("1-to-n"),
            Pattern::NToOne => f.write_str("n-to-1"),
            Pattern::NGroupFullyConnected { groups } => {
                write!(f, "n-group fully-connected ({groups} groups)")
            }
            Pattern::Overlapped { max_degree } => write!(f, "overlapped (deg≤{max_degree})"),
            Pattern::Irregular => f.write_str("irregular"),
        }
    }
}

/// Classifies a graph into the most specific Table I pattern.
pub fn classify(g: &BipartiteGraph) -> Pattern {
    match g.kind() {
        GraphKind::Independent => return Pattern::Independent,
        GraphKind::FullyConnected => return Pattern::FullyConnected,
        GraphKind::Explicit(_) => {}
    }
    if g.is_fully_connected() {
        return Pattern::FullyConnected;
    }
    let parents = g.parents_of_children();
    let children: Vec<Vec<u32>> = (0..g.n_parent()).map(|p| g.children_of(p)).collect();
    let max_parent_deg = parents.iter().map(|p| p.len()).max().unwrap_or(0);
    let max_child_deg = children.iter().map(|c| c.len()).max().unwrap_or(0);
    // 1-to-1: all degrees at most one on both sides.
    if max_parent_deg <= 1 && max_child_deg <= 1 {
        return Pattern::OneToOne;
    }
    // 1-to-n: no child shared between parents.
    if max_parent_deg <= 1 {
        return Pattern::OneToN;
    }
    // n-to-1: no parent shared between children.
    if max_child_deg <= 1 {
        return Pattern::NToOne;
    }
    if let Some(groups) = detect_ngroup(&children, &parents) {
        return Pattern::NGroupFullyConnected { groups };
    }
    if detect_overlapped(&parents) {
        return Pattern::Overlapped {
            max_degree: max_parent_deg as u32,
        };
    }
    Pattern::Irregular
}

/// Detects a disjoint union of complete bipartite blocks: children with the
/// same parent set form a group, and each parent in that set must have
/// exactly that group as its children.
fn detect_ngroup(children: &[Vec<u32>], parents: &[Vec<u32>]) -> Option<u32> {
    use std::collections::HashMap;
    let mut groups: HashMap<&[u32], Vec<u32>> = HashMap::new();
    for (c, ps) in parents.iter().enumerate() {
        if !ps.is_empty() {
            groups.entry(ps.as_slice()).or_default().push(c as u32);
        }
    }
    for (pset, cgroup) in &groups {
        for &p in *pset {
            if children[p as usize] != *cgroup {
                return None;
            }
        }
    }
    Some(groups.len() as u32)
}

/// Detects sliding-window structure: each child's parent set is a
/// contiguous range and the windows move monotonically with child id while
/// overlapping at least once.
fn detect_overlapped(parents: &[Vec<u32>]) -> bool {
    let mut prev: Option<(u32, u32)> = None;
    let mut any_overlap = false;
    for ps in parents {
        if ps.is_empty() {
            continue;
        }
        let lo = ps[0];
        let hi = *ps.last().unwrap();
        if (hi - lo) as usize + 1 != ps.len() {
            return false; // not contiguous
        }
        if let Some((plo, phi)) = prev {
            if lo < plo || hi < phi {
                return false; // windows must slide forward
            }
            if lo <= phi && (lo, hi) != (plo, phi) {
                any_overlap = true;
            }
            if (lo, hi) == (plo, phi) {
                any_overlap = true;
            }
        }
        prev = Some((lo, hi));
    }
    any_overlap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::BipartiteGraph;

    fn explicit(np: u32, nc: u32, edges: Vec<Vec<u32>>) -> BipartiteGraph {
        BipartiteGraph::from_children(np, nc, edges)
    }

    #[test]
    fn symbolic_kinds() {
        assert_eq!(
            classify(&BipartiteGraph::independent(3, 3)),
            Pattern::Independent
        );
        assert_eq!(
            classify(&BipartiteGraph::fully_connected(3, 3)),
            Pattern::FullyConnected
        );
    }

    #[test]
    fn one_to_one() {
        let g = explicit(3, 3, vec![vec![0], vec![1], vec![2]]);
        assert_eq!(classify(&g), Pattern::OneToOne);
        // A permutation still counts as 1-to-1.
        let g = explicit(3, 3, vec![vec![2], vec![0], vec![1]]);
        assert_eq!(classify(&g), Pattern::OneToOne);
    }

    #[test]
    fn one_to_n_and_n_to_one() {
        // Each parent owns two exclusive children.
        let g = explicit(2, 4, vec![vec![0, 1], vec![2, 3]]);
        assert_eq!(classify(&g), Pattern::OneToN);
        // Each child aggregates two exclusive parents.
        let g = explicit(4, 2, vec![vec![0], vec![0], vec![1], vec![1]]);
        assert_eq!(classify(&g), Pattern::NToOne);
    }

    #[test]
    fn n_group() {
        // Two complete 2x2 blocks.
        let g = explicit(4, 4, vec![vec![0, 1], vec![0, 1], vec![2, 3], vec![2, 3]]);
        assert_eq!(classify(&g), Pattern::NGroupFullyConnected { groups: 2 });
    }

    #[test]
    fn overlapped_stencil() {
        // Child i depends on parents {i-1, i, i+1}.
        let n = 6u32;
        let mut children = vec![Vec::new(); n as usize];
        for c in 0..n {
            for p in c.saturating_sub(1)..=(c + 1).min(n - 1) {
                children[p as usize].push(c);
            }
        }
        let g = explicit(n, n, children);
        assert_eq!(classify(&g), Pattern::Overlapped { max_degree: 3 });
    }

    #[test]
    fn irregular_fallback() {
        // Child 0 depends on parents {0, 2} (non-contiguous) and child 1
        // shares parent 0 — breaks every structured class.
        let g = explicit(3, 2, vec![vec![0, 1], vec![1], vec![0]]);
        assert_eq!(classify(&g), Pattern::Irregular);
    }

    #[test]
    fn table_rows() {
        assert_eq!(Pattern::FullyConnected.table_row(), 1);
        assert_eq!(Pattern::Independent.table_row(), 7);
        assert_eq!(Pattern::Overlapped { max_degree: 3 }.table_row(), 6);
    }
}
