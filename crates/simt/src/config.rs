//! GPU configuration: a Titan X (Pascal)-like part, matching the paper's
//! GPGPU-Sim setup (28 SMs, up to 32 thread blocks per SM, GTO warp
//! scheduling, 5 µs kernel launch overhead).
//!
//! The simulated core clock is 1 GHz so one cycle is one nanosecond; all
//! latencies below are in cycles.

/// Re-export of the launch-time analysis pipeline configuration so
/// simulator users configure GPU and toolchain parallelism from one place
/// (`threads = 1` with the affine fast path off reproduces the sequential
/// pipeline bit-for-bit).
pub use bm_ptx::par::ParallelConfig;

/// Configuration of the simulated GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Maximum resident thread blocks per SM.
    pub max_tbs_per_sm: u32,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// SIMT width.
    pub warp_size: u32,
    /// Warp instructions issued per cycle per SM (number of schedulers).
    pub issue_width: u32,
    /// Global-memory round-trip latency in cycles.
    pub mem_latency: u64,
    /// Cycles between consecutive 128 B transactions per SM
    /// (the DRAM-bandwidth share of one SM).
    pub mem_cycles_per_txn: u64,
    /// Total kernel launch overhead in cycles (5 µs, ref.\[27\] of the paper).
    pub kernel_launch_cycles: u64,
    /// Host-side API-call share of the launch overhead in cycles (2 µs,
    /// ref.\[27\]); the CDP comparison removes exactly this part.
    pub launch_api_cycles: u64,
    /// Host-side cost of a `cudaMalloc` in cycles.
    pub malloc_cycles: u64,
    /// Host↔device copy throughput in bytes per cycle (~12 GB/s PCIe 3).
    pub memcpy_bytes_per_cycle: u64,
    /// Fixed memcpy setup cost in cycles.
    pub memcpy_setup_cycles: u64,
    /// Scheduler-buffer spill transactions (parent-counter writebacks plus
    /// dependency-list fetches) tolerated before admission backpressure
    /// shrinks the pre-launch window by one kernel per further crossing.
    pub spill_pressure_threshold: u64,
    /// Backpressure never shrinks the pre-launch window below this.
    pub pressure_min_window: u32,
}

impl GpuConfig {
    /// The paper's evaluation configuration (§IV-A).
    pub fn titan_x_pascal() -> Self {
        GpuConfig {
            num_sms: 28,
            max_tbs_per_sm: 32,
            max_threads_per_sm: 2048,
            max_warps_per_sm: 64,
            shared_mem_per_sm: 96 * 1024,
            warp_size: 32,
            issue_width: 4,
            mem_latency: 400,
            mem_cycles_per_txn: 8,
            kernel_launch_cycles: 5_000,
            launch_api_cycles: 2_000,
            malloc_cycles: 1_000,
            memcpy_bytes_per_cycle: 64,
            memcpy_setup_cycles: 2_000,
            // One full buffer generation of spills (§IV-C sizing) before the
            // scheduler concludes the window is oversubscribed.
            spill_pressure_threshold: 896,
            pressure_min_window: 1,
        }
    }

    /// A small 4-SM part for fast unit tests.
    pub fn small() -> Self {
        GpuConfig {
            num_sms: 4,
            max_tbs_per_sm: 4,
            max_threads_per_sm: 512,
            max_warps_per_sm: 16,
            shared_mem_per_sm: 48 * 1024,
            ..GpuConfig::titan_x_pascal()
        }
    }

    /// Resident thread blocks per SM for a kernel with `block_threads`
    /// threads and `shared_bytes` of shared memory per block
    /// (the occupancy calculation).
    pub fn occupancy(&self, block_threads: u32, shared_bytes: u32) -> u32 {
        if block_threads == 0 {
            return 0;
        }
        let warps = block_threads.div_ceil(self.warp_size);
        let by_tbs = self.max_tbs_per_sm;
        let by_threads = self.max_threads_per_sm / block_threads.max(1);
        let by_warps = self.max_warps_per_sm / warps.max(1);
        let by_shared = self
            .shared_mem_per_sm
            .checked_div(shared_bytes)
            .unwrap_or(u32::MAX);
        by_tbs.min(by_threads).min(by_warps).min(by_shared)
    }

    /// Total simultaneously-resident thread blocks across the GPU.
    pub fn total_tb_slots(&self, block_threads: u32, shared_bytes: u32) -> u32 {
        self.occupancy(block_threads, shared_bytes) * self.num_sms
    }

    /// Converts cycles to microseconds at the simulated 1 GHz clock.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / 1_000.0
    }

    /// Device-side remainder of the launch overhead (total minus host API).
    pub fn device_launch_cycles(&self) -> u64 {
        self.kernel_launch_cycles
            .saturating_sub(self.launch_api_cycles)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::titan_x_pascal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn titan_matches_paper_headlines() {
        let c = GpuConfig::titan_x_pascal();
        assert_eq!(c.num_sms, 28);
        assert_eq!(c.max_tbs_per_sm, 32);
        // 28 SMs x 32 TBs = 896 concurrent TBs — the paper's buffer sizing.
        assert_eq!(c.total_tb_slots(32, 0).min(896), 896);
        assert_eq!(c.kernel_launch_cycles, 5_000); // 5 µs at 1 GHz
        assert_eq!(c.cycles_to_us(5_000), 5.0);
    }

    #[test]
    fn occupancy_limits() {
        let c = GpuConfig::titan_x_pascal();
        // 64-thread blocks: limited by the 32-TB cap, not threads.
        assert_eq!(c.occupancy(64, 0), 32);
        // 1024-thread blocks: limited by 2048 threads -> 2 blocks.
        assert_eq!(c.occupancy(1024, 0), 2);
        // 256-thread blocks: 2048/256 = 8.
        assert_eq!(c.occupancy(256, 0), 8);
        // Shared memory can be the binding constraint.
        assert_eq!(c.occupancy(64, 48 * 1024), 2);
        assert_eq!(c.occupancy(0, 0), 0);
    }

    #[test]
    fn device_launch_is_total_minus_api() {
        let c = GpuConfig::titan_x_pascal();
        assert_eq!(c.device_launch_cycles(), 3_000);
    }
}
