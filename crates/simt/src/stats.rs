//! Statistics helpers shared by the evaluation harnesses: box-plot
//! summaries (Fig. 11), geometric means (Fig. 9/14), and speedup math.

/// Five-number box-plot summary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxStats {
    /// Minimum value.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum value.
    pub max: f64,
}

impl BoxStats {
    /// Computes the summary of `values`. Returns `None` when empty.
    ///
    /// Quartiles use linear interpolation between closest ranks (the same
    /// convention as NumPy's default percentile).
    pub fn compute(values: &[f64]) -> Option<BoxStats> {
        if values.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in box-plot input"));
        Some(BoxStats {
            min: v[0],
            q1: percentile(&v, 25.0),
            median: percentile(&v, 50.0),
            q3: percentile(&v, 75.0),
            max: v[v.len() - 1],
        })
    }
}

/// Linear-interpolated percentile of an already-sorted slice.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Geometric mean; the paper reports geomean speedups.
///
/// # Panics
///
/// Panics if any value is non-positive or the slice is empty.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Speedup of `variant` over `baseline` (in execution cycles).
pub fn speedup(baseline_cycles: u64, variant_cycles: u64) -> f64 {
    baseline_cycles as f64 / variant_cycles.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn box_stats_of_known_data() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = BoxStats::compute(&v).unwrap();
        assert_eq!(b.min, 1.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.max, 5.0);
        assert!(BoxStats::compute(&[]).is_none());
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert_eq!(percentile(&v, 50.0), 5.0);
        assert_eq!(percentile(&v, 0.0), 0.0);
        assert_eq!(percentile(&v, 100.0), 10.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn speedup_ratio() {
        assert_eq!(speedup(200, 100), 2.0);
        assert_eq!(speedup(100, 200), 0.5);
        assert_eq!(speedup(5, 0), 5.0); // clamped divisor
    }
}
