//! # bm-simt — GPU SIMT simulator substrate
//!
//! The paper evaluates BlockMaestro on GPGPU-Sim; this crate is the Rust
//! substitute: a two-level simulator that captures the phenomena the
//! paper's results rest on.
//!
//! * [`timing`] — a warp-level single-SM model with greedy-then-oldest
//!   (GTO) issue, memory latency, per-SM DRAM-bandwidth shares, and
//!   barriers. It replays the dynamic traces from [`bm_ptx::trace`] to
//!   derive per-thread-block durations and memory-transaction counts.
//! * [`des`] — a thread-block-granularity discrete-event engine owning
//!   time and SM resources (TB slots / threads / shared memory). Policies
//!   (baseline serialization, BlockMaestro pre-launching, CDP, Wireframe)
//!   plug in through the [`des::TbSource`] trait.
//! * [`config`] — the Titan X Pascal-like configuration of §IV-A
//!   (28 SMs × 32 TBs, 5 µs kernel launch overhead, 1 GHz ⇒ 1 cycle = 1 ns).
//! * [`stats`] — box plots, geomeans, speedups for the evaluation figures.

pub mod config;
pub mod des;
pub mod stats;
pub mod timing;

pub use config::{GpuConfig, ParallelConfig};
pub use des::{
    try_run_traced, BoundedOutcome, DeadlockSnapshot, DesCheckpoint, DesEngine, DesError, DesStats,
    StepOutcome, TbDescriptor, TbKey, TbSource,
};
pub use timing::{simulate_sm, SmTiming};
