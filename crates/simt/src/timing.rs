//! Warp-level SM timing model with greedy-then-oldest (GTO) scheduling.
//!
//! Replays the dynamic warp traces produced by `bm_ptx::trace` on one SM:
//! each cycle up to `issue_width` ready warps issue one instruction; a
//! global-memory instruction serializes its coalesced transactions through
//! the SM's DRAM-bandwidth share and stalls the warp for the round-trip
//! latency; barriers synchronize the warps of a block.
//!
//! The engine's purpose is to derive realistic *thread-block durations* and
//! memory-request counts for the TB-granularity discrete-event simulator:
//! one timing run per kernel launch, with the kernel's occupancy worth of
//! co-resident blocks.

use crate::config::GpuConfig;
use bm_ptx::trace::{TbTrace, TraceEv, WarpTrace};

/// Result of simulating one SM's worth of thread blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmTiming {
    /// Completion cycle of each simulated thread block.
    pub tb_finish: Vec<u64>,
    /// Cycle when the last block finished.
    pub makespan: u64,
    /// Total warp-instructions issued.
    pub issued: u64,
    /// Total memory transactions serviced.
    pub transactions: u64,
}

impl SmTiming {
    /// Duration to bill one resident thread block in the DES: with `n`
    /// blocks co-resident finishing at `makespan`, each block effectively
    /// occupies its slot for the makespan.
    pub fn per_tb_duration(&self) -> u64 {
        self.makespan.max(1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    /// Stalled on memory until the given cycle.
    WaitMem(u64),
    /// Parked at a barrier.
    AtBarrier,
    Done,
}

struct Warp<'a> {
    trace: &'a WarpTrace,
    ev: usize,
    /// Remaining instructions in the current compute burst.
    burst: u32,
    state: WarpState,
    tb: usize,
}

/// Simulates `traces` (one per co-resident thread block) on a single SM.
///
/// All blocks start at cycle 0; the returned [`SmTiming`] gives per-block
/// completion times under GTO issue and bandwidth/latency constraints.
pub fn simulate_sm(cfg: &GpuConfig, traces: &[&TbTrace]) -> SmTiming {
    let mut warps: Vec<Warp> = Vec::new();
    let mut tb_warp_ranges = Vec::new();
    for (tb, t) in traces.iter().enumerate() {
        let start = warps.len();
        for w in &t.warps {
            warps.push(Warp {
                trace: w,
                ev: 0,
                burst: 0,
                state: if w.events.is_empty() {
                    WarpState::Done
                } else {
                    WarpState::Ready
                },
                tb,
            });
        }
        tb_warp_ranges.push(start..warps.len());
    }
    let n_warps = warps.len();
    let mut tb_finish = vec![0u64; traces.len()];
    let mut live_warps: Vec<usize> = (0..n_warps)
        .filter(|&w| warps[w].state != WarpState::Done)
        .collect();
    let mut cycle: u64 = 0;
    let mut mem_port_free: u64 = 0;
    let mut issued: u64 = 0;
    let mut transactions: u64 = 0;
    // GTO: per scheduler we keep issuing the same warp until it stalls,
    // then fall back to the oldest ready warp. Warps are distributed
    // round-robin over `issue_width` schedulers by index.
    let nsched = cfg.issue_width as usize;
    let mut greedy: Vec<Option<usize>> = vec![None; nsched];
    while !live_warps.is_empty() {
        // Wake memory-stalled warps.
        let mut any_ready = false;
        let mut next_wake = u64::MAX;
        for &w in &live_warps {
            match warps[w].state {
                WarpState::WaitMem(t) => {
                    if t <= cycle {
                        warps[w].state = WarpState::Ready;
                        any_ready = true;
                    } else {
                        next_wake = next_wake.min(t);
                    }
                }
                WarpState::Ready => any_ready = true,
                _ => {}
            }
        }
        if !any_ready {
            if next_wake == u64::MAX {
                // Only barrier-parked warps remain live: release barriers
                // where every live warp of the block is parked.
                release_barriers(&mut warps, &tb_warp_ranges, &live_warps);
                if !live_warps
                    .iter()
                    .any(|&w| warps[w].state == WarpState::Ready)
                {
                    // No progress possible; malformed trace. Bail out.
                    break;
                }
                continue;
            }
            cycle = next_wake;
            continue;
        }
        // Issue phase: each scheduler issues at most one instruction.
        for (s, slot) in greedy.iter_mut().enumerate() {
            // Greedy warp first.
            let pick = match *slot {
                Some(w) if warps[w].state == WarpState::Ready => Some(w),
                _ => live_warps
                    .iter()
                    .copied()
                    .filter(|&w| w % nsched == s && warps[w].state == WarpState::Ready)
                    .min(), // oldest = lowest index
            };
            let Some(w) = pick else {
                *slot = None;
                continue;
            };
            *slot = Some(w);
            issue_one(
                cfg,
                &mut warps[w],
                cycle,
                &mut mem_port_free,
                &mut issued,
                &mut transactions,
            );
        }
        // Barrier release check (cheap: only when someone is parked).
        if live_warps
            .iter()
            .any(|&w| warps[w].state == WarpState::AtBarrier)
        {
            release_barriers(&mut warps, &tb_warp_ranges, &live_warps);
        }
        // Retire finished warps and record block completion.
        live_warps.retain(|&w| {
            if warps[w].state == WarpState::Done {
                let tb = warps[w].tb;
                tb_finish[tb] = tb_finish[tb].max(cycle + 1);
                false
            } else {
                true
            }
        });
        cycle += 1;
    }
    let makespan = tb_finish.iter().copied().max().unwrap_or(0);
    SmTiming {
        tb_finish,
        makespan,
        issued,
        transactions,
    }
}

fn issue_one(
    cfg: &GpuConfig,
    w: &mut Warp,
    cycle: u64,
    mem_port_free: &mut u64,
    issued: &mut u64,
    transactions: &mut u64,
) {
    if w.burst == 0 {
        // Load the next event.
        match w.trace.events.get(w.ev) {
            None => {
                w.state = WarpState::Done;
                return;
            }
            Some(TraceEv::Compute(n)) => {
                w.burst = *n;
            }
            Some(TraceEv::Mem { segments, .. }) => {
                *issued += 1;
                let start = (*mem_port_free).max(cycle);
                let done = start + *segments as u64 * cfg.mem_cycles_per_txn;
                *mem_port_free = done;
                *transactions += *segments as u64;
                w.state = WarpState::WaitMem(done + cfg.mem_latency);
                w.ev += 1;
                return;
            }
            Some(TraceEv::Bar) => {
                *issued += 1;
                w.state = WarpState::AtBarrier;
                w.ev += 1;
                return;
            }
        }
    }
    // Issue one compute instruction from the burst.
    *issued += 1;
    w.burst -= 1;
    if w.burst == 0 {
        w.ev += 1;
        if w.ev >= w.trace.events.len() {
            w.state = WarpState::Done;
        }
    }
}

fn release_barriers(warps: &mut [Warp], tb_ranges: &[std::ops::Range<usize>], live: &[usize]) {
    for range in tb_ranges {
        let mut all_parked = true;
        let mut any_parked = false;
        for w in range.clone() {
            match warps[w].state {
                WarpState::AtBarrier => any_parked = true,
                WarpState::Done => {}
                _ => {
                    if live.contains(&w) {
                        all_parked = false;
                    }
                }
            }
        }
        if any_parked && all_parked {
            for w in range.clone() {
                if warps[w].state == WarpState::AtBarrier {
                    warps[w].state = WarpState::Ready;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::trace::WarpTrace;

    fn tb_of(warps: Vec<Vec<TraceEv>>) -> TbTrace {
        TbTrace {
            warps: warps
                .into_iter()
                .map(|events| WarpTrace { events })
                .collect(),
            dyn_instrs: 0,
            global_transactions: 0,
            global_accesses: 0,
        }
    }

    #[test]
    fn single_warp_compute_takes_n_cycles() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![TraceEv::Compute(100)]]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.makespan, 100);
        assert_eq!(t.issued, 100);
    }

    #[test]
    fn memory_latency_dominates_single_warp() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![
            TraceEv::Mem {
                segments: 1,
                store: false,
            },
            TraceEv::Compute(1),
        ]]);
        let t = simulate_sm(&cfg, &[&tb]);
        // 1 txn (8 cycles) + 400 latency + 1 compute + retire.
        assert!(t.makespan >= cfg.mem_latency);
        assert_eq!(t.transactions, 1);
    }

    #[test]
    fn many_warps_hide_memory_latency() {
        let cfg = GpuConfig::titan_x_pascal();
        let mk = |n| {
            tb_of(
                (0..n)
                    .map(|_| {
                        vec![
                            TraceEv::Mem {
                                segments: 1,
                                store: false,
                            },
                            TraceEv::Compute(50),
                        ]
                    })
                    .collect(),
            )
        };
        let one = simulate_sm(&cfg, &[&mk(1)]);
        let many_tb = mk(16);
        let many = simulate_sm(&cfg, &[&many_tb]);
        // 16 warps' worth of work in much less than 16x the time.
        assert!(many.makespan < one.makespan * 4);
        assert_eq!(many.transactions, 16);
    }

    #[test]
    fn bandwidth_serializes_transactions() {
        let cfg = GpuConfig::titan_x_pascal();
        // One warp issuing a 32-segment (fully uncoalesced) access.
        let tb = tb_of(vec![vec![TraceEv::Mem {
            segments: 32,
            store: true,
        }]]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.transactions, 32);
        assert!(t.makespan >= 32 * cfg.mem_cycles_per_txn + cfg.mem_latency);
    }

    #[test]
    fn barrier_joins_warps() {
        let cfg = GpuConfig::titan_x_pascal();
        // Warp 0 computes 10 then bars; warp 1 computes 200 then bars; both
        // then compute 5 more. Total bounded below by the slow warp.
        let tb = tb_of(vec![
            vec![TraceEv::Compute(10), TraceEv::Bar, TraceEv::Compute(5)],
            vec![TraceEv::Compute(200), TraceEv::Bar, TraceEv::Compute(5)],
        ]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert!(t.makespan >= 200 / cfg.issue_width as u64);
        assert!(t.makespan < 400);
    }

    #[test]
    fn co_resident_blocks_share_issue_bandwidth() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![TraceEv::Compute(1000)]; 4]);
        let alone = simulate_sm(&cfg, &[&tb]);
        let tbs: Vec<&TbTrace> = vec![&tb; 8];
        let crowded = simulate_sm(&cfg, &tbs);
        // 8 blocks x 4 warps = 32 warps on 4 schedulers: ~8x slower than
        // 4 warps on 4 schedulers.
        assert!(crowded.makespan > alone.makespan * 6);
        assert_eq!(crowded.tb_finish.len(), 8);
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.makespan, 0);
    }
}
