//! Warp-level SM timing model with greedy-then-oldest (GTO) scheduling.
//!
//! Replays the dynamic warp traces produced by `bm_ptx::trace` on one SM:
//! each cycle up to `issue_width` ready warps issue one instruction; a
//! global-memory instruction serializes its coalesced transactions through
//! the SM's DRAM-bandwidth share and stalls the warp for the round-trip
//! latency; barriers synchronize the warps of a block.
//!
//! The engine's purpose is to derive realistic *thread-block durations* and
//! memory-request counts for the TB-granularity discrete-event simulator:
//! one timing run per kernel launch, with the kernel's occupancy worth of
//! co-resident blocks.

use crate::config::GpuConfig;
use bm_ptx::trace::{TbTrace, TraceEv, WarpTrace};

/// Result of simulating one SM's worth of thread blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmTiming {
    /// Completion cycle of each simulated thread block.
    pub tb_finish: Vec<u64>,
    /// Cycle when the last block finished.
    pub makespan: u64,
    /// Total warp-instructions issued.
    pub issued: u64,
    /// Total memory transactions serviced.
    pub transactions: u64,
}

impl SmTiming {
    /// Duration to bill one resident thread block in the DES: with `n`
    /// blocks co-resident finishing at `makespan`, each block effectively
    /// occupies its slot for the makespan.
    pub fn per_tb_duration(&self) -> u64 {
        self.makespan.max(1)
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum WarpState {
    Ready,
    /// Stalled on memory until the given cycle.
    WaitMem(u64),
    /// Parked at a barrier.
    AtBarrier,
    Done,
}

struct Warp<'a> {
    trace: &'a WarpTrace,
    ev: usize,
    /// Remaining instructions in the current compute burst.
    burst: u32,
    state: WarpState,
    tb: usize,
}

/// Simulates `traces` (one per co-resident thread block) on a single SM.
///
/// All blocks start at cycle 0; the returned [`SmTiming`] gives per-block
/// completion times under GTO issue and bandwidth/latency constraints.
///
/// The engine is event-accelerated but cycle-exact: memory wake-ups sit
/// in a min-heap instead of being rescanned every cycle, each scheduler
/// lane keeps its ready warps in an ordered set (so the "oldest ready"
/// pick is an O(log n) lookup), and uninterruptible stretches of compute
/// issue — every scheduler mid-burst, nobody parked, no wake-up due —
/// are fast-forwarded in one step. Every shortcut preserves the exact
/// per-cycle issue order of the straightforward loop (kept as the test
/// oracle below), so `SmTiming` is bit-identical.
pub fn simulate_sm(cfg: &GpuConfig, traces: &[&TbTrace]) -> SmTiming {
    use std::cmp::Reverse;
    use std::collections::{BTreeSet, BinaryHeap};
    let mut warps: Vec<Warp> = Vec::new();
    let mut tb_warp_ranges = Vec::new();
    for (tb, t) in traces.iter().enumerate() {
        let start = warps.len();
        for w in &t.warps {
            warps.push(Warp {
                trace: w,
                ev: 0,
                burst: 0,
                state: if w.events.is_empty() {
                    WarpState::Done
                } else {
                    WarpState::Ready
                },
                tb,
            });
        }
        tb_warp_ranges.push(start..warps.len());
    }
    let n_warps = warps.len();
    let mut tb_finish = vec![0u64; traces.len()];
    let mut live_warps: Vec<usize> = (0..n_warps)
        .filter(|&w| warps[w].state != WarpState::Done)
        .collect();
    let mut cycle: u64 = 0;
    let mut mem_port_free: u64 = 0;
    let mut issued: u64 = 0;
    let mut transactions: u64 = 0;
    // GTO: per scheduler we keep issuing the same warp until it stalls,
    // then fall back to the oldest ready warp. Warps are distributed
    // round-robin over `issue_width` schedulers by index.
    let nsched = cfg.issue_width as usize;
    let mut greedy: Vec<Option<usize>> = vec![None; nsched];
    // Ready warps per scheduler lane; `first()` is the oldest.
    let mut lane_ready: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); nsched];
    for &w in &live_warps {
        lane_ready[w % nsched].insert(w);
    }
    // (wake cycle, warp) for every memory-stalled warp.
    let mut wakes: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
    let mut n_parked: usize = 0;
    while !live_warps.is_empty() {
        // Wake memory-stalled warps that are due.
        while let Some(&Reverse((t, w))) = wakes.peek() {
            if t > cycle {
                break;
            }
            wakes.pop();
            warps[w].state = WarpState::Ready;
            lane_ready[w % nsched].insert(w);
        }
        if lane_ready.iter().all(|s| s.is_empty()) {
            if let Some(&Reverse((t, _))) = wakes.peek() {
                cycle = t;
                continue;
            }
            // Only barrier-parked warps remain live: release barriers
            // where every live warp of the block is parked.
            let released = release_barriers(&mut warps, &tb_warp_ranges, &mut lane_ready, nsched);
            n_parked -= released;
            if released == 0 {
                // No progress possible; malformed trace. Bail out.
                break;
            }
            continue;
        }
        // Pick phase: greedy warp if still ready, else oldest ready on
        // the lane. Lanes partition the warps (`w % nsched == s`), so
        // picks are independent of issue order within the cycle.
        let picks: Vec<Option<usize>> = greedy
            .iter()
            .enumerate()
            .map(|(s, slot)| match *slot {
                Some(w) if warps[w].state == WarpState::Ready => Some(w),
                _ => lane_ready[s].first().copied(),
            })
            .collect();
        // Fast-forward: if nobody is parked, no wake-up is due, and every
        // picked warp is inside a compute burst with at least one
        // instruction to spare, all schedulers issue straight-line
        // compute for `bulk` cycles with no possible state change. The
        // final burst instruction always goes through the exact
        // single-cycle path below.
        if n_parked == 0 {
            let mut min_rem = u64::MAX;
            for &p in &picks {
                if let Some(w) = p {
                    let rem = if warps[w].burst > 0 {
                        u64::from(warps[w].burst)
                    } else {
                        match warps[w].trace.events.get(warps[w].ev) {
                            Some(TraceEv::Compute(n)) => u64::from(*n),
                            _ => 0,
                        }
                    };
                    min_rem = min_rem.min(rem);
                }
            }
            let window = match wakes.peek() {
                Some(&Reverse((t, _))) => t - cycle,
                None => u64::MAX,
            };
            let bulk = min_rem.saturating_sub(1).min(window);
            if bulk >= 1 && min_rem != u64::MAX {
                for (s, &p) in picks.iter().enumerate() {
                    match p {
                        Some(w) => {
                            if warps[w].burst == 0 {
                                if let Some(TraceEv::Compute(n)) =
                                    warps[w].trace.events.get(warps[w].ev)
                                {
                                    warps[w].burst = *n;
                                }
                            }
                            warps[w].burst -= bulk as u32;
                            issued += bulk;
                            greedy[s] = Some(w);
                        }
                        None => greedy[s] = None,
                    }
                }
                cycle += bulk;
                continue;
            }
        }
        // Issue phase: each scheduler issues at most one instruction.
        let mut any_done = false;
        for (s, &pick) in picks.iter().enumerate() {
            let Some(w) = pick else {
                greedy[s] = None;
                continue;
            };
            greedy[s] = Some(w);
            issue_one(
                cfg,
                &mut warps[w],
                cycle,
                &mut mem_port_free,
                &mut issued,
                &mut transactions,
            );
            match warps[w].state {
                WarpState::Ready => {}
                WarpState::WaitMem(t) => {
                    lane_ready[s].remove(&w);
                    wakes.push(Reverse((t, w)));
                }
                WarpState::AtBarrier => {
                    lane_ready[s].remove(&w);
                    n_parked += 1;
                }
                WarpState::Done => {
                    lane_ready[s].remove(&w);
                    any_done = true;
                }
            }
        }
        // Barrier release check (cheap: only when someone is parked).
        if n_parked > 0 {
            let released = release_barriers(&mut warps, &tb_warp_ranges, &mut lane_ready, nsched);
            n_parked -= released;
        }
        // Retire finished warps and record block completion.
        if any_done {
            live_warps.retain(|&w| {
                if warps[w].state == WarpState::Done {
                    let tb = warps[w].tb;
                    tb_finish[tb] = tb_finish[tb].max(cycle + 1);
                    false
                } else {
                    true
                }
            });
        }
        cycle += 1;
    }
    let makespan = tb_finish.iter().copied().max().unwrap_or(0);
    SmTiming {
        tb_finish,
        makespan,
        issued,
        transactions,
    }
}

fn issue_one(
    cfg: &GpuConfig,
    w: &mut Warp,
    cycle: u64,
    mem_port_free: &mut u64,
    issued: &mut u64,
    transactions: &mut u64,
) {
    if w.burst == 0 {
        // Load the next event.
        match w.trace.events.get(w.ev) {
            None => {
                w.state = WarpState::Done;
                return;
            }
            Some(TraceEv::Compute(n)) => {
                w.burst = *n;
            }
            Some(TraceEv::Mem { segments, .. }) => {
                *issued += 1;
                let start = (*mem_port_free).max(cycle);
                let done = start + *segments as u64 * cfg.mem_cycles_per_txn;
                *mem_port_free = done;
                *transactions += *segments as u64;
                w.state = WarpState::WaitMem(done + cfg.mem_latency);
                w.ev += 1;
                return;
            }
            Some(TraceEv::Bar) => {
                *issued += 1;
                w.state = WarpState::AtBarrier;
                w.ev += 1;
                return;
            }
        }
    }
    // Issue one compute instruction from the burst.
    *issued += 1;
    w.burst -= 1;
    if w.burst == 0 {
        w.ev += 1;
        if w.ev >= w.trace.events.len() {
            w.state = WarpState::Done;
        }
    }
}

/// Releases every barrier whose block has all live warps parked, returning
/// how many warps went back to `Ready`. A warp that is neither `AtBarrier`
/// nor `Done` is necessarily still live, so no liveness list is needed.
fn release_barriers(
    warps: &mut [Warp],
    tb_ranges: &[std::ops::Range<usize>],
    lane_ready: &mut [std::collections::BTreeSet<usize>],
    nsched: usize,
) -> usize {
    let mut released = 0;
    for range in tb_ranges {
        let mut all_parked = true;
        let mut any_parked = false;
        for w in range.clone() {
            match warps[w].state {
                WarpState::AtBarrier => any_parked = true,
                WarpState::Done => {}
                _ => all_parked = false,
            }
        }
        if any_parked && all_parked {
            for w in range.clone() {
                if warps[w].state == WarpState::AtBarrier {
                    warps[w].state = WarpState::Ready;
                    lane_ready[w % nsched].insert(w);
                    released += 1;
                }
            }
        }
    }
    released
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::trace::WarpTrace;

    fn tb_of(warps: Vec<Vec<TraceEv>>) -> TbTrace {
        TbTrace {
            warps: warps
                .into_iter()
                .map(|events| WarpTrace { events })
                .collect(),
            dyn_instrs: 0,
            global_transactions: 0,
            global_accesses: 0,
        }
    }

    #[test]
    fn single_warp_compute_takes_n_cycles() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![TraceEv::Compute(100)]]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.makespan, 100);
        assert_eq!(t.issued, 100);
    }

    #[test]
    fn memory_latency_dominates_single_warp() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![
            TraceEv::Mem {
                segments: 1,
                store: false,
            },
            TraceEv::Compute(1),
        ]]);
        let t = simulate_sm(&cfg, &[&tb]);
        // 1 txn (8 cycles) + 400 latency + 1 compute + retire.
        assert!(t.makespan >= cfg.mem_latency);
        assert_eq!(t.transactions, 1);
    }

    #[test]
    fn many_warps_hide_memory_latency() {
        let cfg = GpuConfig::titan_x_pascal();
        let mk = |n| {
            tb_of(
                (0..n)
                    .map(|_| {
                        vec![
                            TraceEv::Mem {
                                segments: 1,
                                store: false,
                            },
                            TraceEv::Compute(50),
                        ]
                    })
                    .collect(),
            )
        };
        let one = simulate_sm(&cfg, &[&mk(1)]);
        let many_tb = mk(16);
        let many = simulate_sm(&cfg, &[&many_tb]);
        // 16 warps' worth of work in much less than 16x the time.
        assert!(many.makespan < one.makespan * 4);
        assert_eq!(many.transactions, 16);
    }

    #[test]
    fn bandwidth_serializes_transactions() {
        let cfg = GpuConfig::titan_x_pascal();
        // One warp issuing a 32-segment (fully uncoalesced) access.
        let tb = tb_of(vec![vec![TraceEv::Mem {
            segments: 32,
            store: true,
        }]]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.transactions, 32);
        assert!(t.makespan >= 32 * cfg.mem_cycles_per_txn + cfg.mem_latency);
    }

    #[test]
    fn barrier_joins_warps() {
        let cfg = GpuConfig::titan_x_pascal();
        // Warp 0 computes 10 then bars; warp 1 computes 200 then bars; both
        // then compute 5 more. Total bounded below by the slow warp.
        let tb = tb_of(vec![
            vec![TraceEv::Compute(10), TraceEv::Bar, TraceEv::Compute(5)],
            vec![TraceEv::Compute(200), TraceEv::Bar, TraceEv::Compute(5)],
        ]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert!(t.makespan >= 200 / cfg.issue_width as u64);
        assert!(t.makespan < 400);
    }

    #[test]
    fn co_resident_blocks_share_issue_bandwidth() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![vec![TraceEv::Compute(1000)]; 4]);
        let alone = simulate_sm(&cfg, &[&tb]);
        let tbs: Vec<&TbTrace> = vec![&tb; 8];
        let crowded = simulate_sm(&cfg, &tbs);
        // 8 blocks x 4 warps = 32 warps on 4 schedulers: ~8x slower than
        // 4 warps on 4 schedulers.
        assert!(crowded.makespan > alone.makespan * 6);
        assert_eq!(crowded.tb_finish.len(), 8);
    }

    #[test]
    fn empty_trace_finishes_instantly() {
        let cfg = GpuConfig::titan_x_pascal();
        let tb = tb_of(vec![]);
        let t = simulate_sm(&cfg, &[&tb]);
        assert_eq!(t.makespan, 0);
    }

    /// The original cycle-at-a-time engine, kept verbatim as the oracle
    /// for the event-accelerated `simulate_sm`.
    fn oracle_simulate_sm(cfg: &GpuConfig, traces: &[&TbTrace]) -> SmTiming {
        fn oracle_release_barriers(
            warps: &mut [Warp],
            tb_ranges: &[std::ops::Range<usize>],
            live: &[usize],
        ) {
            for range in tb_ranges {
                let mut all_parked = true;
                let mut any_parked = false;
                for w in range.clone() {
                    match warps[w].state {
                        WarpState::AtBarrier => any_parked = true,
                        WarpState::Done => {}
                        _ => {
                            if live.contains(&w) {
                                all_parked = false;
                            }
                        }
                    }
                }
                if any_parked && all_parked {
                    for w in range.clone() {
                        if warps[w].state == WarpState::AtBarrier {
                            warps[w].state = WarpState::Ready;
                        }
                    }
                }
            }
        }
        let mut warps: Vec<Warp> = Vec::new();
        let mut tb_warp_ranges = Vec::new();
        for (tb, t) in traces.iter().enumerate() {
            let start = warps.len();
            for w in &t.warps {
                warps.push(Warp {
                    trace: w,
                    ev: 0,
                    burst: 0,
                    state: if w.events.is_empty() {
                        WarpState::Done
                    } else {
                        WarpState::Ready
                    },
                    tb,
                });
            }
            tb_warp_ranges.push(start..warps.len());
        }
        let n_warps = warps.len();
        let mut tb_finish = vec![0u64; traces.len()];
        let mut live_warps: Vec<usize> = (0..n_warps)
            .filter(|&w| warps[w].state != WarpState::Done)
            .collect();
        let mut cycle: u64 = 0;
        let mut mem_port_free: u64 = 0;
        let mut issued: u64 = 0;
        let mut transactions: u64 = 0;
        let nsched = cfg.issue_width as usize;
        let mut greedy: Vec<Option<usize>> = vec![None; nsched];
        while !live_warps.is_empty() {
            let mut any_ready = false;
            let mut next_wake = u64::MAX;
            for &w in &live_warps {
                match warps[w].state {
                    WarpState::WaitMem(t) => {
                        if t <= cycle {
                            warps[w].state = WarpState::Ready;
                            any_ready = true;
                        } else {
                            next_wake = next_wake.min(t);
                        }
                    }
                    WarpState::Ready => any_ready = true,
                    _ => {}
                }
            }
            if !any_ready {
                if next_wake == u64::MAX {
                    oracle_release_barriers(&mut warps, &tb_warp_ranges, &live_warps);
                    if !live_warps
                        .iter()
                        .any(|&w| warps[w].state == WarpState::Ready)
                    {
                        break;
                    }
                    continue;
                }
                cycle = next_wake;
                continue;
            }
            for (s, slot) in greedy.iter_mut().enumerate() {
                let pick = match *slot {
                    Some(w) if warps[w].state == WarpState::Ready => Some(w),
                    _ => live_warps
                        .iter()
                        .copied()
                        .filter(|&w| w % nsched == s && warps[w].state == WarpState::Ready)
                        .min(),
                };
                let Some(w) = pick else {
                    *slot = None;
                    continue;
                };
                *slot = Some(w);
                issue_one(
                    cfg,
                    &mut warps[w],
                    cycle,
                    &mut mem_port_free,
                    &mut issued,
                    &mut transactions,
                );
            }
            if live_warps
                .iter()
                .any(|&w| warps[w].state == WarpState::AtBarrier)
            {
                oracle_release_barriers(&mut warps, &tb_warp_ranges, &live_warps);
            }
            live_warps.retain(|&w| {
                if warps[w].state == WarpState::Done {
                    let tb = warps[w].tb;
                    tb_finish[tb] = tb_finish[tb].max(cycle + 1);
                    false
                } else {
                    true
                }
            });
            cycle += 1;
        }
        let makespan = tb_finish.iter().copied().max().unwrap_or(0);
        SmTiming {
            tb_finish,
            makespan,
            issued,
            transactions,
        }
    }

    #[test]
    fn fast_engine_matches_cycle_exact_oracle_on_random_traces() {
        let cfg = GpuConfig::titan_x_pascal();
        let mut s: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rnd = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for case in 0..300 {
            let n_tbs = 1 + (rnd() % 4) as usize;
            let traces: Vec<TbTrace> = (0..n_tbs)
                .map(|_| {
                    let n_warps = (rnd() % 9) as usize;
                    tb_of(
                        (0..n_warps)
                            .map(|_| {
                                let n_ev = (rnd() % 12) as usize;
                                (0..n_ev)
                                    .map(|_| match rnd() % 10 {
                                        0..=4 => TraceEv::Compute(1 + (rnd() % 200) as u32),
                                        5..=8 => TraceEv::Mem {
                                            segments: 1 + (rnd() % 32) as u32,
                                            store: rnd() % 2 == 0,
                                        },
                                        _ => TraceEv::Bar,
                                    })
                                    .collect()
                            })
                            .collect(),
                    )
                })
                .collect();
            let refs: Vec<&TbTrace> = traces.iter().collect();
            assert_eq!(
                simulate_sm(&cfg, &refs),
                oracle_simulate_sm(&cfg, &refs),
                "case {case} diverged from the cycle-exact oracle"
            );
        }
    }

    #[test]
    fn fast_engine_matches_oracle_on_long_compute_bursts() {
        // Stress the fast-forward path: long bursts of unequal length mixed
        // with occasional memory stalls and barriers across co-resident TBs.
        let cfg = GpuConfig::titan_x_pascal();
        let tb0 = tb_of(vec![
            vec![
                TraceEv::Compute(5000),
                TraceEv::Mem {
                    segments: 4,
                    store: false,
                },
                TraceEv::Compute(3),
            ],
            vec![TraceEv::Compute(7), TraceEv::Bar, TraceEv::Compute(9000)],
            vec![TraceEv::Compute(12000), TraceEv::Bar, TraceEv::Compute(1)],
        ]);
        let tb1 = tb_of(vec![
            vec![
                TraceEv::Mem {
                    segments: 32,
                    store: true,
                },
                TraceEv::Compute(20000),
            ],
            vec![TraceEv::Compute(1)],
        ]);
        let refs: Vec<&TbTrace> = vec![&tb0, &tb1, &tb0];
        assert_eq!(simulate_sm(&cfg, &refs), oracle_simulate_sm(&cfg, &refs));
    }
}
