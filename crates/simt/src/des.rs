//! Thread-block-granularity discrete-event engine.
//!
//! The engine owns time and SM resources (TB slots, threads, shared
//! memory); the *policy* — which thread blocks are ready and in what order
//! they should be placed — is supplied by a [`TbSource`], which is how the
//! BlockMaestro engine, the baselines, and the comparison models all share
//! one simulator.

use crate::config::GpuConfig;
use bm_trace::{NullTracer, TbId, TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;

/// Identifies a thread block across the whole application run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TbKey {
    /// Application-wide kernel sequence number.
    pub kernel_seq: u32,
    /// Linear thread-block id within the kernel.
    pub tb: u32,
}

/// A thread block ready for placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct TbDescriptor {
    /// Identity.
    pub key: TbKey,
    /// Threads per block (SM thread-resource usage).
    pub threads: u32,
    /// Shared-memory bytes per block.
    pub shared_bytes: u32,
    /// Execution duration in cycles.
    pub duration: u64,
}

/// Supplies ready thread blocks to the engine and observes completions.
pub trait TbSource {
    /// Pops the highest-priority ready thread block for which `fits`
    /// returns true, or `None` if nothing placeable is ready at `now`.
    fn pop_ready(&mut self, now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor>;

    /// Called when a thread block starts executing.
    fn on_tb_start(&mut self, _key: TbKey, _now: u64) {}

    /// Called when a thread block completes.
    fn on_tb_complete(&mut self, key: TbKey, now: u64);

    /// The next time an external event (e.g. a kernel arrival) changes the
    /// ready set, if any. The engine will advance time no further than this
    /// before asking again. Times at or before `now` are ignored — blocked
    /// placements are retried on completions, which free resources.
    fn next_event_at(&self, now: u64) -> Option<u64>;

    /// Called whenever simulation time advances, so the source can retire
    /// timers (kernel arrivals etc.).
    fn on_time_advance(&mut self, _now: u64) {}

    /// Whether every thread block has been issued and completed.
    fn is_done(&self) -> bool;

    /// Whether the source has hit an unrecoverable internal error and wants
    /// the engine to stop. Checked once per engine iteration; a `true`
    /// return makes [`try_run`] exit with [`DesError::SourceAbort`] so the
    /// source's owner can surface its own typed error. Defaults to `false`.
    fn aborted(&self) -> bool {
        false
    }

    /// Human-readable state lines for deadlock diagnostics (ready-queue
    /// depths, dependency-counter values, window state, ...). Collected
    /// into [`DeadlockSnapshot::diagnostics`] when the engine detects a
    /// no-progress state. Defaults to empty.
    fn diagnostics(&self) -> Vec<String> {
        Vec::new()
    }
}

/// State captured when the engine detects a no-progress condition: nothing
/// running, nothing ready, no future event, yet the source is not done.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DeadlockSnapshot {
    /// Simulation time at which progress stopped.
    pub cycle: u64,
    /// Thread blocks completed before the deadlock.
    pub tbs_executed: u64,
    /// Thread blocks resident on SMs at the deadlock point. Empty in the
    /// strict no-progress state (running TBs always produce completion
    /// events), kept for sources that abort with work in flight.
    pub resident: Vec<TbKey>,
    /// Source-provided state lines ([`TbSource::diagnostics`]).
    pub diagnostics: Vec<String>,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "deadlock at cycle {} after {} TBs ({} resident)",
            self.cycle,
            self.tbs_executed,
            self.resident.len()
        )?;
        for line in &self.diagnostics {
            write!(f, "\n  {line}")?;
        }
        Ok(())
    }
}

/// Typed failure of a discrete-event run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DesError {
    /// The source can never make progress again: no running TBs, no ready
    /// TBs, no future events, and `is_done()` is false. Always a policy or
    /// dependency-metadata bug, never a timing accident.
    Deadlock(DeadlockSnapshot),
    /// The source reported an internal failure via [`TbSource::aborted`];
    /// the engine stopped so the owner can recover its typed error.
    SourceAbort {
        /// Simulation time at which the abort was observed.
        cycle: u64,
    },
    /// A cooperative [`bm_ptx::cancel::CancelToken`] installed via
    /// [`DesEngine::set_cancel`] fired; the engine stopped at a step
    /// boundary without consuming any further simulated time.
    Cancelled {
        /// Simulation time at which the token was observed fired.
        cycle: u64,
        /// Why the token fired.
        cause: bm_ptx::cancel::CancelCause,
    },
}

impl fmt::Display for DesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DesError::Deadlock(s) => write!(f, "DES {s}"),
            DesError::SourceAbort { cycle } => {
                write!(f, "DES source aborted at cycle {cycle}")
            }
            DesError::Cancelled { cycle, cause } => {
                write!(f, "DES run {cause} at cycle {cycle}")
            }
        }
    }
}

impl std::error::Error for DesError {}

/// Statistics from one engine run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DesStats {
    /// Cycle when the last thread block completed (total execution time).
    pub total_cycles: u64,
    /// Time-weighted integral of running thread blocks (for average
    /// TB concurrency, Fig. 10).
    pub concurrency_integral: u128,
    /// Total thread blocks executed.
    pub tbs_executed: u64,
    /// Per-TB `(key, start, finish)` schedule, in completion order.
    pub schedule: Vec<(TbKey, u64, u64)>,
}

impl DesStats {
    /// Average number of concurrently-running thread blocks.
    pub fn avg_concurrency(&self) -> f64 {
        if self.total_cycles == 0 {
            0.0
        } else {
            self.concurrency_integral as f64 / self.total_cycles as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct SmState {
    free_tbs: u32,
    free_threads: u32,
    free_shared: u32,
}

/// Serializable image of a [`DesEngine`] between steps.
///
/// Captures everything the engine owns — SM free resources, in-flight
/// completion events, the simulation clock, and the accumulated
/// [`DesStats`] including the full schedule — so a run restored from a
/// checkpoint continues bit-identically to one that never stopped. The
/// completion heap is drained into sorted order so the image itself is
/// deterministic.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DesCheckpoint {
    /// Per-SM `(free_tbs, free_threads, free_shared)`.
    pub sms: Vec<(u32, u32, u32)>,
    /// Pending completion events `(finish, seq, sm, descriptor)`, sorted.
    pub events: Vec<(u64, u64, u32, TbDescriptor)>,
    /// Next placement sequence number (heap tie-breaker).
    pub seq: u64,
    /// Current simulation time.
    pub now: u64,
    /// Thread blocks currently running.
    pub running: u32,
    /// Last time the concurrency integral was folded.
    pub last_t: u64,
    /// Per-SM resident thread-block counts.
    pub resident: Vec<u32>,
    /// Statistics accumulated so far (schedule included).
    pub stats: DesStats,
}

/// Result of one [`DesEngine::step`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The engine placed/advanced/completed work; call `step` again.
    Progressed,
    /// The source is done and no completions are in flight; the run is
    /// over and [`DesEngine::finish`] may be called.
    Finished,
}

/// Result of one [`DesEngine::step_bounded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoundedOutcome {
    /// The engine placed/advanced/completed work strictly below the
    /// horizon; call `step_bounded` again.
    Progressed,
    /// The next time advance would reach or pass the horizon (or no
    /// future event exists at all). Placements at the current time have
    /// already been made; the clock did not move.
    Blocked,
    /// As [`StepOutcome::Finished`].
    Finished,
}

/// The discrete-event loop of [`try_run_traced`], hoisted into a struct so
/// drivers can interleave their own work — checkpointing at kernel
/// boundaries, deterministic kill points — between iterations.
///
/// One [`step`](DesEngine::step) is exactly one iteration of the original
/// loop: abort check, placement phase, done check, time advance, and the
/// completion batch at the new time. State between steps is fully captured
/// by [`checkpoint`](DesEngine::checkpoint) and restored by
/// [`from_checkpoint`](DesEngine::from_checkpoint).
#[derive(Debug, Clone)]
pub struct DesEngine {
    sms: Vec<SmState>,
    // Completion events: (time, seq, sm, desc).
    heap: BinaryHeap<Reverse<(u64, u64, usize, TbDescriptor)>>,
    seq: u64,
    now: u64,
    running: u32,
    stats: DesStats,
    last_t: u64,
    resident: Vec<u32>,
    // Runtime-only cooperative cancellation; never part of a checkpoint
    // (a restored engine starts with no token until the owner reinstalls
    // one), and never consulted when absent — so untokened runs are
    // bit-identical to the pre-cancellation engine.
    cancel: Option<bm_ptx::cancel::CancelToken>,
}

impl DesEngine {
    /// A fresh engine at cycle 0 with all SM resources free.
    ///
    /// The caller owns the `source.on_time_advance(0)` kickoff (see
    /// [`try_run_traced`]); a restored engine must not repeat it.
    pub fn new(cfg: &GpuConfig) -> Self {
        DesEngine {
            sms: (0..cfg.num_sms)
                .map(|_| SmState {
                    free_tbs: cfg.max_tbs_per_sm,
                    free_threads: cfg.max_threads_per_sm,
                    free_shared: cfg.shared_mem_per_sm,
                })
                .collect(),
            heap: BinaryHeap::new(),
            seq: 0,
            now: 0,
            running: 0,
            stats: DesStats::default(),
            last_t: 0,
            resident: vec![0; cfg.num_sms as usize],
            cancel: None,
        }
    }

    /// Installs a cooperative cancellation token, observed at the top of
    /// every [`step`](DesEngine::step). The check is pure — a token that
    /// never fires leaves the run bit-identical — and fires *between*
    /// steps, so no partial placement or completion batch is ever visible.
    pub fn set_cancel(&mut self, cancel: bm_ptx::cancel::CancelToken) {
        self.cancel = Some(cancel);
    }

    /// Current simulation time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Consumes the engine after [`StepOutcome::Finished`], stamping the
    /// final cycle count into the returned statistics.
    pub fn finish(mut self) -> DesStats {
        self.stats.total_cycles = self.now;
        self.stats
    }

    /// Captures the complete between-steps state.
    pub fn checkpoint(&self) -> DesCheckpoint {
        let mut events: Vec<(u64, u64, u32, TbDescriptor)> = self
            .heap
            .iter()
            .map(|Reverse((t, s, si, d))| (*t, *s, *si as u32, *d))
            .collect();
        events.sort_unstable();
        DesCheckpoint {
            sms: self
                .sms
                .iter()
                .map(|sm| (sm.free_tbs, sm.free_threads, sm.free_shared))
                .collect(),
            events,
            seq: self.seq,
            now: self.now,
            running: self.running,
            last_t: self.last_t,
            resident: self.resident.clone(),
            stats: self.stats.clone(),
        }
    }

    /// Rebuilds an engine from a [`checkpoint`](DesEngine::checkpoint)
    /// image. The image is trusted to be internally consistent; corrupt
    /// images are rejected upstream by checksum validation before they
    /// reach this constructor.
    pub fn from_checkpoint(ckpt: &DesCheckpoint) -> Self {
        DesEngine {
            sms: ckpt
                .sms
                .iter()
                .map(|&(free_tbs, free_threads, free_shared)| SmState {
                    free_tbs,
                    free_threads,
                    free_shared,
                })
                .collect(),
            heap: ckpt
                .events
                .iter()
                .map(|&(t, s, si, d)| Reverse((t, s, si as usize, d)))
                .collect(),
            seq: ckpt.seq,
            now: ckpt.now,
            running: ckpt.running,
            stats: ckpt.stats.clone(),
            last_t: ckpt.last_t,
            resident: ckpt.resident.clone(),
            cancel: None,
        }
    }

    /// The finish time of the earliest in-flight completion event, if any.
    ///
    /// Used by multi-device coordinators to compute a conservative global
    /// time bound without disturbing engine state.
    pub fn next_completion_at(&self) -> Option<u64> {
        self.heap.peek().map(|Reverse((t, ..))| *t)
    }

    /// Runs one iteration of the event loop.
    ///
    /// # Errors
    ///
    /// Exactly as [`try_run`]: [`DesError::Deadlock`] on a no-progress
    /// state, [`DesError::SourceAbort`] when the source flags a failure.
    pub fn step<T: Tracer>(
        &mut self,
        source: &mut dyn TbSource,
        tracer: &T,
    ) -> Result<StepOutcome, DesError> {
        match self.step_inner(source, tracer, None)? {
            BoundedOutcome::Progressed => Ok(StepOutcome::Progressed),
            BoundedOutcome::Finished => Ok(StepOutcome::Finished),
            // `step_inner` only blocks when a horizon is supplied.
            BoundedOutcome::Blocked => unreachable!("unbounded step never blocks"),
        }
    }

    /// Runs one iteration of the event loop, refusing to advance the clock
    /// to `horizon` or beyond.
    ///
    /// Placements at the current time always happen (they consume no
    /// simulated time); only the time-advance is bounded. A no-progress
    /// state is *not* an error here — local starvation is expected while a
    /// device waits on cross-device messages, so it surfaces as
    /// [`BoundedOutcome::Blocked`] and global-deadlock detection is the
    /// coordinator's job.
    ///
    /// # Errors
    ///
    /// [`DesError::SourceAbort`] and [`DesError::Cancelled`] exactly as
    /// [`step`](DesEngine::step); never [`DesError::Deadlock`].
    pub fn step_bounded<T: Tracer>(
        &mut self,
        source: &mut dyn TbSource,
        tracer: &T,
        horizon: u64,
    ) -> Result<BoundedOutcome, DesError> {
        self.step_inner(source, tracer, Some(horizon))
    }

    fn step_inner<T: Tracer>(
        &mut self,
        source: &mut dyn TbSource,
        tracer: &T,
        horizon: Option<u64>,
    ) -> Result<BoundedOutcome, DesError> {
        if source.aborted() {
            return Err(DesError::SourceAbort { cycle: self.now });
        }
        if let Some(cause) = self.cancel.as_ref().and_then(|t| t.fired()) {
            return Err(DesError::Cancelled {
                cycle: self.now,
                cause,
            });
        }
        // Placement phase: place as many ready TBs as resources allow.
        loop {
            let popped = {
                let sms = &self.sms;
                let fits = |threads: u32, shared: u32| {
                    sms.iter().any(|sm| {
                        sm.free_tbs >= 1 && sm.free_threads >= threads && sm.free_shared >= shared
                    })
                };
                source.pop_ready(self.now, &fits)
            };
            let Some(d) = popped else {
                break;
            };
            // Most-free-threads SM for load balance.
            let (si, _) = self
                .sms
                .iter()
                .enumerate()
                .filter(|(_, sm)| {
                    sm.free_tbs >= 1
                        && sm.free_threads >= d.threads
                        && sm.free_shared >= d.shared_bytes
                })
                .max_by_key(|(_, sm)| sm.free_threads)
                .expect("pop_ready must respect the fits predicate");
            self.sms[si].free_tbs -= 1;
            self.sms[si].free_threads -= d.threads;
            self.sms[si].free_shared -= d.shared_bytes;
            self.stats.concurrency_integral +=
                self.running as u128 * (self.now - self.last_t) as u128;
            self.last_t = self.now;
            self.running += 1;
            source.on_tb_start(d.key, self.now);
            self.heap
                .push(Reverse((self.now + d.duration.max(1), self.seq, si, d)));
            self.stats
                .schedule
                .push((d.key, self.now, self.now + d.duration.max(1)));
            self.seq += 1;
            self.resident[si] += 1;
            if T::ENABLED {
                tracer.emit(TraceEvent::SmOccupancy {
                    cycle: self.now,
                    sm: si as u32,
                    resident: self.resident[si],
                });
            }
        }
        if source.is_done() && self.heap.is_empty() {
            return Ok(BoundedOutcome::Finished);
        }
        // Advance to the next completion or external event.
        let next_completion = self.heap.peek().map(|Reverse((t, ..))| *t);
        let next_external = source.next_event_at(self.now).filter(|&t| t > self.now);
        let next = match (next_completion, next_external) {
            (Some(a), Some(b)) => a.min(b),
            (Some(a), None) => a,
            (None, Some(b)) => b,
            (None, None) => {
                if horizon.is_some() {
                    // Bounded mode: waiting on the coordinator, not stuck.
                    return Ok(BoundedOutcome::Blocked);
                }
                if source.aborted() {
                    return Err(DesError::SourceAbort { cycle: self.now });
                }
                return Err(DesError::Deadlock(DeadlockSnapshot {
                    cycle: self.now,
                    tbs_executed: self.stats.tbs_executed,
                    resident: self.heap.iter().map(|Reverse((.., d))| d.key).collect(),
                    diagnostics: source.diagnostics(),
                }));
            }
        };
        if let Some(h) = horizon {
            if next >= h {
                return Ok(BoundedOutcome::Blocked);
            }
        }
        debug_assert!(next >= self.now, "time must not move backwards");
        self.stats.concurrency_integral += self.running as u128 * (next - self.last_t) as u128;
        self.last_t = next;
        self.now = next;
        // Pop all completions at `now`.
        while let Some(Reverse((t, ..))) = self.heap.peek() {
            if *t > self.now {
                break;
            }
            let Reverse((t_fin, _, si, d)) = self.heap.pop().unwrap();
            self.sms[si].free_tbs += 1;
            self.sms[si].free_threads += d.threads;
            self.sms[si].free_shared += d.shared_bytes;
            self.running -= 1;
            self.stats.tbs_executed += 1;
            self.resident[si] -= 1;
            if T::ENABLED {
                tracer.emit(TraceEvent::TbSpan {
                    id: TbId {
                        kernel: d.key.kernel_seq,
                        tb: d.key.tb,
                    },
                    sm: si as u32,
                    start: t_fin - d.duration.max(1),
                    finish: t_fin,
                });
                tracer.emit(TraceEvent::SmOccupancy {
                    cycle: t_fin,
                    sm: si as u32,
                    resident: self.resident[si],
                });
            }
            source.on_tb_complete(d.key, self.now);
        }
        source.on_time_advance(self.now);
        Ok(BoundedOutcome::Progressed)
    }
}

/// Runs the engine until the source reports completion.
///
/// # Panics
///
/// Panics if the source deadlocks: nothing is running, nothing is ready,
/// no future event exists, yet `is_done()` is false. That always indicates
/// a policy bug and is surfaced loudly. Use [`try_run`] to receive the
/// deadlock as a typed error with a diagnostic snapshot instead.
pub fn run(cfg: &GpuConfig, source: &mut dyn TbSource) -> DesStats {
    match try_run(cfg, source) {
        Ok(stats) => stats,
        Err(DesError::Deadlock(snap)) => {
            panic!(
                "DES deadlock at cycle {}: no running TBs, no events, not done\n{snap}",
                snap.cycle
            )
        }
        Err(e @ (DesError::SourceAbort { .. } | DesError::Cancelled { .. })) => panic!("{e}"),
    }
}

/// Runs the engine until the source reports completion, surfacing
/// no-progress states as [`DesError::Deadlock`] with a diagnostic snapshot
/// instead of panicking (the watchdog behind BlockMaestro's fault
/// tolerance: corrupted dependency metadata that strands a thread block
/// is reported, not looped on).
///
/// # Errors
///
/// [`DesError::Deadlock`] when no further progress is possible;
/// [`DesError::SourceAbort`] when the source signals an internal failure.
pub fn try_run(cfg: &GpuConfig, source: &mut dyn TbSource) -> Result<DesStats, DesError> {
    try_run_traced(cfg, source, &NullTracer)
}

/// [`try_run`] with a trace sink: emits a [`TraceEvent::TbSpan`] per
/// completed thread block and [`TraceEvent::SmOccupancy`] transitions on
/// every placement and completion. Tracing is pure observation — the
/// returned [`DesStats`] are bit-identical to an untraced run — and with
/// [`NullTracer`] every emission site folds away (`T::ENABLED` is a
/// constant `false`).
///
/// # Errors
///
/// Exactly as [`try_run`].
pub fn try_run_traced<T: Tracer>(
    cfg: &GpuConfig,
    source: &mut dyn TbSource,
    tracer: &T,
) -> Result<DesStats, DesError> {
    let mut engine = DesEngine::new(cfg);
    source.on_time_advance(0);
    loop {
        if engine.step(source, tracer)? == StepOutcome::Finished {
            return Ok(engine.finish());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    /// A trivial source: a queue of TBs all ready at their release time.
    struct QueueSource {
        pending: VecDeque<(u64, TbDescriptor)>,
        outstanding: u32,
    }

    impl QueueSource {
        fn new(items: Vec<(u64, TbDescriptor)>) -> Self {
            QueueSource {
                outstanding: items.len() as u32,
                pending: items.into(),
            }
        }
    }

    impl TbSource for QueueSource {
        fn pop_ready(&mut self, now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
            if let Some(&(t, d)) = self.pending.front() {
                if t <= now && fits(d.threads, d.shared_bytes) {
                    self.pending.pop_front();
                    return Some(d);
                }
            }
            None
        }

        fn on_tb_complete(&mut self, _key: TbKey, _now: u64) {
            self.outstanding -= 1;
        }

        fn next_event_at(&self, now: u64) -> Option<u64> {
            self.pending.front().map(|&(t, _)| t.max(now))
        }

        fn is_done(&self) -> bool {
            self.outstanding == 0 && self.pending.is_empty()
        }
    }

    fn desc(seq: u32, tb: u32, threads: u32, duration: u64) -> TbDescriptor {
        TbDescriptor {
            key: TbKey {
                kernel_seq: seq,
                tb,
            },
            threads,
            shared_bytes: 0,
            duration,
        }
    }

    #[test]
    fn serial_when_one_slot() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 1;
        let mut src = QueueSource::new(vec![
            (0, desc(0, 0, 32, 100)),
            (0, desc(0, 1, 32, 100)),
            (0, desc(0, 2, 32, 100)),
        ]);
        let stats = run(&cfg, &mut src);
        assert_eq!(stats.total_cycles, 300);
        assert_eq!(stats.tbs_executed, 3);
        assert!((stats.avg_concurrency() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_when_slots_available() {
        let cfg = GpuConfig::small(); // 4 SMs x 4 TBs
        let mut src = QueueSource::new((0..16).map(|i| (0, desc(0, i, 32, 100))).collect());
        let stats = run(&cfg, &mut src);
        assert_eq!(stats.total_cycles, 100);
        assert!((stats.avg_concurrency() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn release_times_respected() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 4;
        let mut src = QueueSource::new(vec![(0, desc(0, 0, 32, 50)), (500, desc(1, 0, 32, 50))]);
        let stats = run(&cfg, &mut src);
        assert_eq!(stats.total_cycles, 550);
        // Idle gap shows up as low average concurrency.
        assert!(stats.avg_concurrency() < 0.5);
    }

    #[test]
    fn thread_capacity_limits_placement() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 8;
        cfg.max_threads_per_sm = 512;
        // 4 blocks of 256 threads: only 2 fit at a time.
        let mut src = QueueSource::new((0..4).map(|i| (0, desc(0, i, 256, 100))).collect());
        let stats = run(&cfg, &mut src);
        assert_eq!(stats.total_cycles, 200);
    }

    #[test]
    fn schedule_records_start_and_finish() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 1;
        let mut src = QueueSource::new(vec![(0, desc(0, 0, 32, 10)), (0, desc(0, 1, 32, 20))]);
        let stats = run(&cfg, &mut src);
        assert_eq!(stats.schedule.len(), 2);
        assert_eq!(stats.schedule[0].1, 0);
        assert_eq!(stats.schedule[0].2, 10);
        assert_eq!(stats.schedule[1].1, 10);
        assert_eq!(stats.schedule[1].2, 30);
    }

    /// A source that never becomes ready nor done: the canonical deadlock.
    struct Stuck {
        progressed: u32,
    }
    impl TbSource for Stuck {
        fn pop_ready(
            &mut self,
            _now: u64,
            _fits: &dyn Fn(u32, u32) -> bool,
        ) -> Option<TbDescriptor> {
            if self.progressed > 0 {
                self.progressed -= 1;
                return Some(desc(0, self.progressed, 32, 40));
            }
            None
        }
        fn on_tb_complete(&mut self, _key: TbKey, _now: u64) {}
        fn next_event_at(&self, _now: u64) -> Option<u64> {
            None
        }
        fn is_done(&self) -> bool {
            false
        }
        fn diagnostics(&self) -> Vec<String> {
            vec!["stuck source: 1 TB waiting on a counter that never zeroes".into()]
        }
    }

    #[test]
    #[should_panic(expected = "DES deadlock")]
    fn deadlock_panics() {
        run(&GpuConfig::small(), &mut Stuck { progressed: 0 });
    }

    #[test]
    fn watchdog_returns_typed_deadlock_with_snapshot() {
        let err = try_run(&GpuConfig::small(), &mut Stuck { progressed: 2 }).unwrap_err();
        let DesError::Deadlock(snap) = err else {
            panic!("expected deadlock, got {err}");
        };
        // The two TBs that did run are counted; progress stops after them.
        assert_eq!(snap.tbs_executed, 2);
        assert_eq!(snap.cycle, 40);
        assert!(snap.resident.is_empty());
        assert_eq!(snap.diagnostics.len(), 1);
        assert!(snap.to_string().contains("never zeroes"));
    }

    #[test]
    fn source_abort_stops_the_run() {
        struct Abort;
        impl TbSource for Abort {
            fn pop_ready(
                &mut self,
                _now: u64,
                _fits: &dyn Fn(u32, u32) -> bool,
            ) -> Option<TbDescriptor> {
                None
            }
            fn on_tb_complete(&mut self, _key: TbKey, _now: u64) {}
            fn next_event_at(&self, _now: u64) -> Option<u64> {
                None
            }
            fn is_done(&self) -> bool {
                false
            }
            fn aborted(&self) -> bool {
                true
            }
        }
        let err = try_run(&GpuConfig::small(), &mut Abort).unwrap_err();
        assert_eq!(err, DesError::SourceAbort { cycle: 0 });
    }

    #[test]
    fn traced_run_is_inert_and_emits_spans() {
        use bm_trace::RecordingTracer;
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 2;
        cfg.max_tbs_per_sm = 2;
        let items: Vec<(u64, TbDescriptor)> = (0..6).map(|i| (0, desc(0, i, 32, 25))).collect();
        let tracer = RecordingTracer::new();
        let traced = try_run_traced(&cfg, &mut QueueSource::new(items.clone()), &tracer).unwrap();
        let untraced = try_run(&cfg, &mut QueueSource::new(items)).unwrap();
        assert_eq!(traced, untraced);
        let events = tracer.events();
        let spans = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::TbSpan { .. }))
            .count();
        assert_eq!(spans, 6);
        // Occupancy transitions: one per placement + one per completion.
        let occ = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::SmOccupancy { .. }))
            .count();
        assert_eq!(occ, 12);
        // Spans agree with the recorded schedule.
        for (key, start, finish) in &traced.schedule {
            assert!(events.iter().any(|e| matches!(
                e,
                TraceEvent::TbSpan { id, start: s, finish: f, .. }
                    if id.kernel == key.kernel_seq && id.tb == key.tb && s == start && f == finish
            )));
        }
    }

    #[test]
    fn checkpoint_midway_resumes_bit_identically() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 2;
        cfg.max_tbs_per_sm = 2;
        let items: Vec<(u64, TbDescriptor)> = (0..10)
            .map(|i| (u64::from(i) * 7, desc(0, i, 32, 25 + u64::from(i % 3))))
            .collect();
        let reference = try_run(&cfg, &mut QueueSource::new(items.clone())).unwrap();
        // Run a few steps, snapshot, restore into a fresh engine, finish.
        // The source is re-wound by replaying the same number of steps on a
        // second copy (sources carry their own checkpointing upstream).
        for stop_after in [1usize, 3, 5] {
            let mut src = QueueSource::new(items.clone());
            let mut engine = DesEngine::new(&cfg);
            src.on_time_advance(0);
            for _ in 0..stop_after {
                assert_eq!(
                    engine.step(&mut src, &NullTracer).unwrap(),
                    StepOutcome::Progressed
                );
            }
            let ckpt = engine.checkpoint();
            assert_eq!(DesEngine::from_checkpoint(&ckpt).checkpoint(), ckpt);
            let mut resumed = DesEngine::from_checkpoint(&ckpt);
            loop {
                if resumed.step(&mut src, &NullTracer).unwrap() == StepOutcome::Finished {
                    break;
                }
            }
            assert_eq!(resumed.finish(), reference, "stop_after={stop_after}");
        }
    }

    #[test]
    fn bounded_stepping_matches_unbounded_run() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 2;
        cfg.max_tbs_per_sm = 2;
        let items: Vec<(u64, TbDescriptor)> = (0..10)
            .map(|i| (u64::from(i) * 9, desc(0, i, 32, 20 + u64::from(i % 4))))
            .collect();
        let reference = try_run(&cfg, &mut QueueSource::new(items.clone())).unwrap();
        // Advance in fixed-size epochs: step until Blocked, then raise the
        // horizon. The composed run must be bit-identical to the unbounded
        // one, and a Blocked engine's clock must stay below the horizon.
        let mut src = QueueSource::new(items);
        let mut engine = DesEngine::new(&cfg);
        src.on_time_advance(0);
        let mut horizon = 7u64;
        let stats = loop {
            match engine.step_bounded(&mut src, &NullTracer, horizon).unwrap() {
                BoundedOutcome::Progressed => {
                    assert!(engine.now() < horizon);
                }
                BoundedOutcome::Blocked => {
                    assert!(engine.now() < horizon);
                    horizon += 7;
                }
                BoundedOutcome::Finished => break engine.finish(),
            }
        };
        assert_eq!(stats, reference);
    }

    #[test]
    fn bounded_step_reports_blocked_not_deadlock() {
        // A starved source is Blocked under a horizon, Deadlock without.
        let mut stuck = Stuck { progressed: 0 };
        let mut engine = DesEngine::new(&GpuConfig::small());
        assert_eq!(
            engine.step_bounded(&mut stuck, &NullTracer, 100).unwrap(),
            BoundedOutcome::Blocked
        );
        assert!(matches!(
            engine.step(&mut stuck, &NullTracer),
            Err(DesError::Deadlock(_))
        ));
    }

    #[test]
    fn try_run_matches_run_on_clean_sources() {
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 1;
        let items: Vec<(u64, TbDescriptor)> = (0..5).map(|i| (0, desc(0, i, 32, 10))).collect();
        let a = try_run(&cfg, &mut QueueSource::new(items.clone())).unwrap();
        let b = run(&cfg, &mut QueueSource::new(items));
        assert_eq!(a, b);
    }
}
