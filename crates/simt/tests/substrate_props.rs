//! Substrate-level properties of the timing model and discrete-event
//! engine: resource conservation, work conservation, and the scheduler
//! behaviours the evaluation depends on.

use bm_ptx::trace::{TbTrace, TraceEv, WarpTrace};
use bm_simt::config::GpuConfig;
use bm_simt::des::{self, TbDescriptor, TbKey, TbSource};
use bm_simt::timing::simulate_sm;
use bm_testkit::{check_cases, prop_ensure};
use std::collections::VecDeque;

fn tb_of(warps: Vec<Vec<TraceEv>>) -> TbTrace {
    TbTrace {
        warps: warps
            .into_iter()
            .map(|events| WarpTrace { events })
            .collect(),
        dyn_instrs: 0,
        global_transactions: 0,
        global_accesses: 0,
    }
}

#[test]
fn shared_memory_limits_placement() {
    // Blocks needing 32 KB of shared memory: only one fits per 48 KB SM.
    let mut cfg = GpuConfig::small();
    cfg.num_sms = 1;
    cfg.max_tbs_per_sm = 8;
    struct Src {
        q: VecDeque<TbDescriptor>,
        left: u32,
    }
    impl TbSource for Src {
        fn pop_ready(&mut self, _n: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
            if let Some(d) = self.q.front() {
                if fits(d.threads, d.shared_bytes) {
                    return self.q.pop_front();
                }
            }
            None
        }
        fn on_tb_complete(&mut self, _k: TbKey, _n: u64) {
            self.left -= 1;
        }
        fn next_event_at(&self, _n: u64) -> Option<u64> {
            None
        }
        fn is_done(&self) -> bool {
            self.left == 0 && self.q.is_empty()
        }
    }
    let mk = |tb: u32| TbDescriptor {
        key: TbKey { kernel_seq: 0, tb },
        threads: 64,
        shared_bytes: 32 * 1024,
        duration: 100,
    };
    let mut src = Src {
        q: (0..3).map(mk).collect(),
        left: 3,
    };
    let stats = des::run(&cfg, &mut src);
    // 3 blocks strictly serialized by shared memory.
    assert_eq!(stats.total_cycles, 300);
}

#[test]
fn gto_greedy_keeps_issuing_same_warp() {
    // Two warps: warp 0 has a long compute burst, warp 1 a short one.
    // Greedy issue gives warp 0 the scheduler until it stalls, so the
    // makespan matches issue-bandwidth sharing, not round-robin penalty.
    let mut cfg = GpuConfig::titan_x_pascal();
    cfg.issue_width = 1;
    let tb = tb_of(vec![
        vec![TraceEv::Compute(100)],
        vec![TraceEv::Compute(50)],
    ]);
    let t = simulate_sm(&cfg, &[&tb]);
    // 150 instructions through a single issue port.
    assert_eq!(t.makespan, 150);
    assert_eq!(t.issued, 150);
}

#[test]
fn memory_port_is_shared_between_blocks() {
    let cfg = GpuConfig::titan_x_pascal();
    let tb = tb_of(vec![vec![TraceEv::Mem {
        segments: 8,
        store: false,
    }]]);
    let one = simulate_sm(&cfg, &[&tb]);
    let eight: Vec<&TbTrace> = (0..8).map(|_| &tb).collect();
    let many = simulate_sm(&cfg, &eight);
    // 64 transactions serialize through the SM's DRAM share.
    assert_eq!(many.transactions, 64);
    assert!(many.makespan >= one.makespan + 56 * cfg.mem_cycles_per_txn);
}

/// Work conservation: with one SM and one TB slot, total time equals
/// the sum of durations regardless of release pattern (releases only
/// add gaps, never shrink work).
#[test]
fn single_slot_time_is_at_least_total_work() {
    check_cases(0x50B7, 256, |rng| {
        let durations: Vec<u64> = (0..rng.range_usize(1, 20))
            .map(|_| rng.range_u64(1, 500))
            .collect();
        let mut cfg = GpuConfig::small();
        cfg.num_sms = 1;
        cfg.max_tbs_per_sm = 1;
        struct Src {
            q: VecDeque<TbDescriptor>,
            left: u32,
        }
        impl TbSource for Src {
            fn pop_ready(
                &mut self,
                _n: u64,
                fits: &dyn Fn(u32, u32) -> bool,
            ) -> Option<TbDescriptor> {
                if let Some(d) = self.q.front() {
                    if fits(d.threads, d.shared_bytes) {
                        return self.q.pop_front();
                    }
                }
                None
            }
            fn on_tb_complete(&mut self, _k: TbKey, _n: u64) {
                self.left -= 1;
            }
            fn next_event_at(&self, _n: u64) -> Option<u64> {
                None
            }
            fn is_done(&self) -> bool {
                self.left == 0 && self.q.is_empty()
            }
        }
        let total: u64 = durations.iter().sum();
        let q: VecDeque<TbDescriptor> = durations
            .iter()
            .enumerate()
            .map(|(i, &d)| TbDescriptor {
                key: TbKey {
                    kernel_seq: 0,
                    tb: i as u32,
                },
                threads: 32,
                shared_bytes: 0,
                duration: d,
            })
            .collect();
        let n = q.len() as u32;
        let mut src = Src { q, left: n };
        let stats = des::run(&cfg, &mut src);
        prop_ensure!(stats.total_cycles == total);
        prop_ensure!(stats.tbs_executed == n as u64);
        // Concurrency integral equals total busy time.
        prop_ensure!(stats.concurrency_integral == total as u128);
        Ok(())
    });
}
