//! # bm-trace — deterministic cycle-stamped tracing & counters
//!
//! Every number the reproduction reports is an end-of-run aggregate; this
//! crate adds the *when*: a structured event-tracing and counter subsystem
//! wired through the whole stack (DES, engine, scheduler hardware, JIT
//! analysis pipeline, command queue).
//!
//! Design contract:
//!
//! * **Virtual time only.** Every timestamp is a simulation cycle (or, for
//!   pre-run phases like the analysis pipeline and the command queue, a
//!   deterministic virtual tick). No wall clocks anywhere, so two runs of
//!   the same application produce byte-identical traces.
//! * **Provably inert.** Tracing is observation only: a traced run and an
//!   untraced run yield bit-identical `RunReport`s (enforced by the
//!   `trace_determinism` suite). Sinks take `&self` and never feed
//!   anything back into the simulation.
//! * **Zero overhead when disabled.** [`Tracer`] is statically dispatched;
//!   the [`NullTracer`] sink sets `Tracer::ENABLED = false` and every
//!   emission site is guarded by `if T::ENABLED`, so the disabled path
//!   compiles to nothing — event payloads are never even constructed.
//!
//! The pieces:
//!
//! * [`event::TraceEvent`] — the typed event taxonomy (TB lifecycle, SM
//!   occupancy, kernel launch/pre-launch/retire, DLB/PCB activity,
//!   analysis spans, command-queue submits, pressure/quarantine/
//!   degradation instants);
//! * [`sink`] — the [`Tracer`] trait plus the [`NullTracer`] and
//!   [`RecordingTracer`] sinks;
//! * [`counters::CounterRegistry`] — monotonic counters and high-water
//!   gauges folded from the event stream;
//! * [`chrome`] — Chrome trace-event JSON export (loads in Perfetto /
//!   `chrome://tracing`): one track per SM plus host, cmdq, scheduler-HW,
//!   and analysis tracks;
//! * [`summary`] — a compact text summarizer;
//! * [`json`] — the dependency-free JSON writer/parser the exporter and
//!   `bmrun --json` build on.

#![deny(missing_docs)]

pub mod chrome;
pub mod counters;
pub mod event;
pub mod json;
pub mod sink;
pub mod summary;

pub use chrome::export_chrome_trace;
pub use counters::CounterRegistry;
pub use event::{AnalysisPhase, CmdKind, StallReason, TbId, TraceEvent};
pub use sink::{NullTracer, RecordingTracer, Tracer};
pub use summary::summarize;
