//! The counter registry: monotonic event counters plus high-water gauges,
//! folded incrementally from the event stream.

use std::collections::BTreeMap;

use crate::event::TraceEvent;

/// Monotonic counters and high-water gauges derived from a trace.
///
/// Counters are keyed by the event's [`TraceEvent::kind`] label plus a few
/// derived keys (e.g. `pcb_refetch`, `cache_hit`). Gauges track running
/// values with their observed maximum (high water). `BTreeMap` keeps
/// iteration — and therefore every export — deterministic.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct CounterRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, Gauge>,
}

/// A gauge: current value plus observed maximum.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Gauge {
    /// Most recent value.
    pub current: u64,
    /// Highest value ever set (the high-water mark).
    pub high_water: u64,
}

impl CounterRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to counter `key`, creating it at zero if absent.
    pub fn add(&mut self, key: &str, delta: u64) {
        if delta == 0 {
            return;
        }
        *self.counters.entry(key.to_string()).or_insert(0) += delta;
    }

    /// Increment counter `key` by one.
    pub fn bump(&mut self, key: &str) {
        self.add(key, 1);
    }

    /// Set gauge `key` to `value`, updating its high-water mark.
    pub fn set_gauge(&mut self, key: &str, value: u64) {
        let g = self.gauges.entry(key.to_string()).or_default();
        g.current = value;
        g.high_water = g.high_water.max(value);
    }

    /// Read counter `key` (0 if never touched).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Read gauge `key`, if ever set.
    pub fn gauge(&self, key: &str) -> Option<Gauge> {
        self.gauges.get(key).copied()
    }

    /// Iterate counters in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate gauges in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, Gauge)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Fold one event into the registry. Called by recording sinks on
    /// every emit, so registries stay consistent with the event stream.
    pub fn fold(&mut self, ev: &TraceEvent) {
        self.bump(ev.kind());
        match ev {
            TraceEvent::TbStall {
                cycle, ready_at, ..
            } => {
                self.add("stall_cycles", cycle.saturating_sub(*ready_at));
            }
            TraceEvent::KernelIssue {
                prelaunched: true, ..
            } => {
                self.bump("kernel_prelaunch");
            }
            TraceEvent::SmOccupancy { sm, resident, .. } => {
                self.set_gauge(&format!("sm{sm}_resident"), *resident as u64);
            }
            TraceEvent::DlbInsert {
                fetch_txns,
                encoded,
                ..
            } => {
                self.add("dlb_fetch_txns", *fetch_txns);
                if *encoded {
                    self.bump("dlb_encoded");
                }
            }
            TraceEvent::PcbInit { refetch: true, .. } => {
                self.bump("pcb_refetch");
            }
            TraceEvent::BufferLevels { dlb, pcb, .. } => {
                self.set_gauge("dlb_level", *dlb as u64);
                self.set_gauge("pcb_level", *pcb as u64);
            }
            TraceEvent::AffineFastPath {
                attempted,
                accepted,
                interpreted,
                synthesized,
                ..
            } => {
                if *attempted {
                    self.bump("affine_attempted");
                }
                if *accepted {
                    self.bump("affine_accepted");
                }
                self.add("tbs_interpreted", *interpreted as u64);
                self.add("tbs_synthesized", *synthesized as u64);
            }
            TraceEvent::CacheProbe { graph, hit, .. } => {
                let key = match (graph, hit) {
                    (false, true) => "cache_hit",
                    (false, false) => "cache_miss",
                    (true, true) => "graph_cache_hit",
                    (true, false) => "graph_cache_miss",
                };
                self.bump(key);
            }
            TraceEvent::ServeAdmit { queued, .. } => {
                self.set_gauge("serve_queue_depth", *queued as u64);
            }
            TraceEvent::ServeCancel { deadline, .. } => {
                self.bump(if *deadline {
                    "serve_deadline_miss"
                } else {
                    "serve_explicit_cancel"
                });
            }
            TraceEvent::ServeComplete { outcome, .. } => {
                self.bump(&format!("serve_outcome_{outcome}"));
            }
            TraceEvent::BreakerTransition { to, .. } => {
                self.bump(&format!("breaker_to_{to}"));
            }
            TraceEvent::ParallelDecision { fallback: true, .. } => {
                self.bump("parallel_serial_fallback");
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TbId;

    #[test]
    fn fold_derives_counters_and_gauges() {
        let mut reg = CounterRegistry::new();
        reg.fold(&TraceEvent::TbStall {
            cycle: 30,
            id: TbId { kernel: 0, tb: 1 },
            ready_at: 10,
            reason: crate::event::StallReason::Resources,
        });
        assert_eq!(reg.counter("tb_stall"), 1);
        assert_eq!(reg.counter("stall_cycles"), 20);

        reg.fold(&TraceEvent::BufferLevels {
            cycle: 5,
            dlb: 7,
            pcb: 3,
        });
        reg.fold(&TraceEvent::BufferLevels {
            cycle: 9,
            dlb: 2,
            pcb: 8,
        });
        let dlb = reg.gauge("dlb_level").unwrap();
        assert_eq!(dlb.current, 2);
        assert_eq!(dlb.high_water, 7);
        let pcb = reg.gauge("pcb_level").unwrap();
        assert_eq!(pcb.high_water, 8);

        reg.fold(&TraceEvent::CacheProbe {
            tick: 0,
            seq: 0,
            graph: true,
            hit: false,
        });
        assert_eq!(reg.counter("graph_cache_miss"), 1);
        assert_eq!(reg.counter("cache_hit"), 0);

        // Deterministic iteration order.
        let keys: Vec<&str> = reg.counters().map(|(k, _)| k).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }
}
