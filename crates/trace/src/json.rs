//! Dependency-free JSON support: a small value model with a writer, and a
//! strict recursive-descent parser.
//!
//! The workspace deliberately has no external dependencies, so the Chrome
//! exporter and `bmrun --json` build on this module instead of serde. The
//! parser exists primarily so the schema tests can round-trip and inspect
//! what the exporter wrote.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value. Objects use `BTreeMap` so serialization is deterministic
/// regardless of insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number. Stored as `f64`; integers up to 2^53 round-trip
    /// exactly, which covers every virtual-time stamp we emit.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Shorthand for a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Shorthand for an integer value.
    pub fn int(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// Lossless `u64`: values representable exactly in an `f64` (≤ 2^53)
    /// become numbers; anything larger becomes a decimal string, so
    /// counters like `u64::MAX` survive a serialize → parse → re-serialize
    /// round trip byte-identically.
    pub fn u64(v: u64) -> Json {
        const MAX_EXACT: u64 = 1 << 53;
        if v <= MAX_EXACT {
            Json::Num(v as f64)
        } else {
            Json::Str(v.to_string())
        }
    }

    /// Reads a value written by [`Json::u64`]: either an exact integer
    /// number or its decimal-string fallback.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            Json::Str(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member lookup on objects; `None` for anything else.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_str("\"")
}

use std::fmt::Write as _;

/// Parse a JSON document. Strict: rejects trailing garbage, comments, and
/// unquoted keys. Returns a human-readable error with a byte offset.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so this is
                    // always valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Json::obj([
            ("name", Json::str("k\"0\"\n")),
            ("ts", Json::int(12345)),
            ("ok", Json::Bool(true)),
            ("args", Json::Arr(vec![Json::Null, Json::Num(1.5)])),
        ]);
        let text = v.to_string();
        let back = parse(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("{'a':1}").is_err());
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , \"x\\u0041\" ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_str(),
            Some("xA")
        );
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::int(42).to_string(), "42");
        assert_eq!(Json::Num(1.5).to_string(), "1.5");
    }
}
