//! Tracer sinks: the statically-dispatched [`Tracer`] trait, the
//! zero-cost [`NullTracer`], and the in-memory [`RecordingTracer`].

use std::cell::RefCell;

use crate::counters::CounterRegistry;
use crate::event::TraceEvent;

/// A sink for structured trace events.
///
/// The trait is statically dispatched and carries a `const ENABLED`
/// discriminant: every emission site in the stack is written as
///
/// ```ignore
/// if T::ENABLED {
///     tracer.emit(TraceEvent::KernelIssue { .. });
/// }
/// ```
///
/// so that with [`NullTracer`] the branch folds to `if false` and the
/// event payload (including any `String` construction) is never built.
///
/// Sinks take `&self` — recording sinks use interior mutability — so a
/// single tracer can be shared by the DES engine and the policy source it
/// drives without aliasing conflicts. Sinks must be pure observers: a
/// conforming implementation never feeds information back into the
/// simulation, which is what makes the traced/untraced bit-identical
/// `RunReport` contract possible.
pub trait Tracer {
    /// Whether this sink records anything. Emission sites are guarded on
    /// this constant so disabled tracing compiles to nothing.
    const ENABLED: bool;

    /// Record one event. Implementations for disabled sinks should be an
    /// inline no-op.
    fn emit(&self, ev: TraceEvent);

    /// Number of events recorded so far, for sinks that retain their
    /// stream. Non-recording sinks return 0. The checkpoint subsystem uses
    /// this to delimit the run-phase slice of the stream that a snapshot
    /// must carry.
    fn recorded_len(&self) -> usize {
        0
    }

    /// Clone out the recorded events from index `from` onward, for sinks
    /// that retain their stream; empty otherwise. Used when capturing a
    /// snapshot's embedded trace slice.
    fn recorded_since(&self, _from: usize) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// The no-op sink: `ENABLED = false`, `emit` is an inline empty body.
/// With emission sites guarded on `T::ENABLED`, a run instantiated with
/// `NullTracer` contains no tracing code at all.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&self, _ev: TraceEvent) {}
}

/// An in-memory recording sink.
///
/// Collects every event in emission order (a deterministic order: the
/// simulation itself is deterministic and emission is single-threaded)
/// and folds each into a [`CounterRegistry`] as it arrives.
#[derive(Debug, Default)]
pub struct RecordingTracer {
    inner: RefCell<Recorded>,
}

#[derive(Debug, Default)]
struct Recorded {
    events: Vec<TraceEvent>,
    counters: CounterRegistry,
}

impl RecordingTracer {
    /// Create an empty recording sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clone out the recorded event stream in emission order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.clone()
    }

    /// Clone out the folded counter registry.
    pub fn counters(&self) -> CounterRegistry {
        self.inner.borrow().counters.clone()
    }

    /// Consume the sink, returning `(events, counters)` without cloning.
    pub fn into_parts(self) -> (Vec<TraceEvent>, CounterRegistry) {
        let inner = self.inner.into_inner();
        (inner.events, inner.counters)
    }
}

impl Tracer for RecordingTracer {
    const ENABLED: bool = true;

    fn emit(&self, ev: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        inner.counters.fold(&ev);
        inner.events.push(ev);
    }

    fn recorded_len(&self) -> usize {
        self.len()
    }

    fn recorded_since(&self, from: usize) -> Vec<TraceEvent> {
        let inner = self.inner.borrow();
        inner.events.get(from..).unwrap_or_default().to_vec()
    }
}

/// Forwarding impl so integration code can pass `&tracer` down the stack
/// while keeping static dispatch.
impl<T: Tracer + ?Sized> Tracer for &T {
    const ENABLED: bool = T::ENABLED;

    #[inline(always)]
    fn emit(&self, ev: TraceEvent) {
        (**self).emit(ev);
    }

    fn recorded_len(&self) -> usize {
        (**self).recorded_len()
    }

    fn recorded_since(&self, from: usize) -> Vec<TraceEvent> {
        (**self).recorded_since(from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TbId;

    // Compile-time checks: the null sink is disabled, both directly and
    // through the forwarding impl.
    const _: () = assert!(!NullTracer::ENABLED);
    const _: () = assert!(!<&NullTracer as Tracer>::ENABLED);

    #[test]
    fn null_tracer_is_disabled() {
        NullTracer.emit(TraceEvent::KernelArrive { cycle: 1, seq: 0 });
    }

    #[test]
    fn recording_tracer_keeps_order_and_counts() {
        let t = RecordingTracer::new();
        assert!(t.is_empty());
        t.emit(TraceEvent::KernelIssue {
            cycle: 5,
            seq: 0,
            name: "k0".into(),
            prelaunched: false,
        });
        // Through the forwarding impl, explicitly:
        <&RecordingTracer as Tracer>::emit(
            &&t,
            TraceEvent::TbSpan {
                id: TbId { kernel: 0, tb: 0 },
                sm: 1,
                start: 10,
                finish: 20,
            },
        );
        assert_eq!(t.len(), 2);
        let (events, counters) = t.into_parts();
        assert!(matches!(events[0], TraceEvent::KernelIssue { .. }));
        assert!(matches!(events[1], TraceEvent::TbSpan { .. }));
        assert_eq!(counters.counter("kernel_issue"), 1);
        assert_eq!(counters.counter("tb_span"), 1);
    }
}
