//! Compact text summarizer for recorded traces.

use std::fmt::Write as _;

use crate::counters::CounterRegistry;
use crate::event::TraceEvent;

/// Render a short human-readable summary of a recorded event stream.
///
/// Deterministic (same events → same text); suitable for golden tests and
/// `bmrun --trace-summary`.
pub fn summarize(events: &[TraceEvent]) -> String {
    let mut reg = CounterRegistry::new();
    let mut last_cycle: u64 = 0;
    let mut sms = std::collections::BTreeSet::new();
    let mut peak_resident: u64 = 0;
    for ev in events {
        reg.fold(ev);
        last_cycle = last_cycle.max(ev.timestamp());
        match ev {
            TraceEvent::TbSpan { sm, finish, .. } => {
                sms.insert(*sm);
                last_cycle = last_cycle.max(*finish);
            }
            TraceEvent::SmOccupancy { sm, resident, .. } => {
                sms.insert(*sm);
                peak_resident = peak_resident.max(*resident as u64);
            }
            _ => {}
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace: {} events, horizon {} cycles",
        events.len(),
        last_cycle
    );
    let _ = writeln!(
        out,
        "  kernels     issued {} (prelaunched {}), arrived {}, retired {}",
        reg.counter("kernel_issue"),
        reg.counter("kernel_prelaunch"),
        reg.counter("kernel_arrive"),
        reg.counter("kernel_retire"),
    );
    let _ = writeln!(
        out,
        "  thread blocks  {} executed, {} stalled ({} stall cycles total)",
        reg.counter("tb_span"),
        reg.counter("tb_stall"),
        reg.counter("stall_cycles"),
    );
    let _ = writeln!(
        out,
        "  SMs         {} active, peak residency {}",
        sms.len(),
        peak_resident
    );
    let dlb_hw = reg.gauge("dlb_level").map(|g| g.high_water).unwrap_or(0);
    let pcb_hw = reg.gauge("pcb_level").map(|g| g.high_water).unwrap_or(0);
    let _ = writeln!(
        out,
        "  scheduler-hw  {} DLB inserts ({} encoded, {} fetch txns), {} PCB inits ({} refetch), {} spills, high water dlb={} pcb={}",
        reg.counter("dlb_insert"),
        reg.counter("dlb_encoded"),
        reg.counter("dlb_fetch_txns"),
        reg.counter("pcb_init"),
        reg.counter("pcb_refetch"),
        reg.counter("pcb_spill"),
        dlb_hw,
        pcb_hw,
    );
    let _ = writeln!(
        out,
        "  analysis    {} spans, cache {}+{} hit/miss, graph cache {}+{}, affine {}/{} accepted/attempted, {} interpreted / {} synthesized TBs",
        reg.counter("analysis_span"),
        reg.counter("cache_hit"),
        reg.counter("cache_miss"),
        reg.counter("graph_cache_hit"),
        reg.counter("graph_cache_miss"),
        reg.counter("affine_accepted"),
        reg.counter("affine_attempted"),
        reg.counter("tbs_interpreted"),
        reg.counter("tbs_synthesized"),
    );
    let _ = writeln!(out, "  cmdq        {} submits", reg.counter("cmdq_submit"));
    let _ = writeln!(
        out,
        "  instants    {} pressure, {} quarantine, {} degradation, {} rung transitions",
        reg.counter("pressure"),
        reg.counter("quarantine"),
        reg.counter("degradation"),
        reg.counter("rung_transition"),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TbId;

    #[test]
    fn summary_counts_lines() {
        let events = vec![
            TraceEvent::KernelIssue {
                cycle: 0,
                seq: 0,
                name: "k".into(),
                prelaunched: true,
            },
            TraceEvent::TbSpan {
                id: TbId { kernel: 0, tb: 0 },
                sm: 0,
                start: 0,
                finish: 50,
            },
        ];
        let s = summarize(&events);
        assert!(s.contains("2 events"));
        assert!(s.contains("horizon 50 cycles"));
        assert!(s.contains("issued 1 (prelaunched 1)"));
        assert_eq!(s, summarize(&events));
    }
}
