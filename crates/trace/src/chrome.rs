//! Chrome trace-event JSON export.
//!
//! Produces a `{"traceEvents": [...]}` document loadable by Perfetto and
//! `chrome://tracing`. Timestamps are raw virtual cycles (analysis events
//! use the analysis tick clock, command-queue events their stream
//! position); the `ts` unit is nominally microseconds to the viewer, so
//! read "1 µs" as "1 cycle".
//!
//! Track layout:
//!
//! | pid      | process          | content                                       |
//! |----------|------------------|-----------------------------------------------|
//! | 1        | `host`           | kernel spans (issue→retire) + run instants    |
//! | 2        | `cmdq`           | command submits on the position clock         |
//! | 3        | `scheduler-hw`   | DLB/PCB events + buffer-level counters        |
//! | 4        | `analysis`       | JIT pipeline spans + cache/affine instants    |
//! | 6        | `interconnect`   | cross-device transfer spans (multi-GPU runs)  |
//! | 100 + n  | `SM n`           | TB spans (lane-assigned) + residency counter  |
//!
//! Multi-device runs emit a [`TraceEvent::MultiTopology`] header; when
//! present, global SM id `n` is rendered as process `D{d}·SM{s}` with
//! `d = n / sms_per_device`, `s = n % sms_per_device`, giving each device
//! its own visually-grouped block of SM lanes.
//!
//! Within a track, overlapping spans (e.g. pre-launched kernels, TBs
//! sharing an SM) are assigned to lanes by a deterministic first-fit so
//! that every `tid` carries a non-overlapping — hence properly nested —
//! span sequence.

use crate::event::TraceEvent;
use crate::json::Json;

/// pid of the host (kernel lifecycle) track.
pub const PID_HOST: u64 = 1;
/// pid of the command-queue track.
pub const PID_CMDQ: u64 = 2;
/// pid of the scheduler-hardware track.
pub const PID_SCHED_HW: u64 = 3;
/// pid of the analysis-pipeline track.
pub const PID_ANALYSIS: u64 = 4;
/// pid of the serve-layer (admission/retry/breaker) track.
pub const PID_SERVE: u64 = 5;
/// pid of the multi-GPU interconnect track.
pub const PID_LINK: u64 = 6;
/// pid of SM `n` is `PID_SM_BASE + n`.
pub const PID_SM_BASE: u64 = 100;

/// tid carrying instant events on the host and analysis tracks (span
/// lanes count up from 0, so a high tid keeps them visually separate).
pub const TID_INSTANTS: u64 = 90;

struct Span {
    start: u64,
    end: u64,
    name: String,
    args: Json,
}

/// Deterministic first-fit lane assignment: spans are visited in
/// `(start, end, name)` order and each goes to the first lane whose last
/// span has already finished. Guarantees non-overlap within a lane.
fn assign_lanes(spans: &[Span]) -> Vec<u64> {
    let mut order: Vec<usize> = (0..spans.len()).collect();
    order.sort_by(|&a, &b| {
        let sa = &spans[a];
        let sb = &spans[b];
        (sa.start, sa.end, sa.name.as_str()).cmp(&(sb.start, sb.end, sb.name.as_str()))
    });
    let mut lane_free_at: Vec<u64> = Vec::new();
    let mut lanes = vec![0u64; spans.len()];
    for idx in order {
        let s = &spans[idx];
        let lane = match lane_free_at.iter().position(|&free| free <= s.start) {
            Some(l) => l,
            None => {
                lane_free_at.push(0);
                lane_free_at.len() - 1
            }
        };
        lane_free_at[lane] = s.end.max(s.start.saturating_add(1));
        lanes[idx] = lane as u64;
    }
    lanes
}

fn complete_event(pid: u64, tid: u64, s: &Span) -> Json {
    Json::obj([
        ("ph", Json::str("X")),
        ("name", Json::str(s.name.clone())),
        ("pid", Json::int(pid)),
        ("tid", Json::int(tid)),
        ("ts", Json::int(s.start)),
        ("dur", Json::int(s.end.saturating_sub(s.start))),
        ("args", s.args.clone()),
    ])
}

fn instant_event(pid: u64, tid: u64, ts: u64, name: &str, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("i")),
        ("s", Json::str("t")),
        ("name", Json::str(name)),
        ("pid", Json::int(pid)),
        ("tid", Json::int(tid)),
        ("ts", Json::int(ts)),
        ("args", args),
    ])
}

fn counter_event(pid: u64, ts: u64, name: &str, args: Json) -> Json {
    Json::obj([
        ("ph", Json::str("C")),
        ("name", Json::str(name)),
        ("pid", Json::int(pid)),
        ("tid", Json::int(0)),
        ("ts", Json::int(ts)),
        ("args", args),
    ])
}

fn meta(pid: u64, tid: Option<u64>, kind: &str, name: &str) -> Json {
    let mut pairs = vec![
        ("ph", Json::str("M")),
        ("name", Json::str(kind)),
        ("pid", Json::int(pid)),
        ("args", Json::obj([("name", Json::str(name))])),
    ];
    if let Some(tid) = tid {
        pairs.push(("tid", Json::int(tid)));
    }
    Json::obj(pairs)
}

/// Export a recorded event stream as a Chrome trace-event JSON document.
///
/// The output is deterministic: same event stream in, byte-identical
/// document out.
pub fn export_chrome_trace(events: &[TraceEvent]) -> String {
    use std::collections::BTreeMap;

    let mut out: Vec<Json> = Vec::new();
    let mut thread_names: BTreeMap<(u64, u64), String> = BTreeMap::new();
    let mut process_names: BTreeMap<u64, String> = BTreeMap::new();

    // ---- multi-device topology header --------------------------------
    let topo: Option<(u32, u32)> = events.iter().find_map(|ev| match ev {
        TraceEvent::MultiTopology {
            devices,
            sms_per_device,
        } => Some((*devices, *sms_per_device)),
        _ => None,
    });
    let sm_process_name = |sm: u32| -> String {
        match topo {
            Some((devices, per)) if devices > 1 && per > 0 => {
                format!("D{}·SM{}", sm / per, sm % per)
            }
            _ => format!("SM {sm}"),
        }
    };

    // ---- kernel lifecycle → host spans -------------------------------
    #[derive(Default)]
    struct KernelLife {
        name: String,
        issue: Option<u64>,
        prelaunched: bool,
        arrive: Option<u64>,
        retire: Option<u64>,
    }
    let mut kernels: BTreeMap<u32, KernelLife> = BTreeMap::new();
    let mut last_cycle: u64 = 0;
    for ev in events {
        match ev {
            TraceEvent::KernelIssue {
                cycle,
                seq,
                name,
                prelaunched,
            } => {
                let k = kernels.entry(*seq).or_default();
                k.name = name.clone();
                k.issue = Some(*cycle);
                k.prelaunched = *prelaunched;
            }
            TraceEvent::KernelArrive { cycle, seq } => {
                kernels.entry(*seq).or_default().arrive = Some(*cycle);
            }
            TraceEvent::KernelRetire { cycle, seq } => {
                kernels.entry(*seq).or_default().retire = Some(*cycle);
            }
            _ => {}
        }
        last_cycle = last_cycle.max(ev.timestamp());
        if let TraceEvent::TbSpan { finish, .. } = ev {
            last_cycle = last_cycle.max(*finish);
        }
    }
    let kernel_spans: Vec<Span> = kernels
        .iter()
        .filter_map(|(seq, k)| {
            let start = k.issue?;
            let end = k.retire.unwrap_or(last_cycle).max(start);
            let mut name = k.name.clone();
            if name.is_empty() {
                name = format!("kernel{seq}");
            }
            Some(Span {
                start,
                end,
                name,
                args: Json::obj([
                    ("seq", Json::int(*seq as u64)),
                    ("prelaunched", Json::Bool(k.prelaunched)),
                    ("arrive", k.arrive.map(Json::int).unwrap_or(Json::Null)),
                ]),
            })
        })
        .collect();
    if !kernel_spans.is_empty() {
        process_names.insert(PID_HOST, "host".to_string());
        let lanes = assign_lanes(&kernel_spans);
        for (s, lane) in kernel_spans.iter().zip(&lanes) {
            thread_names
                .entry((PID_HOST, *lane))
                .or_insert_with(|| format!("kernels-{lane}"));
            out.push(complete_event(PID_HOST, *lane, s));
        }
    }

    // ---- analysis pipeline spans -------------------------------------
    let analysis_spans: Vec<Span> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::AnalysisSpan {
                seq,
                name,
                phase,
                start_tick,
                end_tick,
            } => Some(Span {
                start: *start_tick,
                end: (*end_tick).max(*start_tick),
                name: format!("{name}/{phase}"),
                args: Json::obj([
                    ("seq", Json::int(*seq as u64)),
                    ("phase", Json::str(phase.to_string())),
                ]),
            }),
            _ => None,
        })
        .collect();
    if !analysis_spans.is_empty() {
        process_names.insert(PID_ANALYSIS, "analysis".to_string());
        let lanes = assign_lanes(&analysis_spans);
        for (s, lane) in analysis_spans.iter().zip(&lanes) {
            thread_names
                .entry((PID_ANALYSIS, *lane))
                .or_insert_with(|| format!("pipeline-{lane}"));
            out.push(complete_event(PID_ANALYSIS, *lane, s));
        }
    }

    // ---- SM tracks: TB spans (lane-assigned per SM) ------------------
    let mut per_sm: BTreeMap<u32, Vec<Span>> = BTreeMap::new();
    for ev in events {
        if let TraceEvent::TbSpan {
            id,
            sm,
            start,
            finish,
        } = ev
        {
            per_sm.entry(*sm).or_default().push(Span {
                start: *start,
                end: (*finish).max(*start),
                name: id.to_string(),
                args: Json::obj([
                    ("kernel", Json::int(id.kernel as u64)),
                    ("tb", Json::int(id.tb as u64)),
                ]),
            });
        }
    }
    for (sm, spans) in &per_sm {
        let pid = PID_SM_BASE + *sm as u64;
        process_names.insert(pid, sm_process_name(*sm));
        let lanes = assign_lanes(spans);
        for (s, lane) in spans.iter().zip(&lanes) {
            thread_names
                .entry((pid, *lane))
                .or_insert_with(|| format!("lane {lane}"));
            out.push(complete_event(pid, *lane, s));
        }
    }

    // ---- interconnect track: transfer spans (send → arrival) ---------
    let xfer_spans: Vec<Span> = events
        .iter()
        .filter_map(|ev| match ev {
            TraceEvent::XferDone {
                cycle,
                sent,
                src,
                dst,
                id,
                bytes,
            } => Some(Span {
                start: *sent,
                end: (*cycle).max(*sent),
                name: format!("{id} d{src}→d{dst}"),
                args: Json::obj([
                    ("src", Json::int(*src as u64)),
                    ("dst", Json::int(*dst as u64)),
                    ("bytes", Json::int(*bytes)),
                ]),
            }),
            _ => None,
        })
        .collect();
    if !xfer_spans.is_empty() {
        process_names.insert(PID_LINK, "interconnect".to_string());
        let lanes = assign_lanes(&xfer_spans);
        for (s, lane) in xfer_spans.iter().zip(&lanes) {
            thread_names
                .entry((PID_LINK, *lane))
                .or_insert_with(|| format!("link {lane}"));
            out.push(complete_event(PID_LINK, *lane, s));
        }
    }

    // ---- single pass for instants and counters -----------------------
    for ev in events {
        match ev {
            TraceEvent::SmOccupancy {
                cycle,
                sm,
                resident,
            } => {
                let pid = PID_SM_BASE + *sm as u64;
                process_names.insert(pid, sm_process_name(*sm));
                out.push(counter_event(
                    pid,
                    *cycle,
                    "resident",
                    Json::obj([("tbs", Json::int(*resident as u64))]),
                ));
            }
            TraceEvent::TbStall {
                cycle,
                id,
                ready_at,
                reason,
            } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    &format!("stall {id}"),
                    Json::obj([
                        ("ready_at", Json::int(*ready_at)),
                        ("stalled", Json::int(cycle.saturating_sub(*ready_at))),
                        ("reason", Json::str(reason.to_string())),
                    ]),
                ));
            }
            TraceEvent::Pressure {
                cycle,
                spill,
                window_before,
                window_after,
            } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    "pressure",
                    Json::obj([
                        ("spill", Json::int(*spill)),
                        ("window_before", Json::int(*window_before as u64)),
                        ("window_after", Json::int(*window_after as u64)),
                    ]),
                ));
            }
            TraceEvent::Quarantine {
                cycle,
                kernel,
                round,
            } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    "quarantine",
                    Json::obj([
                        ("kernel", Json::int(*kernel as u64)),
                        ("round", Json::int(*round as u64)),
                    ]),
                ));
            }
            TraceEvent::DegradationStamp {
                cycle,
                seq,
                rung,
                reason,
            } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    "degradation",
                    Json::obj([
                        ("seq", Json::int(*seq as u64)),
                        ("rung", Json::str(rung.clone())),
                        ("reason", Json::str(reason.clone())),
                    ]),
                ));
            }
            TraceEvent::CheckpointSave {
                cycle,
                retired,
                bytes,
            } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    "checkpoint-save",
                    Json::obj([
                        ("retired", Json::int(*retired as u64)),
                        ("bytes", Json::int(*bytes)),
                    ]),
                ));
            }
            TraceEvent::CheckpointLoad { cycle, retired } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    *cycle,
                    "checkpoint-load",
                    Json::obj([("retired", Json::int(*retired as u64))]),
                ));
            }
            TraceEvent::CheckpointReject { reason } => {
                process_names.insert(PID_HOST, "host".to_string());
                thread_names
                    .entry((PID_HOST, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_HOST,
                    TID_INSTANTS,
                    0,
                    "checkpoint-reject",
                    Json::obj([("reason", Json::str(reason.clone()))]),
                ));
            }
            TraceEvent::CmdqSubmit { pos, orig, kind } => {
                process_names.insert(PID_CMDQ, "cmdq".to_string());
                thread_names
                    .entry((PID_CMDQ, 0))
                    .or_insert_with(|| "stream".to_string());
                out.push(instant_event(
                    PID_CMDQ,
                    0,
                    *pos as u64,
                    &kind.to_string(),
                    Json::obj([
                        ("pos", Json::int(*pos as u64)),
                        ("orig", Json::int(*orig as u64)),
                        ("reordered", Json::Bool(pos != orig)),
                    ]),
                ));
            }
            TraceEvent::DlbInsert {
                cycle,
                id,
                children,
                fetch_txns,
                encoded,
            } => {
                process_names.insert(PID_SCHED_HW, "scheduler-hw".to_string());
                thread_names
                    .entry((PID_SCHED_HW, 0))
                    .or_insert_with(|| "dlb-pcb".to_string());
                out.push(instant_event(
                    PID_SCHED_HW,
                    0,
                    *cycle,
                    &format!("dlb-insert {id}"),
                    Json::obj([
                        ("children", Json::int(*children as u64)),
                        ("fetch_txns", Json::int(*fetch_txns)),
                        ("encoded", Json::Bool(*encoded)),
                    ]),
                ));
            }
            TraceEvent::PcbInit {
                cycle,
                id,
                count,
                refetch,
            } => {
                process_names.insert(PID_SCHED_HW, "scheduler-hw".to_string());
                thread_names
                    .entry((PID_SCHED_HW, 0))
                    .or_insert_with(|| "dlb-pcb".to_string());
                out.push(instant_event(
                    PID_SCHED_HW,
                    0,
                    *cycle,
                    &format!("pcb-init {id}"),
                    Json::obj([
                        ("count", Json::int(*count as u64)),
                        ("refetch", Json::Bool(*refetch)),
                    ]),
                ));
            }
            TraceEvent::PcbSpill { cycle, victim } => {
                process_names.insert(PID_SCHED_HW, "scheduler-hw".to_string());
                thread_names
                    .entry((PID_SCHED_HW, 0))
                    .or_insert_with(|| "dlb-pcb".to_string());
                out.push(instant_event(
                    PID_SCHED_HW,
                    0,
                    *cycle,
                    &format!("pcb-spill {victim}"),
                    Json::obj([]),
                ));
            }
            TraceEvent::BufferLevels { cycle, dlb, pcb } => {
                process_names.insert(PID_SCHED_HW, "scheduler-hw".to_string());
                out.push(counter_event(
                    PID_SCHED_HW,
                    *cycle,
                    "buffers",
                    Json::obj([
                        ("dlb", Json::int(*dlb as u64)),
                        ("pcb", Json::int(*pcb as u64)),
                    ]),
                ));
            }
            TraceEvent::AffineFastPath {
                tick,
                seq,
                attempted,
                accepted,
                interpreted,
                synthesized,
            } => {
                process_names.insert(PID_ANALYSIS, "analysis".to_string());
                thread_names
                    .entry((PID_ANALYSIS, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_ANALYSIS,
                    TID_INSTANTS,
                    *tick,
                    if *accepted {
                        "affine-accept"
                    } else {
                        "affine-reject"
                    },
                    Json::obj([
                        ("seq", Json::int(*seq as u64)),
                        ("attempted", Json::Bool(*attempted)),
                        ("interpreted", Json::int(*interpreted as u64)),
                        ("synthesized", Json::int(*synthesized as u64)),
                    ]),
                ));
            }
            TraceEvent::CacheProbe {
                tick,
                seq,
                graph,
                hit,
            } => {
                process_names.insert(PID_ANALYSIS, "analysis".to_string());
                thread_names
                    .entry((PID_ANALYSIS, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                let name = match (graph, hit) {
                    (false, true) => "cache-hit",
                    (false, false) => "cache-miss",
                    (true, true) => "graph-cache-hit",
                    (true, false) => "graph-cache-miss",
                };
                out.push(instant_event(
                    PID_ANALYSIS,
                    TID_INSTANTS,
                    *tick,
                    name,
                    Json::obj([("seq", Json::int(*seq as u64))]),
                ));
            }
            TraceEvent::RungTransition {
                tick,
                seq,
                rung,
                reason,
            } => {
                process_names.insert(PID_ANALYSIS, "analysis".to_string());
                thread_names
                    .entry((PID_ANALYSIS, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_ANALYSIS,
                    TID_INSTANTS,
                    *tick,
                    &format!("rung→{rung}"),
                    Json::obj([
                        ("seq", Json::int(*seq as u64)),
                        ("reason", Json::str(reason.clone())),
                    ]),
                ));
            }
            TraceEvent::ServeAdmit {
                tick,
                request,
                queued,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    &format!("admit r{request}"),
                    Json::obj([("queued", Json::int(*queued as u64))]),
                ));
            }
            TraceEvent::ServeStart {
                tick,
                request,
                worker,
                attempt,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    &format!("start r{request}"),
                    Json::obj([
                        ("worker", Json::int(*worker as u64)),
                        ("attempt", Json::int(*attempt as u64)),
                    ]),
                ));
            }
            TraceEvent::ServeRetry {
                tick,
                request,
                attempt,
                backoff,
                reason,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    &format!("retry r{request}"),
                    Json::obj([
                        ("attempt", Json::int(*attempt as u64)),
                        ("backoff", Json::int(*backoff)),
                        ("reason", Json::str(reason.clone())),
                    ]),
                ));
            }
            TraceEvent::ServeCancel {
                tick,
                request,
                deadline,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    if *deadline { "deadline" } else { "cancel" },
                    Json::obj([("request", Json::int(*request))]),
                ));
            }
            TraceEvent::ServeComplete {
                tick,
                request,
                outcome,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    &format!("complete r{request}"),
                    Json::obj([("outcome", Json::str(outcome.clone()))]),
                ));
            }
            TraceEvent::BreakerTransition {
                tick,
                app_fp,
                from,
                to,
            } => {
                process_names.insert(PID_SERVE, "serve".to_string());
                thread_names
                    .entry((PID_SERVE, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_SERVE,
                    TID_INSTANTS,
                    *tick,
                    &format!("breaker {from}→{to}"),
                    Json::obj([("app_fp", Json::int(*app_fp))]),
                ));
            }
            TraceEvent::ParallelDecision {
                tick,
                seq,
                tbs,
                threads,
                fallback,
            } => {
                process_names.insert(PID_ANALYSIS, "analysis".to_string());
                thread_names
                    .entry((PID_ANALYSIS, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_ANALYSIS,
                    TID_INSTANTS,
                    *tick,
                    if *fallback {
                        "parallel-serial-fallback"
                    } else {
                        "parallel-fanout"
                    },
                    Json::obj([
                        ("seq", Json::int(*seq as u64)),
                        ("tbs", Json::int(*tbs as u64)),
                        ("threads", Json::int(*threads as u64)),
                    ]),
                ));
            }
            TraceEvent::XferStart {
                cycle,
                src,
                dst,
                id,
                bytes,
            } => {
                process_names.insert(PID_LINK, "interconnect".to_string());
                thread_names
                    .entry((PID_LINK, TID_INSTANTS))
                    .or_insert_with(|| "events".to_string());
                out.push(instant_event(
                    PID_LINK,
                    TID_INSTANTS,
                    *cycle,
                    &format!("send {id} d{src}→d{dst}"),
                    Json::obj([("bytes", Json::int(*bytes))]),
                ));
            }
            // Span-producing and summary-only events handled elsewhere.
            TraceEvent::TbSpan { .. }
            | TraceEvent::TbReady { .. }
            | TraceEvent::KernelIssue { .. }
            | TraceEvent::KernelArrive { .. }
            | TraceEvent::KernelRetire { .. }
            | TraceEvent::AnalysisSpan { .. }
            | TraceEvent::MultiTopology { .. }
            | TraceEvent::XferDone { .. } => {}
        }
    }

    // ---- metadata first, then the events -----------------------------
    let mut doc: Vec<Json> = Vec::new();
    for (pid, name) in &process_names {
        doc.push(meta(*pid, None, "process_name", name));
    }
    for ((pid, tid), name) in &thread_names {
        doc.push(meta(*pid, Some(*tid), "thread_name", name));
    }
    doc.extend(out);

    Json::obj([
        ("traceEvents", Json::Arr(doc)),
        ("displayTimeUnit", Json::str("ns")),
        (
            "otherData",
            Json::obj([("clock", Json::str("virtual-cycles"))]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{StallReason, TbId};
    use crate::json;

    #[test]
    fn lanes_never_overlap() {
        let spans = vec![
            Span {
                start: 0,
                end: 10,
                name: "a".into(),
                args: Json::Null,
            },
            Span {
                start: 5,
                end: 15,
                name: "b".into(),
                args: Json::Null,
            },
            Span {
                start: 10,
                end: 20,
                name: "c".into(),
                args: Json::Null,
            },
        ];
        let lanes = assign_lanes(&spans);
        assert_eq!(lanes[0], 0);
        assert_eq!(lanes[1], 1); // overlaps a
        assert_eq!(lanes[2], 0); // a finished at 10
    }

    #[test]
    fn export_is_valid_json_with_tracks() {
        let events = vec![
            TraceEvent::KernelIssue {
                cycle: 0,
                seq: 0,
                name: "k0".into(),
                prelaunched: false,
            },
            TraceEvent::TbSpan {
                id: TbId { kernel: 0, tb: 0 },
                sm: 2,
                start: 10,
                finish: 30,
            },
            TraceEvent::SmOccupancy {
                cycle: 10,
                sm: 2,
                resident: 1,
            },
            TraceEvent::TbStall {
                cycle: 12,
                id: TbId { kernel: 0, tb: 1 },
                ready_at: 4,
                reason: StallReason::Resources,
            },
            TraceEvent::KernelRetire { cycle: 40, seq: 0 },
        ];
        let text = export_chrome_trace(&events);
        let doc = json::parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!evs.is_empty());
        // Every event has ph/pid; non-metadata have ts.
        for e in evs {
            assert!(e.get("ph").is_some());
            assert!(e.get("pid").is_some());
            if e.get("ph").unwrap().as_str() != Some("M") {
                assert!(e.get("ts").is_some());
            }
        }
        // Kernel span landed on the host pid, TB span on SM 2's pid.
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("pid").and_then(|p| p.as_num()) == Some(PID_HOST as f64)
        }));
        assert!(evs.iter().any(|e| {
            e.get("ph").and_then(|p| p.as_str()) == Some("X")
                && e.get("pid").and_then(|p| p.as_num()) == Some((PID_SM_BASE + 2) as f64)
        }));
    }
}
