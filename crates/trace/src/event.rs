//! The typed event taxonomy.
//!
//! Events are plain data: every variant carries its own placement in
//! virtual time (a simulation `cycle`, or a deterministic `tick` for the
//! pre-run analysis/command-queue phases) plus the identities needed to
//! attribute it. String payloads (kernel names, degradation labels) are
//! only constructed behind `if T::ENABLED` guards, so the disabled path
//! never allocates.

use std::fmt;

/// Identifies a thread block across the whole application run
/// (mirror of `bm_simt::des::TbKey`, kept local so every crate can depend
/// on `bm-trace` without a cycle).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TbId {
    /// Application-wide kernel sequence number.
    pub kernel: u32,
    /// Linear thread-block id within the kernel.
    pub tb: u32,
}

impl fmt::Display for TbId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}:TB{}", self.kernel, self.tb)
    }
}

/// Why a data-ready thread block did not start executing immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallReason {
    /// The TB's kernel had not yet arrived at the GPU (launch latency) or
    /// was held by a skip gate when the data dependency resolved.
    KernelArrival,
    /// The TB was eligible but no SM had a free slot (TB/thread/shared-mem
    /// resource contention).
    Resources,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StallReason::KernelArrival => "kernel-arrival",
            StallReason::Resources => "resources",
        })
    }
}

/// Which rung of the launch-time analysis pipeline a span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisPhase {
    /// Precise per-TB abstract interpretation.
    Absint,
    /// Coarse group-level retry.
    Coarse,
    /// Representative-TB trace profiling.
    Trace,
    /// Dependency-graph construction against the predecessor.
    Graph,
}

impl fmt::Display for AnalysisPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AnalysisPhase::Absint => "absint",
            AnalysisPhase::Coarse => "coarse",
            AnalysisPhase::Trace => "trace",
            AnalysisPhase::Graph => "graph",
        })
    }
}

/// Kind of an API command submitted through the command queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmdKind {
    /// Device allocation.
    Malloc,
    /// Host-to-device copy.
    MemcpyH2D,
    /// Device-to-host copy.
    MemcpyD2H,
    /// Synchronization barrier.
    Sync,
    /// Kernel launch.
    Launch,
}

impl fmt::Display for CmdKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmdKind::Malloc => "malloc",
            CmdKind::MemcpyH2D => "memcpyH2D",
            CmdKind::MemcpyD2H => "memcpyD2H",
            CmdKind::Sync => "sync",
            CmdKind::Launch => "launch",
        })
    }
}

/// One structured trace event. All timestamps are virtual: simulation
/// cycles for run-phase events, deterministic ticks for the pre-run
/// analysis pipeline (`tick` fields) and command-queue positions.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    // ---------------- DES / SM layer ----------------
    /// A thread block executed on an SM from `start` to `finish`.
    TbSpan {
        /// The thread block.
        id: TbId,
        /// SM it ran on.
        sm: u32,
        /// Placement cycle.
        start: u64,
        /// Completion cycle.
        finish: u64,
    },
    /// The number of resident thread blocks on `sm` changed.
    SmOccupancy {
        /// Cycle of the transition.
        cycle: u64,
        /// The SM.
        sm: u32,
        /// Resident TBs after the transition.
        resident: u32,
    },

    // ---------------- engine TB lifecycle ----------------
    /// A thread block's data dependencies were satisfied.
    TbReady {
        /// Cycle at which the last parent resolved.
        cycle: u64,
        /// The thread block.
        id: TbId,
    },
    /// A thread block started later than its data-ready time (emitted at
    /// start; the stall is `cycle - ready_at`).
    TbStall {
        /// Start cycle.
        cycle: u64,
        /// The thread block.
        id: TbId,
        /// When its data dependencies were satisfied.
        ready_at: u64,
        /// What it was waiting on.
        reason: StallReason,
    },

    // ---------------- kernel lifecycle ----------------
    /// The host issued a kernel launch to the GPU.
    KernelIssue {
        /// Issue cycle.
        cycle: u64,
        /// Kernel sequence number.
        seq: u32,
        /// Kernel name.
        name: String,
        /// Whether this was a pre-launch (issued before the previous
        /// kernel retired).
        prelaunched: bool,
    },
    /// A launched kernel arrived at the GPU (launch latency elapsed).
    KernelArrive {
        /// Arrival cycle.
        cycle: u64,
        /// Kernel sequence number.
        seq: u32,
    },
    /// A kernel retired (all TBs complete, in order).
    KernelRetire {
        /// Retire cycle.
        cycle: u64,
        /// Kernel sequence number.
        seq: u32,
    },

    // ---------------- scheduler hardware ----------------
    /// A dependency-list entry was buffered for a newly-scheduled TB.
    DlbInsert {
        /// Cycle of the insert.
        cycle: u64,
        /// The scheduled TB.
        id: TbId,
        /// Number of child TBs in the entry.
        children: u32,
        /// Global-memory transactions the fetch cost (0 for encoded
        /// patterns).
        fetch_txns: u64,
        /// Whether the child list is pattern-encoded (derived, not
        /// fetched).
        encoded: bool,
    },
    /// A parent counter was initialized (fetched from global memory).
    PcbInit {
        /// Cycle of the fetch.
        cycle: u64,
        /// The child TB whose counter was seeded.
        id: TbId,
        /// Initial pending-parent count.
        count: u32,
        /// Whether this was a refetch of a previously-spilled counter.
        refetch: bool,
    },
    /// A resident parent counter was spilled back to global memory to make
    /// room (FIFO eviction).
    PcbSpill {
        /// Cycle of the spill.
        cycle: u64,
        /// The evicted entry.
        victim: TbId,
    },
    /// Occupancy sample of the scheduler buffers.
    BufferLevels {
        /// Sample cycle.
        cycle: u64,
        /// Dependency-list buffer entries in use.
        dlb: u32,
        /// Parent-counter buffer entries in use.
        pcb: u32,
    },

    // ---------------- analysis pipeline (virtual tick clock) ----------------
    /// One phase of a kernel's launch-time analysis. Tick durations are
    /// deterministic (fuel consumed, or 1 for un-fueled phases).
    AnalysisSpan {
        /// Kernel sequence number.
        seq: u32,
        /// Kernel name.
        name: String,
        /// Phase covered by the span.
        phase: AnalysisPhase,
        /// Start tick on the analysis clock.
        start_tick: u64,
        /// End tick (exclusive).
        end_tick: u64,
    },
    /// Outcome of the affine fast-path attempt for one launch.
    AffineFastPath {
        /// Tick at which the verdict landed.
        tick: u64,
        /// Kernel sequence number.
        seq: u32,
        /// Whether the hypothesis was attempted at all.
        attempted: bool,
        /// Whether it survived sampling and the span-union certificate.
        accepted: bool,
        /// Thread blocks fully interpreted.
        interpreted: u32,
        /// Thread blocks synthesized from the affine model.
        synthesized: u32,
    },
    /// An analysis-cache or graph-cache probe.
    CacheProbe {
        /// Tick of the probe.
        tick: u64,
        /// Kernel sequence number.
        seq: u32,
        /// `true` for the graph cache, `false` for the analysis cache.
        graph: bool,
        /// Whether the probe hit.
        hit: bool,
    },
    /// A kernel moved down the graceful-degradation ladder during
    /// analysis.
    RungTransition {
        /// Tick of the transition.
        tick: u64,
        /// Kernel sequence number.
        seq: u32,
        /// The rung landed on (display form).
        rung: String,
        /// Why (display form).
        reason: String,
    },

    // ---------------- command queue (position clock) ----------------
    /// One API call submitted through the (possibly reordered) command
    /// queue.
    CmdqSubmit {
        /// Position in the reordered stream.
        pos: u32,
        /// Original program-order index.
        orig: u32,
        /// What kind of call.
        kind: CmdKind,
    },

    // ---------------- run-phase instants ----------------
    /// Admission backpressure shrank the pre-launch window.
    Pressure {
        /// Cycle of the shrink.
        cycle: u64,
        /// Cumulative spill transactions observed.
        spill: u64,
        /// Window before.
        window_before: u32,
        /// Window after.
        window_after: u32,
    },
    /// The soundness guard quarantined a kernel.
    Quarantine {
        /// Cycle attributed to the failed round (cycles lost so far).
        cycle: u64,
        /// Quarantined kernel.
        kernel: u32,
        /// Recovery round (0-based).
        round: u32,
    },
    /// A kernel's final ladder placement, stamped with the cycle at which
    /// its launch-time analysis ran (its issue cycle).
    DegradationStamp {
        /// Issue cycle of the degraded kernel.
        cycle: u64,
        /// Kernel sequence number.
        seq: u32,
        /// The rung (display form).
        rung: String,
        /// Why (display form).
        reason: String,
    },

    // ---------------- checkpoint/restore ----------------
    /// A run snapshot was captured at a kernel-retirement boundary.
    CheckpointSave {
        /// Cycle of the boundary.
        cycle: u64,
        /// Kernels retired at the boundary.
        retired: u32,
        /// Encoded snapshot size in bytes.
        bytes: u64,
    },
    /// A run resumed from a snapshot. Operational metadata: resumed runs
    /// carry this extra event, so bit-equivalence comparisons against an
    /// uninterrupted run filter it out by kind (`"checkpoint_load"`).
    CheckpointLoad {
        /// Cycle the snapshot was captured at.
        cycle: u64,
        /// Kernels retired when the snapshot was captured.
        retired: u32,
    },
    /// A snapshot failed validation (bad magic/version/checksum/truncation)
    /// and was rejected; the run fell back to a fresh start.
    CheckpointReject {
        /// Display form of the typed `SnapshotError`.
        reason: String,
    },

    // ---------------- serve layer (virtual service clock) ----------------
    /// A run request was admitted to the service queue.
    ServeAdmit {
        /// Service-clock tick of the admission.
        tick: u64,
        /// Request id.
        request: u64,
        /// Queue depth after the admission (this request included).
        queued: u32,
    },
    /// A worker picked up a request (first attempt or a retry).
    ServeStart {
        /// Service-clock tick.
        tick: u64,
        /// Request id.
        request: u64,
        /// Worker index.
        worker: u32,
        /// Attempt number (0 = first).
        attempt: u32,
    },
    /// A failed attempt was scheduled for retry after backoff.
    ServeRetry {
        /// Service-clock tick the retry was scheduled at.
        tick: u64,
        /// Request id.
        request: u64,
        /// The attempt that failed (0-based).
        attempt: u32,
        /// Backoff ticks before the request becomes runnable again.
        backoff: u64,
        /// Display form of the failure that triggered the retry.
        reason: String,
    },
    /// A request was cancelled or missed its deadline.
    ServeCancel {
        /// Service-clock tick.
        tick: u64,
        /// Request id.
        request: u64,
        /// `true` for a deadline miss, `false` for an explicit cancel.
        deadline: bool,
    },
    /// A request reached a terminal state.
    ServeComplete {
        /// Service-clock tick.
        tick: u64,
        /// Request id.
        request: u64,
        /// Terminal outcome label (`"ok"`, `"cancelled"`, `"deadline"`,
        /// `"failed"`, `"rejected"`, `"shed"`).
        outcome: String,
    },
    /// A per-app circuit breaker changed state.
    BreakerTransition {
        /// Service-clock tick.
        tick: u64,
        /// App fingerprint the breaker keys on.
        app_fp: u64,
        /// State before (`"closed"`, `"open"`, `"half-open"`).
        from: String,
        /// State after.
        to: String,
    },
    // ---------------- multi-GPU interconnect ----------------
    /// The topology of a multi-device run, emitted once before any device
    /// event so consumers can map global SM ids back to `(device, sm)`.
    MultiTopology {
        /// Number of simulated devices.
        devices: u32,
        /// SMs per device (uniform).
        sms_per_device: u32,
    },
    /// A cross-device dependency message entered the link.
    XferStart {
        /// Send cycle (the parent TB's retirement on the source device).
        cycle: u64,
        /// Source device id.
        src: u32,
        /// Destination device id.
        dst: u32,
        /// The child TB whose parent counter the message decrements.
        id: TbId,
        /// Payload size in bytes.
        bytes: u64,
    },
    /// A cross-device dependency message was delivered.
    XferDone {
        /// Arrival cycle on the destination device.
        cycle: u64,
        /// Send cycle (matches the paired [`TraceEvent::XferStart`]).
        sent: u64,
        /// Source device id.
        src: u32,
        /// Destination device id.
        dst: u32,
        /// The child TB whose parent counter the message decrements.
        id: TbId,
        /// Payload size in bytes.
        bytes: u64,
    },

    /// The adaptive thread-count heuristic's verdict for one kernel's
    /// per-TB interpretation.
    ParallelDecision {
        /// Analysis-clock tick.
        tick: u64,
        /// Kernel sequence number.
        seq: u32,
        /// Thread blocks in the kernel's grid.
        tbs: u32,
        /// Worker threads the loop used.
        threads: u32,
        /// Whether the heuristic forced serial despite a multi-thread
        /// configuration.
        fallback: bool,
    },
}

impl TraceEvent {
    /// The event's placement on its own virtual clock (cycles for
    /// run-phase events, ticks for analysis, position for cmdq).
    pub fn timestamp(&self) -> u64 {
        match self {
            TraceEvent::TbSpan { start, .. } => *start,
            TraceEvent::SmOccupancy { cycle, .. }
            | TraceEvent::TbReady { cycle, .. }
            | TraceEvent::TbStall { cycle, .. }
            | TraceEvent::KernelIssue { cycle, .. }
            | TraceEvent::KernelArrive { cycle, .. }
            | TraceEvent::KernelRetire { cycle, .. }
            | TraceEvent::DlbInsert { cycle, .. }
            | TraceEvent::PcbInit { cycle, .. }
            | TraceEvent::PcbSpill { cycle, .. }
            | TraceEvent::BufferLevels { cycle, .. }
            | TraceEvent::Pressure { cycle, .. }
            | TraceEvent::Quarantine { cycle, .. }
            | TraceEvent::DegradationStamp { cycle, .. }
            | TraceEvent::CheckpointSave { cycle, .. }
            | TraceEvent::CheckpointLoad { cycle, .. }
            | TraceEvent::XferStart { cycle, .. }
            | TraceEvent::XferDone { cycle, .. } => *cycle,
            TraceEvent::CheckpointReject { .. } | TraceEvent::MultiTopology { .. } => 0,
            TraceEvent::AnalysisSpan { start_tick, .. } => *start_tick,
            TraceEvent::AffineFastPath { tick, .. }
            | TraceEvent::CacheProbe { tick, .. }
            | TraceEvent::RungTransition { tick, .. }
            | TraceEvent::ServeAdmit { tick, .. }
            | TraceEvent::ServeStart { tick, .. }
            | TraceEvent::ServeRetry { tick, .. }
            | TraceEvent::ServeCancel { tick, .. }
            | TraceEvent::ServeComplete { tick, .. }
            | TraceEvent::BreakerTransition { tick, .. }
            | TraceEvent::ParallelDecision { tick, .. } => *tick,
            TraceEvent::CmdqSubmit { pos, .. } => *pos as u64,
        }
    }

    /// Short kind label, used by the counter registry and the summarizer.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TbSpan { .. } => "tb_span",
            TraceEvent::SmOccupancy { .. } => "sm_occupancy",
            TraceEvent::TbReady { .. } => "tb_ready",
            TraceEvent::TbStall { .. } => "tb_stall",
            TraceEvent::KernelIssue { .. } => "kernel_issue",
            TraceEvent::KernelArrive { .. } => "kernel_arrive",
            TraceEvent::KernelRetire { .. } => "kernel_retire",
            TraceEvent::DlbInsert { .. } => "dlb_insert",
            TraceEvent::PcbInit { .. } => "pcb_init",
            TraceEvent::PcbSpill { .. } => "pcb_spill",
            TraceEvent::BufferLevels { .. } => "buffer_levels",
            TraceEvent::AnalysisSpan { .. } => "analysis_span",
            TraceEvent::AffineFastPath { .. } => "affine_fastpath",
            TraceEvent::CacheProbe { .. } => "cache_probe",
            TraceEvent::RungTransition { .. } => "rung_transition",
            TraceEvent::CmdqSubmit { .. } => "cmdq_submit",
            TraceEvent::Pressure { .. } => "pressure",
            TraceEvent::Quarantine { .. } => "quarantine",
            TraceEvent::DegradationStamp { .. } => "degradation",
            TraceEvent::CheckpointSave { .. } => "checkpoint_save",
            TraceEvent::CheckpointLoad { .. } => "checkpoint_load",
            TraceEvent::CheckpointReject { .. } => "checkpoint_reject",
            TraceEvent::ServeAdmit { .. } => "serve_admit",
            TraceEvent::ServeStart { .. } => "serve_start",
            TraceEvent::ServeRetry { .. } => "serve_retry",
            TraceEvent::ServeCancel { .. } => "serve_cancel",
            TraceEvent::ServeComplete { .. } => "serve_complete",
            TraceEvent::BreakerTransition { .. } => "breaker_transition",
            TraceEvent::ParallelDecision { .. } => "parallel_decision",
            TraceEvent::MultiTopology { .. } => "multi_topology",
            TraceEvent::XferStart { .. } => "xfer_start",
            TraceEvent::XferDone { .. } => "xfer_done",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamps_and_kinds() {
        let id = TbId { kernel: 1, tb: 2 };
        let ev = TraceEvent::TbSpan {
            id,
            sm: 0,
            start: 10,
            finish: 20,
        };
        assert_eq!(ev.timestamp(), 10);
        assert_eq!(ev.kind(), "tb_span");
        assert_eq!(id.to_string(), "K1:TB2");
        let ev = TraceEvent::CmdqSubmit {
            pos: 3,
            orig: 5,
            kind: CmdKind::Launch,
        };
        assert_eq!(ev.timestamp(), 3);
        assert_eq!(CmdKind::MemcpyH2D.to_string(), "memcpyH2D");
        assert_eq!(StallReason::Resources.to_string(), "resources");
        assert_eq!(AnalysisPhase::Graph.to_string(), "graph");
    }
}
