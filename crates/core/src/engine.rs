//! The BlockMaestro execution engine.
//!
//! Implements the paper's runtime on top of the `bm-simt` discrete-event
//! substrate: kernel pre-launching through a bounded window of active
//! kernels, in-order kernel completion, TB-level dependency resolution via
//! the dependency-list / parent-counter buffers, and the producer/consumer
//! scheduling policies. The baselines (serialized execution with and
//! without launch overhead) run through the same machinery with a window
//! of one.

#![deny(clippy::unwrap_used)]

use crate::degrade::{AnalysisBudget, AnalysisCache};
use crate::degrade::{Degradation, DegradationReason, DegradationRung, PressureEvent};
use crate::error::EngineError;
use crate::faults::FaultPlan;
use crate::guard::GuardReport;
use crate::hw::{
    DepListBuffer, HwError, HwTraffic, ParentCounterBuffer, BUFFER_ENTRIES, MAX_COUNTER,
};
use crate::jit::{jit_analyze_app, jit_analyze_app_traced, JitKernel};
use crate::modes::ExecMode;
use crate::snapshot::{
    CheckpointPolicy, EngineSnapshot, GuardSnapshot, KernelSnapshot, RunSnapshot, SnapshotError,
    SnapshotMeta, SnapshotStore,
};
use bm_cmdq::{build_call_dag, reorder_for_prelaunch_traced, ApiCall, Application, Reordering};
use bm_depgraph::{GraphKind, HazardMode, Pattern};
use bm_simt::config::GpuConfig;
use bm_simt::des::{DesEngine, DesError, DesStats, StepOutcome, TbDescriptor, TbKey, TbSource};
use bm_trace::json::Json;
use bm_trace::{NullTracer, StallReason, TbId, TraceEvent, Tracer};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Results of one application run under one execution mode.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// The mode that produced this report.
    pub mode: ExecMode,
    /// End-to-end cycles including host prologue/epilogue.
    pub total_cycles: u64,
    /// Cycles from first kernel issue to last TB completion.
    pub kernel_region_cycles: u64,
    /// Average concurrently-running thread blocks (Fig. 10).
    pub avg_concurrency: f64,
    /// Per-TB dependency stall normalized to TB execution time (Fig. 11).
    pub stalls_normalized: Vec<f64>,
    /// Application memory transactions (kernels' own traffic).
    pub baseline_mem_requests: u64,
    /// Scheduler-hardware memory transactions (Fig. 13 overhead).
    pub overhead_mem_requests: u64,
    /// Detailed hardware traffic breakdown.
    pub hw_traffic: HwTraffic,
    /// Total encoded dependency-graph bytes over the run (Table III).
    pub storage_encoded: u64,
    /// Total plain dependency-graph bytes over the run (Table III).
    pub storage_plain: u64,
    /// Per-kernel `(name, pattern)` classification (Table II).
    pub patterns: Vec<(String, Pattern)>,
    /// The full TB schedule `(key, start, finish)`.
    pub schedule: Vec<(TbKey, u64, u64)>,
    /// Number of kernels executed.
    pub num_kernels: usize,
    /// Peak simultaneous dependency-list buffer occupancy — must stay
    /// within the 896 entries of §IV-C.
    pub dlb_high_water: usize,
    /// Peak simultaneous parent-counter buffer occupancy.
    pub pcb_high_water: usize,
    /// Soundness-guard accounting (all zeros for unguarded runs).
    pub guard: GuardReport,
    /// Per-kernel `(name, degradation)` ladder placement: which rung each
    /// kernel's launch-time analysis landed on and why.
    pub degradation: Vec<(String, Degradation)>,
    /// Launches whose analysis was served from the bounded analysis cache.
    pub cache_hits: u64,
    /// Launches analyzed from scratch.
    pub cache_misses: u64,
    /// Admission-backpressure steps: each time scheduler-buffer spill
    /// traffic crossed the configured threshold and shrank the pre-launch
    /// window.
    pub pressure_events: Vec<PressureEvent>,
    /// Multi-device execution statistics. `None` for every single-device
    /// run — the field (and its JSON key) only appears when `bm-multi`
    /// actually sharded the app, so single-device reports stay
    /// bit-identical to the pre-multi engine.
    pub multi: Option<MultiStats>,
}

/// Per-device accounting from one multi-GPU run.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceStats {
    /// Device id (0-based).
    pub device: u32,
    /// Thread blocks this device executed.
    pub tbs_executed: u64,
    /// Cycle at which the device's last owned TB completed.
    pub busy_cycles: u64,
    /// Average concurrently-running TBs on this device.
    pub avg_concurrency: f64,
    /// Cross-device dependency messages this device sent.
    pub sent_msgs: u64,
    /// Cross-device dependency messages this device received.
    pub recv_msgs: u64,
}

/// Summary of a multi-GPU execution, attached to [`RunReport::multi`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiStats {
    /// Devices the app was sharded across.
    pub devices: u32,
    /// Configured per-hop link latency in cycles.
    pub link_latency_cycles: u64,
    /// Configured link bandwidth in bytes per cycle.
    pub link_bandwidth_bytes_per_cycle: u64,
    /// Parent→child dependency edges that crossed a device boundary.
    pub cut_edges: u64,
    /// Total explicit dependency edges considered by the partitioner.
    pub total_edges: u64,
    /// Cross-device transfers carried by the interconnect.
    pub transfers: u64,
    /// Total bytes moved across the interconnect.
    pub transfer_bytes: u64,
    /// Total cycles messages spent in flight (sum of per-message latency).
    pub transfer_cycles: u64,
    /// Per-device execution statistics, ordered by device id.
    pub per_device: Vec<DeviceStats>,
    /// Set when the multi-device attempt was abandoned and the report
    /// actually comes from the single-device fallback: the reason and the
    /// interconnect cycle at which the fault was detected.
    pub fallback: Option<(DegradationReason, u64)>,
}

impl MultiStats {
    /// Fraction of dependency edges cut by the partition.
    pub fn cut_fraction(&self) -> f64 {
        if self.total_edges == 0 {
            0.0
        } else {
            self.cut_edges as f64 / self.total_edges as f64
        }
    }

    /// Machine-readable form, embedded under the report's `"multi"` key.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("devices", Json::u64(self.devices as u64)),
            ("link_latency_cycles", Json::u64(self.link_latency_cycles)),
            (
                "link_bandwidth_bytes_per_cycle",
                Json::u64(self.link_bandwidth_bytes_per_cycle),
            ),
            ("cut_edges", Json::u64(self.cut_edges)),
            ("total_edges", Json::u64(self.total_edges)),
            ("transfers", Json::u64(self.transfers)),
            ("transfer_bytes", Json::u64(self.transfer_bytes)),
            ("transfer_cycles", Json::u64(self.transfer_cycles)),
            (
                "per_device",
                Json::Arr(
                    self.per_device
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("device", Json::u64(d.device as u64)),
                                ("tbs_executed", Json::u64(d.tbs_executed)),
                                ("busy_cycles", Json::u64(d.busy_cycles)),
                                ("avg_concurrency", Json::Num(d.avg_concurrency)),
                                ("sent_msgs", Json::u64(d.sent_msgs)),
                                ("recv_msgs", Json::u64(d.recv_msgs)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "fallback",
                match &self.fallback {
                    Some((reason, cycle)) => Json::obj([
                        ("reason", Json::Str(reason.to_string())),
                        ("at_cycle", Json::u64(*cycle)),
                    ]),
                    None => Json::Null,
                },
            ),
        ])
    }
}

impl RunReport {
    /// Memory-request overhead as a fraction of application traffic.
    pub fn mem_overhead_fraction(&self) -> f64 {
        if self.baseline_mem_requests == 0 {
            0.0
        } else {
            self.overhead_mem_requests as f64 / self.baseline_mem_requests as f64
        }
    }

    /// Encoded-over-plain storage ratio (Table III); `None` when the app
    /// stores no dependency graphs at all (fully independent kernels).
    pub fn storage_ratio(&self) -> Option<f64> {
        (self.storage_plain > 0).then(|| self.storage_encoded as f64 / self.storage_plain as f64)
    }

    /// The full report as a machine-readable JSON value (`bmrun --json`).
    ///
    /// Object keys are emitted in sorted order, so equal reports serialize
    /// to byte-identical JSON.
    pub fn to_json(&self) -> Json {
        let mut pairs: Vec<(&'static str, Json)> = vec![
            ("mode", Json::Str(format!("{:?}", self.mode))),
            ("total_cycles", Json::u64(self.total_cycles)),
            ("kernel_region_cycles", Json::u64(self.kernel_region_cycles)),
            ("avg_concurrency", Json::Num(self.avg_concurrency)),
            (
                "stalls_normalized",
                Json::Arr(
                    self.stalls_normalized
                        .iter()
                        .map(|&s| Json::Num(s))
                        .collect(),
                ),
            ),
            (
                "baseline_mem_requests",
                Json::u64(self.baseline_mem_requests),
            ),
            (
                "overhead_mem_requests",
                Json::u64(self.overhead_mem_requests),
            ),
            (
                "hw_traffic",
                Json::obj([
                    (
                        "dep_list_fetches",
                        Json::u64(self.hw_traffic.dep_list_fetches),
                    ),
                    (
                        "counter_fetches",
                        Json::u64(self.hw_traffic.counter_fetches),
                    ),
                    (
                        "counter_writebacks",
                        Json::u64(self.hw_traffic.counter_writebacks),
                    ),
                ]),
            ),
            ("storage_encoded", Json::u64(self.storage_encoded)),
            ("storage_plain", Json::u64(self.storage_plain)),
            (
                "patterns",
                Json::Arr(
                    self.patterns
                        .iter()
                        .map(|(name, p)| {
                            Json::obj([
                                ("kernel", Json::str(name)),
                                ("pattern", Json::Str(format!("{p:?}"))),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "schedule",
                Json::Arr(
                    self.schedule
                        .iter()
                        .map(|&(key, start, finish)| {
                            Json::obj([
                                ("kernel", Json::u64(key.kernel_seq as u64)),
                                ("tb", Json::u64(key.tb as u64)),
                                ("start", Json::u64(start)),
                                ("finish", Json::u64(finish)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("num_kernels", Json::u64(self.num_kernels as u64)),
            ("dlb_high_water", Json::u64(self.dlb_high_water as u64)),
            ("pcb_high_water", Json::u64(self.pcb_high_water as u64)),
            (
                "guard",
                Json::obj([
                    (
                        "violations_detected",
                        Json::u64(self.guard.violations_detected),
                    ),
                    (
                        "kernels_quarantined",
                        Json::u64(self.guard.kernels_quarantined),
                    ),
                    (
                        "recovery_rounds",
                        Json::u64(self.guard.recovery_rounds as u64),
                    ),
                    (
                        "cycles_lost_to_fallback",
                        Json::u64(self.guard.cycles_lost_to_fallback),
                    ),
                ]),
            ),
            (
                "degradation",
                Json::Arr(
                    self.degradation
                        .iter()
                        .map(|(name, d)| {
                            Json::obj([
                                ("kernel", Json::str(name)),
                                ("rung", Json::Str(d.rung.to_string())),
                                ("reason", Json::Str(d.reason.to_string())),
                                ("at_cycle", Json::u64(d.at_cycle)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("cache_hits", Json::u64(self.cache_hits)),
            ("cache_misses", Json::u64(self.cache_misses)),
            (
                "pressure_events",
                Json::Arr(
                    self.pressure_events
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("cycle", Json::u64(p.cycle)),
                                ("spill_traffic", Json::u64(p.spill_traffic)),
                                ("window_before", Json::u64(p.window_before as u64)),
                                ("window_after", Json::u64(p.window_after as u64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ];
        if let Some(m) = &self.multi {
            pairs.push(("multi", m.to_json()));
        }
        Json::obj(pairs)
    }
}

/// Runs `app` under `mode` with the paper's default RAW-only hazard
/// tracking.
pub fn run_app(cfg: &GpuConfig, app: &Application, mode: ExecMode) -> RunReport {
    run_app_with(cfg, app, mode, HazardMode::Raw)
}

/// Runs `app` under `mode` with an explicit hazard-tracking mode.
pub fn run_app_with(
    cfg: &GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
) -> RunReport {
    let jit = jit_analyze_app(cfg, app, hazard);
    run_analyzed(cfg, app, &jit, mode)
}

/// [`run_app_with`] with a trace sink observing the whole pipeline:
/// launch-time analysis (tick clock), command-queue reordering (position
/// clock), and the DES execution itself (cycle clock).
///
/// Tracing is provably inert: this function with [`NullTracer`] is
/// [`run_app_with`] exactly, and with any recording sink the returned
/// [`RunReport`] is still bit-identical — the determinism suite enforces
/// it per [`ExecMode`].
///
/// # Panics
///
/// As [`run_analyzed`]; use [`try_run_analyzed_traced`] for typed errors.
pub fn run_app_with_tracer<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    tracer: &T,
) -> RunReport {
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = jit_analyze_app_traced(cfg, app, hazard, &budget, &mut cache, tracer);
    try_run_analyzed_traced(cfg, app, &jit, mode, tracer).unwrap_or_else(|e| panic!("{e}"))
}

/// Runs an already-analyzed application (lets callers share the JIT pass
/// across the six Fig. 9 variants).
///
/// # Panics
///
/// Panics if the simulation deadlocks or a hardware fault surfaces; use
/// [`try_run_analyzed`] to get a typed [`EngineError`] instead.
pub fn run_analyzed(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
) -> RunReport {
    try_run_analyzed(cfg, app, jit, mode).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible counterpart of [`run_analyzed`].
///
/// # Errors
///
/// [`EngineError::Deadlock`] when the simulation wedges with unfinished
/// TBs, [`EngineError::Hw`] when the scheduler buffers detect inconsistent
/// dependency metadata.
pub fn try_run_analyzed(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
) -> Result<RunReport, EngineError> {
    try_run_analyzed_faulty(cfg, app, jit, mode, &FaultPlan::default())
}

/// [`try_run_analyzed`] with a trace sink (fault-free plan).
///
/// # Errors
///
/// As [`try_run_analyzed`].
pub fn try_run_analyzed_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    tracer: &T,
) -> Result<RunReport, EngineError> {
    try_run_analyzed_faulty_traced(cfg, app, jit, mode, &FaultPlan::default(), tracer)
}

/// Fallible run with a [`FaultPlan`] injected into the dependency
/// hardware. The entry point of the fault-injection harness; a default
/// (empty) plan makes it identical to [`try_run_analyzed`].
///
/// # Errors
///
/// As [`try_run_analyzed`]; injected faults surface through the same
/// typed variants.
pub fn try_run_analyzed_faulty(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    fault: &FaultPlan,
) -> Result<RunReport, EngineError> {
    try_run_analyzed_faulty_traced(cfg, app, jit, mode, fault, &NullTracer)
}

/// [`try_run_analyzed_faulty`] with a trace sink: the single execution
/// path every engine entry point funnels through. With [`NullTracer`]
/// every emission site compiles out; with a recording sink the run emits
/// kernel lifecycle, TB readiness/stall, scheduler-buffer, backpressure
/// and command-queue events — without perturbing the simulation.
///
/// # Errors
///
/// As [`try_run_analyzed_faulty`].
pub fn try_run_analyzed_faulty_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    fault: &FaultPlan,
    tracer: &T,
) -> Result<RunReport, EngineError> {
    try_run_analyzed_checkpointed(
        cfg,
        app,
        jit,
        mode,
        fault,
        tracer,
        &mut CheckpointSession::disabled(),
    )
}

/// One engine run's checkpoint context: when to save, where to, what to
/// resume from, and the guard state that snapshots must carry.
#[derive(Default)]
pub struct CheckpointSession<'s> {
    /// When to capture (evaluated at kernel-retirement boundaries only).
    pub policy: CheckpointPolicy,
    /// Destination for captured snapshots; `None` disables saving.
    pub store: Option<&'s mut dyn SnapshotStore>,
    /// Application fingerprint stamped into snapshot metadata.
    pub app_fp: u64,
    /// Hazard-mode string stamped into snapshot metadata.
    pub hazard: String,
    /// Soundness-guard context carried into snapshots, so a resumed run
    /// re-applies the same quarantines and recovery round.
    pub guard: GuardSnapshot,
    /// A decoded snapshot to resume from; consumed (and cross-validated)
    /// by the run. Invalid resumes degrade to a fresh run.
    pub resume: Option<RunSnapshot>,
    /// Save failures (I/O errors) — saving is best-effort and never fails
    /// the run; failures are surfaced here for the caller.
    pub save_failures: Vec<SnapshotError>,
    /// Snapshots successfully captured during this run.
    pub saves: u32,
    /// Cooperative cancellation: installed into the DES engine (observed
    /// between steps) and checked at every kernel-retirement boundary,
    /// where a firing forces a final checkpoint before the typed
    /// [`EngineError::Cancelled`] surfaces. `None` — the default — means
    /// no check ever fires and the run is bit-identical to a session
    /// without the field.
    pub cancel: Option<bm_ptx::cancel::CancelToken>,
}

impl CheckpointSession<'_> {
    /// A session that neither saves nor resumes — the plain execution
    /// path.
    pub fn disabled() -> Self {
        CheckpointSession::default()
    }
}

/// The single execution path every engine entry point funnels through:
/// [`try_run_analyzed_faulty_traced`] plus crash-safe checkpointing.
///
/// At each kernel-retirement boundary the driver may capture a
/// [`RunSnapshot`] (per `session.policy`), and a
/// [`crate::faults::FaultClass::KillPoint`] plan may kill the run —
/// strictly *after* the boundary's save, so the run is always resumable
/// from the kill point. Saves are pure observation: the run's
/// [`RunReport`] (and trace stream) is bit-identical with checkpointing
/// on or off, and a resumed run is bit-identical to an uninterrupted one.
///
/// # Errors
///
/// As [`try_run_analyzed_faulty`], plus [`EngineError::Killed`] when the
/// fault plan's kill point fires.
pub fn try_run_analyzed_checkpointed<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    jit: &[JitKernel],
    mode: ExecMode,
    fault: &FaultPlan,
    tracer: &T,
    session: &mut CheckpointSession<'_>,
) -> Result<RunReport, EngineError> {
    let order = if mode.prelaunches() {
        reorder_for_prelaunch_traced(app, tracer)
    } else {
        Reordering::identity(app.calls.len())
    };
    let (host_ready, epilogue) = host_timeline(cfg, app, &order, mode);
    let order_ids: Vec<u32> = order.order.iter().map(|&i| i as u32).collect();
    // Cross-check a resume candidate against the deterministically
    // recomputed reordering; divergence means the snapshot came from a
    // different application or library version.
    let mut resume = session.resume.take();
    if let Some(snap) = &resume {
        if snap.order != order_ids {
            if T::ENABLED {
                tracer.emit(TraceEvent::CheckpointReject {
                    reason: SnapshotError::AppMismatch("command-queue reordering diverged")
                        .to_string(),
                });
            }
            resume = None;
        }
    }
    // Everything the tracer records from here on is the run phase; the
    // slice from `run_base` is what snapshots embed.
    let run_base = tracer.recorded_len();
    let restored = resume.and_then(|snap| {
        match EngineSource::restore(
            cfg,
            jit,
            mode,
            host_ready.clone(),
            fault,
            tracer,
            &snap.engine,
        ) {
            Ok(source) => Some((source, snap)),
            Err(e) => {
                if T::ENABLED {
                    tracer.emit(TraceEvent::CheckpointReject {
                        reason: e.to_string(),
                    });
                }
                None
            }
        }
    });
    let (mut source, mut engine, mut prev_retired, mut last_saved) = match restored {
        Some((source, snap)) => {
            let mut engine = DesEngine::from_checkpoint(&snap.des);
            if let Some(tok) = &session.cancel {
                engine.set_cancel(tok.clone());
            }
            if T::ENABLED {
                // Replay the snapshot's embedded run-phase slice so the
                // resumed stream is bit-identical to the uninterrupted one
                // (the slice already ends with this snapshot's own
                // `CheckpointSave`), then mark the seam.
                for ev in snap.trace {
                    tracer.emit(ev);
                }
                tracer.emit(TraceEvent::CheckpointLoad {
                    cycle: snap.meta.cycle,
                    retired: snap.meta.retired,
                });
            }
            let at = (snap.meta.retired, snap.meta.cycle);
            (source, engine, at.0, at)
        }
        None => {
            let mut source = EngineSource::new(cfg, jit, mode, host_ready, fault, tracer);
            let mut engine = DesEngine::new(cfg);
            if let Some(tok) = &session.cancel {
                engine.set_cancel(tok.clone());
            }
            source.on_time_advance(0);
            (source, engine, 0, (0, 0))
        }
    };
    let failure = loop {
        match engine.step(&mut source, tracer) {
            Ok(StepOutcome::Finished) => break None,
            Ok(StepOutcome::Progressed) => {
                let retired = source.retired as u32;
                if retired <= prev_retired {
                    continue;
                }
                let now = engine.now();
                // Save first, kill second: a killed run is resumable from
                // the very boundary that killed it.
                if session.store.is_some()
                    && (retired as usize) < jit.len()
                    && session
                        .policy
                        .due(retired - last_saved.0, now.saturating_sub(last_saved.1))
                {
                    let snap = capture_snapshot(
                        &source, &engine, mode, session, &order_ids, retired, now, run_base, tracer,
                    );
                    let store = session.store.as_deref_mut().expect("checked above");
                    match store.save(&snap) {
                        Ok(()) => session.saves += 1,
                        Err(e) => session.save_failures.push(e),
                    }
                    last_saved = (retired, now);
                }
                if let Some(q) = fault.kill_at_kernel {
                    if prev_retired < q && retired >= q {
                        return Err(EngineError::Killed {
                            cycle: now,
                            retired,
                        });
                    }
                }
                // Injected boundary cancellation mirrors the kill point:
                // the boundary's checkpoint (when due) has already landed,
                // so the cancelled run is resumable.
                if let Some(q) = fault.cancel_at_kernel {
                    if prev_retired < q && retired >= q {
                        return Err(EngineError::Cancelled {
                            cycle: now,
                            retired,
                            cause: bm_ptx::cancel::CancelCause::Cancelled,
                        });
                    }
                }
                // Injected worker crash: a raw panic after the boundary's
                // save, modeling a worker dying mid-run. Contained by the
                // serve layer's catch_unwind; resumable like a kill.
                if let Some(q) = fault.panic_at_kernel {
                    if prev_retired < q && retired >= q {
                        panic!("injected worker panic at kernel boundary {q}");
                    }
                }
                // Cooperative cancellation at the retirement boundary:
                // force a final checkpoint for the freshest resume point
                // (deadlines rarely align with the periodic policy), then
                // surface the typed error.
                if let Some(cause) = session.cancel.as_ref().and_then(|t| t.fired()) {
                    if session.store.is_some()
                        && (retired as usize) < jit.len()
                        && last_saved != (retired, now)
                    {
                        let snap = capture_snapshot(
                            &source, &engine, mode, session, &order_ids, retired, now, run_base,
                            tracer,
                        );
                        let store = session.store.as_deref_mut().expect("checked above");
                        match store.save(&snap) {
                            Ok(()) => session.saves += 1,
                            Err(e) => session.save_failures.push(e),
                        }
                    }
                    return Err(EngineError::Cancelled {
                        cycle: now,
                        retired,
                        cause,
                    });
                }
                prev_retired = retired;
            }
            Err(DesError::Deadlock(snap)) => break Some(EngineError::Deadlock(snap)),
            Err(DesError::SourceAbort { cycle }) => {
                break Some(
                    source
                        .error
                        .take()
                        .unwrap_or(EngineError::Aborted { cycle }),
                )
            }
            // The engine observed the token between steps, mid-kernel: the
            // last boundary checkpoint (if any) remains the resume point.
            Err(DesError::Cancelled { cycle, cause }) => {
                break Some(EngineError::Cancelled {
                    cycle,
                    retired: prev_retired,
                    cause,
                })
            }
        }
    };
    if let Some(e) = failure {
        return Err(e);
    }
    let stats = engine.finish();
    match source.error.take() {
        Some(e) => Err(e),
        None => Ok(assemble_report(cfg, jit, mode, &source, stats, epilogue)),
    }
}

/// Builds and encodes the boundary snapshot, embedding the run-phase trace
/// slice terminated by this snapshot's own `CheckpointSave` event (emitted
/// to the live stream too, so later snapshots and the final trace agree).
/// The event's `bytes` field is the encoded size; all integer fields are
/// fixed-width, so stamping the size does not change it.
#[allow(clippy::too_many_arguments)]
fn capture_snapshot<T: Tracer>(
    source: &EngineSource<'_, T>,
    engine: &DesEngine,
    mode: ExecMode,
    session: &CheckpointSession<'_>,
    order: &[u32],
    retired: u32,
    now: u64,
    run_base: usize,
    tracer: &T,
) -> Vec<u8> {
    let mut trace = Vec::new();
    if T::ENABLED {
        // `checkpoint_load` seams are resume-local: a snapshot taken after
        // a resume must carry the same slice an uninterrupted run's
        // snapshot would.
        trace = tracer.recorded_since(run_base);
        trace.retain(|ev| ev.kind() != "checkpoint_load");
        trace.push(TraceEvent::CheckpointSave {
            cycle: now,
            retired,
            bytes: 0,
        });
    }
    let mut snap = RunSnapshot {
        meta: SnapshotMeta {
            app_fp: session.app_fp,
            mode: format!("{mode:?}"),
            hazard: session.hazard.clone(),
            n_kernels: source.jit.len() as u32,
            retired,
            cycle: now,
        },
        des: engine.checkpoint(),
        engine: source.snapshot(),
        guard: session.guard.clone(),
        order: order.to_vec(),
        trace,
        multi: Vec::new(),
    };
    let bytes = snap.encode().len() as u64;
    if let Some(TraceEvent::CheckpointSave { bytes: b, .. }) = snap.trace.last_mut() {
        *b = bytes;
    }
    if T::ENABLED {
        tracer.emit(TraceEvent::CheckpointSave {
            cycle: now,
            retired,
            bytes,
        });
    }
    snap.encode()
}

/// Host-side issue times for each kernel plus the post-kernel epilogue
/// cost (trailing D2H copies etc.).
///
/// Baseline modes model blocking semantics: every memory call occupies the
/// host before the next call can be reached. Pre-launching modes model the
/// paper's "treat blocking operations as non-blocking" (§III-C): the host
/// issues commands back-to-back while copies drain through a DMA engine,
/// and a kernel only waits for the *specific* copies it depends on.
fn host_timeline(
    cfg: &GpuConfig,
    app: &Application,
    order: &Reordering,
    mode: ExecMode,
) -> (Vec<u64>, u64) {
    let api = if mode.has_launch_overhead() {
        cfg.launch_api_cycles
    } else {
        0
    };
    let copy_cost =
        |bytes: u64| cfg.memcpy_setup_cycles + bytes / cfg.memcpy_bytes_per_cycle.max(1);
    let mut host_ready = Vec::new();
    let mut tail: u64 = 0;
    if !mode.prelaunches() {
        // Blocking host: costs serialize in command order.
        let mut h: u64 = 0;
        for &i in &order.order {
            match &app.calls[i] {
                ApiCall::Malloc { .. } => {
                    h += cfg.malloc_cycles;
                    tail = 0;
                }
                ApiCall::MemcpyH2D { bytes, .. } => {
                    h += copy_cost(*bytes);
                    tail = 0;
                }
                ApiCall::MemcpyD2H { bytes, .. } => {
                    let cost = copy_cost(*bytes);
                    h += cost;
                    tail += cost;
                }
                ApiCall::DeviceSynchronize => {
                    tail = 0;
                }
                ApiCall::KernelLaunch(_) => {
                    host_ready.push(h);
                    h += api;
                    tail = 0;
                }
            }
        }
        return (host_ready, tail);
    }
    // Non-blocking host: per-call issue cost only; copies drain serially
    // through the DMA engine; kernels gate on their own copy dependencies.
    const ISSUE_CYCLES: u64 = 200;
    let dag = build_call_dag(app);
    let n = app.calls.len();
    let mut finish = vec![0u64; n];
    let mut host: u64 = 0;
    let mut dma: u64 = 0;
    for &i in &order.order {
        match &app.calls[i] {
            ApiCall::Malloc { .. } => {
                host += ISSUE_CYCLES;
                finish[i] = host + cfg.malloc_cycles;
            }
            ApiCall::MemcpyH2D { bytes, .. } | ApiCall::MemcpyD2H { bytes, .. } => {
                host += ISSUE_CYCLES;
                dma = dma.max(host) + copy_cost(*bytes);
                finish[i] = dma;
                if matches!(app.calls[i], ApiCall::MemcpyD2H { .. }) {
                    tail += copy_cost(*bytes);
                } else {
                    tail = 0;
                }
            }
            ApiCall::DeviceSynchronize => {}
            ApiCall::KernelLaunch(_) => {
                let gate = dag.preds[i]
                    .iter()
                    .filter(|&&p| !matches!(app.calls[p], ApiCall::KernelLaunch(_)))
                    .map(|&p| finish[p])
                    .max()
                    .unwrap_or(0);
                host_ready.push(host.max(gate));
                host += api;
                finish[i] = host;
                tail = 0;
            }
        }
    }
    (host_ready, tail)
}

/// The host-side launch plan the engine computes internally, exposed for
/// multi-device coordinators: the deterministic command-queue reordering
/// for `mode` is applied, and the per-kernel host issue-ready times plus
/// the post-kernel epilogue cost are returned — exactly the values the
/// single-device execution path uses. `tracer` observes the reordering
/// (`CmdqSubmit` events) just as a traced single-device run would.
pub fn host_plan_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    mode: ExecMode,
    tracer: &T,
) -> (Vec<u64>, u64) {
    let order = if mode.prelaunches() {
        reorder_for_prelaunch_traced(app, tracer)
    } else {
        Reordering::identity(app.calls.len())
    };
    host_timeline(cfg, app, &order, mode)
}

#[derive(Debug)]
struct KernelState {
    n_tbs: u32,
    threads: u32,
    shared_bytes: u32,
    duration: u64,
    /// Remaining parent counts per TB (explicit graphs only).
    counts: Vec<u32>,
    /// Time each TB's data dependencies were satisfied.
    data_ready: Vec<Option<u64>>,
    /// Per-TB completion flags.
    done: Vec<bool>,
    /// TBs eligible for scheduling right now.
    ready: VecDeque<u32>,
    /// Whether a TB has been pushed to `ready` (or scheduled).
    pushed: Vec<bool>,
    /// Kernel seqs (skip gates) that must fully complete first.
    gates: Vec<u32>,
    completed: u32,
    arrival: Option<u64>,
    issued: bool,
    complete: bool,
}

struct EngineSource<'a, T: Tracer> {
    mode: ExecMode,
    /// Effective pre-launch window; shrinks under admission backpressure.
    window: usize,
    /// The mode's configured window, before any backpressure.
    base_window: usize,
    /// Backpressure never shrinks the window below this (clamped to the
    /// base window so baseline modes are unaffected).
    min_window: usize,
    /// Spill transactions tolerated per window-shrink step; 0 disables
    /// backpressure.
    spill_threshold: u64,
    /// One record per window shrink, in cycle order.
    pressure_events: Vec<PressureEvent>,
    jit: &'a [JitKernel],
    kernels: Vec<KernelState>,
    retired: usize,
    issued_count: usize,
    next_issue_floor: u64,
    host_ready: Vec<u64>,
    launch_cycles: u64,
    api_cycles: u64,
    arrivals: BinaryHeap<Reverse<(u64, usize)>>,
    dlb: DepListBuffer,
    pcb: ParentCounterBuffer,
    /// Injected corruptions (empty plan for normal runs).
    fault: &'a FaultPlan,
    /// First fault detected mid-run; set once, then the DES aborts.
    error: Option<EngineError>,
    /// Alternates consumer-priority placement between run-ahead (newest
    /// kernel first) and producer progress (oldest first), so run-ahead
    /// cannot starve the retirement-critical producer when thread-block
    /// demand exceeds the GPU's resident-TB slots.
    consumer_toggle: bool,
    /// Trace sink; [`NullTracer`] for untraced runs.
    tracer: &'a T,
    /// Per-kernel issue cycle, always recorded (traced or not) so
    /// degradation records are stamped identically at report assembly.
    issue_cycles: Vec<u64>,
}

impl<'a, T: Tracer> EngineSource<'a, T> {
    /// Fresh source at cycle 0: skeleton plus the boot sequence (initial
    /// readiness seeding, first admission, zero-TB retirement) — which
    /// emits the initial `KernelIssue` events. Restored sources skip the
    /// boot entirely ([`Self::restore`]).
    fn new(
        cfg: &GpuConfig,
        jit: &'a [JitKernel],
        mode: ExecMode,
        host_ready: Vec<u64>,
        fault: &'a FaultPlan,
        tracer: &'a T,
    ) -> Self {
        let mut src = Self::build(cfg, jit, mode, host_ready, fault, tracer);
        // Seed initial data-readiness at time 0.
        for k in 0..src.jit.len() {
            src.seed_initial_readiness(k);
        }
        src.admit_kernels(0);
        // Retire any zero-TB kernels immediately (defensive; workloads
        // never produce them).
        src.cascade_retirement(0);
        src
    }

    /// Skeleton constructor: per-kernel state from the analysis products,
    /// no scheduling side effects, no trace emissions.
    fn build(
        cfg: &GpuConfig,
        jit: &'a [JitKernel],
        mode: ExecMode,
        host_ready: Vec<u64>,
        fault: &'a FaultPlan,
        tracer: &'a T,
    ) -> Self {
        let fine = mode.fine_grain();
        let kernels: Vec<KernelState> = jit
            .iter()
            .enumerate()
            .map(|(seq, k)| {
                let n = k.profile.n_tbs;
                // Coarse modes treat any dependence as a whole-kernel
                // barrier; fine-grain modes use the bipartite graph.
                let mut counts = if fine {
                    match k.graph.kind() {
                        GraphKind::Explicit(_) => k.graph.parent_counts(),
                        _ => Vec::new(),
                    }
                } else {
                    Vec::new()
                };
                // Injected counter faults perturb the initial seeds, within
                // the 6-bit range real hardware would store.
                for (tb, c) in counts.iter_mut().enumerate() {
                    let key = TbKey {
                        kernel_seq: seq as u32,
                        tb: tb as u32,
                    };
                    let delta = fault.counter_delta(key);
                    if delta != 0 {
                        *c = (*c as i64 + delta).clamp(0, MAX_COUNTER as i64) as u32;
                    }
                }
                KernelState {
                    n_tbs: n,
                    threads: k.profile.threads,
                    shared_bytes: k.profile.shared_bytes,
                    duration: k.profile.duration,
                    counts,
                    data_ready: vec![None; n as usize],
                    done: vec![false; n as usize],
                    ready: VecDeque::new(),
                    pushed: vec![false; n as usize],
                    gates: k.skip_gates.clone(),
                    completed: 0,
                    arrival: None,
                    issued: false,
                    complete: n == 0,
                }
            })
            .collect();
        let base_window = mode.window() as usize;
        EngineSource {
            mode,
            window: base_window,
            base_window,
            min_window: (cfg.pressure_min_window as usize).min(base_window).max(1),
            spill_threshold: cfg.spill_pressure_threshold,
            pressure_events: Vec::new(),
            jit,
            kernels,
            retired: 0,
            issued_count: 0,
            // CUDA-Graphs-style execution pays one launch for the whole
            // instantiated graph before any kernel runs.
            next_issue_floor: if matches!(mode, ExecMode::GraphLaunch) {
                cfg.kernel_launch_cycles
            } else {
                0
            },
            host_ready,
            launch_cycles: if mode.has_launch_overhead() {
                cfg.kernel_launch_cycles
            } else {
                0
            },
            api_cycles: if mode.has_launch_overhead() {
                cfg.launch_api_cycles
            } else {
                0
            },
            arrivals: BinaryHeap::new(),
            dlb: DepListBuffer::new(),
            pcb: ParentCounterBuffer::new(fault.pcb_capacity.unwrap_or(BUFFER_ENTRIES)),
            fault,
            error: None,
            consumer_toggle: false,
            tracer,
            issue_cycles: vec![0; jit.len()],
        }
    }

    /// Captures the complete mutable state of the source. Pure
    /// observation: `HashMap`-backed buffers are exported in sorted order
    /// (FIFO order preserved verbatim) so equal states produce equal
    /// snapshots.
    fn snapshot(&self) -> EngineSnapshot {
        let mut arrivals: Vec<(u64, u32)> = self
            .arrivals
            .iter()
            .map(|Reverse((t, k))| (*t, *k as u32))
            .collect();
        arrivals.sort_unstable();
        let kernels = self
            .kernels
            .iter()
            .map(|st| KernelSnapshot {
                counts: st.counts.clone(),
                data_ready: st.data_ready.clone(),
                done: st.done.clone(),
                ready: st.ready.iter().copied().collect(),
                pushed: st.pushed.clone(),
                completed: st.completed,
                arrival: st.arrival,
                issued: st.issued,
                complete: st.complete,
            })
            .collect();
        let (dlb_entries, dlb_traffic, dlb_high_water) = self.dlb.snapshot();
        let (pcb_counters, pcb_fifo, pcb_capacity, pcb_traffic, pcb_high_water) =
            self.pcb.snapshot();
        EngineSnapshot {
            window: self.window as u32,
            retired: self.retired as u32,
            issued_count: self.issued_count as u32,
            next_issue_floor: self.next_issue_floor,
            consumer_toggle: self.consumer_toggle,
            issue_cycles: self.issue_cycles.clone(),
            arrivals,
            kernels,
            pressure: self.pressure_events.clone(),
            dlb_entries,
            dlb_traffic,
            dlb_high_water: dlb_high_water as u32,
            pcb_counters,
            pcb_fifo,
            pcb_capacity: pcb_capacity as u32,
            pcb_traffic,
            pcb_high_water: pcb_high_water as u32,
        }
    }

    /// Rebuilds a mid-run source from a snapshot, against freshly
    /// recomputed analysis products. Immutable configuration (windows,
    /// thresholds, gates, durations) comes from `cfg`/`jit` as in
    /// [`Self::build`]; only the mutable state is taken from `snap`. The
    /// boot sequence is NOT run — the snapshot already contains its
    /// effects.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Malformed`] when the snapshot's shape disagrees
    /// with the analyzed application (kernel count, per-kernel TB counts,
    /// out-of-range indices) — decoded bytes are never trusted blindly.
    fn restore(
        cfg: &GpuConfig,
        jit: &'a [JitKernel],
        mode: ExecMode,
        host_ready: Vec<u64>,
        fault: &'a FaultPlan,
        tracer: &'a T,
        snap: &EngineSnapshot,
    ) -> Result<Self, SnapshotError> {
        let mut src = Self::build(cfg, jit, mode, host_ready, fault, tracer);
        let n = jit.len();
        if snap.kernels.len() != n || snap.issue_cycles.len() != n {
            return Err(SnapshotError::Malformed("kernel count mismatch"));
        }
        if snap.retired as usize > n || snap.issued_count as usize > n {
            return Err(SnapshotError::Malformed("progress counters out of range"));
        }
        if snap.window as usize > src.base_window || snap.window == 0 {
            return Err(SnapshotError::Malformed("window out of range"));
        }
        for (k, ks) in snap.kernels.iter().enumerate() {
            let n_tbs = src.kernels[k].n_tbs as usize;
            if ks.data_ready.len() != n_tbs
                || ks.done.len() != n_tbs
                || ks.pushed.len() != n_tbs
                || !(ks.counts.is_empty() || ks.counts.len() == n_tbs)
                || ks.completed as usize > n_tbs
                || ks.ready.iter().any(|&tb| tb as usize >= n_tbs)
            {
                return Err(SnapshotError::Malformed("kernel state shape mismatch"));
            }
        }
        if snap.arrivals.iter().any(|&(_, k)| k as usize >= n) {
            return Err(SnapshotError::Malformed("arrival kernel out of range"));
        }
        src.window = snap.window as usize;
        src.retired = snap.retired as usize;
        src.issued_count = snap.issued_count as usize;
        src.next_issue_floor = snap.next_issue_floor;
        src.consumer_toggle = snap.consumer_toggle;
        src.issue_cycles = snap.issue_cycles.clone();
        src.arrivals = snap
            .arrivals
            .iter()
            .map(|&(t, k)| Reverse((t, k as usize)))
            .collect();
        for (k, ks) in snap.kernels.iter().enumerate() {
            let st = &mut src.kernels[k];
            st.counts = ks.counts.clone();
            st.data_ready = ks.data_ready.clone();
            st.done = ks.done.clone();
            st.ready = ks.ready.iter().copied().collect();
            st.pushed = ks.pushed.clone();
            st.completed = ks.completed;
            st.arrival = ks.arrival;
            st.issued = ks.issued;
            st.complete = ks.complete;
        }
        src.pressure_events = snap.pressure.clone();
        src.dlb = DepListBuffer::restore(
            snap.dlb_entries.clone(),
            snap.dlb_traffic,
            snap.dlb_high_water as usize,
        );
        src.pcb = ParentCounterBuffer::restore(
            snap.pcb_counters.clone(),
            snap.pcb_fifo.clone(),
            snap.pcb_capacity as usize,
            snap.pcb_traffic,
            snap.pcb_high_water as usize,
        );
        Ok(src)
    }

    /// Marks TBs whose dependencies are satisfied from the start.
    fn seed_initial_readiness(&mut self, k: usize) {
        let fine = self.mode.fine_grain();
        let barrier = self.kernel_is_barriered(k);
        let st = &mut self.kernels[k];
        if k == 0 || !barrier {
            // First kernel, or independent of its predecessor: every TB is
            // data-ready at t=0 (fine-grain explicit handled below).
            if st.counts.is_empty() {
                for tb in 0..st.n_tbs as usize {
                    st.data_ready[tb] = Some(0);
                }
                return;
            }
        }
        if fine {
            // Explicit graph: TBs with zero parents are data-ready now.
            for tb in 0..st.n_tbs as usize {
                if st.counts.get(tb).copied().unwrap_or(0) == 0 && !st.counts.is_empty() {
                    st.data_ready[tb] = Some(0);
                }
            }
        }
    }

    /// Whether kernel `k` waits on its predecessor as a whole
    /// (coarse modes with any dependence, or fully-connected graphs).
    fn kernel_is_barriered(&self, k: usize) -> bool {
        if k == 0 {
            return false;
        }
        let g = &self.jit[k].graph;
        match g.kind() {
            GraphKind::Independent => false,
            GraphKind::FullyConnected => true,
            GraphKind::Explicit(_) => !self.mode.fine_grain(),
        }
    }

    /// Overload-safe admission: when cumulative scheduler-buffer spill
    /// traffic (parent-counter writebacks plus dependency-list fetches)
    /// crosses the configured threshold, the effective pre-launch window
    /// shrinks by one kernel per crossing — monotonically, never below
    /// `min_window` — and each shrink is recorded as a [`PressureEvent`].
    /// Both traffic counters and the threshold are deterministic, so
    /// identical runs shrink at identical cycles.
    fn check_pressure(&mut self, now: u64) {
        if self.spill_threshold == 0 || self.window == self.min_window {
            return;
        }
        let spill = self.pcb.traffic().counter_writebacks + self.dlb.traffic().dep_list_fetches;
        let crossings = (spill / self.spill_threshold) as usize;
        let desired = self
            .base_window
            .saturating_sub(crossings)
            .max(self.min_window);
        if desired < self.window {
            self.pressure_events.push(PressureEvent {
                cycle: now,
                spill_traffic: spill,
                window_before: self.window as u32,
                window_after: desired as u32,
            });
            if T::ENABLED {
                self.tracer.emit(TraceEvent::Pressure {
                    cycle: now,
                    spill,
                    window_before: self.window as u32,
                    window_after: desired as u32,
                });
            }
            self.window = desired;
        }
    }

    /// Issues kernels into the active window as retirement frees slots.
    fn admit_kernels(&mut self, now: u64) {
        self.check_pressure(now);
        while self.issued_count < self.jit.len() && self.issued_count < self.retired + self.window {
            let k = self.issued_count;
            // Pre-launch-off kernels (bottom ladder rung) are admitted only
            // when next to retire, and block run-ahead past themselves
            // until they have retired.
            if k > self.retired
                && self.jit[self.retired..=k]
                    .iter()
                    .any(|j| j.degradation.rung == DegradationRung::PrelaunchOff)
            {
                break;
            }
            let issue = now
                .max(self.host_ready.get(k).copied().unwrap_or(0))
                .max(self.next_issue_floor);
            self.next_issue_floor = issue + self.api_cycles;
            let arrival = issue + self.launch_cycles;
            self.kernels[k].issued = true;
            self.issue_cycles[k] = issue;
            if T::ENABLED {
                self.tracer.emit(TraceEvent::KernelIssue {
                    cycle: issue,
                    seq: k as u32,
                    name: self.jit[k].name.clone(),
                    prelaunched: k > self.retired,
                });
            }
            self.arrivals.push(Reverse((arrival, k)));
            self.issued_count += 1;
        }
    }

    fn gates_open(&self, k: usize) -> bool {
        self.kernels[k]
            .gates
            .iter()
            .all(|&g| self.kernels[g as usize].complete)
    }

    /// Pushes every eligible TB of kernel `k` into its ready queue.
    fn flush_ready(&mut self, k: usize) {
        if self.kernels[k].arrival.is_none() || !self.gates_open(k) {
            return;
        }
        let st = &mut self.kernels[k];
        for tb in 0..st.n_tbs as usize {
            if !st.pushed[tb] && st.data_ready[tb].is_some() {
                st.pushed[tb] = true;
                st.ready.push_back(tb as u32);
            }
        }
    }

    /// Marks one TB data-ready and enqueues it if eligible.
    fn mark_data_ready(&mut self, k: usize, tb: u32, now: u64) {
        let eligible = self.kernels[k].arrival.is_some() && self.gates_open(k);
        let st = &mut self.kernels[k];
        if st.data_ready[tb as usize].is_none() {
            st.data_ready[tb as usize] = Some(now);
            if T::ENABLED {
                self.tracer.emit(TraceEvent::TbReady {
                    cycle: now,
                    id: TbId {
                        kernel: k as u32,
                        tb,
                    },
                });
            }
        }
        let st = &mut self.kernels[k];
        if eligible && !st.pushed[tb as usize] {
            st.pushed[tb as usize] = true;
            st.ready.push_back(tb);
        }
    }

    /// Called when kernel `k` has completed all TBs.
    fn on_kernel_complete(&mut self, k: usize, now: u64) {
        self.kernels[k].complete = true;
        // Whole-kernel barrier children become data-ready.
        if k + 1 < self.kernels.len() && self.kernel_is_barriered(k + 1) {
            for tb in 0..self.kernels[k + 1].n_tbs {
                self.mark_data_ready(k + 1, tb, now);
            }
        }
        // Skip gates opened by this completion.
        for j in 0..self.kernels.len() {
            if self.kernels[j].gates.contains(&(k as u32)) {
                self.flush_ready(j);
            }
        }
        self.cascade_retirement(now);
    }

    /// In-order kernel completion: kernel `k` retires only after `k-1`
    /// retired; retirement frees window slots for pre-launching.
    fn cascade_retirement(&mut self, now: u64) {
        while self.retired < self.kernels.len() && self.kernels[self.retired].complete {
            if T::ENABLED {
                self.tracer.emit(TraceEvent::KernelRetire {
                    cycle: now,
                    seq: self.retired as u32,
                });
            }
            self.retired += 1;
        }
        self.admit_kernels(now);
    }

    fn active_range(&self) -> std::ops::Range<usize> {
        self.retired..self.issued_count
    }

    /// Records the first mid-run fault; subsequent faults are ignored and
    /// the DES aborts at its next scheduling point.
    fn record_error(&mut self, e: EngineError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }
}

impl<T: Tracer> TbSource for EngineSource<'_, T> {
    fn pop_ready(&mut self, _now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
        let range = self.active_range();
        let order: Vec<usize> = if self.mode.consumer_priority() {
            self.consumer_toggle = !self.consumer_toggle;
            if self.consumer_toggle {
                range.rev().collect()
            } else {
                range.collect()
            }
        } else {
            range.collect()
        };
        for k in order {
            let st = &self.kernels[k];
            if st.arrival.is_none() || st.ready.is_empty() {
                continue;
            }
            if !fits(st.threads, st.shared_bytes) {
                continue;
            }
            let st = &mut self.kernels[k];
            let tb = st.ready.pop_front().expect("checked non-empty");
            return Some(TbDescriptor {
                key: TbKey {
                    kernel_seq: k as u32,
                    tb,
                },
                threads: st.threads,
                shared_bytes: st.shared_bytes,
                duration: st.duration,
            });
        }
        None
    }

    fn on_tb_start(&mut self, key: TbKey, now: u64) {
        let k = key.kernel_seq as usize;
        if T::ENABLED {
            // A TB that waited between becoming data-ready and being
            // scheduled stalled either on its kernel's arrival (launch
            // latency) or on execution resources (no free TB slot).
            let ready_at = self.kernels[k].data_ready[key.tb as usize].unwrap_or(now);
            if now > ready_at {
                let reason = if self.kernels[k].arrival.is_some_and(|a| a > ready_at) {
                    StallReason::KernelArrival
                } else {
                    StallReason::Resources
                };
                self.tracer.emit(TraceEvent::TbStall {
                    cycle: now,
                    id: TbId {
                        kernel: key.kernel_seq,
                        tb: key.tb,
                    },
                    ready_at,
                    reason,
                });
            }
        }
        // Buffer this TB's dependency-list entry: the children it must
        // notify live in the *next* kernel's graph.
        let (mut children, encoded) = match self.jit.get(k + 1) {
            Some(next) if self.mode.fine_grain() => match next.graph.kind() {
                GraphKind::Explicit(_) => (next.graph.children_of(key.tb), next.encoded),
                // Symbolic graphs derive children; nothing to buffer.
                _ => (Vec::new(), true),
            },
            _ => (Vec::new(), true),
        };
        // Injected dependency-list corruption: lose or fabricate edges.
        // Only explicit graphs have dependency lists to corrupt — barrier
        // (fully-connected) and independent kernels bypass this hardware,
        // which is what makes quarantine a safe fallback.
        if !self.fault.is_empty()
            && self.mode.fine_grain()
            && self
                .jit
                .get(k + 1)
                .is_some_and(|n| matches!(n.graph.kind(), GraphKind::Explicit(_)))
        {
            children.retain(|&c| !self.fault.drops(key, c));
            children.extend(self.fault.phantoms_of(key));
        }
        self.dlb
            .insert_traced(key, children, encoded, now, self.tracer);
        // The child TB's own parent-counter entry is released when it is
        // selected for execution (§III-D1).
        self.pcb.release(key);
        if T::ENABLED {
            self.tracer.emit(TraceEvent::BufferLevels {
                cycle: now,
                dlb: self.dlb.len() as u32,
                pcb: self.pcb.len() as u32,
            });
        }
    }

    fn on_tb_complete(&mut self, key: TbKey, now: u64) {
        if self.error.is_some() {
            return;
        }
        let k = key.kernel_seq as usize;
        let children = self.dlb.take(key);
        {
            let st = &mut self.kernels[k];
            debug_assert!(!st.done[key.tb as usize], "double completion");
            st.done[key.tb as usize] = true;
            st.completed += 1;
        }
        // Fine-grain decrement of the children's parent counters.
        if !children.is_empty() {
            let ck = k + 1;
            for c in children {
                let child_key = TbKey {
                    kernel_seq: ck as u32,
                    tb: c,
                };
                // A child outside the next kernel's grid (or a kernel with
                // no explicit counters) means the dependency list itself is
                // corrupt; the in-memory counter array has no record of it.
                let stored = match self
                    .kernels
                    .get(ck)
                    .and_then(|st| st.counts.get(c as usize))
                    .copied()
                {
                    Some(s) => s,
                    None => {
                        self.record_error(EngineError::Hw {
                            err: HwError::CounterNotResident { key: child_key },
                            cycle: now,
                        });
                        return;
                    }
                };
                if stored == 0 {
                    self.record_error(EngineError::Hw {
                        err: HwError::CounterUnderflow { key: child_key },
                        cycle: now,
                    });
                    return;
                }
                let zero = match self.pcb.try_decrement_with_refetch_traced(
                    child_key,
                    stored,
                    now,
                    self.tracer,
                ) {
                    Ok(z) => z,
                    Err(err) => {
                        self.record_error(EngineError::Hw { err, cycle: now });
                        return;
                    }
                };
                self.kernels[ck].counts[c as usize] = stored - 1;
                if zero {
                    self.mark_data_ready(ck, c, now);
                }
            }
        }
        if T::ENABLED {
            self.tracer.emit(TraceEvent::BufferLevels {
                cycle: now,
                dlb: self.dlb.len() as u32,
                pcb: self.pcb.len() as u32,
            });
        }
        if self.kernels[k].completed == self.kernels[k].n_tbs {
            self.on_kernel_complete(k, now);
        }
    }

    fn next_event_at(&self, _now: u64) -> Option<u64> {
        self.arrivals.peek().map(|Reverse((t, _))| *t)
    }

    fn on_time_advance(&mut self, now: u64) {
        while let Some(Reverse((t, k))) = self.arrivals.peek().copied() {
            if t > now {
                break;
            }
            self.arrivals.pop();
            self.kernels[k].arrival = Some(t);
            if T::ENABLED {
                self.tracer.emit(TraceEvent::KernelArrive {
                    cycle: t,
                    seq: k as u32,
                });
            }
            self.flush_ready(k);
        }
    }

    fn is_done(&self) -> bool {
        self.retired == self.kernels.len()
    }

    fn aborted(&self) -> bool {
        self.error.is_some()
    }

    fn diagnostics(&self) -> Vec<String> {
        let mut out = Vec::new();
        for k in self.active_range() {
            let st = &self.kernels[k];
            if st.complete {
                continue;
            }
            let pending = st.counts.iter().filter(|&&c| c > 0).count();
            out.push(format!(
                "kernel {k} `{}`: {}/{} TBs complete, ready-queue depth {}, \
                 {} pending parent counters, arrival {:?}, gates {:?}",
                self.jit[k].name,
                st.completed,
                st.n_tbs,
                st.ready.len(),
                pending,
                st.arrival,
                st.gates,
            ));
        }
        out.push(format!(
            "parent-counter buffer: {} high-water, traffic {:?}",
            self.pcb.high_water(),
            self.pcb.traffic()
        ));
        out
    }
}

fn assemble_report<T: Tracer>(
    _cfg: &GpuConfig,
    jit: &[JitKernel],
    mode: ExecMode,
    source: &EngineSource<'_, T>,
    stats: DesStats,
    epilogue: u64,
) -> RunReport {
    // Stalls: schedule start minus data-ready time, normalized by duration.
    let mut stalls = Vec::with_capacity(stats.schedule.len());
    for &(key, start, _finish) in &stats.schedule {
        let k = key.kernel_seq as usize;
        let ready = source.kernels[k].data_ready[key.tb as usize].unwrap_or(start);
        let dur = source.kernels[k].duration.max(1) as f64;
        stalls.push(start.saturating_sub(ready) as f64 / dur);
    }
    let baseline_mem: u64 = jit
        .iter()
        .map(|k| k.profile.n_tbs as u64 * k.profile.txns_per_tb)
        .sum();
    let mut traffic = source.dlb.traffic();
    let pcb_t = source.pcb.traffic();
    traffic.counter_fetches += pcb_t.counter_fetches;
    traffic.counter_writebacks += pcb_t.counter_writebacks;
    let storage_encoded: u64 = jit.iter().map(|k| k.storage.encoded_bytes).sum();
    let storage_plain: u64 = jit.iter().map(|k| k.storage.plain_bytes).sum();
    let patterns = jit
        .iter()
        .map(|k| (k.name.clone(), k.storage.pattern))
        .collect();
    RunReport {
        mode,
        total_cycles: stats.total_cycles + epilogue,
        kernel_region_cycles: stats.total_cycles,
        avg_concurrency: stats.avg_concurrency(),
        stalls_normalized: stalls,
        baseline_mem_requests: baseline_mem,
        overhead_mem_requests: if mode.fine_grain() {
            traffic.total()
        } else {
            0
        },
        hw_traffic: traffic,
        storage_encoded,
        storage_plain,
        patterns,
        schedule: stats.schedule,
        num_kernels: jit.len(),
        dlb_high_water: source.dlb.high_water(),
        pcb_high_water: source.pcb.high_water(),
        guard: GuardReport::default(),
        degradation: jit
            .iter()
            .enumerate()
            .map(|(seq, k)| {
                // Stamp each degraded kernel with the cycle its degraded
                // analysis took effect: its issue cycle. Analysis runs
                // before simulated time, so the issue is the first moment
                // the rung is observable in the execution.
                let mut d = k.degradation;
                if d.is_degraded() {
                    d.at_cycle = source.issue_cycles.get(seq).copied().unwrap_or(0);
                    if T::ENABLED {
                        source.tracer.emit(TraceEvent::DegradationStamp {
                            cycle: d.at_cycle,
                            seq: seq as u32,
                            rung: d.rung.to_string(),
                            reason: d.reason.to_string(),
                        });
                    }
                }
                (k.name.clone(), d)
            })
            .collect(),
        cache_hits: jit.iter().filter(|k| k.cache_hit).count() as u64,
        cache_misses: jit.iter().filter(|k| !k.cache_hit).count() as u64,
        pressure_events: source.pressure_events.clone(),
        multi: None,
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{ArgValue, Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// `Y[i] = X[i] + 1` — the canonical 1-to-1 kernel.
    fn map_kernel() -> Arc<bm_ptx::kernel::Kernel> {
        Arc::new(
            parse_kernel(
                r#".entry step(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.f32 %f2, %f1, 0f3F800000;
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f2;
                     ret;
                   }"#,
            )
            .unwrap(),
        )
    }

    /// Builds an app launching `step` over the given buffer pairs.
    fn chain_app(pairs: &[(usize, usize)], n_allocs: usize, tbs: u32) -> Application {
        let n = tbs as u64 * 64;
        let mut space = AddressSpace::new();
        let allocs: Vec<_> = (0..n_allocs).map(|_| space.alloc(4 * n)).collect();
        let k = map_kernel();
        let calls = pairs
            .iter()
            .map(|&(x, y)| {
                ApiCall::KernelLaunch(Launch::new(
                    k.clone(),
                    Dim3::x(tbs),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(allocs[x].base), ArgValue::Ptr(allocs[y].base)],
                ))
            })
            .collect();
        Application {
            name: "test".into(),
            space,
            calls,
            host_data: HashMap::new(),
        }
    }

    fn starts_of(report: &RunReport, kernel: u32) -> Vec<u64> {
        report
            .schedule
            .iter()
            .filter(|(k, _, _)| k.kernel_seq == kernel)
            .map(|&(_, s, _)| s)
            .collect()
    }

    fn finishes_of(report: &RunReport, kernel: u32) -> Vec<u64> {
        report
            .schedule
            .iter()
            .filter(|(k, _, _)| k.kernel_seq == kernel)
            .map(|&(_, _, f)| f)
            .collect()
    }

    #[test]
    fn baseline_serializes_with_launch_gap() {
        let cfg = GpuConfig::titan_x_pascal();
        // A -> B -> C chain.
        let app = chain_app(&[(0, 1), (1, 2)], 3, 4);
        let r = run_app(&cfg, &app, ExecMode::Baseline);
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        assert!(
            k2_start >= k1_done + cfg.kernel_launch_cycles,
            "baseline must pay the launch after completion: {k2_start} vs {k1_done}"
        );
    }

    #[test]
    fn prelaunch_masks_launch_but_keeps_barrier() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 4);
        let r = run_app(&cfg, &app, ExecMode::PreLaunch { window: 2 });
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        // Dependent kernel still waits for full producer completion...
        assert!(k2_start >= k1_done);
        // ...but the launch gap is (mostly) hidden.
        assert!(
            k2_start < k1_done + cfg.kernel_launch_cycles,
            "pre-launching should hide the 5us gap: {k2_start} vs {k1_done}"
        );
    }

    #[test]
    fn fine_grain_overlaps_dependent_kernels() {
        // Small GPU (16 TB slots) + 120-TB kernels: the producer's final
        // wave is partial, so freed slots let 1-to-1 children start while
        // the producer is still executing.
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 120);
        let r = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        assert!(
            k2_start < k1_done,
            "1-to-1 children must start before the whole producer finishes"
        );
    }

    #[test]
    fn independent_kernels_start_together() {
        let cfg = GpuConfig::small();
        // Two kernels on disjoint buffers, each using half the TB slots so
        // both fit on the machine simultaneously.
        let app = chain_app(&[(0, 1), (2, 3)], 4, 8);
        let r = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
        let k1_start = *starts_of(&r, 0).iter().min().unwrap();
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        // The second launch is pipelined behind the first — it must not be
        // serialized after the first kernel's completion plus a launch.
        assert!(k2_start <= k1_start + cfg.kernel_launch_cycles + cfg.launch_api_cycles);
        assert!(
            k2_start < k1_done + cfg.kernel_launch_cycles,
            "independent kernels must not serialize: {k2_start} vs {k1_done}"
        );
    }

    #[test]
    fn skip_gate_blocks_window_runahead() {
        let cfg = GpuConfig::small();
        // K1: A->B, K2: C->D (unrelated), K3: B->E (skip dep on K1).
        let app = chain_app(&[(0, 1), (2, 3), (1, 4)], 5, 128);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        assert_eq!(jit[2].skip_gates, vec![0]);
        assert!(jit[2].graph.is_independent());
        let r = run_analyzed(&cfg, &app, &jit, ExecMode::ConsumerPriority { window: 3 });
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k3_start = *starts_of(&r, 2).iter().min().unwrap();
        assert!(
            k3_start >= k1_done,
            "skip gate must hold K3 until K1 completes ({k3_start} vs {k1_done})"
        );
        // K2, however, overlaps K1 freely.
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        assert!(k2_start < k1_done);
    }

    #[test]
    fn window_limits_concurrent_kernels() {
        let cfg = GpuConfig::small();
        // Four mutually independent kernels; window 2 must keep kernel 2
        // from starting until kernel 0 retires.
        let app = chain_app(&[(0, 1), (2, 3), (4, 5), (6, 7)], 8, 128);
        let r = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 2 });
        let k0_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 2).iter().min().unwrap();
        assert!(
            k2_start >= k0_done,
            "window 2 admits kernel 2 only after kernel 0 retires"
        );
        // With window 4 all four can be in flight together.
        let r4 = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 4 });
        let k0_done4 = *finishes_of(&r4, 0).iter().max().unwrap();
        let k3_start4 = *starts_of(&r4, 3).iter().min().unwrap();
        assert!(k3_start4 < k0_done4 + cfg.kernel_launch_cycles * 4);
        assert!(r4.total_cycles <= r.total_cycles);
    }

    #[test]
    fn report_accounts_storage_and_patterns() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let r = run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 });
        assert_eq!(r.num_kernels, 2);
        assert_eq!(r.patterns.len(), 2);
        assert!(matches!(r.patterns[1].1, Pattern::OneToOne));
        assert!(r.storage_encoded > 0);
        assert!(r.storage_encoded <= r.storage_plain);
        assert!(r.baseline_mem_requests > 0);
        assert_eq!(r.schedule.len(), 16);
        assert!(r.avg_concurrency > 0.0);
        assert!(r.storage_ratio().unwrap() <= 1.0);
    }

    #[test]
    fn cuda_graph_launch_pays_exactly_one_launch() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = chain_app(&[(0, 1), (1, 2), (2, 3)], 4, 4);
        let base = run_app(&cfg, &app, ExecMode::Baseline);
        let graph = run_app(&cfg, &app, ExecMode::GraphLaunch);
        let ideal = run_app(&cfg, &app, ExecMode::IdealBaseline);
        // Graph launch sits between baseline and ideal...
        assert!(graph.total_cycles < base.total_cycles);
        assert!(graph.total_cycles >= ideal.total_cycles);
        // ...and for a serialized chain is the ideal plus one launch.
        assert_eq!(
            graph.kernel_region_cycles,
            ideal.kernel_region_cycles + cfg.kernel_launch_cycles
        );
        // Kernels still never overlap.
        for w in [1u32, 2] {
            let k_done = *finishes_of(&graph, w - 1).iter().max().unwrap();
            let k_start = *starts_of(&graph, w).iter().min().unwrap();
            assert!(k_start >= k_done);
        }
        // On a multi-wave chain, BlockMaestro's TB overlap beats even the
        // launch-free graph execution — the paper's point that CUDA Graphs
        // "does not address under-utilization during dependent kernels".
        let scfg = GpuConfig::small();
        let sapp = chain_app(&[(0, 1), (1, 2), (2, 3)], 4, 120);
        let sgraph = run_app(&scfg, &sapp, ExecMode::GraphLaunch);
        let sbm = run_app(&scfg, &sapp, ExecMode::ProducerPriority { window: 2 });
        assert!(
            sbm.kernel_region_cycles < sgraph.kernel_region_cycles,
            "bm {} vs graph {}",
            sbm.kernel_region_cycles,
            sgraph.kernel_region_cycles
        );
    }

    #[test]
    fn host_timeline_blocking_accumulates_costs() {
        let cfg = GpuConfig::titan_x_pascal();
        let mut space = bm_ptx::mem::AddressSpace::new();
        let a = space.alloc(4 * 25600);
        let k = map_kernel();
        let app = Application {
            name: "host".into(),
            space,
            calls: vec![
                ApiCall::Malloc { alloc: a.id },
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 4 * 25600,
                },
                ApiCall::KernelLaunch(Launch::new(
                    k,
                    Dim3::x(4),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base), ArgValue::Ptr(a.base)],
                )),
                ApiCall::MemcpyD2H {
                    alloc: a.id,
                    bytes: 4 * 25600,
                },
            ],
            host_data: HashMap::new(),
        };
        let order = Reordering::identity(app.calls.len());
        // Baseline: the kernel's host-ready time includes malloc + full copy.
        let (ready, tail) = host_timeline(&cfg, &app, &order, ExecMode::Baseline);
        let copy = cfg.memcpy_setup_cycles + 4 * 25600 / cfg.memcpy_bytes_per_cycle;
        assert_eq!(ready, vec![cfg.malloc_cycles + copy]);
        assert_eq!(tail, copy, "trailing D2H is epilogue");
        // Pre-launching: the copy still gates the kernel (true data dep),
        // but the host itself is only charged issue costs.
        let (ready_nb, tail_nb) =
            host_timeline(&cfg, &app, &order, ExecMode::ProducerPriority { window: 2 });
        assert_eq!(ready_nb.len(), 1);
        assert!(ready_nb[0] >= copy, "kernel must wait for its input copy");
        assert!(ready_nb[0] <= ready[0], "non-blocking host is never later");
        assert_eq!(tail_nb, copy);
    }

    #[test]
    fn host_timeline_unrelated_copy_does_not_gate_kernel() {
        let cfg = GpuConfig::titan_x_pascal();
        let mut space = bm_ptx::mem::AddressSpace::new();
        let a = space.alloc(1024);
        let b = space.alloc(4 * 1024 * 1024); // large unrelated buffer
        let k = map_kernel();
        let app = Application {
            name: "host2".into(),
            space,
            calls: vec![
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 1024,
                },
                ApiCall::MemcpyH2D {
                    alloc: b.id,
                    bytes: 4 * 1024 * 1024,
                },
                ApiCall::KernelLaunch(Launch::new(
                    k,
                    Dim3::x(4),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base), ArgValue::Ptr(a.base)],
                )),
            ],
            host_data: HashMap::new(),
        };
        let order = Reordering::identity(app.calls.len());
        let (blocking, _) = host_timeline(&cfg, &app, &order, ExecMode::Baseline);
        let (nonblocking, _) =
            host_timeline(&cfg, &app, &order, ExecMode::ConsumerPriority { window: 2 });
        // The huge unrelated copy delays the kernel under blocking
        // semantics but not under BlockMaestro's non-blocking host...
        let big_copy = 4 * 1024 * 1024 / cfg.memcpy_bytes_per_cycle;
        assert!(blocking[0] >= big_copy);
        // ...where only the small input copy gates it. The DMA engine is
        // serial, so the small copy finishes before the big one starts
        // only if it was issued first (it was).
        let small_copy = cfg.memcpy_setup_cycles + 1024 / cfg.memcpy_bytes_per_cycle;
        assert!(nonblocking[0] < big_copy);
        assert!(nonblocking[0] >= small_copy);
    }

    #[test]
    fn ideal_baseline_has_no_launch_gap() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 4);
        let r = run_app(&cfg, &app, ExecMode::IdealBaseline);
        let k1_done = *finishes_of(&r, 0).iter().max().unwrap();
        let k2_start = *starts_of(&r, 1).iter().min().unwrap();
        assert_eq!(k2_start, k1_done);
    }
}
