//! Workspace-wide typed error hierarchy for the BlockMaestro toolchain.
//!
//! [`BmError`] is the top of the tree: anything that can go wrong between
//! handing an [`bm_cmdq::Application`] to [`crate::try_run_app`] and
//! getting a [`crate::RunReport`] back is one of its variants. The layers
//! below keep their own precise types — [`bm_ptx::PtxError`] for the
//! toolchain, [`bm_cmdq::CmdqError`] for application structure,
//! [`crate::hw::HwError`] for scheduler-buffer faults, and
//! [`bm_simt::DesError`] for the simulation substrate — and `From` impls
//! lift each into `BmError` so `?` composes across the whole pipeline.

use crate::hw::HwError;
use bm_cmdq::CmdqError;
use bm_ptx::error::PtxError;
use bm_simt::des::DeadlockSnapshot;
use std::fmt;

/// A failure of one simulated execution (one [`crate::ExecMode`] run of an
/// already-analyzed application).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The discrete-event simulation reached a state with unfinished TBs
    /// but no runnable work and no pending events — the dependency
    /// metadata wedged the machine.
    Deadlock(DeadlockSnapshot),
    /// A scheduler-buffer fault (counter underflow / non-resident counter)
    /// surfaced mid-run.
    Hw {
        /// The hardware fault.
        err: HwError,
        /// Simulation cycle at which it was detected.
        cycle: u64,
    },
    /// The simulation source aborted without recording a specific cause
    /// (defensive: should not happen in practice).
    Aborted {
        /// Simulation cycle at which the abort was observed.
        cycle: u64,
    },
    /// The run was killed at a kernel-retirement boundary by a
    /// [`crate::faults::FaultClass::KillPoint`] plan — a simulated crash.
    /// The checkpoint at that boundary (when a store is configured) was
    /// captured *before* the kill fired, so the run is resumable.
    Killed {
        /// Simulation cycle of the kill boundary.
        cycle: u64,
        /// Kernels retired when the kill fired.
        retired: u32,
    },
    /// A cooperative [`bm_ptx::cancel::CancelToken`] fired (explicit
    /// cancel or deadline). When a store is configured, a final checkpoint
    /// at the last completed boundary was captured before the error
    /// surfaced, so a retried request resumes instead of restarting.
    Cancelled {
        /// Simulation cycle at which the cancellation was observed.
        cycle: u64,
        /// Kernels retired when it was observed.
        retired: u32,
        /// Why the token fired.
        cause: bm_ptx::cancel::CancelCause,
    },
}

impl EngineError {
    /// Cycles the simulation ran before failing — the work discarded when
    /// the run is thrown away and retried.
    pub fn cycles_wasted(&self) -> u64 {
        match self {
            EngineError::Deadlock(snap) => snap.cycle,
            EngineError::Hw { cycle, .. }
            | EngineError::Aborted { cycle }
            | EngineError::Killed { cycle, .. }
            | EngineError::Cancelled { cycle, .. } => *cycle,
        }
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Keep the "DES deadlock" prefix the panicking path always
            // printed, so wrappers preserve their observable messages.
            EngineError::Deadlock(snap) => write!(f, "DES {snap}"),
            EngineError::Hw { err, cycle } => write!(f, "at cycle {cycle}: {err}"),
            EngineError::Aborted { cycle } => {
                write!(
                    f,
                    "engine aborted at cycle {cycle} without a recorded cause"
                )
            }
            EngineError::Killed { cycle, retired } => {
                write!(
                    f,
                    "killed at cycle {cycle} after {retired} kernels retired (checkpoint boundary)"
                )
            }
            EngineError::Cancelled {
                cycle,
                retired,
                cause,
            } => {
                write!(
                    f,
                    "{cause} at cycle {cycle} after {retired} kernels retired"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<HwError> for EngineError {
    fn from(err: HwError) -> Self {
        EngineError::Hw { err, cycle: 0 }
    }
}

/// Any failure of the full BlockMaestro pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum BmError {
    /// The PTX toolchain rejected a kernel or launch.
    Ptx(PtxError),
    /// The application's command trace is structurally invalid.
    Cmdq(CmdqError),
    /// A simulated execution failed and recovery was not attempted (or the
    /// caller asked for an unguarded run).
    Engine(EngineError),
    /// The soundness guard exhausted its recovery rounds without producing
    /// a run equivalent to serialized execution.
    Unrecoverable {
        /// Guarded rounds attempted (including the final failed one).
        rounds: u32,
        /// The failure of the last round, if the engine itself failed;
        /// `None` when the last round completed but stayed unsound.
        last: Option<EngineError>,
    },
}

impl fmt::Display for BmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BmError::Ptx(e) => write!(f, "PTX toolchain: {e}"),
            BmError::Cmdq(e) => write!(f, "invalid application: {e}"),
            BmError::Engine(e) => write!(f, "execution failed: {e}"),
            BmError::Unrecoverable { rounds, last } => {
                write!(f, "unrecoverable after {rounds} guarded rounds")?;
                if let Some(e) = last {
                    write!(f, " (last failure: {e})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for BmError {}

impl From<PtxError> for BmError {
    fn from(e: PtxError) -> Self {
        BmError::Ptx(e)
    }
}

impl From<CmdqError> for BmError {
    fn from(e: CmdqError) -> Self {
        BmError::Cmdq(e)
    }
}

impl From<EngineError> for BmError {
    fn from(e: EngineError) -> Self {
        BmError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_simt::des::TbKey;

    #[test]
    fn conversions_lift_through_the_hierarchy() {
        let key = TbKey {
            kernel_seq: 1,
            tb: 3,
        };
        let hw = HwError::CounterUnderflow { key };
        let eng: EngineError = hw.into();
        assert!(matches!(eng, EngineError::Hw { .. }));
        let bm: BmError = eng.into();
        assert!(bm.to_string().contains("zero parent counter"));
        let bm2: BmError = PtxError::BadLaunch {
            kernel: "k".into(),
            reason: "r".into(),
        }
        .into();
        assert!(matches!(bm2, BmError::Ptx(_)));
    }

    #[test]
    fn deadlock_display_keeps_des_prefix() {
        let snap = DeadlockSnapshot {
            cycle: 42,
            tbs_executed: 7,
            resident: vec![],
            diagnostics: vec![],
        };
        let e = EngineError::Deadlock(snap);
        assert!(e.to_string().starts_with("DES deadlock at cycle 42"));
        assert_eq!(e.cycles_wasted(), 42);
    }

    #[test]
    fn unrecoverable_reports_rounds() {
        let e = BmError::Unrecoverable {
            rounds: 3,
            last: None,
        };
        assert!(e.to_string().contains("after 3 guarded rounds"));
    }
}
