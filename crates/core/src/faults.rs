//! Deterministic fault injection for the execution engine.
//!
//! A [`FaultPlan`] describes *dynamic* corruptions the engine applies to
//! its own dependency hardware while simulating — dropped or phantom
//! dependency-list children, mis-seeded parent counters, an undersized
//! parent-counter buffer. *Static* corruptions ([`corrupt_access_set`],
//! [`corrupt_pattern`]) instead damage the launch-time analysis products
//! before the run starts, modelling an unsound value-range analysis.
//!
//! Everything is seeded: [`FaultRng`] is a SplitMix64 generator, so a
//! `(FaultClass, seed)` pair always produces the same corruption — failing
//! cases replay exactly.

use crate::hw::MAX_COUNTER;
use crate::jit::JitKernel;
use bm_depgraph::{build_graph, storage, BipartiteGraph, GraphKind, HazardMode, Pattern};
use bm_simt::des::TbKey;

/// Minimal deterministic RNG (SplitMix64) for fault-plan generation.
/// Kept local so the core crate stays dependency-free.
#[derive(Debug, Clone)]
pub struct FaultRng(u64);

impl FaultRng {
    /// Seeds the generator.
    pub fn new(seed: u64) -> Self {
        FaultRng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// The fault classes the injection harness exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// A parent TB's dependency-list entry loses one child — the child's
    /// counter is never decremented and the run wedges.
    DropChild,
    /// A parent TB's dependency-list entry gains a child edge the graph
    /// never had — the phantom decrement underflows or releases early.
    PhantomChild,
    /// A child TB's initial parent counter is seeded too high — it can
    /// never reach zero.
    CounterExcess,
    /// A child TB's initial parent counter is seeded too low — it releases
    /// before its parents finish, or underflows on the extra decrements.
    CounterDeficit,
    /// A child TB's counter is saturated at the 6-bit maximum regardless
    /// of its true degree.
    CounterSaturation,
    /// The parent-counter buffer is shrunk to a handful of entries,
    /// forcing spill/refetch on nearly every access. This is a *benign*
    /// fault: the run must still complete with a correct schedule.
    BufferSpill,
    /// A kernel's declared write set is shrunk, so the dependency graph
    /// built from it misses edges — the classic unsound-analysis fault the
    /// runtime guard exists to catch.
    CorruptAccessSet,
    /// A kernel's dependency graph has its child lists rotated — edges
    /// exist but connect the wrong TBs.
    CorruptPattern,
    /// The process is killed at a kernel-retirement boundary — modelling a
    /// crash (power loss, OOM kill) rather than corrupted metadata. The
    /// harness then resumes from the last checkpoint and proves the
    /// resumed run bit-identical to an uninterrupted one.
    KillPoint,
    /// A raw panic fires at a kernel-retirement boundary — modelling a
    /// worker thread dying mid-run (bug, OOM abort). The serve layer's
    /// `catch_unwind` must contain it, dispose the poisoned state, and
    /// resume a retry from the boundary's checkpoint.
    WorkerPanic,
    /// A cooperative cancellation fires at a kernel-retirement boundary —
    /// the run must surface [`crate::error::EngineError::Cancelled`] with
    /// a resumable checkpoint, and a retried run must be bit-identical to
    /// an uninterrupted one.
    CancelAtBoundary,
    /// A cross-device transfer is dropped or corrupted on the virtual
    /// interconnect of a multi-GPU run. The coordinator must detect the
    /// damage, abandon the multi-device attempt, and fall back to guarded
    /// single-device execution recorded as
    /// [`crate::degrade::DegradationReason::LinkFault`] — never a panic.
    /// Ignored by the single-device engine (no link exists to fault).
    LinkFault,
}

impl FaultClass {
    /// Every dynamic + static fault class.
    pub fn all() -> [FaultClass; 12] {
        [
            FaultClass::DropChild,
            FaultClass::PhantomChild,
            FaultClass::CounterExcess,
            FaultClass::CounterDeficit,
            FaultClass::CounterSaturation,
            FaultClass::BufferSpill,
            FaultClass::CorruptAccessSet,
            FaultClass::CorruptPattern,
            FaultClass::KillPoint,
            FaultClass::WorkerPanic,
            FaultClass::CancelAtBoundary,
            FaultClass::LinkFault,
        ]
    }

    /// Whether the class corrupts analysis products before the run
    /// (instead of perturbing the hardware during it).
    pub fn is_static(&self) -> bool {
        matches!(
            self,
            FaultClass::CorruptAccessSet | FaultClass::CorruptPattern
        )
    }
}

/// A deterministic set of dynamic corruptions applied by the engine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(parent, child)` dependency-list edges to silently drop.
    pub drop_children: Vec<(TbKey, u32)>,
    /// `(parent, child)` edges to fabricate.
    pub phantom_children: Vec<(TbKey, u32)>,
    /// Per-child-TB signed perturbations of the initial parent counter
    /// (clamped to `[0, MAX_COUNTER]`).
    pub counter_deltas: Vec<(TbKey, i64)>,
    /// Override for the parent-counter buffer capacity.
    pub pcb_capacity: Option<usize>,
    /// Kill the run at the retirement boundary of the `n`-th kernel: the
    /// engine returns [`crate::error::EngineError::Killed`] immediately
    /// after the checkpoint at that boundary is captured.
    pub kill_at_kernel: Option<u32>,
    /// Cancel the run at the retirement boundary of the `n`-th kernel: the
    /// engine returns [`crate::error::EngineError::Cancelled`] (cause
    /// `Cancelled`) after the boundary's checkpoint, modelling a client
    /// cancel landing exactly at a boundary.
    pub cancel_at_kernel: Option<u32>,
    /// Panic at the retirement boundary of the `n`-th kernel — a simulated
    /// worker crash. Fires *after* the boundary's checkpoint, so a
    /// contained retry can resume.
    pub panic_at_kernel: Option<u32>,
    /// Drop the `n`-th cross-device transfer (0-based) on the virtual
    /// interconnect. Consumed by `bm-multi`; the single-device engine has
    /// no link and ignores it.
    pub link_drop_nth: Option<u64>,
    /// Corrupt the `n`-th cross-device transfer (0-based): the payload
    /// arrives damaged and fails its integrity check. Consumed by
    /// `bm-multi`; ignored by the single-device engine.
    pub link_corrupt_nth: Option<u64>,
}

impl FaultPlan {
    /// Whether the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.drop_children.is_empty()
            && self.phantom_children.is_empty()
            && self.counter_deltas.is_empty()
            && self.pcb_capacity.is_none()
            && self.kill_at_kernel.is_none()
            && self.cancel_at_kernel.is_none()
            && self.panic_at_kernel.is_none()
            && self.link_drop_nth.is_none()
            && self.link_corrupt_nth.is_none()
    }

    /// Net counter perturbation for one child TB.
    pub fn counter_delta(&self, key: TbKey) -> i64 {
        self.counter_deltas
            .iter()
            .filter(|&&(k, _)| k == key)
            .map(|&(_, d)| d)
            .sum()
    }

    /// Whether `(parent, child)` is a dropped edge.
    pub fn drops(&self, parent: TbKey, child: u32) -> bool {
        self.drop_children.contains(&(parent, child))
    }

    /// Phantom children to append to `parent`'s dependency list.
    pub fn phantoms_of(&self, parent: TbKey) -> Vec<u32> {
        self.phantom_children
            .iter()
            .filter(|&&(p, _)| p == parent)
            .map(|&(_, c)| c)
            .collect()
    }
}

/// Explicit-graph kernels (the only place dynamic counter faults bite),
/// with a parent TB that actually has children.
fn explicit_targets(jit: &[JitKernel]) -> Vec<(usize, u32, Vec<u32>)> {
    let mut out = Vec::new();
    for (k, kernel) in jit.iter().enumerate().skip(1) {
        if let GraphKind::Explicit(children) = kernel.graph.kind() {
            for (p, list) in children.iter().enumerate() {
                if !list.is_empty() {
                    out.push((k, p as u32, list.clone()));
                }
            }
        }
    }
    out
}

/// Builds the dynamic [`FaultPlan`] for one `(class, seed)` case against an
/// analyzed application. Static classes return an empty plan — apply
/// [`corrupt_access_set`] / [`corrupt_pattern`] instead.
///
/// Returns `None` when the application offers no injection site for the
/// class (e.g. no explicit graphs to drop edges from).
pub fn random_plan(class: FaultClass, jit: &[JitKernel], rng: &mut FaultRng) -> Option<FaultPlan> {
    let mut plan = FaultPlan::default();
    let targets = explicit_targets(jit);
    match class {
        FaultClass::DropChild => {
            let (k, p, children) = targets
                .get(rng.below(targets.len() as u64) as usize)?
                .clone();
            let c = children[rng.below(children.len() as u64) as usize];
            // The dependency list lives with the *parent* kernel's TBs.
            let parent = TbKey {
                kernel_seq: k as u32 - 1,
                tb: p,
            };
            plan.drop_children.push((parent, c));
        }
        FaultClass::PhantomChild => {
            let (k, p, _) = targets
                .get(rng.below(targets.len() as u64) as usize)?
                .clone();
            let n_child = jit[k].graph.n_child();
            // Out-of-range half the time: exercises both the underflow and
            // the unknown-child detection paths.
            let c = if rng.below(2) == 0 {
                n_child + 1 + rng.below(3) as u32
            } else {
                rng.below(n_child.max(1) as u64) as u32
            };
            let parent = TbKey {
                kernel_seq: k as u32 - 1,
                tb: p,
            };
            plan.phantom_children.push((parent, c));
        }
        FaultClass::CounterExcess | FaultClass::CounterDeficit | FaultClass::CounterSaturation => {
            let (k, _, children) = targets
                .get(rng.below(targets.len() as u64) as usize)?
                .clone();
            let c = children[rng.below(children.len() as u64) as usize];
            let child = TbKey {
                kernel_seq: k as u32,
                tb: c,
            };
            let delta = match class {
                FaultClass::CounterExcess => 1 + rng.below(4) as i64,
                FaultClass::CounterDeficit => -(1 + rng.below(4) as i64),
                _ => MAX_COUNTER as i64, // saturates via clamping
            };
            plan.counter_deltas.push((child, delta));
        }
        FaultClass::BufferSpill => {
            plan.pcb_capacity = Some(1 + rng.below(3) as usize);
        }
        FaultClass::KillPoint => {
            if jit.len() < 2 {
                return None;
            }
            // Kill strictly *inside* the run: after the first retirement at
            // the earliest, before the last at the latest.
            plan.kill_at_kernel = Some(1 + rng.below(jit.len() as u64 - 1) as u32);
        }
        FaultClass::CancelAtBoundary => {
            if jit.len() < 2 {
                return None;
            }
            plan.cancel_at_kernel = Some(1 + rng.below(jit.len() as u64 - 1) as u32);
        }
        FaultClass::WorkerPanic => {
            if jit.len() < 2 {
                return None;
            }
            plan.panic_at_kernel = Some(1 + rng.below(jit.len() as u64 - 1) as u32);
        }
        FaultClass::LinkFault => {
            // Target one of the first transfers so small apps still hit it;
            // drop and corrupt alternate deterministically with the seed.
            let nth = rng.below(8);
            if rng.below(2) == 0 {
                plan.link_drop_nth = Some(nth);
            } else {
                plan.link_corrupt_nth = Some(nth);
            }
        }
        FaultClass::CorruptAccessSet | FaultClass::CorruptPattern => return Some(plan),
    }
    Some(plan)
}

/// Statically corrupts kernel `k`'s declared *write* set — every per-TB
/// write range is shrunk to its first byte span — and rebuilds the
/// downstream dependency graph from the corrupted set, exactly as an
/// unsound analysis would have. Returns `false` when kernel `k` has no
/// write ranges to corrupt.
pub fn corrupt_access_set(jit: &mut [JitKernel], k: usize, hazard: HazardMode) -> bool {
    use bm_ptx::access::RangeSet;
    let Some(kernel) = jit.get_mut(k) else {
        return false;
    };
    let mut corrupted = false;
    for tb in &mut kernel.access.per_tb {
        if let Some(&(start, end)) = tb.writes.ranges().first() {
            if end > start + 4 {
                tb.writes = RangeSet::single(start, start + 4);
                corrupted = true;
            }
        }
    }
    if !corrupted {
        return false;
    }
    // Recompute the kernel-level union the same way analysis does.
    let per_tb = std::mem::take(&mut kernel.access.per_tb);
    let non_static = kernel.access.non_static;
    kernel.access = bm_ptx::access::KernelAccess::from_per_tb(per_tb, non_static);
    rebuild_graph_from_access(jit, k + 1, hazard);
    true
}

/// Statically corrupts the dependency graph *into* kernel `k` (its edges
/// from kernel `k-1`): each parent's child list is rotated by one across
/// the child space, so the edge count is preserved but the endpoints are
/// wrong. Returns `false` if the graph is not explicit.
pub fn corrupt_pattern(jit: &mut [JitKernel], k: usize) -> bool {
    let Some(kernel) = jit.get_mut(k) else {
        return false;
    };
    let n_child = kernel.graph.n_child();
    let n_parent = kernel.graph.n_parent();
    let GraphKind::Explicit(children) = kernel.graph.kind() else {
        return false;
    };
    if n_child < 2 {
        return false;
    }
    let rotated: Vec<Vec<u32>> = children
        .iter()
        .map(|list| list.iter().map(|&c| (c + 1) % n_child).collect())
        .collect();
    kernel.graph = BipartiteGraph::from_children(n_parent, n_child, rotated);
    kernel.storage = storage(&kernel.graph);
    kernel.encoded = !matches!(kernel.storage.pattern, Pattern::Irregular);
    true
}

/// Rebuilds the graph between kernels `k-1` and `k` from their (possibly
/// corrupted) access sets, applying the same 6-bit degree fallback as the
/// analysis pipeline.
fn rebuild_graph_from_access(jit: &mut [JitKernel], k: usize, hazard: HazardMode) {
    if k == 0 || k >= jit.len() {
        return;
    }
    let (head, tail) = jit.split_at_mut(k);
    let prev = &head[k - 1].access;
    let kernel = &mut tail[0];
    let mut graph = build_graph(prev, &kernel.access, hazard);
    if graph.max_child_degree() > MAX_COUNTER {
        graph.degrade_to_fully_connected();
    }
    kernel.storage = storage(&graph);
    kernel.encoded = !matches!(kernel.storage.pattern, Pattern::Irregular);
    kernel.graph = graph;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_is_deterministic_and_nontrivial() {
        let mut a = FaultRng::new(7);
        let mut b = FaultRng::new(7);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
        let mut c = FaultRng::new(8);
        assert_ne!(c.next_u64(), xs[0]);
    }

    #[test]
    fn plan_queries() {
        let p0 = TbKey {
            kernel_seq: 0,
            tb: 1,
        };
        let c0 = TbKey {
            kernel_seq: 1,
            tb: 2,
        };
        let plan = FaultPlan {
            drop_children: vec![(p0, 2)],
            phantom_children: vec![(p0, 3), (p0, 5)],
            counter_deltas: vec![(c0, 2), (c0, -1)],
            pcb_capacity: Some(2),
            kill_at_kernel: None,
            cancel_at_kernel: None,
            panic_at_kernel: None,
            link_drop_nth: None,
            link_corrupt_nth: None,
        };
        assert!(!plan.is_empty());
        assert!(plan.drops(p0, 2));
        assert!(!plan.drops(p0, 3));
        assert_eq!(plan.phantoms_of(p0), vec![3, 5]);
        assert_eq!(plan.counter_delta(c0), 1);
        assert_eq!(plan.counter_delta(p0), 0);
        assert!(FaultPlan::default().is_empty());
    }

    #[test]
    fn all_classes_enumerated() {
        assert_eq!(FaultClass::all().len(), 12);
        assert!(FaultClass::CorruptAccessSet.is_static());
        assert!(!FaultClass::DropChild.is_static());
        assert!(!FaultClass::KillPoint.is_static());
        assert!(!FaultClass::WorkerPanic.is_static());
        assert!(!FaultClass::CancelAtBoundary.is_static());
        assert!(!FaultClass::LinkFault.is_static());
    }

    #[test]
    fn link_fault_plan_targets_an_early_transfer() {
        for seed in 0..16 {
            let mut rng = FaultRng::new(seed);
            let plan = random_plan(FaultClass::LinkFault, &[], &mut rng).unwrap();
            assert!(!plan.is_empty());
            let nth = plan.link_drop_nth.or(plan.link_corrupt_nth).unwrap();
            assert!(nth < 8);
            // Exactly one of the two link faults is armed.
            assert!(plan.link_drop_nth.is_none() || plan.link_corrupt_nth.is_none());
        }
    }

    #[test]
    fn kill_plan_is_nonempty_and_interior() {
        let plan = FaultPlan {
            kill_at_kernel: Some(2),
            ..FaultPlan::default()
        };
        assert!(!plan.is_empty());
        let cancel = FaultPlan {
            cancel_at_kernel: Some(1),
            ..FaultPlan::default()
        };
        assert!(!cancel.is_empty());
        let panic = FaultPlan {
            panic_at_kernel: Some(1),
            ..FaultPlan::default()
        };
        assert!(!panic.is_empty());
    }
}
