//! Runtime soundness guard and fault recovery.
//!
//! BlockMaestro's correctness rests on the launch-time analysis producing
//! *over-approximate* per-TB access sets. The guard removes that trust:
//! after every guarded run it functionally replays the produced schedule,
//! checks each thread block's observed global accesses against its
//! declared read/write sets, and compares the final memory image against
//! serialized execution. A violation (or any typed engine failure —
//! deadlock, counter underflow) triggers *quarantine*: the implicated
//! kernels are marked `non_static`, their dependency graphs degrade to the
//! fully-connected (whole-kernel barrier) encoding, skip gates are
//! recomputed, and the application is re-run. Barrier semantics bypass the
//! parent-counter hardware entirely, so the degraded configuration is
//! immune to the metadata faults that broke the optimistic run — the
//! recovery loop converges within [`MAX_ROUNDS`] rounds or reports
//! [`BmError::Unrecoverable`].

use crate::degrade::{AnalysisBudget, AnalysisCache, DegradationReason, DegradationRung};
use crate::engine::{
    try_run_analyzed_checkpointed, try_run_analyzed_faulty_traced, CheckpointSession, RunReport,
};
use crate::error::{BmError, EngineError};
use crate::faults::FaultPlan;
use crate::jit::{
    recompute_skip_gates, try_jit_analyze_app, try_jit_analyze_app_budgeted,
    try_jit_analyze_app_par_traced, try_jit_analyze_app_traced, JitKernel,
};
use crate::modes::ExecMode;
use crate::snapshot::{
    app_fingerprint, CheckpointPolicy, GuardSnapshot, RunSnapshot, SnapshotError, SnapshotStore,
};
use bm_cmdq::Application;
use bm_depgraph::{storage, BipartiteGraph, HazardMode, Pattern};
use bm_ptx::access::RangeSet;
use bm_ptx::error::PtxError;
use bm_ptx::interp::{execute_block, ExecObserver, ThreadId};
use bm_ptx::isa::Op;
use bm_ptx::kernel::Launch;
use bm_ptx::par::ParallelConfig;
use bm_simt::des::TbKey;
use bm_trace::{NullTracer, TraceEvent, Tracer};
use std::collections::HashSet;
use std::fmt;

/// Guarded re-runs attempted before giving up.
pub const MAX_ROUNDS: u32 = 3;

/// A thread block touched memory outside its declared access set — the
/// launch-time analysis was unsound for this kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SoundnessViolation {
    /// Kernel sequence number.
    pub kernel: u32,
    /// Offending thread block.
    pub tb: u32,
    /// First out-of-set address observed.
    pub addr: u64,
}

impl fmt::Display for SoundnessViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel {} TB {} accessed {:#x} outside its declared set",
            self.kernel, self.tb, self.addr
        )
    }
}

/// Accounting for the guard's work across one guarded execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GuardReport {
    /// Containment violations + unattributable result mismatches observed.
    pub violations_detected: u64,
    /// Distinct kernels quarantined to the fully-connected fallback.
    pub kernels_quarantined: u64,
    /// Cycles of discarded (faulty) runs — the performance price of
    /// falling back.
    pub cycles_lost_to_fallback: u64,
    /// Re-runs performed before the accepted run (0 = first run was clean).
    pub recovery_rounds: u32,
}

/// Result of one soundness verification pass.
#[derive(Debug, Clone)]
pub struct SoundnessOutcome {
    /// Containment violations, at most one per thread block.
    pub violations: Vec<SoundnessViolation>,
    /// Whether the replayed final memory matches serialized execution.
    pub equivalent: bool,
}

impl SoundnessOutcome {
    /// Whether the run is accepted as sound.
    pub fn is_sound(&self) -> bool {
        self.violations.is_empty() && self.equivalent
    }
}

/// Observer that records the global accesses of one thread block.
#[derive(Default)]
struct AccessLog {
    reads: RangeSet,
    writes: RangeSet,
}

impl ExecObserver for AccessLog {
    fn on_inst(&mut self, _t: ThreadId, _i: usize, _op: &Op) {}
    fn on_global_access(&mut self, _t: ThreadId, _i: usize, addr: u64, store: bool) {
        if store {
            self.writes.insert(addr, addr + 4);
        } else {
            self.reads.insert(addr, addr + 4);
        }
    }
}

fn first_escapee(observed: &RangeSet, declared: &RangeSet) -> Option<u64> {
    observed
        .ranges()
        .iter()
        .flat_map(|&(s, e)| (s..e).step_by(4))
        .find(|&a| !declared.contains(a))
}

/// Replays `schedule` in start order, checking every static kernel's
/// observed accesses against its declared per-TB sets and the final memory
/// against `expected_fp` (the serialized-execution fingerprint).
///
/// `non_static` kernels are exempt from containment — their sets are known
/// to be incomplete — but still contribute to the final-memory check.
///
/// # Errors
///
/// [`PtxError::Exec`] when functional replay itself fails.
pub fn verify_soundness(
    app: &Application,
    jit: &[JitKernel],
    schedule: &[(TbKey, u64, u64)],
    expected_fp: u64,
) -> Result<SoundnessOutcome, PtxError> {
    let launches: Vec<&Launch> = app.launches();
    let mut order: Vec<(usize, TbKey, u64)> = schedule
        .iter()
        .enumerate()
        .map(|(i, &(k, s, _))| (i, k, s))
        .collect();
    order.sort_by_key(|&(i, _, s)| (s, i));
    let mut mem = app.initial_memory();
    let mut violations = Vec::new();
    for (_, key, _) in order {
        let k = key.kernel_seq as usize;
        let launch = launches.get(k).copied().ok_or(PtxError::BadLaunch {
            kernel: format!("#{k}"),
            reason: "schedule references unknown kernel".into(),
        })?;
        let mut log = AccessLog::default();
        execute_block(launch, key.tb, &mut mem, &mut log).map_err(PtxError::Exec)?;
        let kernel = &jit[k];
        if kernel.access.non_static {
            continue;
        }
        let declared = &kernel.access.per_tb[key.tb as usize];
        let escape = first_escapee(&log.writes, &declared.writes)
            .or_else(|| first_escapee(&log.reads, &declared.reads));
        if let Some(addr) = escape {
            violations.push(SoundnessViolation {
                kernel: key.kernel_seq,
                tb: key.tb,
                addr,
            });
        }
    }
    Ok(SoundnessOutcome {
        violations,
        equivalent: mem.fingerprint() == expected_fp,
    })
}

/// Quarantines kernel `k`: its access sets are declared untrustworthy
/// (`non_static`) and the dependency graphs on *both sides* of it degrade
/// to whole-kernel barriers, which bypass the parent-counter hardware.
fn quarantine_kernel(jit: &mut [JitKernel], k: usize) {
    jit[k].access.non_static = true;
    jit[k]
        .degradation
        .worsen(DegradationRung::Barrier, DegradationReason::Quarantined);
    let degrade = |jit: &mut [JitKernel], j: usize| {
        if j == 0 || j >= jit.len() {
            return;
        }
        let g = BipartiteGraph::fully_connected(jit[j - 1].profile.n_tbs, jit[j].profile.n_tbs);
        jit[j].storage = storage(&g);
        jit[j].encoded = !matches!(jit[j].storage.pattern, Pattern::Irregular);
        jit[j].graph = g;
    };
    degrade(jit, k);
    degrade(jit, k + 1);
}

/// Runs `app` under `mode` with the soundness guard, RAW hazard tracking,
/// and no injected faults.
///
/// # Errors
///
/// Any [`BmError`]: invalid application, toolchain failure, or an
/// unrecoverable execution.
pub fn try_run_app(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
) -> Result<RunReport, BmError> {
    try_run_app_with(cfg, app, mode, HazardMode::Raw)
}

/// Guarded run with an explicit hazard-tracking mode.
///
/// # Errors
///
/// As [`try_run_app`].
pub fn try_run_app_with(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
) -> Result<RunReport, BmError> {
    app.validate()?;
    let jit = try_jit_analyze_app(cfg, app, hazard)?;
    try_run_app_faulty(cfg, app, jit, mode, hazard, &FaultPlan::default())
}

/// Guarded run with a trace sink observing analysis, execution, and the
/// guard's own recovery decisions (one [`TraceEvent::Quarantine`] instant
/// per kernel quarantined, stamped with the cycle count of the discarded
/// run that implicated it).
///
/// Tracing is inert: the returned [`RunReport`] is bit-identical to
/// [`try_run_app_with`] under the default [`AnalysisBudget`].
///
/// # Errors
///
/// As [`try_run_app`].
pub fn try_run_app_with_tracer<T: Tracer>(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    tracer: &T,
) -> Result<RunReport, BmError> {
    app.validate()?;
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    let jit = try_jit_analyze_app_traced(cfg, app, hazard, &budget, &mut cache, tracer)?;
    try_run_app_faulty_traced(cfg, app, jit, mode, hazard, &FaultPlan::default(), tracer)
}

/// Guarded run under an explicit [`AnalysisBudget`]: the launch-time
/// analysis walks the graceful-degradation ladder with the given fuel and
/// the soundness guard verifies the resulting schedule exactly as it does
/// at full precision — replay-equivalence is asserted at *every* rung.
///
/// # Errors
///
/// As [`try_run_app`].
pub fn try_run_app_budgeted(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    budget: &AnalysisBudget,
) -> Result<RunReport, BmError> {
    app.validate()?;
    let mut cache = AnalysisCache::for_budget(budget);
    let jit = try_jit_analyze_app_budgeted(cfg, app, hazard, budget, &mut cache)?;
    try_run_app_faulty(cfg, app, jit, mode, hazard, &FaultPlan::default())
}

/// The guarded execution pipeline, taking pre-analyzed (and possibly
/// deliberately corrupted) kernels plus a dynamic [`FaultPlan`] — the
/// entry point of the fault-injection harness.
///
/// Every accepted run satisfies: schedule replay equals serialized
/// execution, and every static kernel stayed within its declared access
/// sets. Faulty runs are discarded, implicated kernels quarantined, and
/// the region re-executed, up to [`MAX_ROUNDS`] times.
///
/// # Errors
///
/// [`BmError::Unrecoverable`] when the rounds are exhausted; other
/// variants for structural/toolchain failures.
pub fn try_run_app_faulty(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    jit: Vec<JitKernel>,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
) -> Result<RunReport, BmError> {
    try_run_app_faulty_traced(cfg, app, jit, mode, hazard, fault, &NullTracer)
}

/// [`try_run_app_faulty`] with a trace sink (see
/// [`try_run_app_with_tracer`]).
///
/// # Errors
///
/// As [`try_run_app_faulty`].
pub fn try_run_app_faulty_traced<T: Tracer>(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mut jit: Vec<JitKernel>,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    tracer: &T,
) -> Result<RunReport, BmError> {
    let expected_fp = app.try_run_serialized()?.fingerprint();
    let mut guard = GuardReport::default();
    let mut quarantined: HashSet<usize> = HashSet::new();
    let mut last_err: Option<EngineError> = None;
    for round in 0..MAX_ROUNDS {
        guard.recovery_rounds = round;
        // Cycle stamp for quarantine instants: how far the discarded run
        // got before the guard rejected it.
        let failed_at: u64;
        let targets: Vec<usize> =
            match try_run_analyzed_faulty_traced(cfg, app, &jit, mode, fault, tracer) {
                Ok(mut report) => {
                    let outcome = verify_soundness(app, &jit, &report.schedule, expected_fp)?;
                    if outcome.is_sound() {
                        report.guard = guard;
                        return Ok(report);
                    }
                    guard.cycles_lost_to_fallback += report.kernel_region_cycles;
                    guard.violations_detected += (outcome.violations.len() as u64).max(1);
                    last_err = None;
                    failed_at = report.kernel_region_cycles;
                    if outcome.violations.is_empty() {
                        // Wrong result with no attributable containment
                        // violation (e.g. a corrupted dependency pattern):
                        // distrust everything.
                        (0..jit.len()).collect()
                    } else {
                        outcome
                            .violations
                            .iter()
                            .map(|v| v.kernel as usize)
                            .collect()
                    }
                }
                // A kill or cancellation is a simulated crash / external
                // stop, not a soundness failure: never quarantine for it —
                // resume from the checkpoint.
                Err(e @ (EngineError::Killed { .. } | EngineError::Cancelled { .. })) => {
                    return Err(e.into())
                }
                Err(e) => {
                    guard.cycles_lost_to_fallback += e.cycles_wasted();
                    guard.violations_detected += 1;
                    failed_at = e.cycles_wasted();
                    let targets = match &e {
                        // A counter fault names the child kernel whose graph
                        // metadata is inconsistent.
                        EngineError::Hw { err, .. } => {
                            let key = match err {
                                crate::hw::HwError::CounterNotResident { key }
                                | crate::hw::HwError::CounterUnderflow { key } => *key,
                            };
                            vec![key.kernel_seq as usize]
                        }
                        // Deadlocks are unattributable: degrade everything.
                        _ => (0..jit.len()).collect(),
                    };
                    last_err = Some(e);
                    targets
                }
            };
        for k in targets {
            if k < jit.len() && quarantined.insert(k) {
                quarantine_kernel(&mut jit, k);
                guard.kernels_quarantined += 1;
                if T::ENABLED {
                    tracer.emit(TraceEvent::Quarantine {
                        cycle: failed_at,
                        kernel: k as u32,
                        round,
                    });
                }
            }
        }
        recompute_skip_gates(&mut jit, hazard);
    }
    Err(BmError::Unrecoverable {
        rounds: MAX_ROUNDS,
        last: last_err,
    })
}

/// Loads the latest snapshot from `store` and checks that it belongs to
/// this exact run configuration. Returns `Ok(None)` when the store is
/// empty (nothing to resume from).
fn load_resume(
    store: &mut dyn SnapshotStore,
    app_fp: u64,
    mode: &str,
    hazard: &str,
    n_kernels: usize,
) -> Result<Option<RunSnapshot>, SnapshotError> {
    let Some(bytes) = store.load()? else {
        return Ok(None);
    };
    let snap = RunSnapshot::decode(&bytes)?;
    if snap.meta.app_fp != app_fp {
        return Err(SnapshotError::AppMismatch(
            "application fingerprint differs",
        ));
    }
    if snap.meta.mode != mode {
        return Err(SnapshotError::AppMismatch("execution mode differs"));
    }
    if snap.meta.hazard != hazard {
        return Err(SnapshotError::AppMismatch("hazard mode differs"));
    }
    if snap.meta.n_kernels as usize != n_kernels {
        return Err(SnapshotError::AppMismatch("kernel count differs"));
    }
    Ok(Some(snap))
}

/// Guarded run with crash-safe checkpointing: snapshots of the complete
/// run state are written to `store` at kernel-retirement boundaries
/// according to `policy`, and (when `resume` is set) the run restarts
/// from the latest stored snapshot instead of cycle 0.
///
/// The resumed run is *bit-identical* to an uninterrupted one: the same
/// [`RunReport`] (including every counter and the schedule) and, under a
/// recording tracer, the same event stream. A snapshot that fails
/// validation — wrong magic, version, checksum, or a mismatched
/// application/mode — is rejected with a [`TraceEvent::CheckpointReject`]
/// and the run degrades to a fresh start; it never panics.
///
/// A [`crate::faults::FaultPlan::kill_at_kernel`] plan makes the run die
/// with [`EngineError::Killed`] at that retirement boundary, *after* the
/// boundary's checkpoint is saved — the crash-recovery story the
/// fault-injection harness exercises end to end.
///
/// # Errors
///
/// As [`try_run_app_faulty`], plus [`BmError::Engine`] wrapping
/// [`EngineError::Killed`] when a kill-point fires.
#[allow(clippy::too_many_arguments)]
pub fn try_run_app_checkpointed(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    policy: CheckpointPolicy,
    store: &mut dyn SnapshotStore,
    resume: bool,
) -> Result<RunReport, BmError> {
    try_run_app_checkpointed_traced(
        cfg,
        app,
        mode,
        hazard,
        fault,
        policy,
        store,
        resume,
        &NullTracer,
    )
}

/// [`try_run_app_checkpointed`] with a trace sink (see
/// [`try_run_app_with_tracer`]). Checkpoint saves, loads, and rejections
/// appear as [`TraceEvent::CheckpointSave`] / [`TraceEvent::CheckpointLoad`]
/// / [`TraceEvent::CheckpointReject`] instants.
///
/// # Errors
///
/// As [`try_run_app_checkpointed`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_app_checkpointed_traced<T: Tracer>(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    policy: CheckpointPolicy,
    store: &mut dyn SnapshotStore,
    resume: bool,
    tracer: &T,
) -> Result<RunReport, BmError> {
    try_run_app_checkpointed_ctl(
        cfg,
        app,
        mode,
        hazard,
        fault,
        policy,
        store,
        resume,
        tracer,
        &RunCtl::default(),
    )
}

/// Caller controls a serving layer threads into one checkpointed run:
/// the analysis [`ParallelConfig`] and a cooperative cancellation token.
///
/// [`RunCtl::default`] — reference analysis config, no token — reproduces
/// [`try_run_app_checkpointed_traced`] bit for bit.
#[derive(Debug, Clone, Default)]
pub struct RunCtl {
    /// Parallelism for the launch-time analysis pipeline; `None` uses
    /// [`ParallelConfig::reference`], the traced pipeline's baseline.
    pub par: Option<ParallelConfig>,
    /// Cooperative cancellation observed at analysis phase boundaries and
    /// kernel-retirement boundaries. `None` never fires a check.
    pub cancel: Option<bm_ptx::cancel::CancelToken>,
}

impl RunCtl {
    /// The analysis configuration to use, with the cancel token installed.
    fn analysis_par(&self) -> ParallelConfig {
        let mut par = self.par.clone().unwrap_or_else(ParallelConfig::reference);
        par.cancel = self.cancel.clone();
        par
    }
}

/// [`try_run_app_checkpointed_traced`] under an explicit [`RunCtl`]: the
/// serving layer's entry point. A fired token surfaces as
/// [`EngineError::Cancelled`] with a final checkpoint in `store` (when a
/// boundary was reached), so a retried request resumes instead of
/// restarting; a token that never fires leaves the run bit-identical to
/// [`try_run_app_checkpointed_traced`].
///
/// # Errors
///
/// As [`try_run_app_checkpointed`], plus [`BmError::Engine`] wrapping
/// [`EngineError::Cancelled`] (run phase) or [`BmError::Ptx`] wrapping
/// [`bm_ptx::PtxError::Cancelled`] (analysis phase) when the token fires.
#[allow(clippy::too_many_arguments)]
pub fn try_run_app_checkpointed_ctl<T: Tracer>(
    cfg: &bm_simt::config::GpuConfig,
    app: &Application,
    mode: ExecMode,
    hazard: HazardMode,
    fault: &FaultPlan,
    policy: CheckpointPolicy,
    store: &mut dyn SnapshotStore,
    resume: bool,
    tracer: &T,
    ctl: &RunCtl,
) -> Result<RunReport, BmError> {
    app.validate()?;
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    let par = ctl.analysis_par();
    let mut jit =
        try_jit_analyze_app_par_traced(cfg, app, hazard, &budget, &mut cache, &par, tracer)?;
    let app_fp = app_fingerprint(app);
    let hazard_str = format!("{hazard:?}");
    let mut resumed: Option<RunSnapshot> = None;
    if resume {
        match load_resume(store, app_fp, &format!("{mode:?}"), &hazard_str, jit.len()) {
            Ok(snap) => resumed = snap,
            Err(e) => {
                // A corrupt or mismatched snapshot degrades to a fresh
                // run — the failure is surfaced on the trace, never a
                // panic.
                if T::ENABLED {
                    tracer.emit(TraceEvent::CheckpointReject {
                        reason: e.to_string(),
                    });
                }
            }
        }
    }
    let expected_fp = app.try_run_serialized()?.fingerprint();
    let mut guard = GuardReport::default();
    let mut quarantined: HashSet<usize> = HashSet::new();
    let mut start_round = 0;
    if let Some(snap) = &resumed {
        // The snapshot was taken mid-round with these kernels already
        // degraded to barriers: re-apply the quarantines so the restored
        // engine state matches the jit configuration it was built from.
        for &k in &snap.guard.quarantined {
            let k = k as usize;
            if k < jit.len() && quarantined.insert(k) {
                quarantine_kernel(&mut jit, k);
            }
        }
        if !quarantined.is_empty() {
            recompute_skip_gates(&mut jit, hazard);
        }
        guard = snap.guard.report;
        start_round = snap.guard.round;
    }
    let mut last_err: Option<EngineError> = None;
    for round in start_round..MAX_ROUNDS {
        guard.recovery_rounds = round;
        let mut sorted: Vec<u32> = quarantined.iter().map(|&k| k as u32).collect();
        sorted.sort_unstable();
        let mut session = CheckpointSession {
            policy,
            store: Some(&mut *store),
            app_fp,
            hazard: hazard_str.clone(),
            guard: GuardSnapshot {
                round,
                report: guard,
                quarantined: sorted,
            },
            resume: resumed.take(),
            save_failures: Vec::new(),
            saves: 0,
            cancel: ctl.cancel.clone(),
        };
        let failed_at: u64;
        let targets: Vec<usize> = match try_run_analyzed_checkpointed(
            cfg,
            app,
            &jit,
            mode,
            fault,
            tracer,
            &mut session,
        ) {
            Ok(mut report) => {
                let outcome = verify_soundness(app, &jit, &report.schedule, expected_fp)?;
                if outcome.is_sound() {
                    report.guard = guard;
                    return Ok(report);
                }
                guard.cycles_lost_to_fallback += report.kernel_region_cycles;
                guard.violations_detected += (outcome.violations.len() as u64).max(1);
                last_err = None;
                failed_at = report.kernel_region_cycles;
                if outcome.violations.is_empty() {
                    (0..jit.len()).collect()
                } else {
                    outcome
                        .violations
                        .iter()
                        .map(|v| v.kernel as usize)
                        .collect()
                }
            }
            // A kill or cancellation is not a soundness failure: never
            // quarantine for it — surface it so the caller can resume.
            Err(e @ (EngineError::Killed { .. } | EngineError::Cancelled { .. })) => {
                return Err(e.into())
            }
            Err(e) => {
                guard.cycles_lost_to_fallback += e.cycles_wasted();
                guard.violations_detected += 1;
                failed_at = e.cycles_wasted();
                let targets = match &e {
                    EngineError::Hw { err, .. } => {
                        let key = match err {
                            crate::hw::HwError::CounterNotResident { key }
                            | crate::hw::HwError::CounterUnderflow { key } => *key,
                        };
                        vec![key.kernel_seq as usize]
                    }
                    _ => (0..jit.len()).collect(),
                };
                last_err = Some(e);
                targets
            }
        };
        for k in targets {
            if k < jit.len() && quarantined.insert(k) {
                quarantine_kernel(&mut jit, k);
                guard.kernels_quarantined += 1;
                if T::ENABLED {
                    tracer.emit(TraceEvent::Quarantine {
                        cycle: failed_at,
                        kernel: k as u32,
                        round,
                    });
                }
            }
        }
        recompute_skip_gates(&mut jit, hazard);
    }
    Err(BmError::Unrecoverable {
        rounds: MAX_ROUNDS,
        last: last_err,
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::correctness::check_schedule;
    use crate::engine::try_run_analyzed_faulty;
    use crate::faults::corrupt_access_set;
    use bm_cmdq::ApiCall;
    use bm_ptx::kernel::{ArgValue, Dim3};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use bm_simt::config::GpuConfig;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// `Y[i] = X[i] + 1` chained over a list of buffer pairs.
    fn chain_app(pairs: &[(usize, usize)], n_allocs: usize, tbs: u32) -> Application {
        let n = tbs as u64 * 64;
        let mut space = AddressSpace::new();
        let allocs: Vec<_> = (0..n_allocs).map(|_| space.alloc(4 * n)).collect();
        let k = Arc::new(
            parse_kernel(
                r#".entry step(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.f32 %f2, %f1, 0f3F800000;
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f2;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let mut host_data = HashMap::new();
        host_data.insert(allocs[0].id, (0..n).map(|i| i as f32).collect::<Vec<_>>());
        let mut calls = vec![ApiCall::MemcpyH2D {
            alloc: allocs[0].id,
            bytes: 4 * n,
        }];
        calls.extend(pairs.iter().map(|&(x, y)| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(tbs),
                Dim3::x(64),
                vec![ArgValue::Ptr(allocs[x].base), ArgValue::Ptr(allocs[y].base)],
            ))
        }));
        Application {
            name: "guard-test".into(),
            space,
            calls,
            host_data,
        }
    }

    #[test]
    fn clean_run_reports_zero_guard_activity() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let r = try_run_app(&cfg, &app, ExecMode::ProducerPriority { window: 2 }).unwrap();
        assert_eq!(r.guard, GuardReport::default());
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }

    #[test]
    fn corrupted_access_set_is_detected_quarantined_and_recovered() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let hazard = HazardMode::Raw;
        let mut jit = try_jit_analyze_app(&cfg, &app, hazard).unwrap();
        // Hand-corrupt kernel 1's declared write set (as if the analysis
        // were unsound) and rebuild the downstream graph from it.
        assert!(corrupt_access_set(&mut jit, 1, hazard));
        let r = try_run_app_faulty(
            &cfg,
            &app,
            jit,
            ExecMode::ProducerPriority { window: 2 },
            hazard,
            &FaultPlan::default(),
        )
        .unwrap();
        assert!(
            r.guard.violations_detected > 0,
            "guard must flag the escapes"
        );
        assert!(r.guard.kernels_quarantined >= 1);
        assert!(r.guard.recovery_rounds >= 1);
        assert!(r.guard.cycles_lost_to_fallback > 0);
        // The accepted run matches serialized execution.
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }

    #[test]
    fn dropped_dependency_edge_deadlocks_then_recovers() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let hazard = HazardMode::Raw;
        let jit = try_jit_analyze_app(&cfg, &app, hazard).unwrap();
        // Kernel 1's graph is explicit 1-to-1: drop the edge 0->0.
        let fault = FaultPlan {
            drop_children: vec![(
                TbKey {
                    kernel_seq: 0,
                    tb: 0,
                },
                0,
            )],
            ..FaultPlan::default()
        };
        let r = try_run_app_faulty(
            &cfg,
            &app,
            jit,
            ExecMode::ConsumerPriority { window: 2 },
            hazard,
            &fault,
        )
        .unwrap();
        assert!(r.guard.recovery_rounds >= 1, "deadlock must force a re-run");
        assert!(r.guard.cycles_lost_to_fallback > 0);
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }

    #[test]
    fn counter_deficit_surfaces_as_typed_error_then_recovers() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let hazard = HazardMode::Raw;
        let jit = try_jit_analyze_app(&cfg, &app, hazard).unwrap();
        let fault = FaultPlan {
            counter_deltas: vec![(
                TbKey {
                    kernel_seq: 1,
                    tb: 3,
                },
                -1,
            )],
            ..FaultPlan::default()
        };
        let r = try_run_app_faulty(
            &cfg,
            &app,
            jit,
            ExecMode::ProducerPriority { window: 2 },
            hazard,
            &fault,
        )
        .unwrap();
        assert!(r.guard.recovery_rounds >= 1);
        assert!(check_schedule(&app, &r.schedule).unwrap().is_match());
    }

    #[test]
    fn unguarded_fallible_run_returns_typed_deadlock() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let jit = try_jit_analyze_app(&cfg, &app, HazardMode::Raw).unwrap();
        let fault = FaultPlan {
            drop_children: vec![(
                TbKey {
                    kernel_seq: 0,
                    tb: 2,
                },
                2,
            )],
            ..FaultPlan::default()
        };
        let err = try_run_analyzed_faulty(
            &cfg,
            &app,
            &jit,
            ExecMode::ProducerPriority { window: 2 },
            &fault,
        )
        .unwrap_err();
        match err {
            EngineError::Deadlock(snap) => {
                assert!(snap.cycle > 0);
                assert!(
                    snap.diagnostics
                        .iter()
                        .any(|d| d.contains("pending parent counters")),
                    "diagnostics: {:?}",
                    snap.diagnostics
                );
            }
            other => panic!("expected deadlock, got {other}"),
        }
    }

    #[test]
    fn kill_and_resume_reproduces_uninterrupted_report() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2), (2, 3)], 4, 8);
        let mode = ExecMode::ProducerPriority { window: 2 };
        let hazard = HazardMode::Raw;
        let reference = try_run_app_with(&cfg, &app, mode, hazard).unwrap();
        let mut store = crate::snapshot::MemStore::default();
        let kill = FaultPlan {
            kill_at_kernel: Some(2),
            ..FaultPlan::default()
        };
        let err = try_run_app_checkpointed(
            &cfg,
            &app,
            mode,
            hazard,
            &kill,
            CheckpointPolicy::every_kernels(1),
            &mut store,
            false,
        )
        .unwrap_err();
        assert!(
            matches!(err, BmError::Engine(EngineError::Killed { .. })),
            "got {err}"
        );
        assert!(!store.snaps.is_empty(), "kill must land after a save");
        let resumed = try_run_app_checkpointed(
            &cfg,
            &app,
            mode,
            hazard,
            &FaultPlan::default(),
            CheckpointPolicy::every_kernels(1),
            &mut store,
            true,
        )
        .unwrap();
        assert_eq!(resumed, reference);
        assert_eq!(
            resumed.to_json().to_string(),
            reference.to_json().to_string()
        );
    }

    #[test]
    fn corrupt_snapshot_degrades_to_fresh_run() {
        let cfg = GpuConfig::small();
        let app = chain_app(&[(0, 1), (1, 2)], 3, 8);
        let mode = ExecMode::ProducerPriority { window: 2 };
        let reference = try_run_app_with(&cfg, &app, mode, HazardMode::Raw).unwrap();
        let mut store = crate::snapshot::MemStore::default();
        store.snaps.push(vec![0xAB; 64]); // garbage snapshot
        let r = try_run_app_checkpointed(
            &cfg,
            &app,
            mode,
            HazardMode::Raw,
            &FaultPlan::default(),
            CheckpointPolicy::disabled(),
            &mut store,
            true,
        )
        .unwrap();
        assert_eq!(r, reference);
    }

    #[test]
    fn outcome_soundness_requires_both() {
        let clean = SoundnessOutcome {
            violations: vec![],
            equivalent: true,
        };
        assert!(clean.is_sound());
        let v = SoundnessViolation {
            kernel: 1,
            tb: 2,
            addr: 0x1000,
        };
        let dirty = SoundnessOutcome {
            violations: vec![v],
            equivalent: true,
        };
        assert!(!dirty.is_sound());
        assert!(v.to_string().contains("kernel 1 TB 2"));
        let diverged = SoundnessOutcome {
            violations: vec![],
            equivalent: false,
        };
        assert!(!diverged.is_sound());
    }
}
