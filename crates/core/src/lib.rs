//! # blockmaestro — programmer-transparent task-based GPU execution
//!
//! Rust reproduction of *BlockMaestro: Enabling Programmer-Transparent
//! Task-based Execution in GPU Systems* (ISCA 2021).
//!
//! BlockMaestro gives unmodified SIMT applications the benefits of
//! task-based runtimes by combining:
//!
//! 1. **Kernel pre-launching** — masking the 5 µs kernel-launch overhead
//!    by launching dependent kernels before their producers finish,
//!    enabled by command-queue reordering ([`bm_cmdq`]);
//! 2. **Launch-time static analysis** — extracting per-thread-block
//!    read/write sets from PTX at kernel-launch time ([`bm_ptx::absint`])
//!    and intersecting them into bipartite inter-kernel dependency graphs
//!    ([`bm_depgraph`]);
//! 3. **Hardware dependency resolution** — a dependency-list buffer and
//!    parent-counter buffer in the TB scheduler ([`hw`]) dynamically
//!    release consumer TBs the moment their producer TBs complete.
//!
//! The [`engine`] runs applications under the paper's execution modes
//! (baseline, ideal, pre-launch only, producer priority, consumer
//! priority), [`correctness`] proves schedules architecturally invisible,
//! and [`compare`] models the CUDA Dynamic Parallelism and Wireframe
//! comparison points of Fig. 14.
//!
//! ```
//! use blockmaestro::{run_app, ExecMode};
//! use bm_simt::GpuConfig;
//! # use bm_cmdq::{ApiCall, Application};
//! # use bm_ptx::{parser::parse_kernel, kernel::{ArgValue, Dim3, Launch}};
//! # use bm_ptx::mem::AddressSpace;
//! # use std::{collections::HashMap, sync::Arc};
//! # let mut space = AddressSpace::new();
//! # let a = space.alloc(1024);
//! # let b = space.alloc(1024);
//! # let k = Arc::new(parse_kernel(
//! #   ".entry k(.param .u64 X, .param .u64 Y) {
//! #      ld.param.u64 %rd1, [X]; ld.param.u64 %rd2, [Y];
//! #      mov.u32 %r1, %ctaid.x; mov.u32 %r2, %ntid.x; mov.u32 %r3, %tid.x;
//! #      mad.lo.u32 %r4, %r1, %r2, %r3;
//! #      mul.wide.u32 %rd3, %r4, 4;
//! #      add.u64 %rd4, %rd1, %rd3; ld.global.f32 %f1, [%rd4];
//! #      add.u64 %rd5, %rd2, %rd3; st.global.f32 [%rd5], %f1;
//! #      ret; }").unwrap());
//! # let app = Application {
//! #   name: "demo".into(), space,
//! #   calls: vec![
//! #     ApiCall::KernelLaunch(Launch::new(k.clone(), Dim3::x(4), Dim3::x(64),
//! #       vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)])),
//! #     ApiCall::KernelLaunch(Launch::new(k, Dim3::x(4), Dim3::x(64),
//! #       vec![ArgValue::Ptr(b.base), ArgValue::Ptr(a.base)])),
//! #   ],
//! #   host_data: HashMap::new(),
//! # };
//! let cfg = GpuConfig::titan_x_pascal();
//! let baseline = run_app(&cfg, &app, ExecMode::Baseline);
//! let bm = run_app(&cfg, &app, ExecMode::ConsumerPriority { window: 2 });
//! assert!(bm.kernel_region_cycles < baseline.kernel_region_cycles);
//! ```

pub mod compare;
pub mod correctness;
pub mod degrade;
pub mod engine;
pub mod error;
pub mod faults;
pub mod guard;
pub mod hw;
pub mod jit;
pub mod modes;
pub mod snapshot;
pub mod streams;

pub use bm_ptx::par::ParallelConfig;
pub use correctness::{check_no_races, check_schedule, Equivalence, Race};
pub use degrade::{
    AnalysisBudget, AnalysisCache, CacheStats, CachedAnalysis, Degradation, DegradationReason,
    DegradationRung, PressureEvent,
};
pub use engine::{
    host_plan_traced, run_analyzed, run_app, run_app_with, run_app_with_tracer, try_run_analyzed,
    try_run_analyzed_checkpointed, try_run_analyzed_faulty, try_run_analyzed_faulty_traced,
    try_run_analyzed_traced, CheckpointSession, DeviceStats, MultiStats, RunReport,
};
pub use error::{BmError, EngineError};
pub use faults::{
    corrupt_access_set, corrupt_pattern, random_plan, FaultClass, FaultPlan, FaultRng,
};
pub use guard::{
    try_run_app, try_run_app_budgeted, try_run_app_checkpointed, try_run_app_checkpointed_ctl,
    try_run_app_checkpointed_traced, try_run_app_faulty, try_run_app_faulty_traced,
    try_run_app_with, try_run_app_with_tracer, verify_soundness, GuardReport, RunCtl,
    SoundnessOutcome, SoundnessViolation, MAX_ROUNDS,
};
pub use hw::HwError;
pub use jit::{
    jit_analyze_app, jit_analyze_app_budgeted, jit_analyze_app_par, jit_analyze_app_par_stats,
    jit_analyze_app_traced, scratch_memory, try_jit_analyze_app, try_jit_analyze_app_budgeted,
    try_jit_analyze_app_par, try_jit_analyze_app_par_traced, try_jit_analyze_app_traced,
    try_profile_launch_law, JitKernel, LaunchProfile, TraceMemoStats,
};
pub use modes::ExecMode;
pub use snapshot::{
    app_fingerprint, atomic_write, atomic_write_counted, manifest, CheckpointPolicy, DirStore,
    FsyncStats, MemStore, RunSnapshot, SnapshotError, SnapshotStore, FORMAT_VERSION, SNAPSHOT_FILE,
};
pub use streams::{run_streams, StreamAssignment};
