//! The graceful-degradation ladder.
//!
//! BlockMaestro's launch-time analysis must finish under the ~5 µs launch
//! overhead it is masked by; when it cannot — or when the scheduler buffers
//! saturate — the system must *degrade*, never die. This module defines the
//! per-kernel ladder the JIT pipeline walks down, the fuel budgets that
//! trigger each step, the bounded LRU cache that lets repeated launches
//! skip re-analysis entirely, and the pressure events recorded when
//! admission backpressure shrinks the pre-launch window.
//!
//! The rungs, in order of decreasing precision:
//!
//! 1. [`DegradationRung::Precise`] — per-TB access sets, per-TB bipartite
//!    graph (the paper's full mechanism);
//! 2. [`DegradationRung::Coarse`] — group-level access sets: `ctaid` spans
//!    a block group, yielding pattern-level graphs at a fraction of the
//!    analysis cost;
//! 3. [`DegradationRung::Barrier`] — fully-connected whole-kernel barrier,
//!    bypassing the parent-counter hardware (the paper's conservative
//!    bail-out, also the quarantine target of the soundness guard);
//! 4. [`DegradationRung::PrelaunchOff`] — the kernel is excluded from
//!    pre-launching altogether and admitted only once every predecessor
//!    has retired.
//!
//! Every rung preserves architectural invisibility: degradation only ever
//! *adds* ordering constraints, and the soundness guard replays accepted
//! schedules at every rung, not just full precision.

use crate::jit::LaunchProfile;
use bm_ptx::access::KernelAccess;
use bm_ptx::kernel::{ArgValue, Launch};
use std::collections::HashMap;
use std::fmt;

/// Fuel and size budgets for one launch-time analysis pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisBudget {
    /// Worklist pops granted to the precise per-TB abstract interpretation
    /// of one kernel (shared across its thread blocks).
    pub absint_fuel: u64,
    /// Worklist pops granted to the coarse retry after the precise pass
    /// runs out of fuel.
    pub coarse_fuel: u64,
    /// Block groups the coarse rung partitions the grid into.
    pub coarse_groups: u32,
    /// Per-thread interpreter steps granted to the representative-TB trace.
    pub trace_steps: u64,
    /// Explicit dependency-graph edges tolerated before the graph degrades
    /// to the fully-connected barrier encoding.
    pub max_graph_edges: u64,
    /// Entries retained by the bounded analysis cache.
    pub cache_capacity: usize,
}

impl Default for AnalysisBudget {
    fn default() -> Self {
        AnalysisBudget {
            // Generous: every evaluation workload analyzes precisely well
            // within these; the budgets exist for adversarial kernels.
            absint_fuel: 1 << 20,
            coarse_fuel: 1 << 20,
            coarse_groups: 8,
            trace_steps: bm_ptx::interp::MAX_STEPS_PER_THREAD,
            max_graph_edges: 1 << 22,
            cache_capacity: 128,
        }
    }
}

impl AnalysisBudget {
    /// A deliberately tiny budget that forces every analysis onto the
    /// barrier rung — used by robustness tests and as a load-shedding
    /// setting.
    pub fn exhausted() -> Self {
        AnalysisBudget {
            absint_fuel: 0,
            coarse_fuel: 0,
            ..AnalysisBudget::default()
        }
    }
}

/// The ladder rung a kernel's analysis landed on, ordered from full
/// precision to pre-launch disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DegradationRung {
    /// Per-TB access sets and graph — no degradation.
    Precise,
    /// Group-level access sets; pattern-level (coarser) graph.
    Coarse,
    /// Fully-connected whole-kernel barrier.
    Barrier,
    /// Barrier semantics *and* excluded from kernel pre-launching.
    PrelaunchOff,
}

impl fmt::Display for DegradationRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradationRung::Precise => "precise",
            DegradationRung::Coarse => "coarse",
            DegradationRung::Barrier => "barrier",
            DegradationRung::PrelaunchOff => "prelaunch-off",
        })
    }
}

/// Why a kernel left the precise rung.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradationReason {
    /// No degradation occurred.
    None,
    /// The precise per-TB analysis ran out of fuel; the coarse group-level
    /// result is in use.
    AnalysisOverBudget,
    /// Both the precise and the coarse analysis ran out of fuel.
    CoarseOverBudget,
    /// The analysis returned the non-static verdict (tainted address or
    /// fixpoint divergence) — the paper's Algorithm 1 bail-out.
    NonStatic,
    /// The dependency graph exceeded the explicit-edge budget.
    GraphOverBudget,
    /// A child degree overflowed the 6-bit parent counters (§IV-C).
    DegreeOverflow,
    /// Tracing the representative thread block exceeded its step budget.
    TraceOverBudget,
    /// Tracing the representative thread block failed outright.
    TraceFailed,
    /// The launch is structurally invalid (bad argument binding); it is
    /// carried as an opaque barrier so the rest of the app still runs.
    InvalidLaunch,
    /// The runtime soundness guard quarantined the kernel after detecting
    /// a violation or hardware fault.
    Quarantined,
    /// The parallel analysis worker for this kernel panicked; the panic was
    /// contained and the kernel carries an opaque barrier instead.
    AnalysisPanicked,
    /// A cross-device transfer was dropped or corrupted; the multi-device
    /// run fell back to single-device execution.
    LinkFault,
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradationReason::None => "none",
            DegradationReason::AnalysisOverBudget => "precise analysis over budget",
            DegradationReason::CoarseOverBudget => "coarse analysis over budget",
            DegradationReason::NonStatic => "non-static access pattern",
            DegradationReason::GraphOverBudget => "dependency graph over edge budget",
            DegradationReason::DegreeOverflow => "child degree exceeds 6-bit counter",
            DegradationReason::TraceOverBudget => "representative trace over step budget",
            DegradationReason::TraceFailed => "representative trace failed",
            DegradationReason::InvalidLaunch => "structurally invalid launch",
            DegradationReason::Quarantined => "quarantined by soundness guard",
            DegradationReason::AnalysisPanicked => "analysis worker panicked",
            DegradationReason::LinkFault => "cross-device link fault",
        })
    }
}

/// A kernel's position on the ladder: the rung plus the reason it got
/// there. `worsen` keeps the *lowest* rung seen with its first cause, so a
/// kernel that degrades twice reports the more severe step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Degradation {
    /// The rung in effect.
    pub rung: DegradationRung,
    /// What pushed the kernel onto it.
    pub reason: DegradationReason,
    /// The simulation cycle at which the degraded analysis took effect:
    /// the kernel's issue cycle, stamped by the engine when the report is
    /// assembled. Zero until then (analysis runs before simulated time
    /// exists) and zero for non-degraded kernels.
    pub at_cycle: u64,
}

impl Default for Degradation {
    fn default() -> Self {
        Degradation::none()
    }
}

impl Degradation {
    /// Full precision, no degradation.
    pub fn none() -> Self {
        Degradation {
            rung: DegradationRung::Precise,
            reason: DegradationReason::None,
            at_cycle: 0,
        }
    }

    /// Whether any rung below precise is in effect.
    pub fn is_degraded(&self) -> bool {
        self.rung != DegradationRung::Precise
    }

    /// Moves to `rung` for `reason` if it is strictly worse than the
    /// current rung; no-op otherwise.
    pub fn worsen(&mut self, rung: DegradationRung, reason: DegradationReason) {
        if rung > self.rung {
            self.rung = rung;
            self.reason = reason;
        }
    }
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_degraded() {
            write!(f, "{} ({})", self.rung, self.reason)
        } else {
            f.write_str("precise")
        }
    }
}

/// Hit/miss/eviction counters of the bounded analysis cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Launches whose analysis was served from the cache.
    pub hits: u64,
    /// Launches analyzed from scratch.
    pub misses: u64,
    /// Entries displaced by the capacity bound.
    pub evictions: u64,
    /// Kernel pairs whose dependency graph was served from the cache.
    pub graph_hits: u64,
    /// Kernel pairs whose dependency graph was built from scratch.
    pub graph_misses: u64,
    /// Graph entries displaced by the capacity bound.
    pub graph_evictions: u64,
}

/// What the cache retains per distinct launch shape: everything the JIT
/// pipeline derives from the launch alone (the graph depends on the
/// *predecessor* too and is rebuilt per position).
#[derive(Debug, Clone)]
pub struct CachedAnalysis {
    /// Per-TB (or per-group) access sets.
    pub access: KernelAccess,
    /// Timing/resource profile from the representative trace.
    pub profile: LaunchProfile,
    /// The ladder rung the analysis landed on.
    pub degradation: Degradation,
}

/// Cache key: kernel body (hashed from its canonical printed form),
/// grid/block dimensions, and the full argument signature — pointer args
/// included, since access sets embed absolute addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct CacheKey {
    body_hash: u64,
    grid: bm_ptx::kernel::Dim3,
    block: bm_ptx::kernel::Dim3,
    /// `(discriminant, bits)` per argument.
    args: Vec<(u8, u64)>,
}

/// Key of one cached dependency graph: the (parent, child) launch pair
/// plus everything else the build depends on — the hazard mode and the
/// edge budget (which decides barrier degradation).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct GraphKey {
    pub(crate) parent: CacheKey,
    pub(crate) child: CacheKey,
    pub(crate) mode: bm_depgraph::HazardMode,
    pub(crate) max_edges: u64,
}

/// A memoized dependency graph together with the degradation flags its
/// construction produced, so replayed kernel pairs (e.g. the iterated
/// kernel sequences of fdtd2d or hotspot) skip graph construction without
/// losing the ladder bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct CachedGraph {
    pub(crate) graph: bm_depgraph::BipartiteGraph,
    /// The explicit edge count exceeded the budget (graph degraded).
    pub(crate) over_budget: bool,
    /// A child degree overflowed the 6-bit counters (graph degraded).
    pub(crate) degree_overflow: bool,
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

pub(crate) fn key_of(launch: &Launch) -> CacheKey {
    // The canonical `Display` form round-trips through the parser, so two
    // kernels printing identically are semantically identical.
    let body_hash = fnv1a(launch.kernel.to_string().as_bytes());
    let args = launch
        .args
        .iter()
        .map(|a| match a {
            ArgValue::U32(v) => (0u8, *v as u64),
            ArgValue::U64(v) => (1u8, *v),
            ArgValue::F32(v) => (2u8, v.to_bits() as u64),
            ArgValue::Ptr(v) => (3u8, *v),
        })
        .collect();
    CacheKey {
        body_hash,
        grid: launch.grid,
        block: launch.block,
        args,
    }
}

/// [`key_of`] with pointer argument *values* replaced by their argument
/// position. Launches that differ only in which buffers they address then
/// share one trace-memo key, which is what lets the representative-TB trace
/// law amortize across a kernel's repeated launches. Synthesized traces are
/// still validated bit-for-bit before the key is trusted, so collapsing
/// pointer identity is safe: a launch whose trace genuinely depends on the
/// buffer contents fails validation and pins the key to interpretation.
pub(crate) fn trace_key_of(launch: &Launch) -> CacheKey {
    let mut key = key_of(launch);
    for (i, slot) in key.args.iter_mut().enumerate() {
        if slot.0 == 3 {
            slot.1 = i as u64;
        }
    }
    key
}

/// Bounded LRU cache over launch-time analysis results.
///
/// Keyed by (kernel body hash, grid/block dims, argument signature);
/// eviction is least-recently-used and fully deterministic, so cached and
/// uncached runs of the same application produce identical schedules.
#[derive(Debug)]
pub struct AnalysisCache {
    capacity: usize,
    map: HashMap<CacheKey, CachedAnalysis>,
    /// LRU order, least-recent first. Linear scans are fine at the bounded
    /// capacities this cache runs at.
    order: Vec<CacheKey>,
    /// Dependency graphs per (parent, child, mode, edge budget), bounded by
    /// the same capacity with its own LRU order.
    graphs: HashMap<GraphKey, CachedGraph>,
    graph_order: Vec<GraphKey>,
    stats: CacheStats,
}

impl AnalysisCache {
    /// Creates a cache retaining at most `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        AnalysisCache {
            capacity: capacity.max(1),
            map: HashMap::new(),
            order: Vec::new(),
            graphs: HashMap::new(),
            graph_order: Vec::new(),
            stats: CacheStats::default(),
        }
    }

    /// A cache sized by `budget.cache_capacity`.
    pub fn for_budget(budget: &AnalysisBudget) -> Self {
        AnalysisCache::new(budget.cache_capacity)
    }

    /// Looks up the analysis for `launch`, refreshing its LRU position.
    pub fn lookup(&mut self, launch: &Launch) -> Option<CachedAnalysis> {
        let key = key_of(launch);
        match self.map.get(&key) {
            Some(hit) => {
                let hit = hit.clone();
                self.touch(&key);
                self.stats.hits += 1;
                Some(hit)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts the analysis result for `launch`, evicting the
    /// least-recently-used entry if the cache is full.
    pub fn insert(&mut self, launch: &Launch, value: CachedAnalysis) {
        let key = key_of(launch);
        if self.map.insert(key.clone(), value).is_none() {
            self.order.push(key);
            while self.map.len() > self.capacity {
                let victim = self.order.remove(0);
                self.map.remove(&victim);
                self.stats.evictions += 1;
            }
        } else {
            self.touch(&key);
        }
    }

    fn touch(&mut self, key: &CacheKey) {
        if let Some(pos) = self.order.iter().position(|k| k == key) {
            let k = self.order.remove(pos);
            self.order.push(k);
        }
    }

    /// Simulates the exact miss sequence the serial pipeline would observe
    /// when looking up `keys` in order, *without* mutating the cache: each
    /// miss is assumed to be followed by the serial `insert` (with its LRU
    /// eviction), each hit by the serial LRU refresh. This is stronger than
    /// a plain membership sweep — a key can be evicted and
    /// re-missed within one batch — and it is what lets the parallel
    /// pipeline assign per-key occurrence indices that match the serial
    /// replay exactly.
    pub(crate) fn plan_misses(&self, keys: &[CacheKey]) -> Vec<bool> {
        let mut present: std::collections::HashSet<CacheKey> = self.map.keys().cloned().collect();
        let mut order = self.order.clone();
        let mut out = Vec::with_capacity(keys.len());
        for key in keys {
            if present.contains(key) {
                if let Some(pos) = order.iter().position(|k| k == key) {
                    let k = order.remove(pos);
                    order.push(k);
                }
                out.push(false);
            } else {
                present.insert(key.clone());
                order.push(key.clone());
                while present.len() > self.capacity {
                    let victim = order.remove(0);
                    present.remove(&victim);
                }
                out.push(true);
            }
        }
        out
    }

    /// Looks up the dependency graph for a kernel pair, refreshing its LRU
    /// position.
    pub(crate) fn lookup_graph(&mut self, key: &GraphKey) -> Option<CachedGraph> {
        match self.graphs.get(key) {
            Some(hit) => {
                let hit = hit.clone();
                if let Some(pos) = self.graph_order.iter().position(|k| k == key) {
                    let k = self.graph_order.remove(pos);
                    self.graph_order.push(k);
                }
                self.stats.graph_hits += 1;
                Some(hit)
            }
            None => {
                self.stats.graph_misses += 1;
                None
            }
        }
    }

    /// Inserts a built graph, evicting the least-recently-used pair when
    /// the capacity bound is hit.
    pub(crate) fn insert_graph(&mut self, key: GraphKey, value: CachedGraph) {
        if self.graphs.insert(key.clone(), value).is_none() {
            self.graph_order.push(key);
            while self.graphs.len() > self.capacity {
                let victim = self.graph_order.remove(0);
                self.graphs.remove(&victim);
                self.stats.graph_evictions += 1;
            }
        } else if let Some(pos) = self.graph_order.iter().position(|k| k == &key) {
            let k = self.graph_order.remove(pos);
            self.graph_order.push(k);
        }
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Hit/miss/eviction counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

/// One admission-backpressure step: the scheduler observed spill traffic
/// crossing the configured threshold and shrank the pre-launch window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PressureEvent {
    /// Simulation cycle at which the window shrank.
    pub cycle: u64,
    /// Spill transactions (counter writebacks + dependency-list fetches)
    /// observed so far.
    pub spill_traffic: u64,
    /// Window before the step.
    pub window_before: u32,
    /// Window after the step.
    pub window_after: u32,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{Dim3, Launch};
    use bm_ptx::parser::parse_kernel;
    use std::sync::Arc;

    fn launch(ptr: u64, grid: u32) -> Launch {
        let k = Arc::new(
            parse_kernel(
                ".entry w(.param .u64 A) {
                   ld.param.u64 %rd1, [A];
                   mov.u32 %r1, %tid.x;
                   mad.wide.u32 %rd2, %r1, 4, %rd1;
                   st.global.f32 [%rd2], 0f00000000;
                   ret;
                 }",
            )
            .unwrap(),
        );
        Launch::new(k, Dim3::x(grid), Dim3::x(32), vec![ArgValue::Ptr(ptr)])
    }

    fn dummy(deg: Degradation) -> CachedAnalysis {
        CachedAnalysis {
            access: KernelAccess::from_per_tb(Vec::new(), false),
            profile: LaunchProfile {
                n_tbs: 0,
                threads: 32,
                shared_bytes: 0,
                duration: 1,
                txns_per_tb: 0,
            },
            degradation: deg,
        }
    }

    #[test]
    fn worsen_is_monotone() {
        let mut d = Degradation::none();
        assert!(!d.is_degraded());
        d.worsen(
            DegradationRung::Coarse,
            DegradationReason::AnalysisOverBudget,
        );
        assert_eq!(d.rung, DegradationRung::Coarse);
        // A better rung cannot undo a worse one.
        d.worsen(DegradationRung::Precise, DegradationReason::None);
        assert_eq!(d.rung, DegradationRung::Coarse);
        d.worsen(
            DegradationRung::PrelaunchOff,
            DegradationReason::TraceFailed,
        );
        assert_eq!(d.reason, DegradationReason::TraceFailed);
        assert!(d.to_string().contains("prelaunch-off"));
    }

    #[test]
    fn cache_distinguishes_args_and_dims() {
        let mut cache = AnalysisCache::new(8);
        assert!(cache.lookup(&launch(0x1000, 4)).is_none());
        cache.insert(&launch(0x1000, 4), dummy(Degradation::none()));
        assert!(cache.lookup(&launch(0x1000, 4)).is_some());
        assert!(cache.lookup(&launch(0x2000, 4)).is_none(), "different ptr");
        assert!(cache.lookup(&launch(0x1000, 8)).is_none(), "different grid");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 3, 0));
    }

    #[test]
    fn trace_key_masks_pointer_values_only() {
        let a = trace_key_of(&launch(0x1000, 4));
        let b = trace_key_of(&launch(0x2000, 4));
        assert_eq!(a, b, "pointer value must not split trace-memo keys");
        assert_ne!(
            trace_key_of(&launch(0x1000, 4)),
            trace_key_of(&launch(0x1000, 8)),
            "grid dims still distinguish"
        );
        assert_ne!(
            key_of(&launch(0x1000, 4)),
            key_of(&launch(0x2000, 4)),
            "analysis keys keep pointer identity"
        );
    }

    #[test]
    fn plan_misses_replays_serial_lru_protocol() {
        let mut cache = AnalysisCache::new(2);
        cache.insert(&launch(0x1000, 4), dummy(Degradation::none()));
        let keys: Vec<CacheKey> = [
            launch(0x1000, 4), // hit, refreshes LRU
            launch(0x2000, 4), // miss, fills cache
            launch(0x3000, 4), // miss, evicts 0x1000
            launch(0x1000, 4), // miss again: evicted above
            launch(0x3000, 4), // hit
        ]
        .iter()
        .map(key_of)
        .collect();
        let plan = cache.plan_misses(&keys);
        assert_eq!(plan, vec![false, true, true, true, false]);
        // Planning must not disturb the live cache.
        assert_eq!(cache.stats(), CacheStats::default() /* no lookups */);
        assert!(cache.map.contains_key(&keys[0]));
    }

    #[test]
    fn cache_evicts_least_recently_used() {
        let mut cache = AnalysisCache::new(2);
        cache.insert(&launch(0x1000, 4), dummy(Degradation::none()));
        cache.insert(&launch(0x2000, 4), dummy(Degradation::none()));
        // Touch the first entry so the second becomes the LRU victim.
        assert!(cache.lookup(&launch(0x1000, 4)).is_some());
        cache.insert(&launch(0x3000, 4), dummy(Degradation::none()));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup(&launch(0x1000, 4)).is_some(), "recently used");
        assert!(cache.lookup(&launch(0x2000, 4)).is_none(), "evicted");
    }
}
