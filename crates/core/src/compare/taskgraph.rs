//! Wavefront task graphs for the Fig. 14 comparison.
//!
//! The paper compares against Wireframe (ref.\[4\]) on six applications with a
//! wavefront dependency pattern of 4K tasks: anti-diagonal waves over an
//! n×n grid, so the number of tasks per wave grows to n in the middle and
//! declines back to one.

/// A wavefront task graph: tasks organized in waves (levels); a task
/// depends on its neighbours in the previous wave (the anti-diagonal
/// dependency of dynamic-programming kernels).
#[derive(Debug, Clone)]
pub struct TaskGraph {
    /// Application name.
    pub name: String,
    /// Tasks per wave.
    pub widths: Vec<u32>,
    /// Per-task execution cycles.
    pub duration: u64,
    /// Threads per task (tasks map to thread blocks).
    pub threads: u32,
}

impl TaskGraph {
    /// Diamond wavefront over an `n × n` grid: waves of width
    /// `1, 2, …, n, …, 2, 1` (2n-1 waves, n² tasks).
    pub fn diamond(name: &str, n: u32, duration: u64, threads: u32) -> Self {
        let mut widths = Vec::with_capacity(2 * n as usize - 1);
        for w in 1..=n {
            widths.push(w);
        }
        for w in (1..n).rev() {
            widths.push(w);
        }
        TaskGraph {
            name: name.to_string(),
            widths,
            duration,
            threads,
        }
    }

    /// Total number of tasks.
    pub fn num_tasks(&self) -> u64 {
        self.widths.iter().map(|&w| w as u64).sum()
    }

    /// Number of waves.
    pub fn num_levels(&self) -> usize {
        self.widths.len()
    }

    /// Parents of task `idx` in level `level` — its anti-diagonal
    /// neighbours in the previous wave.
    ///
    /// While the wave is growing (width increases), cell `(i, j)` on the
    /// anti-diagonal depends on the up and left neighbours, which are
    /// entries `idx-1` and `idx` of the previous wave; while shrinking,
    /// they are `idx` and `idx+1`.
    pub fn parents(&self, level: usize, idx: u32) -> Vec<u32> {
        if level == 0 {
            return Vec::new();
        }
        let prev_w = self.widths[level - 1];
        let cur_w = self.widths[level];
        let mut out = Vec::new();
        if cur_w > prev_w {
            // Growing: parents idx-1 and idx (clipped).
            if idx > 0 {
                out.push(idx - 1);
            }
            if idx < prev_w {
                out.push(idx);
            }
        } else {
            // Shrinking (or equal): parents idx and idx+1 (clipped).
            if idx < prev_w {
                out.push(idx);
            }
            if idx + 1 < prev_w {
                out.push(idx + 1);
            }
        }
        out
    }

    /// Children of task `idx` in level `level` (inverse of [`parents`]).
    ///
    /// [`parents`]: TaskGraph::parents
    pub fn children(&self, level: usize, idx: u32) -> Vec<u32> {
        if level + 1 >= self.widths.len() {
            return Vec::new();
        }
        let next_w = self.widths[level + 1];
        (0..next_w)
            .filter(|&c| self.parents(level + 1, c).contains(&idx))
            .collect()
    }

    /// Total dependency edges.
    pub fn num_edges(&self) -> u64 {
        (1..self.widths.len())
            .map(|l| {
                (0..self.widths[l])
                    .map(|i| self.parents(l, i).len() as u64)
                    .sum::<u64>()
            })
            .sum()
    }

    /// The six wavefront applications used for Fig. 14 (4K tasks each:
    /// 64 × 64 grids). Durations vary with each application's per-task
    /// arithmetic intensity.
    pub fn figure14_suite() -> Vec<TaskGraph> {
        vec![
            TaskGraph::diamond("SW", 64, 3_000, 128),
            TaskGraph::diamond("DTW", 64, 3_600, 128),
            TaskGraph::diamond("SAT", 64, 2_400, 128),
            TaskGraph::diamond("SOR", 64, 3_000, 256),
            TaskGraph::diamond("FW", 64, 4_200, 128),
            TaskGraph::diamond("LCS", 64, 2_000, 128),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diamond_shape_and_count() {
        let g = TaskGraph::diamond("t", 64, 1000, 128);
        assert_eq!(g.num_levels(), 127);
        assert_eq!(g.num_tasks(), 64 * 64);
        assert_eq!(*g.widths.iter().max().unwrap(), 64);
        assert_eq!(g.widths[0], 1);
        assert_eq!(*g.widths.last().unwrap(), 1);
    }

    #[test]
    fn parents_growing_and_shrinking() {
        let g = TaskGraph::diamond("t", 4, 1000, 128);
        // widths: 1 2 3 4 3 2 1
        assert_eq!(g.parents(0, 0), Vec::<u32>::new());
        assert_eq!(g.parents(1, 0), vec![0]);
        assert_eq!(g.parents(1, 1), vec![0]);
        assert_eq!(g.parents(2, 1), vec![0, 1]);
        // Shrinking side: level 4 (width 3) from level 3 (width 4).
        assert_eq!(g.parents(4, 0), vec![0, 1]);
        assert_eq!(g.parents(4, 2), vec![2, 3]);
    }

    #[test]
    fn children_invert_parents() {
        let g = TaskGraph::diamond("t", 8, 1000, 128);
        for l in 0..g.num_levels() - 1 {
            for i in 0..g.widths[l] {
                for c in g.children(l, i) {
                    assert!(g.parents(l + 1, c).contains(&i));
                }
            }
        }
        // Every non-root task has at least one parent.
        for l in 1..g.num_levels() {
            for i in 0..g.widths[l] {
                assert!(!g.parents(l, i).is_empty(), "task ({l},{i}) orphaned");
            }
        }
    }

    #[test]
    fn suite_is_4k_tasks_each() {
        for g in TaskGraph::figure14_suite() {
            assert_eq!(g.num_tasks(), 4096, "{}", g.name);
        }
    }
}
