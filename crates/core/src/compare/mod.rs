//! Comparison with existing task-based execution models (paper §IV-D,
//! Fig. 14): CUDA Dynamic Parallelism ("Tasks as Kernels"), Wireframe
//! ("Tasks as TBs"), and BlockMaestro under both scheduling priorities,
//! evaluated on six wavefront applications of 4K tasks each.

pub mod models;
pub mod taskgraph;

pub use models::{run_task_graph, CompareModel, WIREFRAME_RUNAHEAD, WIREFRAME_UPDATE_CYCLES};
pub use taskgraph::TaskGraph;
