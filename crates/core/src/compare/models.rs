//! Execution models for the Fig. 14 comparison: CUDA Dynamic Parallelism
//! ("Tasks as Kernels"), Wireframe ("Tasks as TBs"), and BlockMaestro with
//! producer/consumer priority, all running the same wavefront task graphs
//! on the shared DES substrate.

use super::taskgraph::TaskGraph;
use bm_simt::config::GpuConfig;
use bm_simt::des::{self, DesStats, TbDescriptor, TbKey, TbSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Cycles Wireframe's pending-update buffer needs to process one
/// dependency update. Updates serialize through the size-constrained
/// hardware task-management buffers the paper cites as Wireframe's
/// bottleneck (§IV-D); the per-update cost is calibrated so that the
/// buffer becomes the bottleneck on wide waves, reproducing the paper's
/// Wireframe-vs-BlockMaestro gap.
pub const WIREFRAME_UPDATE_CYCLES: u64 = 56;
/// Wireframe's run-ahead limit in waves.
pub const WIREFRAME_RUNAHEAD: usize = 3;

/// Which execution model runs the task graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareModel {
    /// CUDA Dynamic Parallelism: each task is a device-side kernel launch
    /// (3 µs, the host API share removed per §IV-D).
    Cdp,
    /// Wireframe: persistent mega-kernel, hardware DAG buffers with
    /// serialized pending updates and 3-wave run-ahead.
    Wireframe,
    /// BlockMaestro, one kernel per wave, producer priority (window 2).
    BmProducer,
    /// BlockMaestro, consumer priority (window 4, 3 pre-launched kernels).
    BmConsumer,
}

impl CompareModel {
    /// The Fig. 14 bar set.
    pub fn all() -> [CompareModel; 4] {
        [
            CompareModel::Cdp,
            CompareModel::Wireframe,
            CompareModel::BmProducer,
            CompareModel::BmConsumer,
        ]
    }

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            CompareModel::Cdp => "CDP",
            CompareModel::Wireframe => "Wireframe",
            CompareModel::BmProducer => "BM-producer",
            CompareModel::BmConsumer => "BM-consumer",
        }
    }

    fn window(&self) -> usize {
        match self {
            CompareModel::BmProducer => 2,
            CompareModel::BmConsumer => 4,
            _ => usize::MAX,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Ev {
    /// Task becomes eligible (post launch latency / update processing).
    Eligible(u32, u32),
    /// BlockMaestro kernel (wave) arrival.
    Arrival(u32),
}

struct TaskSource<'a> {
    g: &'a TaskGraph,
    model: CompareModel,
    counts: Vec<Vec<u32>>,
    done_tasks: Vec<Vec<bool>>,
    level_done: Vec<u32>,
    level_complete: Vec<bool>,
    /// Ready tasks per level, FIFO.
    ready: Vec<VecDeque<u32>>,
    /// Tasks whose deps are met but which are parked on a window/arrival.
    parked: Vec<Vec<u32>>,
    pending: BinaryHeap<Reverse<(u64, Ev)>>,
    min_incomplete: usize,
    outstanding: u64,
    // CDP
    cdp_launch: u64,
    // Wireframe
    update_free: u64,
    // BlockMaestro
    arrival: Vec<Option<u64>>,
    issued: usize,
    retired: usize,
    next_issue_floor: u64,
    api_cycles: u64,
    launch_cycles: u64,
}

impl<'a> TaskSource<'a> {
    fn new(cfg: &GpuConfig, g: &'a TaskGraph, model: CompareModel) -> Self {
        let levels = g.num_levels();
        let counts: Vec<Vec<u32>> = (0..levels)
            .map(|l| {
                (0..g.widths[l])
                    .map(|i| g.parents(l, i).len() as u32)
                    .collect()
            })
            .collect();
        let mut src = TaskSource {
            g,
            model,
            counts,
            done_tasks: (0..levels)
                .map(|l| vec![false; g.widths[l] as usize])
                .collect(),
            level_done: vec![0; levels],
            level_complete: vec![false; levels],
            ready: (0..levels).map(|_| VecDeque::new()).collect(),
            parked: (0..levels).map(|_| Vec::new()).collect(),
            pending: BinaryHeap::new(),
            min_incomplete: 0,
            outstanding: g.num_tasks(),
            cdp_launch: cfg.device_launch_cycles(),
            update_free: 0,
            arrival: vec![None; levels],
            issued: 0,
            retired: 0,
            next_issue_floor: 0,
            api_cycles: cfg.launch_api_cycles,
            launch_cycles: cfg.kernel_launch_cycles,
        };
        // Roots become eligible at t=0 (CDP pays its launch even for them).
        for i in 0..g.widths[0] {
            src.deps_met(0, i, 0);
        }
        if matches!(model, CompareModel::BmProducer | CompareModel::BmConsumer) {
            src.bm_admit(0);
        }
        src
    }

    fn is_bm(&self) -> bool {
        matches!(
            self.model,
            CompareModel::BmProducer | CompareModel::BmConsumer
        )
    }

    /// Called when a task's dependencies are all satisfied at time `now`.
    fn deps_met(&mut self, level: usize, idx: u32, now: u64) {
        match self.model {
            CompareModel::Cdp => {
                // Device-side child launch latency.
                self.pending.push(Reverse((
                    now + self.cdp_launch,
                    Ev::Eligible(level as u32, idx),
                )));
            }
            CompareModel::Wireframe | CompareModel::BmProducer | CompareModel::BmConsumer => {
                self.make_eligible(level, idx, now);
            }
        }
    }

    /// Parks or enqueues a dependency-satisfied task per model windows.
    fn make_eligible(&mut self, level: usize, idx: u32, _now: u64) {
        let admitted = match self.model {
            CompareModel::Cdp => true,
            CompareModel::Wireframe => level < self.min_incomplete + WIREFRAME_RUNAHEAD,
            CompareModel::BmProducer | CompareModel::BmConsumer => {
                self.arrival[level].is_some() && level < self.retired + self.model.window()
            }
        };
        if admitted {
            self.ready[level].push_back(idx);
        } else {
            self.parked[level].push(idx);
        }
    }

    /// Re-examines parked tasks after a window/arrival change.
    fn flush_parked(&mut self, now: u64) {
        for level in 0..self.g.num_levels() {
            if self.parked[level].is_empty() {
                continue;
            }
            let admitted = match self.model {
                CompareModel::Cdp => true,
                CompareModel::Wireframe => level < self.min_incomplete + WIREFRAME_RUNAHEAD,
                CompareModel::BmProducer | CompareModel::BmConsumer => {
                    self.arrival[level].is_some() && level < self.retired + self.model.window()
                }
            };
            if admitted {
                for idx in std::mem::take(&mut self.parked[level]) {
                    self.make_eligible(level, idx, now);
                }
            }
        }
    }

    /// BlockMaestro launch pipeline: issue kernels into the window.
    fn bm_admit(&mut self, now: u64) {
        let w = self.model.window();
        while self.issued < self.g.num_levels() && self.issued < self.retired + w {
            let issue = now.max(self.next_issue_floor);
            self.next_issue_floor = issue + self.api_cycles;
            self.pending.push(Reverse((
                issue + self.launch_cycles,
                Ev::Arrival(self.issued as u32),
            )));
            self.issued += 1;
        }
    }
}

impl TbSource for TaskSource<'_> {
    fn pop_ready(&mut self, _now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
        if !fits(self.g.threads, 0) {
            return None;
        }
        let levels = self.g.num_levels();
        let order: Box<dyn Iterator<Item = usize>> = if self.model == CompareModel::BmConsumer {
            Box::new((0..levels).rev())
        } else {
            Box::new(0..levels)
        };
        for l in order {
            if let Some(idx) = self.ready[l].pop_front() {
                return Some(TbDescriptor {
                    key: TbKey {
                        kernel_seq: l as u32,
                        tb: idx,
                    },
                    threads: self.g.threads,
                    shared_bytes: 0,
                    duration: self.g.duration,
                });
            }
        }
        None
    }

    fn on_tb_complete(&mut self, key: TbKey, now: u64) {
        let l = key.kernel_seq as usize;
        let idx = key.tb;
        debug_assert!(!self.done_tasks[l][idx as usize]);
        self.done_tasks[l][idx as usize] = true;
        self.level_done[l] += 1;
        self.outstanding -= 1;
        // Resolve children.
        for c in self.g.children(l, idx) {
            let cl = l + 1;
            let when = if self.model == CompareModel::Wireframe {
                // Serialized pending-update buffer.
                self.update_free = self.update_free.max(now) + WIREFRAME_UPDATE_CYCLES;
                self.update_free
            } else {
                now
            };
            self.counts[cl][c as usize] -= 1;
            if self.counts[cl][c as usize] == 0 {
                if when > now {
                    self.pending
                        .push(Reverse((when, Ev::Eligible(cl as u32, c))));
                } else {
                    self.deps_met(cl, c, now);
                }
            }
        }
        // Level completion bookkeeping.
        if self.level_done[l] == self.g.widths[l] {
            self.level_complete[l] = true;
            while self.min_incomplete < self.g.num_levels()
                && self.level_complete[self.min_incomplete]
            {
                self.min_incomplete += 1;
            }
            if self.is_bm() {
                while self.retired < self.g.num_levels() && self.level_complete[self.retired] {
                    self.retired += 1;
                }
                self.bm_admit(now);
            }
            self.flush_parked(now);
        }
    }

    fn next_event_at(&self, _now: u64) -> Option<u64> {
        self.pending.peek().map(|Reverse((t, _))| *t)
    }

    fn on_time_advance(&mut self, now: u64) {
        while let Some(Reverse((t, ev))) = self.pending.peek().copied() {
            if t > now {
                break;
            }
            self.pending.pop();
            match ev {
                Ev::Eligible(l, i) => self.make_eligible(l as usize, i, now),
                Ev::Arrival(l) => {
                    self.arrival[l as usize] = Some(t);
                    self.flush_parked(now);
                }
            }
        }
    }

    fn is_done(&self) -> bool {
        self.outstanding == 0
    }
}

/// Runs `graph` under `model`, returning the DES statistics.
pub fn run_task_graph(cfg: &GpuConfig, graph: &TaskGraph, model: CompareModel) -> DesStats {
    let mut src = TaskSource::new(cfg, graph, model);
    des::run(cfg, &mut src)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_graph() -> TaskGraph {
        TaskGraph::diamond("test", 16, 3_000, 128)
    }

    #[test]
    fn all_models_execute_every_task() {
        let cfg = GpuConfig::titan_x_pascal();
        let g = small_graph();
        for m in CompareModel::all() {
            let stats = run_task_graph(&cfg, &g, m);
            assert_eq!(stats.tbs_executed, g.num_tasks(), "{}", m.label());
            assert!(stats.total_cycles > 0);
        }
    }

    #[test]
    fn cdp_pays_per_task_launch_latency() {
        let cfg = GpuConfig::titan_x_pascal();
        let g = small_graph();
        let cdp = run_task_graph(&cfg, &g, CompareModel::Cdp);
        let wf = run_task_graph(&cfg, &g, CompareModel::Wireframe);
        // Wireframe avoids launches and must be meaningfully faster.
        assert!(
            wf.total_cycles < cdp.total_cycles,
            "wf {} vs cdp {}",
            wf.total_cycles,
            cdp.total_cycles
        );
        // CDP's critical path includes a 3 µs launch per wave.
        let floor = g.num_levels() as u64 * (g.duration);
        assert!(cdp.total_cycles as f64 >= floor as f64 * 1.5);
    }

    #[test]
    fn bm_consumer_outruns_bm_producer() {
        let cfg = GpuConfig::titan_x_pascal();
        let g = small_graph();
        let prod = run_task_graph(&cfg, &g, CompareModel::BmProducer);
        let cons = run_task_graph(&cfg, &g, CompareModel::BmConsumer);
        assert!(
            cons.total_cycles <= prod.total_cycles,
            "consumer {} should beat producer {}",
            cons.total_cycles,
            prod.total_cycles
        );
    }

    #[test]
    fn figure14_ordering_holds() {
        // The paper's robust qualitative results: CDP slowest, BM-consumer
        // fastest (≈2× CDP) and ahead of Wireframe; Wireframe and
        // BM-producer land in between. (Our BM-producer hides slightly more
        // launch latency than the paper's — see EXPERIMENTS.md.)
        let cfg = GpuConfig::titan_x_pascal();
        let g = TaskGraph::diamond("SW", 64, 3_000, 128);
        let cdp = run_task_graph(&cfg, &g, CompareModel::Cdp).total_cycles;
        let wf = run_task_graph(&cfg, &g, CompareModel::Wireframe).total_cycles;
        let prod = run_task_graph(&cfg, &g, CompareModel::BmProducer).total_cycles;
        let cons = run_task_graph(&cfg, &g, CompareModel::BmConsumer).total_cycles;
        assert!(cons < wf, "consumer {cons} < wireframe {wf}");
        assert!(cons < prod, "consumer {cons} < producer {prod}");
        assert!(wf < cdp, "wireframe {wf} < cdp {cdp}");
        assert!(prod < cdp, "producer {prod} < cdp {cdp}");
        // Consumer priority roughly doubles CDP's performance.
        let speedup = cdp as f64 / cons as f64;
        assert!(
            (1.6..2.6).contains(&speedup),
            "consumer speedup {speedup:.2} should be ≈2×"
        );
        // Wireframe lands around the paper's 1.37×.
        let wf_speedup = cdp as f64 / wf as f64;
        assert!(
            (1.15..1.75).contains(&wf_speedup),
            "wireframe speedup {wf_speedup:.2} should be ≈1.4×"
        );
    }
}
