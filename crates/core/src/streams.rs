//! CUDA Streams execution model (extension).
//!
//! §III-C notes that BlockMaestro generalizes to stream-based applications
//! and §IV-B observes that BICG/MVT's gains are "reflective of CUDA
//! Streams benefits", while *dependent* kernels cannot overlap under
//! streams. This module makes that comparison concrete: it executes an
//! application under classic multi-stream semantics — kernels in the same
//! stream serialize (with full launch overhead), kernels in different
//! streams may overlap, and cross-stream data dependencies are enforced
//! with kernel-granularity events (`cudaStreamWaitEvent` style).
//!
//! The result is the strongest software-only baseline: everything a
//! programmer could get from streams without BlockMaestro's TB-level
//! hardware resolution.

use crate::jit::JitKernel;
use bm_simt::config::GpuConfig;
use bm_simt::des::{self, DesStats, TbDescriptor, TbKey, TbSource};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Assigns each kernel (by sequence number) to a stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamAssignment {
    streams: Vec<u32>,
}

impl StreamAssignment {
    /// Everything on the default stream (fully serialized).
    pub fn single(num_kernels: usize) -> Self {
        StreamAssignment {
            streams: vec![0; num_kernels],
        }
    }

    /// Explicit per-kernel stream ids.
    ///
    /// # Panics
    ///
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<u32>) -> Self {
        assert!(!streams.is_empty(), "assignment must cover the kernels");
        StreamAssignment { streams }
    }

    /// Greedy automatic assignment: a kernel joins the stream of the
    /// latest kernel it depends on; fully independent kernels open a new
    /// stream (up to `max_streams`). This is what a careful programmer
    /// does by hand.
    pub fn auto(jit: &[JitKernel], max_streams: u32) -> Self {
        let mut streams = Vec::with_capacity(jit.len());
        let mut next_free = 0u32;
        for k in jit.iter() {
            let seq = k.seq as usize;
            // Dependencies: the consecutive graph plus skip gates.
            let mut dep_stream: Option<u32> = None;
            if seq > 0 && !k.graph.is_independent() {
                dep_stream = Some(streams[seq - 1]);
            }
            for &g in &k.skip_gates {
                dep_stream = Some(streams[g as usize]);
            }
            let s = match dep_stream {
                Some(s) => s,
                None => {
                    let s = next_free % max_streams.max(1);
                    next_free += 1;
                    s
                }
            };
            streams.push(s);
        }
        StreamAssignment { streams }
    }

    /// Stream of kernel `seq`.
    pub fn stream_of(&self, seq: usize) -> u32 {
        self.streams[seq]
    }

    /// Number of distinct streams used.
    pub fn num_streams(&self) -> usize {
        let mut s: Vec<u32> = self.streams.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    }
}

struct StreamSource<'a> {
    jit: &'a [JitKernel],
    assignment: &'a StreamAssignment,
    /// Kernels, in order, per stream.
    stream_queues: Vec<VecDeque<usize>>,
    /// Cross-stream waits: kernel -> kernels that must fully complete.
    waits: Vec<Vec<usize>>,
    completed: Vec<bool>,
    done_tbs: Vec<u32>,
    arrival: Vec<Option<u64>>,
    ready: Vec<VecDeque<u32>>,
    pending: BinaryHeap<Reverse<(u64, usize)>>,
    launch_cycles: u64,
    outstanding: u64,
}

impl<'a> StreamSource<'a> {
    fn new(cfg: &GpuConfig, jit: &'a [JitKernel], assignment: &'a StreamAssignment) -> Self {
        let nstreams = jit
            .iter()
            .map(|k| assignment.stream_of(k.seq as usize) as usize + 1)
            .max()
            .unwrap_or(1);
        let mut stream_queues = vec![VecDeque::new(); nstreams];
        let mut waits = vec![Vec::new(); jit.len()];
        for k in jit {
            let seq = k.seq as usize;
            let s = assignment.stream_of(seq) as usize;
            stream_queues[s].push_back(seq);
            // Cross-stream data deps become stream-wait events.
            if seq > 0 && !k.graph.is_independent() {
                let p = seq - 1;
                if assignment.stream_of(p) != assignment.stream_of(seq) {
                    waits[seq].push(p);
                }
            }
            for &g in &k.skip_gates {
                if assignment.stream_of(g as usize) != assignment.stream_of(seq) {
                    waits[seq].push(g as usize);
                }
            }
        }
        let mut src = StreamSource {
            jit,
            assignment,
            stream_queues,
            waits,
            completed: vec![false; jit.len()],
            done_tbs: vec![0; jit.len()],
            arrival: vec![None; jit.len()],
            ready: jit.iter().map(|_| VecDeque::new()).collect(),
            pending: BinaryHeap::new(),
            launch_cycles: cfg.kernel_launch_cycles,
            outstanding: jit.iter().map(|k| k.profile.n_tbs as u64).sum(),
        };
        src.launch_stream_heads(0);
        src
    }

    /// Each stream launches its head kernel when the head's cross-stream
    /// waits are satisfied and the previous kernel in the stream is done.
    fn launch_stream_heads(&mut self, now: u64) {
        for q in &mut self.stream_queues {
            if let Some(&seq) = q.front() {
                let waits_ok = self.waits[seq].iter().all(|&w| self.completed[w]);
                if waits_ok && self.arrival[seq].is_none() {
                    self.pending.push(Reverse((now + self.launch_cycles, seq)));
                    self.arrival[seq] = Some(u64::MAX); // issued marker
                }
            }
        }
    }

    fn kernel_complete(&mut self, seq: usize, now: u64) {
        self.completed[seq] = true;
        let s = self.assignment.stream_of(seq) as usize;
        debug_assert_eq!(self.stream_queues[s].front(), Some(&seq));
        self.stream_queues[s].pop_front();
        self.launch_stream_heads(now);
    }
}

impl TbSource for StreamSource<'_> {
    fn pop_ready(&mut self, _now: u64, fits: &dyn Fn(u32, u32) -> bool) -> Option<TbDescriptor> {
        for seq in 0..self.jit.len() {
            if self.ready[seq].is_empty() {
                continue;
            }
            let p = &self.jit[seq].profile;
            if !fits(p.threads, p.shared_bytes) {
                continue;
            }
            let tb = self.ready[seq].pop_front().expect("non-empty");
            return Some(TbDescriptor {
                key: TbKey {
                    kernel_seq: seq as u32,
                    tb,
                },
                threads: p.threads,
                shared_bytes: p.shared_bytes,
                duration: p.duration,
            });
        }
        None
    }

    fn on_tb_complete(&mut self, key: TbKey, now: u64) {
        let seq = key.kernel_seq as usize;
        self.done_tbs[seq] += 1;
        self.outstanding -= 1;
        if self.done_tbs[seq] == self.jit[seq].profile.n_tbs {
            self.kernel_complete(seq, now);
        }
    }

    fn next_event_at(&self, _now: u64) -> Option<u64> {
        self.pending.peek().map(|Reverse((t, _))| *t)
    }

    fn on_time_advance(&mut self, now: u64) {
        while let Some(Reverse((t, seq))) = self.pending.peek().copied() {
            if t > now {
                break;
            }
            self.pending.pop();
            self.arrival[seq] = Some(t);
            for tb in 0..self.jit[seq].profile.n_tbs {
                self.ready[seq].push_back(tb);
            }
        }
    }

    fn is_done(&self) -> bool {
        self.outstanding == 0
    }
}

/// Executes the analyzed application under multi-stream semantics.
pub fn run_streams(cfg: &GpuConfig, jit: &[JitKernel], assignment: &StreamAssignment) -> DesStats {
    let mut src = StreamSource::new(cfg, jit, assignment);
    des::run(cfg, &mut src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jit::jit_analyze_app;
    use bm_depgraph::HazardMode;
    use bm_workloads::{bicg, hotspot, Scale};

    #[test]
    fn auto_assignment_splits_independent_kernels() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = bicg::build(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let a = StreamAssignment::auto(&jit, 4);
        assert_eq!(a.num_streams(), 2, "BICG's kernels go to separate streams");
    }

    #[test]
    fn streams_overlap_independent_kernels_only() {
        let cfg = GpuConfig::titan_x_pascal();
        // BICG (independent): two streams beat one.
        let app = bicg::build(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let single = run_streams(&cfg, &jit, &StreamAssignment::single(jit.len()));
        let multi = run_streams(&cfg, &jit, &StreamAssignment::auto(&jit, 4));
        assert!(multi.total_cycles < single.total_cycles);
        // Hotspot (a strict chain): streams cannot help.
        let app = hotspot::build(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let auto = StreamAssignment::auto(&jit, 4);
        assert_eq!(auto.num_streams(), 1, "a chain stays on one stream");
        let single = run_streams(&cfg, &jit, &StreamAssignment::single(jit.len()));
        let multi = run_streams(&cfg, &jit, &auto);
        assert_eq!(single.total_cycles, multi.total_cycles);
    }

    #[test]
    fn blockmaestro_dominates_streams_on_dependent_chains() {
        use crate::engine::run_analyzed;
        use crate::modes::ExecMode;
        let cfg = GpuConfig::titan_x_pascal();
        let app = hotspot::build(Scale::Small);
        let jit = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        let streams = run_streams(&cfg, &jit, &StreamAssignment::auto(&jit, 4));
        let bm = run_analyzed(&cfg, &app, &jit, ExecMode::ProducerPriority { window: 2 });
        assert!(
            bm.kernel_region_cycles < streams.total_cycles,
            "TB-level resolution must beat stream-level overlap on chains: {} vs {}",
            bm.kernel_region_cycles,
            streams.total_cycles
        );
    }
}
