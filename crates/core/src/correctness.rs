//! End-to-end correctness checking.
//!
//! BlockMaestro must be *architecturally invisible*: however aggressively
//! TBs of different kernels overlap, final memory must equal serialized
//! execution. This module replays a run's TB schedule functionally — in
//! the exact start order the scheduler produced — and compares the full
//! memory image against the serialized reference.

use bm_cmdq::Application;
use bm_ptx::interp::{execute_block, ExecError, NullObserver};
use bm_ptx::kernel::Launch;
use bm_ptx::mem::GlobalMem;
use bm_simt::des::TbKey;
use std::fmt;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Equivalence {
    /// Memory images match.
    Match,
    /// Memory images differ — the schedule violated a data dependency.
    Mismatch {
        /// Fingerprint of the serialized reference memory.
        expected: u64,
        /// Fingerprint of the replayed memory.
        actual: u64,
    },
}

impl Equivalence {
    /// Whether the check passed.
    pub fn is_match(&self) -> bool {
        matches!(self, Equivalence::Match)
    }
}

impl fmt::Display for Equivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Equivalence::Match => f.write_str("schedules equivalent"),
            Equivalence::Mismatch { expected, actual } => write!(
                f,
                "schedule mismatch: expected memory {expected:#x}, got {actual:#x}"
            ),
        }
    }
}

/// Replays `schedule` (TB keys with start times) functionally and compares
/// against serialized execution of `app`.
///
/// The replay executes thread blocks atomically in ascending start order
/// (ties broken by schedule position) — a legal linearization of the
/// simulated overlap. If the dependency tracking let a consumer start
/// before a producer it reads from finished, the images diverge.
///
/// # Errors
///
/// Propagates functional-execution errors ([`ExecError`]).
pub fn check_schedule(
    app: &Application,
    schedule: &[(TbKey, u64, u64)],
) -> Result<Equivalence, ExecError> {
    let launches: Vec<&Launch> = app.launches();
    // Reference: serialized kernel order.
    let reference = app.run_serialized()?;
    // Replay in start order.
    let mut order: Vec<(usize, TbKey, u64)> = schedule
        .iter()
        .enumerate()
        .map(|(i, &(k, s, _))| (i, k, s))
        .collect();
    order.sort_by_key(|&(i, _, s)| (s, i));
    let mut mem = app.initial_memory();
    let mut executed = 0u64;
    for (_, key, _) in order {
        let launch = launches
            .get(key.kernel_seq as usize)
            .unwrap_or_else(|| panic!("schedule references unknown kernel {}", key.kernel_seq));
        execute_block(launch, key.tb, &mut mem, &mut NullObserver)?;
        executed += 1;
    }
    let total_tbs: u64 = launches.iter().map(|l| l.num_blocks() as u64).sum();
    assert_eq!(
        executed, total_tbs,
        "schedule must cover every thread block exactly once"
    );
    Ok(compare(&reference, &mem))
}

/// A data race between two time-overlapping thread blocks of different
/// kernels: at least one writes a byte the other touches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The earlier-starting thread block.
    pub first: TbKey,
    /// The overlapping thread block.
    pub second: TbKey,
}

/// Detects inter-kernel data races in a schedule: for every pair of
/// thread blocks from *different kernels* whose execution intervals
/// overlap, their functionally-observed access sets must not conflict
/// (write∩write or read∩write).
///
/// This is strictly stronger than [`check_schedule`]: a linearized replay
/// can mask a race when the conflicting blocks happen to replay in the
/// benign order, whereas overlap + conflict is flagged here regardless.
/// Intra-kernel pairs are exempt — SIMT semantics make thread blocks of
/// one grid the programmer's concurrency responsibility.
///
/// # Errors
///
/// Propagates functional-execution errors.
pub fn check_no_races(
    app: &Application,
    schedule: &[(TbKey, u64, u64)],
) -> Result<Vec<Race>, ExecError> {
    use bm_ptx::access::RangeSet;
    use bm_ptx::interp::{ExecObserver, ThreadId};
    use bm_ptx::isa::Op;

    #[derive(Default)]
    struct Sets {
        reads: RangeSet,
        writes: RangeSet,
    }
    struct Collect<'a>(&'a mut Sets);
    impl ExecObserver for Collect<'_> {
        fn on_inst(&mut self, _t: ThreadId, _i: usize, _op: &Op) {}
        fn on_global_access(&mut self, _t: ThreadId, _i: usize, addr: u64, store: bool) {
            if store {
                self.0.writes.insert(addr, addr + 4);
            } else {
                self.0.reads.insert(addr, addr + 4);
            }
        }
    }

    let launches: Vec<&Launch> = app.launches();
    // Collect actual access sets by replaying in start order (any order
    // yields the same *addresses* for data-independent control flow).
    let mut order: Vec<(TbKey, u64, u64)> = schedule.to_vec();
    order.sort_by_key(|&(_, s, _)| s);
    let mut mem = app.initial_memory();
    let mut sets: Vec<(TbKey, u64, u64, Sets)> = Vec::with_capacity(order.len());
    for (key, start, finish) in order {
        let mut s = Sets::default();
        execute_block(
            launches[key.kernel_seq as usize],
            key.tb,
            &mut mem,
            &mut Collect(&mut s),
        )?;
        sets.push((key, start, finish, s));
    }
    // Sweep by start time; compare each block against the active set.
    let mut races = Vec::new();
    let mut active: Vec<usize> = Vec::new();
    for i in 0..sets.len() {
        let (key, start, _, ref s) = sets[i];
        active.retain(|&j| sets[j].2 > start);
        for &j in &active {
            let (okey, _, _, ref o) = sets[j];
            if okey.kernel_seq == key.kernel_seq {
                continue;
            }
            let conflict = s.writes.intersects(&o.writes)
                || s.writes.intersects(&o.reads)
                || s.reads.intersects(&o.writes);
            if conflict {
                races.push(Race {
                    first: okey,
                    second: key,
                });
            }
        }
        active.push(i);
    }
    Ok(races)
}

fn compare(expected: &GlobalMem, actual: &GlobalMem) -> Equivalence {
    let e = expected.fingerprint();
    let a = actual.fingerprint();
    if e == a {
        Equivalence::Match
    } else {
        Equivalence::Mismatch {
            expected: e,
            actual: a,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_cmdq::ApiCall;
    use bm_ptx::kernel::{ArgValue, Dim3};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// K1: B[i] = A[i] + 1; K2: C[i] = B[i] * 2 — a RAW chain.
    fn chain_app() -> Application {
        let mut space = AddressSpace::new();
        let n = 128u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let src = |op: &str| {
            format!(
                r#".entry k(.param .u64 X, .param .u64 Y) {{
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     {op}
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f2;
                     ret;
                   }}"#
            )
        };
        let k1 = Arc::new(parse_kernel(&src("add.f32 %f2, %f1, 0f3F800000;")).unwrap());
        let k2 = Arc::new(parse_kernel(&src("mul.f32 %f2, %f1, 0f40000000;")).unwrap());
        let mut host_data = HashMap::new();
        host_data.insert(a.id, (0..n).map(|i| i as f32).collect::<Vec<_>>());
        Application {
            name: "chain".into(),
            space,
            calls: vec![
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 4 * n,
                },
                ApiCall::KernelLaunch(Launch::new(
                    k1,
                    Dim3::x(2),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
                )),
                ApiCall::KernelLaunch(Launch::new(
                    k2,
                    Dim3::x(2),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(b.base), ArgValue::Ptr(c.base)],
                )),
            ],
            host_data,
        }
    }

    fn key(k: u32, tb: u32) -> TbKey {
        TbKey { kernel_seq: k, tb }
    }

    #[test]
    fn race_detector_flags_overlapping_conflicts() {
        let app = chain_app();
        // K1:0 writes B[0..64); K2:0 reads the same region; they overlap
        // in time -> race.
        let schedule = vec![
            (key(0, 0), 0, 100),
            (key(1, 0), 50, 150), // overlaps K1:0 and reads its output
            (key(0, 1), 0, 100),
            (key(1, 1), 120, 200),
        ];
        let races = check_no_races(&app, &schedule).unwrap();
        assert!(races
            .iter()
            .any(|r| r.first == key(0, 0) && r.second == key(1, 0)));
        // A properly-ordered schedule is race-free.
        let clean = vec![
            (key(0, 0), 0, 100),
            (key(0, 1), 0, 100),
            (key(1, 0), 100, 200),
            (key(1, 1), 100, 200),
        ];
        assert!(check_no_races(&app, &clean).unwrap().is_empty());
    }

    #[test]
    fn valid_interleaving_matches() {
        let app = chain_app();
        // K2:0 runs as soon as K1:0 finished — a legal fine-grain overlap.
        let schedule = vec![
            (key(0, 0), 0, 10),
            (key(0, 1), 5, 15),
            (key(1, 0), 12, 20),
            (key(1, 1), 16, 25),
        ];
        let r = check_schedule(&app, &schedule).unwrap();
        assert!(r.is_match(), "{r}");
    }

    #[test]
    fn dependency_violation_detected() {
        let app = chain_app();
        // K2:0 starts before K1:0 — reads stale B.
        let schedule = vec![
            (key(1, 0), 0, 10),
            (key(0, 0), 5, 15),
            (key(0, 1), 5, 15),
            (key(1, 1), 20, 25),
        ];
        let r = check_schedule(&app, &schedule).unwrap();
        assert!(!r.is_match());
    }

    #[test]
    #[should_panic(expected = "every thread block")]
    fn incomplete_schedule_panics() {
        let app = chain_app();
        let schedule = vec![(key(0, 0), 0, 10)];
        let _ = check_schedule(&app, &schedule);
    }
}
