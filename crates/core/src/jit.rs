//! Kernel-launch-time ("just-in-time") analysis pipeline.
//!
//! For every kernel launch in an application this module produces what the
//! hardware needs (paper Fig. 3): per-TB read/write sets via value-range
//! analysis, the bipartite dependency graph against the previous kernel,
//! its pattern encoding and storage cost, and — from the timing substrate —
//! a per-TB duration and memory-transaction count.

use bm_cmdq::{ApiCall, Application};
use bm_depgraph::{
    build_graph_bounded_par, storage, BipartiteGraph, GraphStorage, HazardMode, Pattern,
};
use bm_ptx::absint::{try_analyze_launch_fueled_par, try_analyze_launch_grouped};
use bm_ptx::access::{KernelAccess, TbAccess};
use bm_ptx::error::PtxError;
use bm_ptx::interp::{ExecError, MAX_STEPS_PER_THREAD};
use bm_ptx::kernel::Launch;
use bm_ptx::mem::GlobalMem;
use bm_ptx::par::{chunk_ranges, ParallelConfig};
use bm_ptx::trace::{trace_block_law, trace_block_limited, TbTrace, TraceLawStats};
use bm_simt::config::GpuConfig;
use bm_simt::timing::simulate_sm;

use crate::degrade::{
    key_of, trace_key_of, AnalysisBudget, AnalysisCache, CacheKey, CachedAnalysis, CachedGraph,
    Degradation, DegradationReason, DegradationRung, GraphKey,
};
use crate::hw::MAX_COUNTER;
use bm_trace::{AnalysisPhase, NullTracer, TraceEvent, Tracer};
use std::collections::{HashMap, HashSet};

/// Timing and resource profile of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchProfile {
    /// Number of thread blocks.
    pub n_tbs: u32,
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block in bytes.
    pub shared_bytes: u32,
    /// Per-TB execution duration in cycles (at the kernel's occupancy).
    pub duration: u64,
    /// Coalesced global-memory transactions per TB.
    pub txns_per_tb: u64,
}

/// Everything BlockMaestro's scheduler knows about one launched kernel.
#[derive(Debug, Clone)]
pub struct JitKernel {
    /// Position in the application's kernel sequence.
    pub seq: u32,
    /// Kernel name (for reports).
    pub name: String,
    /// Timing/resource profile.
    pub profile: LaunchProfile,
    /// Access sets from value-range analysis.
    pub access: KernelAccess,
    /// Dependency graph against the *previous* kernel (kernel 0 gets an
    /// empty independent graph).
    pub graph: BipartiteGraph,
    /// Storage accounting for `graph`.
    pub storage: GraphStorage,
    /// Whether the graph is pattern-encoded (child ids derivable without
    /// fetching explicit lists).
    pub encoded: bool,
    /// Earlier, non-consecutive kernels this kernel has a kernel-level RAW
    /// dependency on. The paper's consecutive-pair tracking plus in-order
    /// completion covers chains; these gates cover skip-level dependencies
    /// (e.g. 3MM's K3 reading K1's output while K2 is unrelated) so that
    /// windows larger than 2 remain correct.
    pub skip_gates: Vec<u32>,
    /// Where on the graceful-degradation ladder this kernel's analysis
    /// landed (precise / coarse / barrier / prelaunch-off) and why.
    pub degradation: Degradation,
    /// Whether the access/profile analysis was served from the bounded
    /// analysis cache instead of being recomputed.
    pub cache_hit: bool,
}

/// Analysis-phase result for one launch: everything derivable from the
/// launch alone (the graph additionally depends on the predecessor).
struct Analyzed {
    access: KernelAccess,
    profile: LaunchProfile,
    degradation: Degradation,
    cache_hit: bool,
}

/// Trace-phase counters from one analysis run under the memoized fast
/// path. Reported separately from [`crate::degrade::CacheStats`], which
/// must stay bit-identical across parallel configurations.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceMemoStats {
    /// Representative-TB traces functionally interpreted (anchors,
    /// confirmations, validation samples, and rejected keys).
    pub traces_interpreted: u64,
    /// Traces synthesized from a validated anchor instead of interpreted.
    pub traces_synthesized: u64,
    /// Trace-memo keys pinned to interpretation by a mismatch or failure.
    pub keys_rejected: u64,
    /// Aggregated lane-law counters across every interpreted trace.
    pub law: TraceLawStats,
}

/// Cross-launch trace-memoization state for one analysis run.
///
/// Keyed by [`trace_key_of`] — the launch signature with pointer argument
/// *values* collapsed to their positions — so repeated launches of one
/// kernel over different buffers share an entry. Per key the automaton
/// interprets the first occurrence (the anchor) and the next two as
/// confirmations; two consecutive bit-equal traces accept the law, after
/// which traces are synthesized by cloning the anchor, re-interpreting
/// and re-comparing at every power-of-two occurrence. Any mismatch or
/// trace failure pins the key to interpretation for the rest of the run.
///
/// Residual gap (same class the parallel workers already accept): a trace
/// that depends on buffer *contents* between validated occurrences is
/// served from the anchor without being re-checked. Content can only
/// reach a trace through loaded values steering control flow, which the
/// confirmation and sampling interpretations are designed to catch.
#[derive(Debug, Default)]
pub struct TraceMemo {
    entries: HashMap<CacheKey, MemoEntry>,
    stats: TraceMemoStats,
}

#[derive(Debug)]
struct MemoEntry {
    /// Trace-phase occurrences of this key observed so far (cache hits
    /// never reach the trace phase and are not counted).
    occurrences: u64,
    state: MemoState,
}

#[derive(Debug)]
enum MemoState {
    /// Anchor captured; awaiting two consecutive bit-equal confirmations.
    Candidate {
        trace: TbTrace,
        profile: LaunchProfile,
        confirmed: u32,
    },
    /// Law accepted: synthesize, re-validating at power-of-two occurrences.
    Accepted {
        trace: TbTrace,
        profile: LaunchProfile,
    },
    /// A mismatch or trace failure: interpret this key forever.
    Rejected,
}

impl TraceMemo {
    /// Fresh memo with zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> TraceMemoStats {
        self.stats
    }

    /// Whether the next occurrence of `key` must actually interpret its
    /// representative-TB trace (anchor, confirmation, validation sample,
    /// or rejected key) instead of synthesizing it from the stored anchor.
    fn should_interpret(&self, key: &CacheKey) -> bool {
        match self.entries.get(key) {
            None => true,
            Some(e) => match &e.state {
                MemoState::Rejected | MemoState::Candidate { .. } => true,
                MemoState::Accepted { .. } => e.occurrences.is_power_of_two(),
            },
        }
    }

    /// Feeds one interpreted trace (and the profile derived from it) into
    /// the automaton.
    fn observe(&mut self, key: &CacheKey, trace: TbTrace, profile: LaunchProfile) {
        self.stats.traces_interpreted += 1;
        match self.entries.get_mut(key) {
            None => {
                self.entries.insert(
                    key.clone(),
                    MemoEntry {
                        occurrences: 1,
                        state: MemoState::Candidate {
                            trace,
                            profile,
                            confirmed: 0,
                        },
                    },
                );
            }
            Some(e) => {
                e.occurrences += 1;
                e.state = match std::mem::replace(&mut e.state, MemoState::Rejected) {
                    MemoState::Candidate {
                        trace: anchor,
                        profile: ap,
                        confirmed,
                    } => {
                        if trace == anchor {
                            if confirmed + 1 >= 2 {
                                MemoState::Accepted {
                                    trace: anchor,
                                    profile: ap,
                                }
                            } else {
                                MemoState::Candidate {
                                    trace: anchor,
                                    profile: ap,
                                    confirmed: confirmed + 1,
                                }
                            }
                        } else {
                            self.stats.keys_rejected += 1;
                            MemoState::Rejected
                        }
                    }
                    MemoState::Accepted {
                        trace: anchor,
                        profile: ap,
                    } => {
                        if trace == anchor {
                            MemoState::Accepted {
                                trace: anchor,
                                profile: ap,
                            }
                        } else {
                            self.stats.keys_rejected += 1;
                            MemoState::Rejected
                        }
                    }
                    MemoState::Rejected => MemoState::Rejected,
                };
            }
        }
    }

    /// Pins `key` to interpretation after a trace failure.
    fn reject(&mut self, key: &CacheKey) {
        match self.entries.get_mut(key) {
            None => {
                self.stats.keys_rejected += 1;
                self.entries.insert(
                    key.clone(),
                    MemoEntry {
                        occurrences: 1,
                        state: MemoState::Rejected,
                    },
                );
            }
            Some(e) => {
                e.occurrences += 1;
                if !matches!(e.state, MemoState::Rejected) {
                    self.stats.keys_rejected += 1;
                    e.state = MemoState::Rejected;
                }
            }
        }
    }

    /// Serves the stored anchor profile for an accepted key.
    fn synthesize(&mut self, key: &CacheKey) -> LaunchProfile {
        self.stats.traces_synthesized += 1;
        let e = self
            .entries
            .get_mut(key)
            .expect("synthesize without anchor");
        e.occurrences += 1;
        match &e.state {
            MemoState::Accepted { profile, .. } => profile.clone(),
            _ => unreachable!("synthesize on a non-accepted trace-memo key"),
        }
    }
}

/// The trace action the phase-1 plan predicts for occurrence `n` of a
/// trace-memo key, optimistically assuming the law is accepted: the
/// anchor and both confirmations interpret, then every power-of-two
/// occurrence re-validates. Mirrors [`TraceMemo::should_interpret`];
/// runtime rejections only ever interpret *more*, and the replay repairs
/// those inline.
fn plan_interprets(n: u64) -> bool {
    n < 3 || n.is_power_of_two()
}

/// Scratch functional memory built on first use, so warm runs — every
/// launch served from the analysis cache — never pay for the host-data
/// copy-in.
struct LazyScratch<'a> {
    app: &'a Application,
    mem: Option<GlobalMem>,
}

impl<'a> LazyScratch<'a> {
    fn new(app: &'a Application) -> Self {
        LazyScratch { app, mem: None }
    }

    fn get(&mut self) -> &mut GlobalMem {
        if self.mem.is_none() {
            self.mem = Some(scratch_memory(self.app));
        }
        self.mem.as_mut().expect("just built")
    }
}

/// Analyzes every kernel of `app` in launch order.
///
/// This is the work the paper performs during PTX→SASS just-in-time
/// compilation, masked by kernel pre-launching; here it runs up front,
/// producing the inputs for the execution engine. Runs under the default
/// [`AnalysisBudget`] with a fresh cache; never panics — launches the
/// analysis cannot handle degrade down the ladder instead.
pub fn jit_analyze_app(cfg: &GpuConfig, app: &Application, hazard: HazardMode) -> Vec<JitKernel> {
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    jit_analyze_app_budgeted(cfg, app, hazard, &budget, &mut cache)
}

/// [`jit_analyze_app`] under an explicit [`AnalysisBudget`] and a caller-
/// owned [`AnalysisCache`] (so the cache can persist across applications).
///
/// Total: a structurally invalid launch is carried as an opaque
/// [`DegradationRung::PrelaunchOff`] barrier kernel rather than an error,
/// so one bad launch cannot take down the whole application.
pub fn jit_analyze_app_budgeted(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
) -> Vec<JitKernel> {
    jit_analyze_app_par(
        cfg,
        app,
        hazard,
        budget,
        cache,
        &ParallelConfig::reference(),
    )
}

/// [`jit_analyze_app_budgeted`] under an explicit [`ParallelConfig`].
///
/// With more than one thread, the per-launch analysis phase fans out
/// across workers: the cache is probed up front (without mutating it),
/// distinct uncached launches are analyzed concurrently on private scratch
/// memories, and a sequential replay then applies the exact serial cache
/// protocol — same lookup/insert order, same LRU evolution, same stats —
/// so the resulting kernels and cache state are identical to the
/// one-thread run. `ParallelConfig::reference()` is the pre-parallel
/// pipeline bit for bit.
pub fn jit_analyze_app_par(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
) -> Vec<JitKernel> {
    jit_analyze_app_par_stats(cfg, app, hazard, budget, cache, par).0
}

/// [`jit_analyze_app_par`] that also reports the run's [`TraceMemoStats`]
/// — how much of the trace phase was synthesized from the representative-
/// TB trace law rather than interpreted. The counters live outside
/// [`crate::degrade::CacheStats`] so cache accounting stays bit-identical
/// across parallel configurations.
pub fn jit_analyze_app_par_stats(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
) -> (Vec<JitKernel>, TraceMemoStats) {
    let mut memo = TraceMemo::new();
    let launches: Vec<&Launch> = app.launches();
    let analyzed = analyze_all(cfg, app, &launches, budget, cache, par, &mut memo);
    let mut out: Vec<JitKernel> = Vec::with_capacity(launches.len());
    let mut prev: Option<&Launch> = None;
    for ((seq, launch), result) in launches.iter().enumerate().zip(analyzed) {
        let analyzed = result.unwrap_or_else(|_| invalid_launch_stub(launch));
        push_kernel(
            &mut out,
            seq as u32,
            prev,
            launch,
            analyzed,
            hazard,
            budget,
            cache,
            par,
            &NullTracer,
            &mut 0,
        );
        prev = Some(launch);
    }
    (out, memo.stats())
}

/// [`jit_analyze_app_budgeted`] with a trace sink.
///
/// Emits, on a deterministic virtual *tick* clock (1 tick per unit of
/// analysis fuel consumed; analysis runs before simulated time exists):
/// an [`TraceEvent::AnalysisSpan`] per ladder phase actually run, a
/// [`TraceEvent::CacheProbe`] per analysis- and graph-cache probe, an
/// [`TraceEvent::AffineFastPath`] verdict per fresh precise analysis, and
/// a [`TraceEvent::RungTransition`] whenever a kernel moves down the
/// ladder. Always runs the serial reference pipeline (a shared sink
/// cannot cross worker threads) — which is bit-identical to the parallel
/// one by the replay protocol, so traced and untraced analyses agree
/// exactly.
pub fn jit_analyze_app_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    tracer: &T,
) -> Vec<JitKernel> {
    let launches: Vec<&Launch> = app.launches();
    let par = ParallelConfig::reference();
    let mut scratch = LazyScratch::new(app);
    let mut memo = TraceMemo::new();
    let mut clock = 0u64;
    let analyzed: Vec<Result<Analyzed, PtxError>> = launches
        .iter()
        .enumerate()
        .map(|(seq, launch)| {
            analyze_launch_ladder(
                cfg,
                launch,
                &mut scratch,
                budget,
                cache,
                &par,
                tracer,
                &mut clock,
                seq as u32,
                &mut memo,
            )
        })
        .collect();
    let mut out: Vec<JitKernel> = Vec::with_capacity(launches.len());
    let mut prev: Option<&Launch> = None;
    for ((seq, launch), result) in launches.iter().enumerate().zip(analyzed) {
        let analyzed = result.unwrap_or_else(|_| invalid_launch_stub(launch));
        push_kernel(
            &mut out, seq as u32, prev, launch, analyzed, hazard, budget, cache, &par, tracer,
            &mut clock,
        );
        prev = Some(launch);
    }
    out
}

/// Fallible counterpart of [`jit_analyze_app_traced`]: same serial traced
/// pipeline, same tick clock and event stream, but the first structurally
/// invalid launch surfaces as an error instead of a barrier stub — matching
/// [`try_jit_analyze_app`] exactly.
///
/// # Errors
///
/// As [`try_jit_analyze_app`].
pub fn try_jit_analyze_app_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    tracer: &T,
) -> Result<Vec<JitKernel>, PtxError> {
    try_jit_analyze_app_par_traced(
        cfg,
        app,
        hazard,
        budget,
        cache,
        &ParallelConfig::reference(),
        tracer,
    )
}

/// [`try_jit_analyze_app_traced`] under an explicit [`ParallelConfig`]:
/// the serial traced ladder, but each launch's per-TB interpretation may
/// fan out per `par` (safe with a shared sink — absint workers never
/// trace) and `par.cancel` is honored at every analysis phase boundary.
///
/// # Errors
///
/// As [`try_jit_analyze_app`], plus [`PtxError::Cancelled`] when
/// `par.cancel` fires between phases.
pub fn try_jit_analyze_app_par_traced<T: Tracer>(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
    tracer: &T,
) -> Result<Vec<JitKernel>, PtxError> {
    let launches: Vec<&Launch> = app.launches();
    let mut scratch = LazyScratch::new(app);
    let mut memo = TraceMemo::new();
    let mut clock = 0u64;
    let analyzed: Vec<Result<Analyzed, PtxError>> = launches
        .iter()
        .enumerate()
        .map(|(seq, launch)| {
            analyze_launch_ladder(
                cfg,
                launch,
                &mut scratch,
                budget,
                cache,
                par,
                tracer,
                &mut clock,
                seq as u32,
                &mut memo,
            )
        })
        .collect();
    let mut out: Vec<JitKernel> = Vec::with_capacity(launches.len());
    let mut prev: Option<&Launch> = None;
    for ((seq, launch), result) in launches.iter().enumerate().zip(analyzed) {
        push_kernel(
            &mut out, seq as u32, prev, launch, result?, hazard, budget, cache, par, tracer,
            &mut clock,
        );
        prev = Some(launch);
    }
    Ok(out)
}

/// Fallible counterpart of [`jit_analyze_app`].
///
/// # Errors
///
/// [`PtxError`] when a launch is structurally invalid (bad argument
/// binding). Analysis and tracing problems no longer error: they degrade
/// down the ladder and are reported per kernel via
/// [`JitKernel::degradation`].
pub fn try_jit_analyze_app(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
) -> Result<Vec<JitKernel>, PtxError> {
    let budget = AnalysisBudget::default();
    let mut cache = AnalysisCache::for_budget(&budget);
    try_jit_analyze_app_budgeted(cfg, app, hazard, &budget, &mut cache)
}

/// [`try_jit_analyze_app`] under an explicit [`AnalysisBudget`] and a
/// caller-owned [`AnalysisCache`].
///
/// # Errors
///
/// As [`try_jit_analyze_app`].
pub fn try_jit_analyze_app_budgeted(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
) -> Result<Vec<JitKernel>, PtxError> {
    try_jit_analyze_app_par(
        cfg,
        app,
        hazard,
        budget,
        cache,
        &ParallelConfig::reference(),
    )
}

/// Fallible counterpart of [`jit_analyze_app_par`].
///
/// # Errors
///
/// As [`try_jit_analyze_app`]: the first structurally invalid launch in
/// launch order.
pub fn try_jit_analyze_app_par(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
) -> Result<Vec<JitKernel>, PtxError> {
    let mut memo = TraceMemo::new();
    let launches: Vec<&Launch> = app.launches();
    let analyzed = analyze_all(cfg, app, &launches, budget, cache, par, &mut memo);
    let mut out: Vec<JitKernel> = Vec::with_capacity(launches.len());
    let mut prev: Option<&Launch> = None;
    for ((seq, launch), result) in launches.iter().enumerate().zip(analyzed) {
        push_kernel(
            &mut out,
            seq as u32,
            prev,
            launch,
            result?,
            hazard,
            budget,
            cache,
            par,
            &NullTracer,
            &mut 0,
        );
        prev = Some(launch);
    }
    Ok(out)
}

/// Analysis phase for a whole launch sequence, in launch order.
///
/// One thread: the sequential per-launch ladder on one evolving scratch
/// memory. More threads: probe → parallel analyze → sequential replay (see
/// [`jit_analyze_app_par`]). Workers trace on private clones of the
/// initial scratch; control flow in this IR cannot depend on float data,
/// so the traces — and every scheduling decision — match the evolving-
/// scratch run (the same argument that already lets cache hits skip trace
/// side effects).
fn analyze_all(
    cfg: &GpuConfig,
    app: &Application,
    launches: &[&Launch],
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
    memo: &mut TraceMemo,
) -> Vec<Result<Analyzed, PtxError>> {
    let keys: Vec<_> = launches.iter().map(|l| key_of(l)).collect();
    // The exact miss sequence the sequential replay will observe —
    // evictions included — without touching stats or LRU state.
    let plan = cache.plan_misses(&keys);
    let mut scratch = LazyScratch::new(app);
    // Warm short-circuit: every launch is a cache hit. Replay the lookups
    // directly — no scratch memory, no worker pool.
    if !plan.iter().any(|&m| m) {
        return launches
            .iter()
            .map(|launch| {
                let hit = cache.lookup(launch).expect("warm plan promised a hit");
                Ok(Analyzed {
                    access: hit.access,
                    profile: hit.profile,
                    degradation: hit.degradation,
                    cache_hit: true,
                })
            })
            .collect();
    }
    // Adaptive admission: fan out only when the missing launches carry
    // enough interpretation work (TBs x body length) to pay for worker
    // setup and scratch clones.
    let n_miss = plan.iter().filter(|&&m| m).count();
    let miss_work: u64 = launches
        .iter()
        .zip(&plan)
        .filter(|&(_, &m)| m)
        .map(|(l, _)| u64::from(l.num_blocks()).saturating_mul(l.kernel.body.len() as u64))
        .sum();
    let threads = if par.serial_work_threshold > 0 && miss_work < par.serial_work_threshold {
        1
    } else {
        par.effective_threads(n_miss)
    };
    if threads <= 1 {
        return launches
            .iter()
            .enumerate()
            .map(|(seq, launch)| {
                analyze_launch_ladder(
                    cfg,
                    launch,
                    &mut scratch,
                    budget,
                    cache,
                    par,
                    &NullTracer,
                    &mut 0,
                    seq as u32,
                    memo,
                )
            })
            .collect();
    }
    // Phase 1 — from the planned miss sequence, assign per-trace-key
    // occurrence indices exactly as the serial memo automaton would see
    // them, and send the first miss of every distinct key to a worker
    // together with its planned trace action (interpret vs synthesize,
    // optimistically assuming law acceptance — runtime rejections only
    // ever interpret *more*, and the replay repairs those inline).
    let mut trace_occ: HashMap<CacheKey, u64> = HashMap::new();
    let mut seen: HashSet<&CacheKey> = HashSet::new();
    let mut missing: Vec<(usize, bool)> = Vec::new();
    for (i, (key, &miss)) in keys.iter().zip(&plan).enumerate() {
        if !miss {
            continue;
        }
        let interpret = if par.trace_memo {
            let occ = trace_occ.entry(trace_key_of(launches[i])).or_insert(0);
            let n = *occ;
            *occ += 1;
            plan_interprets(n)
        } else {
            true
        };
        if seen.insert(key) {
            missing.push((i, interpret));
        }
    }
    // Phase 2 — analyze the distinct misses concurrently. Each worker owns
    // a copy-on-write clone of the initial scratch memory. A panicking
    // analysis is contained to its launch: the worker catches it, the
    // launch degrades to an opaque barrier
    // ([`DegradationReason::AnalysisPanicked`]), and every other launch
    // proceeds normally.
    let base_scratch = scratch_memory(app);
    let chunks = chunk_ranges(missing.len(), threads.min(missing.len().max(1)));
    let missing_ref = &missing;
    let scratch_ref = &base_scratch;
    #[allow(clippy::type_complexity)]
    let mut computed: Vec<
        Vec<(
            usize,
            Option<Result<(CachedAnalysis, WorkerTrace), PtxError>>,
        )>,
    > = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|r| {
                scope.spawn(move || {
                    let mut local_scratch = scratch_ref.clone();
                    r.map(|j| {
                        let (i, interpret) = missing_ref[j];
                        let outcome =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                compute_analysis_planned(
                                    cfg,
                                    launches[i],
                                    &mut local_scratch,
                                    budget,
                                    par,
                                    interpret,
                                )
                            }));
                        let out = match outcome {
                            Ok(result) => Some(result),
                            Err(_) => {
                                // The panic may have unwound mid-write:
                                // rebuild the scratch before the next
                                // launch so later analyses stay exact.
                                local_scratch = scratch_ref.clone();
                                None
                            }
                        };
                        (i, out)
                    })
                    .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            computed.push(h.join().expect("jit analysis worker panicked"));
        }
    });
    let mut precomputed: HashMap<CacheKey, (CachedAnalysis, WorkerTrace)> = HashMap::new();
    let mut panicked: HashSet<CacheKey> = HashSet::new();
    for (i, result) in computed.into_iter().flatten() {
        match result {
            Some(Ok(pair)) => {
                precomputed.insert(keys[i].clone(), pair);
            }
            // Errors are not stored: the replay recomputes them inline,
            // which is cheap (validation fails before any analysis work).
            Some(Err(_)) => {}
            // Panics must NOT be recomputed inline — they would take down
            // the replay thread. Remember the key and stub it below.
            None => {
                panicked.insert(keys[i].clone());
            }
        }
    }
    // Phase 3 — sequential replay of the serial cache protocol. The run
    // memo is authoritative here: worker traces feed it in launch order,
    // planned syntheses take the anchor profile, and mispredictions are
    // interpreted inline.
    launches
        .iter()
        .zip(&keys)
        .map(|(launch, key)| {
            if let Some(hit) = cache.lookup(launch) {
                return Ok(Analyzed {
                    access: hit.access,
                    profile: hit.profile,
                    degradation: hit.degradation,
                    cache_hit: true,
                });
            }
            if panicked.contains(key) {
                let ca = panicked_stub(launch);
                cache.insert(launch, ca.clone());
                return Ok(Analyzed {
                    access: ca.access,
                    profile: ca.profile,
                    degradation: ca.degradation,
                    cache_hit: false,
                });
            }
            let ca = match precomputed.get(key) {
                Some((ca, wtrace)) => {
                    let mut ca = ca.clone();
                    if par.trace_memo {
                        memo_apply(
                            cfg,
                            launch,
                            &mut ca,
                            wtrace,
                            &mut scratch,
                            budget,
                            par,
                            memo,
                        );
                    }
                    ca
                }
                // A launch that failed validation in phase 2: recompute
                // inline, exactly as serial would.
                None => compute_analysis(
                    cfg,
                    launch,
                    &mut scratch,
                    budget,
                    par,
                    &NullTracer,
                    &mut 0,
                    0,
                    memo,
                )?,
            };
            cache.insert(launch, ca.clone());
            Ok(Analyzed {
                access: ca.access,
                profile: ca.profile,
                degradation: ca.degradation,
                cache_hit: false,
            })
        })
        .collect()
}

/// Replays one worker result through the authoritative run memo: feeds
/// interpreted traces to the automaton, substitutes the anchor profile
/// for planned syntheses, and repairs plan mispredictions (a key rejected
/// at runtime whose later occurrences the optimistic plan skipped) by
/// interpreting inline — output-identical to the serial run, merely
/// slower.
#[allow(clippy::too_many_arguments)]
fn memo_apply(
    cfg: &GpuConfig,
    launch: &Launch,
    ca: &mut CachedAnalysis,
    wtrace: &WorkerTrace,
    scratch: &mut LazyScratch,
    budget: &AnalysisBudget,
    par: &ParallelConfig,
    memo: &mut TraceMemo,
) {
    if matches!(wtrace, WorkerTrace::Legacy) || launch.num_blocks() == 0 {
        return;
    }
    let key = trace_key_of(launch);
    if memo.should_interpret(&key) {
        match wtrace {
            WorkerTrace::Interpreted(trace, law) => {
                memo.stats.law.merge(law);
                memo.observe(&key, trace.clone(), ca.profile.clone());
            }
            WorkerTrace::Failed => memo.reject(&key),
            WorkerTrace::Skipped => {
                match try_profile_launch_law(cfg, launch, scratch.get(), budget.trace_steps, par) {
                    Ok((profile, trace, law)) => {
                        memo.stats.law.merge(&law);
                        ca.profile = profile.clone();
                        memo.observe(&key, trace, profile);
                    }
                    Err(e) => {
                        let reason = match e {
                            PtxError::Exec(ExecError::StepLimit { .. }) => {
                                DegradationReason::TraceOverBudget
                            }
                            _ => DegradationReason::TraceFailed,
                        };
                        ca.degradation.worsen(DegradationRung::PrelaunchOff, reason);
                        ca.profile = fallback_profile(launch);
                        memo.reject(&key);
                    }
                }
            }
            WorkerTrace::Legacy => unreachable!("filtered above"),
        }
    } else {
        ca.profile = memo.synthesize(&key);
    }
}

/// Scratch functional memory for trace collection. Traces only shape
/// timing; our kernels' control flow does not depend on float data, so
/// executing on the evolving scratch state is fine. (For the same reason,
/// cache hits may skip a trace's scratch-memory side effects without
/// affecting any scheduling decision.)
pub fn scratch_memory(app: &Application) -> GlobalMem {
    let mut scratch = GlobalMem::for_space(&app.space);
    for call in &app.calls {
        if let ApiCall::MemcpyH2D { alloc, .. } = call {
            if let Some(data) = app.host_data.get(alloc) {
                scratch.copy_from_host_f32(app.space.info(*alloc).base, data);
            }
        }
    }
    scratch
}

/// Walks one launch down the graceful-degradation ladder:
/// precise fueled analysis → coarse grouped analysis → whole-kernel
/// barrier; representative trace → estimated profile with pre-launch
/// disabled. Results are served from / inserted into `cache`.
///
/// # Errors
///
/// [`PtxError`] only for structurally invalid launches.
#[allow(clippy::too_many_arguments)]
fn analyze_launch_ladder<T: Tracer>(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut LazyScratch,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
    tracer: &T,
    clock: &mut u64,
    seq: u32,
    memo: &mut TraceMemo,
) -> Result<Analyzed, PtxError> {
    if let Some(hit) = cache.lookup(launch) {
        if T::ENABLED {
            tracer.emit(TraceEvent::CacheProbe {
                tick: *clock,
                seq,
                graph: false,
                hit: true,
            });
        }
        return Ok(Analyzed {
            access: hit.access,
            profile: hit.profile,
            degradation: hit.degradation,
            cache_hit: true,
        });
    }
    if T::ENABLED {
        tracer.emit(TraceEvent::CacheProbe {
            tick: *clock,
            seq,
            graph: false,
            hit: false,
        });
    }
    let ca = compute_analysis(cfg, launch, scratch, budget, par, tracer, clock, seq, memo)?;
    cache.insert(launch, ca.clone());
    Ok(Analyzed {
        access: ca.access,
        profile: ca.profile,
        degradation: ca.degradation,
        cache_hit: false,
    })
}

/// [`Degradation::worsen`] plus a [`TraceEvent::RungTransition`] when the
/// rung actually changed.
fn worsen_traced<T: Tracer>(
    d: &mut Degradation,
    rung: DegradationRung,
    reason: DegradationReason,
    tracer: &T,
    tick: u64,
    seq: u32,
) {
    let before = d.rung;
    d.worsen(rung, reason);
    if T::ENABLED && d.rung != before {
        tracer.emit(TraceEvent::RungTransition {
            tick,
            seq,
            rung: d.rung.to_string(),
            reason: reason.to_string(),
        });
    }
}

/// The cache-free core of the ladder: per-TB analysis (possibly affine /
/// multi-threaded per `par`) with coarse and barrier fallbacks, plus the
/// representative-TB trace profile.
///
/// # Errors
///
/// [`PtxError`] only for structurally invalid launches.
#[allow(clippy::too_many_arguments)]
fn compute_analysis<T: Tracer>(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut LazyScratch,
    budget: &AnalysisBudget,
    par: &ParallelConfig,
    tracer: &T,
    clock: &mut u64,
    seq: u32,
    memo: &mut TraceMemo,
) -> Result<CachedAnalysis, PtxError> {
    let mut degradation = Degradation::none();
    let access = analyze_access(launch, budget, par, tracer, clock, seq, &mut degradation)?;
    // Phase boundary between access analysis and trace profiling.
    if let Some(cause) = par.cancel_fired() {
        return Err(PtxError::Cancelled(cause));
    }
    let trace_start = *clock;
    let attempt: Result<LaunchProfile, PtxError> = if launch.num_blocks() == 0 {
        Ok(unit_profile(launch))
    } else if par.trace_memo {
        let key = trace_key_of(launch);
        if memo.should_interpret(&key) {
            match try_profile_launch_law(cfg, launch, scratch.get(), budget.trace_steps, par) {
                Ok((profile, trace, law)) => {
                    memo.stats.law.merge(&law);
                    memo.observe(&key, trace, profile.clone());
                    Ok(profile)
                }
                Err(e) => {
                    memo.reject(&key);
                    Err(e)
                }
            }
        } else {
            Ok(memo.synthesize(&key))
        }
    } else {
        try_profile_launch_limited(cfg, launch, scratch.get(), budget.trace_steps)
    };
    let profile = match attempt {
        Ok(profile) => profile,
        Err(PtxError::Exec(ExecError::StepLimit { .. })) => {
            worsen_traced(
                &mut degradation,
                DegradationRung::PrelaunchOff,
                DegradationReason::TraceOverBudget,
                tracer,
                *clock,
                seq,
            );
            fallback_profile(launch)
        }
        Err(_) => {
            worsen_traced(
                &mut degradation,
                DegradationRung::PrelaunchOff,
                DegradationReason::TraceFailed,
                tracer,
                *clock,
                seq,
            );
            fallback_profile(launch)
        }
    };
    if T::ENABLED {
        // The interpreter does not expose step counts; the trace phase is
        // a unit-tick span on the analysis clock.
        *clock = trace_start + 1;
        tracer.emit(TraceEvent::AnalysisSpan {
            seq,
            name: launch.kernel.name.clone(),
            phase: AnalysisPhase::Trace,
            start_tick: trace_start,
            end_tick: *clock,
        });
        // Trace-phase parallel-admission verdict, mirroring the absint
        // one: whether the per-warp fan-out ran and at what width.
        let n_warps = launch.warps_per_block() as usize;
        let wt = par.trace_warp_threads(n_warps, launch.kernel.body.len());
        tracer.emit(TraceEvent::ParallelDecision {
            tick: *clock,
            seq,
            tbs: launch.num_blocks(),
            threads: wt as u32,
            fallback: wt == 1 && par.effective_threads(n_warps) > 1,
        });
    }
    Ok(CachedAnalysis {
        access,
        profile,
        degradation,
    })
}

/// Access-set phase of the degradation ladder: precise fueled analysis
/// with coarse and whole-kernel-barrier fallbacks, shared by the serial
/// ladder and the parallel workers.
///
/// # Errors
///
/// [`PtxError`] only for structurally invalid launches.
fn analyze_access<T: Tracer>(
    launch: &Launch,
    budget: &AnalysisBudget,
    par: &ParallelConfig,
    tracer: &T,
    clock: &mut u64,
    seq: u32,
    degradation: &mut Degradation,
) -> Result<KernelAccess, PtxError> {
    assert!(
        launch.kernel.name != PANIC_KERNEL_SENTINEL,
        "injected analysis panic (test seam)"
    );
    let mut fuel = budget.absint_fuel;
    let attempt = try_analyze_launch_fueled_par(launch, &mut fuel, par)?;
    if T::ENABLED {
        // One tick per unit of fuel consumed, minimum 1 per phase run.
        let start = *clock;
        *clock += (budget.absint_fuel - fuel).max(1);
        tracer.emit(TraceEvent::AnalysisSpan {
            seq,
            name: launch.kernel.name.clone(),
            phase: AnalysisPhase::Absint,
            start_tick: start,
            end_tick: *clock,
        });
        if let Some((_, stats)) = &attempt {
            tracer.emit(TraceEvent::AffineFastPath {
                tick: *clock,
                seq,
                attempted: stats.affine_attempted,
                accepted: stats.affine_accepted,
                interpreted: stats.tbs_interpreted,
                synthesized: stats.tbs_synthesized,
            });
            tracer.emit(TraceEvent::ParallelDecision {
                tick: *clock,
                seq,
                tbs: launch.num_blocks(),
                threads: stats.threads_used,
                fallback: stats.serial_fallback,
            });
        }
    }
    let access = match attempt {
        Some((access, _stats)) => access,
        None => {
            worsen_traced(
                degradation,
                DegradationRung::Coarse,
                DegradationReason::AnalysisOverBudget,
                tracer,
                *clock,
                seq,
            );
            // Phase boundary: a deadline landing mid-ladder abandons the
            // launch here instead of paying for the coarse retry.
            if let Some(cause) = par.cancel_fired() {
                return Err(PtxError::Cancelled(cause));
            }
            let mut coarse_fuel = budget.coarse_fuel;
            let coarse =
                try_analyze_launch_grouped(launch, budget.coarse_groups, &mut coarse_fuel)?;
            if T::ENABLED {
                let start = *clock;
                *clock += (budget.coarse_fuel - coarse_fuel).max(1);
                tracer.emit(TraceEvent::AnalysisSpan {
                    seq,
                    name: launch.kernel.name.clone(),
                    phase: AnalysisPhase::Coarse,
                    start_tick: start,
                    end_tick: *clock,
                });
            }
            match coarse {
                Some(access) => access,
                None => {
                    worsen_traced(
                        degradation,
                        DegradationRung::Barrier,
                        DegradationReason::CoarseOverBudget,
                        tracer,
                        *clock,
                        seq,
                    );
                    barrier_access(launch.num_blocks())
                }
            }
        }
    };
    if access.non_static {
        worsen_traced(
            degradation,
            DegradationRung::Barrier,
            DegradationReason::NonStatic,
            tracer,
            *clock,
            seq,
        );
    }
    Ok(access)
}

/// What a parallel analysis worker did about one launch's trace phase.
enum WorkerTrace {
    /// Trace interpreted through the lane law; the replay feeds it into
    /// the run's trace memo.
    Interpreted(TbTrace, TraceLawStats),
    /// Trace attempted and failed: the degradation is already in the
    /// worker's result and the replay pins the memo key to
    /// interpretation.
    Failed,
    /// The plan said synthesize, so no trace ran and the profile is a
    /// placeholder — the replay substitutes the anchor profile (or
    /// interprets inline when the law was rejected at runtime).
    Skipped,
    /// Legacy (non-memoized) trace path; nothing for the replay to do.
    Legacy,
}

/// Worker-side [`compute_analysis`]: the same access phase, but the
/// trace phase follows the phase-1 plan (`interpret`) instead of the
/// run's memo automaton, which cannot cross worker threads.
fn compute_analysis_planned(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut GlobalMem,
    budget: &AnalysisBudget,
    par: &ParallelConfig,
    interpret: bool,
) -> Result<(CachedAnalysis, WorkerTrace), PtxError> {
    let mut degradation = Degradation::none();
    let access = analyze_access(
        launch,
        budget,
        par,
        &NullTracer,
        &mut 0,
        0,
        &mut degradation,
    )?;
    if let Some(cause) = par.cancel_fired() {
        return Err(PtxError::Cancelled(cause));
    }
    if launch.num_blocks() == 0 {
        return Ok((
            CachedAnalysis {
                access,
                profile: unit_profile(launch),
                degradation,
            },
            WorkerTrace::Legacy,
        ));
    }
    if !par.trace_memo {
        let profile = match try_profile_launch_limited(cfg, launch, scratch, budget.trace_steps) {
            Ok(profile) => profile,
            Err(PtxError::Exec(ExecError::StepLimit { .. })) => {
                degradation.worsen(
                    DegradationRung::PrelaunchOff,
                    DegradationReason::TraceOverBudget,
                );
                fallback_profile(launch)
            }
            Err(_) => {
                degradation.worsen(
                    DegradationRung::PrelaunchOff,
                    DegradationReason::TraceFailed,
                );
                fallback_profile(launch)
            }
        };
        return Ok((
            CachedAnalysis {
                access,
                profile,
                degradation,
            },
            WorkerTrace::Legacy,
        ));
    }
    if !interpret {
        return Ok((
            CachedAnalysis {
                access,
                profile: fallback_profile(launch),
                degradation,
            },
            WorkerTrace::Skipped,
        ));
    }
    match try_profile_launch_law(cfg, launch, scratch, budget.trace_steps, par) {
        Ok((profile, trace, law)) => Ok((
            CachedAnalysis {
                access,
                profile,
                degradation,
            },
            WorkerTrace::Interpreted(trace, law),
        )),
        Err(e) => {
            let reason = match e {
                PtxError::Exec(ExecError::StepLimit { .. }) => DegradationReason::TraceOverBudget,
                _ => DegradationReason::TraceFailed,
            };
            degradation.worsen(DegradationRung::PrelaunchOff, reason);
            Ok((
                CachedAnalysis {
                    access,
                    profile: fallback_profile(launch),
                    degradation,
                },
                WorkerTrace::Failed,
            ))
        }
    }
}

/// Graph phase: builds the dependency graph against the predecessor under
/// the edge budget and the 6-bit counter limit, then appends the finished
/// [`JitKernel`]. Graphs are memoized per (parent launch, child launch,
/// hazard, edge budget) — the graph is a pure function of those — so
/// iterated kernel sequences skip construction entirely on repeats.
#[allow(clippy::too_many_arguments)]
fn push_kernel<T: Tracer>(
    out: &mut Vec<JitKernel>,
    seq: u32,
    prev_launch: Option<&Launch>,
    launch: &Launch,
    analyzed: Analyzed,
    hazard: HazardMode,
    budget: &AnalysisBudget,
    cache: &mut AnalysisCache,
    par: &ParallelConfig,
    tracer: &T,
    clock: &mut u64,
) {
    let Analyzed {
        access,
        profile,
        mut degradation,
        cache_hit,
    } = analyzed;
    let (graph, over, degree_over) = match (out.last(), prev_launch) {
        (Some(prev), Some(pl)) => {
            let gkey = GraphKey {
                parent: key_of(pl),
                child: key_of(launch),
                mode: hazard,
                max_edges: budget.max_graph_edges,
            };
            let looked_up = cache.lookup_graph(&gkey);
            if T::ENABLED {
                tracer.emit(TraceEvent::CacheProbe {
                    tick: *clock,
                    seq,
                    graph: true,
                    hit: looked_up.is_some(),
                });
            }
            match looked_up {
                Some(cg) => (cg.graph, cg.over_budget, cg.degree_overflow),
                None => {
                    let (mut g, over) = build_graph_bounded_par(
                        &prev.access,
                        &access,
                        hazard,
                        budget.max_graph_edges,
                        par,
                    );
                    // Hardware fallback: parent counters are 6-bit; degrees
                    // above 63 degrade to the fully-connected encoding
                    // (§IV-C).
                    let degree_over = !g.is_fully_connected() && g.max_child_degree() > MAX_COUNTER;
                    if degree_over {
                        g.degrade_to_fully_connected();
                    }
                    cache.insert_graph(
                        gkey,
                        CachedGraph {
                            graph: g.clone(),
                            over_budget: over,
                            degree_overflow: degree_over,
                        },
                    );
                    if T::ENABLED {
                        let start = *clock;
                        *clock += 1;
                        tracer.emit(TraceEvent::AnalysisSpan {
                            seq,
                            name: launch.kernel.name.clone(),
                            phase: AnalysisPhase::Graph,
                            start_tick: start,
                            end_tick: *clock,
                        });
                    }
                    (g, over, degree_over)
                }
            }
        }
        _ => (
            BipartiteGraph::independent(0, access.num_blocks() as u32),
            false,
            false,
        ),
    };
    if over {
        worsen_traced(
            &mut degradation,
            DegradationRung::Barrier,
            DegradationReason::GraphOverBudget,
            tracer,
            *clock,
            seq,
        );
    }
    if degree_over {
        worsen_traced(
            &mut degradation,
            DegradationRung::Barrier,
            DegradationReason::DegreeOverflow,
            tracer,
            *clock,
            seq,
        );
    }
    let st = storage(&graph);
    let encoded = !matches!(st.pattern, Pattern::Irregular);
    let skip_gates = find_skip_gates(out, &access, seq, hazard);
    out.push(JitKernel {
        seq,
        name: launch.kernel.name.clone(),
        profile,
        access,
        graph,
        storage: st,
        encoded,
        skip_gates,
        degradation,
        cache_hit,
    });
}

/// The conservative whole-kernel barrier access: no known ranges,
/// `non_static` set, so every graph against it is fully connected.
fn barrier_access(n_tbs: u32) -> KernelAccess {
    KernelAccess::from_per_tb(vec![TbAccess::default(); n_tbs as usize], true)
}

/// Deterministic pessimistic profile for kernels whose representative
/// trace failed or ran over budget. Such kernels sit on the
/// [`DegradationRung::PrelaunchOff`] rung, so the estimate shapes timing
/// only, never correctness.
fn fallback_profile(launch: &Launch) -> LaunchProfile {
    LaunchProfile {
        n_tbs: launch.num_blocks(),
        threads: launch.threads_per_block().max(1),
        shared_bytes: launch.kernel.shared_bytes,
        duration: (launch.kernel.body.len() as u64 + 1) * 8,
        txns_per_tb: 0,
    }
}

/// Test seam for the panic-containment path: a kernel with this name
/// panics inside [`compute_analysis`], simulating an analysis bug.
#[doc(hidden)]
pub const PANIC_KERNEL_SENTINEL: &str = "__bm_panic_in_analysis";

/// The ladder stand-in for a launch whose analysis worker panicked: the
/// same opaque barrier as an invalid launch, attributed to the panic.
fn panicked_stub(launch: &Launch) -> CachedAnalysis {
    CachedAnalysis {
        access: barrier_access(launch.num_blocks()),
        profile: fallback_profile(launch),
        degradation: Degradation {
            rung: DegradationRung::PrelaunchOff,
            reason: DegradationReason::AnalysisPanicked,
            at_cycle: 0,
        },
    }
}

/// The opaque-barrier stand-in for a structurally invalid launch.
fn invalid_launch_stub(launch: &Launch) -> Analyzed {
    Analyzed {
        access: barrier_access(launch.num_blocks()),
        profile: fallback_profile(launch),
        degradation: Degradation {
            rung: DegradationRung::PrelaunchOff,
            reason: DegradationReason::InvalidLaunch,
            at_cycle: 0,
        },
        cache_hit: false,
    }
}

/// Kernel-level hazard screen against non-consecutive predecessors
/// (RAW always; plus WAR/WAW when tracking all hazards).
fn find_skip_gates(
    done: &[JitKernel],
    access: &KernelAccess,
    seq: u32,
    hazard: HazardMode,
) -> Vec<u32> {
    let mut gates = Vec::new();
    if seq < 2 {
        return gates;
    }
    for j in done.iter().take(seq as usize - 1) {
        let mut dep = access.kernel_reads.intersects(&j.access.kernel_writes)
            || access.non_static
            || j.access.non_static;
        if hazard == HazardMode::All {
            dep = dep
                || access.kernel_writes.intersects(&j.access.kernel_reads)
                || access.kernel_writes.intersects(&j.access.kernel_writes);
        }
        if dep {
            gates.push(j.seq);
        }
    }
    gates
}

/// Profiles one launch: traces a representative TB and times it on one SM
/// at the kernel's occupancy. A launch that fails to trace degrades to the
/// deterministic fallback estimate instead of panicking (ladder semantics:
/// callers that need the reason use [`try_profile_launch`]).
pub fn profile_launch(cfg: &GpuConfig, launch: &Launch, scratch: &mut GlobalMem) -> LaunchProfile {
    try_profile_launch(cfg, launch, scratch).unwrap_or_else(|_| fallback_profile(launch))
}

/// Fallible counterpart of [`profile_launch`]. Zero-block grids are legal
/// degenerate launches: they execute nothing and get a unit-duration
/// profile so downstream arithmetic stays well-defined.
///
/// # Errors
///
/// [`PtxError::Exec`] when tracing the representative TB fails.
pub fn try_profile_launch(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut GlobalMem,
) -> Result<LaunchProfile, PtxError> {
    try_profile_launch_limited(cfg, launch, scratch, MAX_STEPS_PER_THREAD)
}

/// [`try_profile_launch`] under an explicit per-thread step budget — the
/// trace rung of the degradation ladder.
///
/// # Errors
///
/// As [`try_profile_launch`]; exceeding the budget surfaces as
/// [`PtxError::Exec`] with [`ExecError::StepLimit`].
pub fn try_profile_launch_limited(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut GlobalMem,
    max_steps: u64,
) -> Result<LaunchProfile, PtxError> {
    let n_tbs = launch.num_blocks();
    if n_tbs == 0 {
        return Ok(unit_profile(launch));
    }
    // Middle block: avoids boundary blocks whose guards mask most work.
    let rep = n_tbs / 2;
    let trace = trace_block_limited(launch, rep, scratch, max_steps).map_err(PtxError::Exec)?;
    Ok(profile_from_trace(cfg, launch, &trace))
}

/// [`try_profile_launch_limited`] through the warp lane-law fast path:
/// the representative TB is traced by interpreting only the law lanes of
/// each full warp and synthesizing the interior lanes when the per-warp
/// affine law validates (with an exact full-interpretation fallback per
/// warp otherwise), on private copy-on-write clones of `scratch` — which
/// is left untouched for admissible launches. Law-inadmissible launches
/// (barriers / shared memory) interpret directly on `scratch`, mutating
/// it exactly like the reference pipeline: cloning a large memory per
/// launch costs O(resident chunks) even when nothing is written. Returns
/// the trace itself so callers can feed cross-launch memoization.
///
/// # Errors
///
/// As [`try_profile_launch_limited`].
pub fn try_profile_launch_law(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut GlobalMem,
    max_steps: u64,
    par: &ParallelConfig,
) -> Result<(LaunchProfile, TbTrace, TraceLawStats), PtxError> {
    let n_tbs = launch.num_blocks();
    if n_tbs == 0 {
        return Ok((
            unit_profile(launch),
            TbTrace::default(),
            TraceLawStats::default(),
        ));
    }
    let rep = n_tbs / 2;
    let warp_threads =
        par.trace_warp_threads(launch.warps_per_block() as usize, launch.kernel.body.len());
    let (trace, law) =
        trace_block_law(launch, rep, scratch, max_steps, warp_threads).map_err(PtxError::Exec)?;
    Ok((profile_from_trace(cfg, launch, &trace), trace, law))
}

/// Times one representative-TB trace on one SM at the kernel's occupancy.
fn profile_from_trace(cfg: &GpuConfig, launch: &Launch, trace: &TbTrace) -> LaunchProfile {
    let n_tbs = launch.num_blocks();
    let threads = launch.threads_per_block();
    let shared_bytes = launch.kernel.shared_bytes;
    let occ = cfg
        .occupancy(threads, shared_bytes)
        .max(1)
        .min(n_tbs.max(1));
    let traces: Vec<&TbTrace> = (0..occ).map(|_| trace).collect();
    let timing = simulate_sm(cfg, &traces);
    LaunchProfile {
        n_tbs,
        threads,
        shared_bytes,
        duration: timing.per_tb_duration(),
        txns_per_tb: trace.global_transactions,
    }
}

/// The degenerate zero-block profile: executes nothing, unit duration so
/// downstream arithmetic stays well-defined.
fn unit_profile(launch: &Launch) -> LaunchProfile {
    LaunchProfile {
        n_tbs: 0,
        threads: launch.threads_per_block(),
        shared_bytes: launch.kernel.shared_bytes,
        duration: 1,
        txns_per_tb: 0,
    }
}

/// Recomputes every kernel's skip gates from the current access sets —
/// used by the soundness guard after quarantining marks kernels
/// `non_static`, which widens their gate requirements.
pub(crate) fn recompute_skip_gates(jit: &mut [JitKernel], hazard: HazardMode) {
    let gates: Vec<Vec<u32>> = (0..jit.len())
        .map(|seq| find_skip_gates(&jit[..seq], &jit[seq].access, seq as u32, hazard))
        .collect();
    for (k, g) in gates.into_iter().enumerate() {
        jit[k].skip_gates = g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{ArgValue, Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Three-kernel pipeline: K1 writes B from A; K2 writes C from B;
    /// K3 writes D from A (skip-level dependency on K1's *input* — no RAW)
    /// and from C.
    fn pipeline_app() -> Application {
        let mut space = AddressSpace::new();
        let n = 256u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let d = space.alloc(4 * n);
        let k = Arc::new(
            parse_kernel(
                r#".entry axpy(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.f32 %f2, %f1, 0f3F800000;
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f2;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |x: u64, y: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(4),
                Dim3::x(64),
                vec![ArgValue::Ptr(x), ArgValue::Ptr(y)],
            ))
        };
        Application {
            name: "pipeline".into(),
            space,
            calls: vec![
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 4 * n,
                },
                launch(a.base, b.base), // K1: A -> B
                launch(b.base, c.base), // K2: B -> C
                launch(c.base, d.base), // K3: C -> D
            ],
            host_data: HashMap::new(),
        }
    }

    #[test]
    fn chain_produces_one_to_one_graphs() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = pipeline_app();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        assert_eq!(ks.len(), 3);
        assert!(ks[0].graph.is_independent());
        for k in &ks[1..] {
            assert_eq!(k.storage.pattern, Pattern::OneToOne, "kernel {}", k.seq);
            assert!(k.encoded);
            assert_eq!(k.graph.num_edges(), 4);
            assert!(k.skip_gates.is_empty(), "chain has no skip-level deps");
        }
        for k in &ks {
            assert!(k.profile.duration > 0);
            assert!(k.profile.txns_per_tb > 0);
            assert_eq!(k.profile.n_tbs, 4);
        }
    }

    #[test]
    fn skip_level_raw_gets_a_gate() {
        // K1: A->B, K2: C->D (unrelated), K3 reads B (skip dependency on K1).
        let mut space = AddressSpace::new();
        let n = 128u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let d = space.alloc(4 * n);
        let e = space.alloc(4 * n);
        let k = Arc::new(
            parse_kernel(
                r#".entry axpy(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |x: u64, y: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(2),
                Dim3::x(64),
                vec![ArgValue::Ptr(x), ArgValue::Ptr(y)],
            ))
        };
        let app = Application {
            name: "skip".into(),
            space,
            calls: vec![
                launch(a.base, b.base), // K1 writes B
                launch(c.base, d.base), // K2 unrelated
                launch(b.base, e.base), // K3 reads B  <- skip dep on K1
            ],
            host_data: HashMap::new(),
        };
        let cfg = GpuConfig::titan_x_pascal();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        // Consecutive graph K2->K3 is independent...
        assert!(ks[2].graph.is_independent());
        // ...so the skip gate on K1 is what protects correctness.
        assert_eq!(ks[2].skip_gates, vec![0]);
        assert!(ks[1].skip_gates.is_empty());
    }

    #[test]
    fn repeated_pairs_hit_the_graph_cache() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = pipeline_app();
        let budget = AnalysisBudget::default();
        let mut cache = AnalysisCache::for_budget(&budget);
        let first = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
        let after_first = cache.stats();
        assert_eq!(after_first.graph_hits, 0);
        assert_eq!(after_first.graph_misses, 2, "two consecutive pairs built");
        let second = jit_analyze_app_budgeted(&cfg, &app, HazardMode::Raw, &budget, &mut cache);
        let after_second = cache.stats();
        assert_eq!(after_second.graph_hits, 2, "same pairs served from cache");
        assert_eq!(after_second.graph_misses, 2);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.graph, b.graph, "cached graph must be identical");
            assert_eq!(a.degradation, b.degradation);
            assert!(b.cache_hit);
        }
    }

    #[test]
    fn parallel_pipeline_matches_reference() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = pipeline_app();
        let budget = AnalysisBudget::default();
        let mut ref_cache = AnalysisCache::for_budget(&budget);
        let reference = jit_analyze_app_par(
            &cfg,
            &app,
            HazardMode::Raw,
            &budget,
            &mut ref_cache,
            &ParallelConfig::reference(),
        );
        for threads in [1usize, 4] {
            let mut cache = AnalysisCache::for_budget(&budget);
            let par = jit_analyze_app_par(
                &cfg,
                &app,
                HazardMode::Raw,
                &budget,
                &mut cache,
                &ParallelConfig::with_threads(threads).oversubscribed(),
            );
            assert_eq!(par.len(), reference.len());
            for (a, b) in reference.iter().zip(&par) {
                assert_eq!(a.access, b.access, "threads={threads}");
                assert_eq!(a.graph, b.graph, "threads={threads}");
                assert_eq!(a.skip_gates, b.skip_gates);
                assert_eq!(a.cache_hit, b.cache_hit);
                assert_eq!(a.degradation, b.degradation);
                assert_eq!(a.profile.duration, b.profile.duration);
                assert_eq!(a.profile.txns_per_tb, b.profile.txns_per_tb);
            }
            assert_eq!(
                cache.stats(),
                ref_cache.stats(),
                "cache protocol must replay identically at threads={threads}"
            );
        }
    }

    #[test]
    fn panicking_worker_degrades_its_kernel_not_the_pipeline() {
        // The middle kernel carries the panic sentinel: its analysis
        // worker dies mid-flight, the kernel lands on the PrelaunchOff
        // rung as an opaque barrier, and its neighbours analyze normally.
        let mut space = AddressSpace::new();
        let n = 256u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let good = Arc::new(
            parse_kernel(
                r#".entry axpy(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let bad = Arc::new(
            parse_kernel(&format!(
                ".entry {PANIC_KERNEL_SENTINEL}(.param .u64 X, .param .u64 Y) {{
                     ret;
                   }}"
            ))
            .unwrap(),
        );
        let launch = |k: &Arc<_>, x: u64, y: u64| {
            ApiCall::KernelLaunch(Launch::new(
                Arc::clone(k),
                Dim3::x(4),
                Dim3::x(64),
                vec![ArgValue::Ptr(x), ArgValue::Ptr(y)],
            ))
        };
        let app = Application {
            name: "panic-containment".into(),
            space,
            calls: vec![
                launch(&good, a.base, b.base),
                launch(&bad, b.base, c.base),
                launch(&good, c.base, a.base),
            ],
            host_data: HashMap::new(),
        };
        let cfg = GpuConfig::titan_x_pascal();
        let budget = AnalysisBudget::default();
        let mut cache = AnalysisCache::for_budget(&budget);
        // Zero the work threshold: this app is far too small to fan out
        // on its own, and the point here is exercising worker containment.
        let mut par = ParallelConfig::with_threads(4).oversubscribed();
        par.serial_work_threshold = 0;
        let ks = jit_analyze_app_par(&cfg, &app, HazardMode::Raw, &budget, &mut cache, &par);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].degradation.rung, DegradationRung::PrelaunchOff);
        assert_eq!(
            ks[1].degradation.reason,
            DegradationReason::AnalysisPanicked
        );
        assert!(ks[1].access.non_static, "panicked kernel is opaque");
        assert_eq!(ks[0].degradation.rung, DegradationRung::Precise);
        assert_eq!(ks[2].degradation.rung, DegradationRung::Precise);
        assert!(ks[0].profile.duration > 0 && ks[2].profile.duration > 0);
    }

    #[test]
    fn high_degree_degrades_to_fully_connected() {
        // Parent: 128 TBs each writing 4 bytes of A; child: every TB reads
        // all of A -> degree 128 > 63 -> fully connected fallback.
        let mut space = AddressSpace::new();
        let a = space.alloc(4 * 128 * 64);
        let b = space.alloc(4 * 128 * 64);
        let writer = Arc::new(
            parse_kernel(
                r#".entry w(.param .u64 A) {
                     ld.param.u64 %rd1, [A];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd2, %r4, 4;
                     add.u64 %rd3, %rd1, %rd2;
                     st.global.f32 [%rd3], 0f3F800000;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        // Reader: every thread loops over the entire array A.
        let reader = Arc::new(
            parse_kernel(
                r#".entry r(.param .u64 A, .param .u64 B, .param .u32 n) {
                     ld.param.u64 %rd1, [A];
                     ld.param.u64 %rd2, [B];
                     ld.param.u32 %r9, [n];
                     mov.u32 %r1, 0;
                     mov.f32 %f1, 0f00000000;
                   $TOP:
                     setp.ge.u32 %p1, %r1, %r9;
                     @%p1 bra $OUT;
                     mul.wide.u32 %rd3, %r1, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f2, [%rd4];
                     add.f32 %f1, %f1, %f2;
                     add.u32 %r1, %r1, 64;
                     bra $TOP;
                   $OUT:
                     mov.u32 %r5, %ctaid.x;
                     mul.wide.u32 %rd5, %r5, 4;
                     add.u64 %rd6, %rd2, %rd5;
                     st.global.f32 [%rd6], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let app = Application {
            name: "degrade".into(),
            space,
            calls: vec![
                ApiCall::KernelLaunch(Launch::new(
                    writer,
                    Dim3::x(128),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base)],
                )),
                ApiCall::KernelLaunch(Launch::new(
                    reader,
                    Dim3::x(8),
                    Dim3::x(64),
                    vec![
                        ArgValue::Ptr(a.base),
                        ArgValue::Ptr(b.base),
                        ArgValue::U32(128 * 64),
                    ],
                )),
            ],
            host_data: HashMap::new(),
        };
        let cfg = GpuConfig::titan_x_pascal();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        assert!(ks[1].graph.is_fully_connected());
        assert_eq!(ks[1].storage.pattern, Pattern::FullyConnected);
        assert_eq!(ks[1].storage.encoded_bytes, 4);
    }
}
