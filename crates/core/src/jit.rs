//! Kernel-launch-time ("just-in-time") analysis pipeline.
//!
//! For every kernel launch in an application this module produces what the
//! hardware needs (paper Fig. 3): per-TB read/write sets via value-range
//! analysis, the bipartite dependency graph against the previous kernel,
//! its pattern encoding and storage cost, and — from the timing substrate —
//! a per-TB duration and memory-transaction count.

use bm_cmdq::{ApiCall, Application};
use bm_depgraph::{build_graph, storage, BipartiteGraph, GraphStorage, HazardMode, Pattern};
use bm_ptx::absint::try_analyze_launch;
use bm_ptx::access::KernelAccess;
use bm_ptx::error::PtxError;
use bm_ptx::kernel::Launch;
use bm_ptx::mem::GlobalMem;
use bm_ptx::trace::trace_block;
use bm_simt::config::GpuConfig;
use bm_simt::timing::simulate_sm;

use crate::hw::MAX_COUNTER;

/// Timing and resource profile of one kernel launch.
#[derive(Debug, Clone)]
pub struct LaunchProfile {
    /// Number of thread blocks.
    pub n_tbs: u32,
    /// Threads per block.
    pub threads: u32,
    /// Shared memory per block in bytes.
    pub shared_bytes: u32,
    /// Per-TB execution duration in cycles (at the kernel's occupancy).
    pub duration: u64,
    /// Coalesced global-memory transactions per TB.
    pub txns_per_tb: u64,
}

/// Everything BlockMaestro's scheduler knows about one launched kernel.
#[derive(Debug, Clone)]
pub struct JitKernel {
    /// Position in the application's kernel sequence.
    pub seq: u32,
    /// Kernel name (for reports).
    pub name: String,
    /// Timing/resource profile.
    pub profile: LaunchProfile,
    /// Access sets from value-range analysis.
    pub access: KernelAccess,
    /// Dependency graph against the *previous* kernel (kernel 0 gets an
    /// empty independent graph).
    pub graph: BipartiteGraph,
    /// Storage accounting for `graph`.
    pub storage: GraphStorage,
    /// Whether the graph is pattern-encoded (child ids derivable without
    /// fetching explicit lists).
    pub encoded: bool,
    /// Earlier, non-consecutive kernels this kernel has a kernel-level RAW
    /// dependency on. The paper's consecutive-pair tracking plus in-order
    /// completion covers chains; these gates cover skip-level dependencies
    /// (e.g. 3MM's K3 reading K1's output while K2 is unrelated) so that
    /// windows larger than 2 remain correct.
    pub skip_gates: Vec<u32>,
}

/// Analyzes every kernel of `app` in launch order.
///
/// This is the work the paper performs during PTX→SASS just-in-time
/// compilation, masked by kernel pre-launching; here it runs up front,
/// producing the inputs for the execution engine.
pub fn jit_analyze_app(cfg: &GpuConfig, app: &Application, hazard: HazardMode) -> Vec<JitKernel> {
    try_jit_analyze_app(cfg, app, hazard)
        .unwrap_or_else(|e| panic!("launch-time analysis rejected the application: {e}"))
}

/// Fallible counterpart of [`jit_analyze_app`].
///
/// # Errors
///
/// [`PtxError`] when a launch is structurally invalid or tracing its
/// representative thread block fails.
pub fn try_jit_analyze_app(
    cfg: &GpuConfig,
    app: &Application,
    hazard: HazardMode,
) -> Result<Vec<JitKernel>, PtxError> {
    let launches: Vec<&Launch> = app.launches();
    // Scratch functional memory for trace collection. Traces only shape
    // timing; our kernels' control flow does not depend on float data, so
    // executing on the evolving scratch state is fine.
    let mut scratch = GlobalMem::for_space(&app.space);
    for call in &app.calls {
        if let ApiCall::MemcpyH2D { alloc, .. } = call {
            if let Some(data) = app.host_data.get(alloc) {
                scratch.copy_from_host_f32(app.space.info(*alloc).base, data);
            }
        }
    }
    let mut out: Vec<JitKernel> = Vec::with_capacity(launches.len());
    for (seq, launch) in launches.iter().enumerate() {
        let access = try_analyze_launch(launch)?;
        let profile = try_profile_launch(cfg, launch, &mut scratch)?;
        let prev = out.last().map(|k: &JitKernel| &k.access);
        let mut graph = match prev {
            None => BipartiteGraph::independent(0, access.num_blocks() as u32),
            Some(p) => build_graph(p, &access, hazard),
        };
        // Hardware fallback: parent counters are 6-bit; degrees above 63
        // degrade to the fully-connected encoding (§IV-C).
        if graph.max_child_degree() > MAX_COUNTER {
            graph.degrade_to_fully_connected();
        }
        let st = storage(&graph);
        let encoded = !matches!(st.pattern, Pattern::Irregular);
        let skip_gates = find_skip_gates(&out, &access, seq as u32, hazard);
        out.push(JitKernel {
            seq: seq as u32,
            name: launch.kernel.name.clone(),
            profile,
            access,
            graph,
            storage: st,
            encoded,
            skip_gates,
        });
    }
    Ok(out)
}

/// Kernel-level hazard screen against non-consecutive predecessors
/// (RAW always; plus WAR/WAW when tracking all hazards).
fn find_skip_gates(
    done: &[JitKernel],
    access: &KernelAccess,
    seq: u32,
    hazard: HazardMode,
) -> Vec<u32> {
    let mut gates = Vec::new();
    if seq < 2 {
        return gates;
    }
    for j in done.iter().take(seq as usize - 1) {
        let mut dep = access.kernel_reads.intersects(&j.access.kernel_writes)
            || access.non_static
            || j.access.non_static;
        if hazard == HazardMode::All {
            dep = dep
                || access.kernel_writes.intersects(&j.access.kernel_reads)
                || access.kernel_writes.intersects(&j.access.kernel_writes);
        }
        if dep {
            gates.push(j.seq);
        }
    }
    gates
}

/// Profiles one launch: traces a representative TB and times it on one SM
/// at the kernel's occupancy.
pub fn profile_launch(cfg: &GpuConfig, launch: &Launch, scratch: &mut GlobalMem) -> LaunchProfile {
    try_profile_launch(cfg, launch, scratch)
        .unwrap_or_else(|e| panic!("kernel `{}` failed to trace: {e}", launch.kernel.name))
}

/// Fallible counterpart of [`profile_launch`]. Zero-block grids are legal
/// degenerate launches: they execute nothing and get a unit-duration
/// profile so downstream arithmetic stays well-defined.
///
/// # Errors
///
/// [`PtxError::Exec`] when tracing the representative TB fails.
pub fn try_profile_launch(
    cfg: &GpuConfig,
    launch: &Launch,
    scratch: &mut GlobalMem,
) -> Result<LaunchProfile, PtxError> {
    let n_tbs = launch.num_blocks();
    let threads = launch.threads_per_block();
    let shared_bytes = launch.kernel.shared_bytes;
    if n_tbs == 0 {
        return Ok(LaunchProfile {
            n_tbs: 0,
            threads,
            shared_bytes,
            duration: 1,
            txns_per_tb: 0,
        });
    }
    // Middle block: avoids boundary blocks whose guards mask most work.
    let rep = n_tbs / 2;
    let trace = trace_block(launch, rep, scratch).map_err(PtxError::Exec)?;
    let occ = cfg
        .occupancy(threads, shared_bytes)
        .max(1)
        .min(n_tbs.max(1));
    let traces: Vec<&bm_ptx::trace::TbTrace> = (0..occ).map(|_| &trace).collect();
    let timing = simulate_sm(cfg, &traces);
    Ok(LaunchProfile {
        n_tbs,
        threads,
        shared_bytes,
        duration: timing.per_tb_duration(),
        txns_per_tb: trace.global_transactions,
    })
}

/// Recomputes every kernel's skip gates from the current access sets —
/// used by the soundness guard after quarantining marks kernels
/// `non_static`, which widens their gate requirements.
pub(crate) fn recompute_skip_gates(jit: &mut [JitKernel], hazard: HazardMode) {
    let gates: Vec<Vec<u32>> = (0..jit.len())
        .map(|seq| find_skip_gates(&jit[..seq], &jit[seq].access, seq as u32, hazard))
        .collect();
    for (k, g) in gates.into_iter().enumerate() {
        jit[k].skip_gates = g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bm_ptx::kernel::{ArgValue, Dim3, Launch};
    use bm_ptx::mem::AddressSpace;
    use bm_ptx::parser::parse_kernel;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// Three-kernel pipeline: K1 writes B from A; K2 writes C from B;
    /// K3 writes D from A (skip-level dependency on K1's *input* — no RAW)
    /// and from C.
    fn pipeline_app() -> Application {
        let mut space = AddressSpace::new();
        let n = 256u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let d = space.alloc(4 * n);
        let k = Arc::new(
            parse_kernel(
                r#".entry axpy(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.f32 %f2, %f1, 0f3F800000;
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f2;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |x: u64, y: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(4),
                Dim3::x(64),
                vec![ArgValue::Ptr(x), ArgValue::Ptr(y)],
            ))
        };
        Application {
            name: "pipeline".into(),
            space,
            calls: vec![
                ApiCall::MemcpyH2D {
                    alloc: a.id,
                    bytes: 4 * n,
                },
                launch(a.base, b.base), // K1: A -> B
                launch(b.base, c.base), // K2: B -> C
                launch(c.base, d.base), // K3: C -> D
            ],
            host_data: HashMap::new(),
        }
    }

    #[test]
    fn chain_produces_one_to_one_graphs() {
        let cfg = GpuConfig::titan_x_pascal();
        let app = pipeline_app();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        assert_eq!(ks.len(), 3);
        assert!(ks[0].graph.is_independent());
        for k in &ks[1..] {
            assert_eq!(k.storage.pattern, Pattern::OneToOne, "kernel {}", k.seq);
            assert!(k.encoded);
            assert_eq!(k.graph.num_edges(), 4);
            assert!(k.skip_gates.is_empty(), "chain has no skip-level deps");
        }
        for k in &ks {
            assert!(k.profile.duration > 0);
            assert!(k.profile.txns_per_tb > 0);
            assert_eq!(k.profile.n_tbs, 4);
        }
    }

    #[test]
    fn skip_level_raw_gets_a_gate() {
        // K1: A->B, K2: C->D (unrelated), K3 reads B (skip dependency on K1).
        let mut space = AddressSpace::new();
        let n = 128u64;
        let a = space.alloc(4 * n);
        let b = space.alloc(4 * n);
        let c = space.alloc(4 * n);
        let d = space.alloc(4 * n);
        let e = space.alloc(4 * n);
        let k = Arc::new(
            parse_kernel(
                r#".entry axpy(.param .u64 X, .param .u64 Y) {
                     ld.param.u64 %rd1, [X];
                     ld.param.u64 %rd2, [Y];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let launch = |x: u64, y: u64| {
            ApiCall::KernelLaunch(Launch::new(
                k.clone(),
                Dim3::x(2),
                Dim3::x(64),
                vec![ArgValue::Ptr(x), ArgValue::Ptr(y)],
            ))
        };
        let app = Application {
            name: "skip".into(),
            space,
            calls: vec![
                launch(a.base, b.base), // K1 writes B
                launch(c.base, d.base), // K2 unrelated
                launch(b.base, e.base), // K3 reads B  <- skip dep on K1
            ],
            host_data: HashMap::new(),
        };
        let cfg = GpuConfig::titan_x_pascal();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        // Consecutive graph K2->K3 is independent...
        assert!(ks[2].graph.is_independent());
        // ...so the skip gate on K1 is what protects correctness.
        assert_eq!(ks[2].skip_gates, vec![0]);
        assert!(ks[1].skip_gates.is_empty());
    }

    #[test]
    fn high_degree_degrades_to_fully_connected() {
        // Parent: 128 TBs each writing 4 bytes of A; child: every TB reads
        // all of A -> degree 128 > 63 -> fully connected fallback.
        let mut space = AddressSpace::new();
        let a = space.alloc(4 * 128 * 64);
        let b = space.alloc(4 * 128 * 64);
        let writer = Arc::new(
            parse_kernel(
                r#".entry w(.param .u64 A) {
                     ld.param.u64 %rd1, [A];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd2, %r4, 4;
                     add.u64 %rd3, %rd1, %rd2;
                     st.global.f32 [%rd3], 0f3F800000;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        // Reader: every thread loops over the entire array A.
        let reader = Arc::new(
            parse_kernel(
                r#".entry r(.param .u64 A, .param .u64 B, .param .u32 n) {
                     ld.param.u64 %rd1, [A];
                     ld.param.u64 %rd2, [B];
                     ld.param.u32 %r9, [n];
                     mov.u32 %r1, 0;
                     mov.f32 %f1, 0f00000000;
                   $TOP:
                     setp.ge.u32 %p1, %r1, %r9;
                     @%p1 bra $OUT;
                     mul.wide.u32 %rd3, %r1, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f2, [%rd4];
                     add.f32 %f1, %f1, %f2;
                     add.u32 %r1, %r1, 64;
                     bra $TOP;
                   $OUT:
                     mov.u32 %r5, %ctaid.x;
                     mul.wide.u32 %rd5, %r5, 4;
                     add.u64 %rd6, %rd2, %rd5;
                     st.global.f32 [%rd6], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        );
        let app = Application {
            name: "degrade".into(),
            space,
            calls: vec![
                ApiCall::KernelLaunch(Launch::new(
                    writer,
                    Dim3::x(128),
                    Dim3::x(64),
                    vec![ArgValue::Ptr(a.base)],
                )),
                ApiCall::KernelLaunch(Launch::new(
                    reader,
                    Dim3::x(8),
                    Dim3::x(64),
                    vec![
                        ArgValue::Ptr(a.base),
                        ArgValue::Ptr(b.base),
                        ArgValue::U32(128 * 64),
                    ],
                )),
            ],
            host_data: HashMap::new(),
        };
        let cfg = GpuConfig::titan_x_pascal();
        let ks = jit_analyze_app(&cfg, &app, HazardMode::Raw);
        assert!(ks[1].graph.is_fully_connected());
        assert_eq!(ks[1].storage.pattern, Pattern::FullyConnected);
        assert_eq!(ks[1].storage.encoded_bytes, 4);
    }
}
