//! Crash-safe checkpoint/restore: deterministic run snapshots.
//!
//! A [`RunSnapshot`] captures the complete mutable state of one engine run
//! at a kernel-retirement boundary: the DES substrate
//! ([`bm_simt::DesCheckpoint`]), the engine source (per-kernel lifecycle,
//! admission window, scheduler buffers), the soundness-guard context, the
//! command-queue reordering (as a cross-check), and — when tracing — the
//! run-phase slice of the event stream. Restoring a snapshot and running to
//! completion produces a [`crate::RunReport`] bit-identical to the
//! uninterrupted run; that equivalence is what the kill-point fault class
//! ([`crate::faults::FaultClass::KillPoint`]) proves across the seed
//! matrix.
//!
//! The on-disk format (`DESIGN.md` §10) is versioned and checksummed:
//! an 8-byte magic (`BMSNAP02`), a format version, a section table with
//! per-section CRC32s, then little-endian payloads. Every load validates
//! magic, version, table bounds, and checksums before decoding; any damage
//! surfaces as a typed [`SnapshotError`], never a panic. Writes go through
//! [`atomic_write`] (temp file + rename) so a crash mid-save never leaves a
//! half-written snapshot behind.

#![deny(clippy::unwrap_used)]

use crate::degrade::PressureEvent;
use crate::guard::GuardReport;
use crate::hw::HwTraffic;
use bm_cmdq::Application;
use bm_simt::des::{DesCheckpoint, DesStats, TbDescriptor, TbKey};
use bm_trace::json::Json;
use bm_trace::{AnalysisPhase, CmdKind, StallReason, TbId, TraceEvent};
use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// Snapshot file magic: format name + major format generation.
/// Generation 2 adds the optional multi-device section ([`TAG_MULTI`]).
pub const MAGIC: &[u8; 8] = b"BMSNAP02";
/// Current format version. Snapshots with any other version are rejected
/// with [`SnapshotError::UnsupportedVersion`]: the format carries live
/// scheduler state, so cross-version resume is never attempted.
pub const FORMAT_VERSION: u32 = 2;

const TAG_META: u32 = 1;
const TAG_DES: u32 = 2;
const TAG_ENGINE: u32 = 3;
const TAG_GUARD: u32 = 4;
const TAG_ORDER: u32 = 5;
const TAG_TRACE: u32 = 6;
const TAG_MULTI: u32 = 7;

/// Why a snapshot failed to save, load, or validate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem failure (message of the underlying `io::Error`).
    Io(String),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The header declares a format version this build cannot decode.
    UnsupportedVersion {
        /// Version found in the header.
        found: u32,
    },
    /// The buffer ends before the declared content does.
    Truncated,
    /// A section's payload does not match its recorded CRC32.
    ChecksumMismatch {
        /// Tag of the damaged section.
        section: u32,
    },
    /// The bytes decode to structurally invalid content.
    Malformed(&'static str),
    /// The snapshot is internally valid but was captured from a different
    /// application, mode, or analysis configuration than the resume target.
    AppMismatch(&'static str),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(msg) => write!(f, "snapshot I/O: {msg}"),
            SnapshotError::BadMagic => f.write_str("not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(f, "unsupported snapshot version {found}")
            }
            SnapshotError::Truncated => f.write_str("snapshot truncated"),
            SnapshotError::ChecksumMismatch { section } => {
                write!(f, "checksum mismatch in section {section}")
            }
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::AppMismatch(what) => {
                write!(f, "snapshot does not match this run: {what}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// CRC32 (IEEE, reflected) — hand-rolled so the workspace stays
// dependency-free.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC32 (IEEE 802.3) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c = (c >> 8) ^ CRC32_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    !c
}

// ---------------------------------------------------------------------------
// Little-endian encode/decode cursors.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }
    fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
    fn opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.u8(1);
                self.u64(x);
            }
            None => self.u8(0),
        }
    }
    fn key(&mut self, k: TbKey) {
        self.u32(k.kernel_seq);
        self.u32(k.tb);
    }
    fn traffic(&mut self, t: HwTraffic) {
        self.u64(t.dep_list_fetches);
        self.u64(t.counter_fetches);
        self.u64(t.counter_writebacks);
    }
}

struct Dec<'a> {
    data: &'a [u8],
    pos: usize,
}

type DecResult<T> = Result<T, SnapshotError>;

impl<'a> Dec<'a> {
    fn new(data: &'a [u8]) -> Self {
        Dec { data, pos: 0 }
    }
    fn take(&mut self, n: usize) -> DecResult<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.data.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.data[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn done(&self) -> bool {
        self.pos == self.data.len()
    }
    fn u8(&mut self) -> DecResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> DecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(SnapshotError::Malformed("bool flag out of range")),
        }
    }
    fn u32(&mut self) -> DecResult<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> DecResult<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn u128(&mut self) -> DecResult<u128> {
        let b = self.take(16)?;
        let mut a = [0u8; 16];
        a.copy_from_slice(b);
        Ok(u128::from_le_bytes(a))
    }
    fn str(&mut self) -> DecResult<String> {
        let n = self.u32()? as usize;
        let b = self.take(n)?;
        String::from_utf8(b.to_vec()).map_err(|_| SnapshotError::Malformed("non-UTF-8 string"))
    }
    fn opt_u64(&mut self) -> DecResult<Option<u64>> {
        Ok(if self.bool()? {
            Some(self.u64()?)
        } else {
            None
        })
    }
    /// Sequence length, sanity-bounded so a corrupted length cannot drive a
    /// huge allocation before the per-element reads hit `Truncated`.
    fn len(&mut self) -> DecResult<usize> {
        let n = self.u32()? as usize;
        if n > self.data.len().saturating_sub(self.pos).saturating_add(1) * 64 {
            return Err(SnapshotError::Malformed("sequence length exceeds payload"));
        }
        Ok(n)
    }
    fn key(&mut self) -> DecResult<TbKey> {
        Ok(TbKey {
            kernel_seq: self.u32()?,
            tb: self.u32()?,
        })
    }
    fn traffic(&mut self) -> DecResult<HwTraffic> {
        Ok(HwTraffic {
            dep_list_fetches: self.u64()?,
            counter_fetches: self.u64()?,
            counter_writebacks: self.u64()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Snapshot payload types.
// ---------------------------------------------------------------------------

/// Identity header: what the snapshot was captured from and where.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SnapshotMeta {
    /// Fingerprint of the application ([`app_fingerprint`]).
    pub app_fp: u64,
    /// Display form of the [`crate::ExecMode`] the run used.
    pub mode: String,
    /// Debug form of the hazard-tracking mode the analysis used.
    pub hazard: String,
    /// Number of kernels in the analyzed application.
    pub n_kernels: u32,
    /// Kernels retired at the capture boundary.
    pub retired: u32,
    /// Simulation cycle of the capture boundary.
    pub cycle: u64,
}

/// Mutable per-kernel lifecycle state of the engine source.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelSnapshot {
    /// In-memory copy of the child-TB parent-counter array.
    pub counts: Vec<u32>,
    /// Per-TB data-ready cycle (`None` = dependencies unresolved).
    pub data_ready: Vec<Option<u64>>,
    /// Per-TB completion flags.
    pub done: Vec<bool>,
    /// Ready queue, in queue order.
    pub ready: Vec<u32>,
    /// Per-TB pushed-to-ready flags.
    pub pushed: Vec<bool>,
    /// Completed-TB count.
    pub completed: u32,
    /// GPU arrival cycle, once the launch latency elapsed.
    pub arrival: Option<u64>,
    /// Whether the host has issued the launch.
    pub issued: bool,
    /// Whether every TB completed.
    pub complete: bool,
}

/// Mutable state of the engine source outside the per-kernel records.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EngineSnapshot {
    /// Current pre-launch window (may have shrunk under pressure).
    pub window: u32,
    /// Kernels retired, in order.
    pub retired: u32,
    /// Kernels issued by the host.
    pub issued_count: u32,
    /// Earliest cycle the next launch may issue at (API serialization).
    pub next_issue_floor: u64,
    /// Consumer-priority round-robin toggle.
    pub consumer_toggle: bool,
    /// Per-kernel issue cycles (for degradation stamps).
    pub issue_cycles: Vec<u64>,
    /// Pending `(arrival_cycle, kernel)` launches in flight, sorted.
    pub arrivals: Vec<(u64, u32)>,
    /// Per-kernel lifecycle state.
    pub kernels: Vec<KernelSnapshot>,
    /// Admission-backpressure events recorded so far.
    pub pressure: Vec<PressureEvent>,
    /// Dependency-list buffer: entries sorted by key, plus counters.
    pub dlb_entries: Vec<(TbKey, Vec<u32>)>,
    /// DLB traffic counters.
    pub dlb_traffic: HwTraffic,
    /// DLB occupancy high-water mark.
    pub dlb_high_water: u32,
    /// Parent-counter buffer: resident counters sorted by key.
    pub pcb_counters: Vec<(TbKey, u32)>,
    /// PCB FIFO eviction order, verbatim (stale keys included — eviction
    /// determinism depends on preserving them exactly).
    pub pcb_fifo: Vec<TbKey>,
    /// PCB capacity in effect (fault plans may shrink it).
    pub pcb_capacity: u32,
    /// PCB traffic counters.
    pub pcb_traffic: HwTraffic,
    /// PCB occupancy high-water mark.
    pub pcb_high_water: u32,
}

/// Soundness-guard context at capture time, so a resumed run re-applies
/// the same quarantines and continues the same recovery round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GuardSnapshot {
    /// Recovery round in progress.
    pub round: u32,
    /// Guard accounting accumulated before this round.
    pub report: GuardReport,
    /// Quarantined kernel seqs, sorted.
    pub quarantined: Vec<u32>,
}

/// One complete, restorable run snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunSnapshot {
    /// Identity and capture position.
    pub meta: SnapshotMeta,
    /// DES substrate state (clock, event queue, SM occupancy, stats).
    pub des: DesCheckpoint,
    /// Engine-source state (kernel lifecycle, window, scheduler buffers).
    pub engine: EngineSnapshot,
    /// Soundness-guard context.
    pub guard: GuardSnapshot,
    /// Command-queue reordering in effect, stored as a cross-check: resume
    /// recomputes the reorder deterministically and rejects on divergence.
    pub order: Vec<u32>,
    /// Run-phase slice of the trace stream (empty for untraced runs),
    /// ending with this snapshot's own `CheckpointSave` event.
    pub trace: Vec<TraceEvent>,
    /// Opaque multi-device coordinator state (`bm-multi` owns the codec).
    /// Empty for single-device runs, in which case the section is omitted
    /// from the encoded container entirely — single-device snapshots are
    /// byte-for-byte unaffected by the field's existence.
    pub multi: Vec<u8>,
}

/// Fingerprint of an application's identity: name, call count, and every
/// launch's canonical kernel text, dimensions, and argument values (FNV-1a).
/// Two applications with equal fingerprints drive the deterministic engine
/// identically, which is what snapshot restore requires.
pub fn app_fingerprint(app: &Application) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut fold = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    fold(app.name.as_bytes());
    fold(&(app.calls.len() as u64).to_le_bytes());
    for launch in app.launches() {
        fold(launch.kernel.to_string().as_bytes());
        for d in [launch.grid, launch.block] {
            fold(&d.x.to_le_bytes());
            fold(&d.y.to_le_bytes());
            fold(&d.z.to_le_bytes());
        }
        for arg in &launch.args {
            use bm_ptx::kernel::ArgValue;
            let (tag, bits) = match arg {
                ArgValue::U32(v) => (0u8, *v as u64),
                ArgValue::U64(v) => (1u8, *v),
                ArgValue::F32(v) => (2u8, v.to_bits() as u64),
                ArgValue::Ptr(v) => (3u8, *v),
            };
            fold(&[tag]);
            fold(&bits.to_le_bytes());
        }
    }
    h
}

// ---------------------------------------------------------------------------
// Checkpoint policy and stores.
// ---------------------------------------------------------------------------

/// When to capture snapshots. Triggers are evaluated only at
/// kernel-retirement boundaries — the consistency points of the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Capture after every `n` kernel retirements.
    pub every_n_kernels: Option<u32>,
    /// Capture at the first retirement boundary after `n` cycles elapsed
    /// since the previous capture.
    pub every_n_cycles: Option<u64>,
}

impl CheckpointPolicy {
    /// A policy that never checkpoints.
    pub fn disabled() -> Self {
        CheckpointPolicy::default()
    }

    /// Capture after every `n` kernel retirements.
    pub fn every_kernels(n: u32) -> Self {
        CheckpointPolicy {
            every_n_kernels: Some(n.max(1)),
            every_n_cycles: None,
        }
    }

    /// Whether any trigger is configured.
    pub fn is_enabled(&self) -> bool {
        self.every_n_kernels.is_some() || self.every_n_cycles.is_some()
    }

    /// Whether a capture is due, given progress since the last capture.
    pub fn due(&self, retired_delta: u32, cycle_delta: u64) -> bool {
        self.every_n_kernels
            .is_some_and(|n| retired_delta >= n.max(1))
            || self.every_n_cycles.is_some_and(|n| cycle_delta >= n.max(1))
    }
}

/// Where snapshots are kept. One store holds the *latest* snapshot; saves
/// overwrite atomically, so a crash mid-save leaves the previous snapshot
/// intact.
pub trait SnapshotStore {
    /// Persist `bytes` as the latest snapshot.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    fn save(&mut self, bytes: &[u8]) -> Result<(), SnapshotError>;

    /// Load the latest snapshot, or `None` if nothing was saved.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::Io`] on filesystem failure.
    fn load(&mut self) -> Result<Option<Vec<u8>>, SnapshotError>;
}

/// Filesystem-backed store: one snapshot file, written via [`atomic_write`].
#[derive(Debug, Clone)]
pub struct DirStore {
    path: PathBuf,
    /// Accumulated fsync counts across every [`SnapshotStore::save`] on
    /// this store — durability tests assert these advance.
    pub syncs: FsyncStats,
}

/// Default snapshot file name inside a `--checkpoint-dir`.
pub const SNAPSHOT_FILE: &str = "latest.bmsnap";

impl DirStore {
    /// Store under `dir/`[`SNAPSHOT_FILE`]. The directory is created on
    /// first save.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DirStore {
            path: dir.into().join(SNAPSHOT_FILE),
            syncs: FsyncStats::default(),
        }
    }

    /// Store at an exact file path.
    pub fn at_file(path: impl Into<PathBuf>) -> Self {
        DirStore {
            path: path.into(),
            syncs: FsyncStats::default(),
        }
    }

    /// The snapshot file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl SnapshotStore for DirStore {
    fn save(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        if let Some(dir) = self.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).map_err(|e| SnapshotError::Io(e.to_string()))?;
            }
        }
        let stats = atomic_write_counted(&self.path, bytes)
            .map_err(|e| SnapshotError::Io(e.to_string()))?;
        self.syncs.file_syncs += stats.file_syncs;
        self.syncs.dir_syncs += stats.dir_syncs;
        Ok(())
    }

    fn load(&mut self) -> Result<Option<Vec<u8>>, SnapshotError> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(SnapshotError::Io(e.to_string())),
        }
    }
}

/// In-memory store for tests and the fault-injection harness. Keeps every
/// save so harnesses can resume from any boundary, not just the last.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    /// Every snapshot saved, in save order.
    pub snaps: Vec<Vec<u8>>,
}

impl SnapshotStore for MemStore {
    fn save(&mut self, bytes: &[u8]) -> Result<(), SnapshotError> {
        self.snaps.push(bytes.to_vec());
        Ok(())
    }

    fn load(&mut self) -> Result<Option<Vec<u8>>, SnapshotError> {
        Ok(self.snaps.last().cloned())
    }
}

/// Sync operations performed by one [`atomic_write`] call. Exposed so
/// durability tests can assert that fsync actually ran rather than trusting
/// the happy path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FsyncStats {
    /// `sync_all` calls that completed on the temp file before rename.
    pub file_syncs: u32,
    /// `sync_all` calls that completed on the containing directory after
    /// rename (persists the directory entry itself).
    pub dir_syncs: u32,
}

/// Durable write: the bytes land in a temp file in the target's directory,
/// the temp file is fsynced, renamed into place, and the containing
/// directory is fsynced so the rename itself survives a crash. Readers
/// never observe a partial file; a crash mid-write leaves the previous
/// content (or nothing) behind. All bmrun file outputs (traces, JSON
/// reports, snapshots) route through here.
///
/// # Errors
///
/// Any underlying `io::Error` from create/write/sync/rename.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    atomic_write_counted(path, bytes).map(|_| ())
}

/// [`atomic_write`] that reports how many fsyncs it performed.
///
/// # Errors
///
/// Any underlying `io::Error` from create/write/sync/rename.
pub fn atomic_write_counted(path: &Path, bytes: &[u8]) -> std::io::Result<FsyncStats> {
    use std::io::Write;
    use std::sync::atomic::{AtomicU64, Ordering};

    let mut name = path.file_name().map(|n| n.to_os_string()).ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    // The temp name is unique per writer (pid + process-wide sequence), so
    // concurrent writers to the same target never rename each other's temp
    // file out from under themselves — the last rename wins whole.
    static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    name.push(format!(".{}-{}.tmp", std::process::id(), seq));
    let tmp = path.with_file_name(name);
    let mut stats = FsyncStats::default();
    let write_and_rename = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
        stats.file_syncs += 1;
        std::fs::rename(&tmp, path)
    })();
    if let Err(e) = write_and_rename {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    // Persist the rename: fsync the containing directory. Directories that
    // cannot be opened for sync (exotic filesystems) degrade gracefully —
    // the data itself is already durable from the file fsync above.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            if d.sync_all().is_ok() {
                stats.dir_syncs += 1;
            }
        }
    }
    Ok(stats)
}

// ---------------------------------------------------------------------------
// Trace-event codec.
// ---------------------------------------------------------------------------

fn enc_tb_id(e: &mut Enc, id: TbId) {
    e.u32(id.kernel);
    e.u32(id.tb);
}

fn dec_tb_id(d: &mut Dec) -> DecResult<TbId> {
    Ok(TbId {
        kernel: d.u32()?,
        tb: d.u32()?,
    })
}

fn encode_event(e: &mut Enc, ev: &TraceEvent) {
    match ev {
        TraceEvent::TbSpan {
            id,
            sm,
            start,
            finish,
        } => {
            e.u8(0);
            enc_tb_id(e, *id);
            e.u32(*sm);
            e.u64(*start);
            e.u64(*finish);
        }
        TraceEvent::SmOccupancy {
            cycle,
            sm,
            resident,
        } => {
            e.u8(1);
            e.u64(*cycle);
            e.u32(*sm);
            e.u32(*resident);
        }
        TraceEvent::TbReady { cycle, id } => {
            e.u8(2);
            e.u64(*cycle);
            enc_tb_id(e, *id);
        }
        TraceEvent::TbStall {
            cycle,
            id,
            ready_at,
            reason,
        } => {
            e.u8(3);
            e.u64(*cycle);
            enc_tb_id(e, *id);
            e.u64(*ready_at);
            e.u8(match reason {
                StallReason::KernelArrival => 0,
                StallReason::Resources => 1,
            });
        }
        TraceEvent::KernelIssue {
            cycle,
            seq,
            name,
            prelaunched,
        } => {
            e.u8(4);
            e.u64(*cycle);
            e.u32(*seq);
            e.str(name);
            e.bool(*prelaunched);
        }
        TraceEvent::KernelArrive { cycle, seq } => {
            e.u8(5);
            e.u64(*cycle);
            e.u32(*seq);
        }
        TraceEvent::KernelRetire { cycle, seq } => {
            e.u8(6);
            e.u64(*cycle);
            e.u32(*seq);
        }
        TraceEvent::DlbInsert {
            cycle,
            id,
            children,
            fetch_txns,
            encoded,
        } => {
            e.u8(7);
            e.u64(*cycle);
            enc_tb_id(e, *id);
            e.u32(*children);
            e.u64(*fetch_txns);
            e.bool(*encoded);
        }
        TraceEvent::PcbInit {
            cycle,
            id,
            count,
            refetch,
        } => {
            e.u8(8);
            e.u64(*cycle);
            enc_tb_id(e, *id);
            e.u32(*count);
            e.bool(*refetch);
        }
        TraceEvent::PcbSpill { cycle, victim } => {
            e.u8(9);
            e.u64(*cycle);
            enc_tb_id(e, *victim);
        }
        TraceEvent::BufferLevels { cycle, dlb, pcb } => {
            e.u8(10);
            e.u64(*cycle);
            e.u32(*dlb);
            e.u32(*pcb);
        }
        TraceEvent::AnalysisSpan {
            seq,
            name,
            phase,
            start_tick,
            end_tick,
        } => {
            e.u8(11);
            e.u32(*seq);
            e.str(name);
            e.u8(match phase {
                AnalysisPhase::Absint => 0,
                AnalysisPhase::Coarse => 1,
                AnalysisPhase::Trace => 2,
                AnalysisPhase::Graph => 3,
            });
            e.u64(*start_tick);
            e.u64(*end_tick);
        }
        TraceEvent::AffineFastPath {
            tick,
            seq,
            attempted,
            accepted,
            interpreted,
            synthesized,
        } => {
            e.u8(12);
            e.u64(*tick);
            e.u32(*seq);
            e.bool(*attempted);
            e.bool(*accepted);
            e.u32(*interpreted);
            e.u32(*synthesized);
        }
        TraceEvent::CacheProbe {
            tick,
            seq,
            graph,
            hit,
        } => {
            e.u8(13);
            e.u64(*tick);
            e.u32(*seq);
            e.bool(*graph);
            e.bool(*hit);
        }
        TraceEvent::RungTransition {
            tick,
            seq,
            rung,
            reason,
        } => {
            e.u8(14);
            e.u64(*tick);
            e.u32(*seq);
            e.str(rung);
            e.str(reason);
        }
        TraceEvent::CmdqSubmit { pos, orig, kind } => {
            e.u8(15);
            e.u32(*pos);
            e.u32(*orig);
            e.u8(match kind {
                CmdKind::Malloc => 0,
                CmdKind::MemcpyH2D => 1,
                CmdKind::MemcpyD2H => 2,
                CmdKind::Sync => 3,
                CmdKind::Launch => 4,
            });
        }
        TraceEvent::Pressure {
            cycle,
            spill,
            window_before,
            window_after,
        } => {
            e.u8(16);
            e.u64(*cycle);
            e.u64(*spill);
            e.u32(*window_before);
            e.u32(*window_after);
        }
        TraceEvent::Quarantine {
            cycle,
            kernel,
            round,
        } => {
            e.u8(17);
            e.u64(*cycle);
            e.u32(*kernel);
            e.u32(*round);
        }
        TraceEvent::DegradationStamp {
            cycle,
            seq,
            rung,
            reason,
        } => {
            e.u8(18);
            e.u64(*cycle);
            e.u32(*seq);
            e.str(rung);
            e.str(reason);
        }
        TraceEvent::CheckpointSave {
            cycle,
            retired,
            bytes,
        } => {
            e.u8(19);
            e.u64(*cycle);
            e.u32(*retired);
            e.u64(*bytes);
        }
        TraceEvent::CheckpointLoad { cycle, retired } => {
            e.u8(20);
            e.u64(*cycle);
            e.u32(*retired);
        }
        TraceEvent::CheckpointReject { reason } => {
            e.u8(21);
            e.str(reason);
        }
        TraceEvent::ServeAdmit {
            tick,
            request,
            queued,
        } => {
            e.u8(22);
            e.u64(*tick);
            e.u64(*request);
            e.u32(*queued);
        }
        TraceEvent::ServeStart {
            tick,
            request,
            worker,
            attempt,
        } => {
            e.u8(23);
            e.u64(*tick);
            e.u64(*request);
            e.u32(*worker);
            e.u32(*attempt);
        }
        TraceEvent::ServeRetry {
            tick,
            request,
            attempt,
            backoff,
            reason,
        } => {
            e.u8(24);
            e.u64(*tick);
            e.u64(*request);
            e.u32(*attempt);
            e.u64(*backoff);
            e.str(reason);
        }
        TraceEvent::ServeCancel {
            tick,
            request,
            deadline,
        } => {
            e.u8(25);
            e.u64(*tick);
            e.u64(*request);
            e.bool(*deadline);
        }
        TraceEvent::ServeComplete {
            tick,
            request,
            outcome,
        } => {
            e.u8(26);
            e.u64(*tick);
            e.u64(*request);
            e.str(outcome);
        }
        TraceEvent::BreakerTransition {
            tick,
            app_fp,
            from,
            to,
        } => {
            e.u8(27);
            e.u64(*tick);
            e.u64(*app_fp);
            e.str(from);
            e.str(to);
        }
        TraceEvent::ParallelDecision {
            tick,
            seq,
            tbs,
            threads,
            fallback,
        } => {
            e.u8(28);
            e.u64(*tick);
            e.u32(*seq);
            e.u32(*tbs);
            e.u32(*threads);
            e.bool(*fallback);
        }
        TraceEvent::MultiTopology {
            devices,
            sms_per_device,
        } => {
            e.u8(29);
            e.u32(*devices);
            e.u32(*sms_per_device);
        }
        TraceEvent::XferStart {
            cycle,
            src,
            dst,
            id,
            bytes,
        } => {
            e.u8(30);
            e.u64(*cycle);
            e.u32(*src);
            e.u32(*dst);
            enc_tb_id(e, *id);
            e.u64(*bytes);
        }
        TraceEvent::XferDone {
            cycle,
            sent,
            src,
            dst,
            id,
            bytes,
        } => {
            e.u8(31);
            e.u64(*cycle);
            e.u64(*sent);
            e.u32(*src);
            e.u32(*dst);
            enc_tb_id(e, *id);
            e.u64(*bytes);
        }
    }
}

fn decode_event(d: &mut Dec) -> DecResult<TraceEvent> {
    Ok(match d.u8()? {
        0 => TraceEvent::TbSpan {
            id: dec_tb_id(d)?,
            sm: d.u32()?,
            start: d.u64()?,
            finish: d.u64()?,
        },
        1 => TraceEvent::SmOccupancy {
            cycle: d.u64()?,
            sm: d.u32()?,
            resident: d.u32()?,
        },
        2 => TraceEvent::TbReady {
            cycle: d.u64()?,
            id: dec_tb_id(d)?,
        },
        3 => TraceEvent::TbStall {
            cycle: d.u64()?,
            id: dec_tb_id(d)?,
            ready_at: d.u64()?,
            reason: match d.u8()? {
                0 => StallReason::KernelArrival,
                1 => StallReason::Resources,
                _ => return Err(SnapshotError::Malformed("stall reason")),
            },
        },
        4 => TraceEvent::KernelIssue {
            cycle: d.u64()?,
            seq: d.u32()?,
            name: d.str()?,
            prelaunched: d.bool()?,
        },
        5 => TraceEvent::KernelArrive {
            cycle: d.u64()?,
            seq: d.u32()?,
        },
        6 => TraceEvent::KernelRetire {
            cycle: d.u64()?,
            seq: d.u32()?,
        },
        7 => TraceEvent::DlbInsert {
            cycle: d.u64()?,
            id: dec_tb_id(d)?,
            children: d.u32()?,
            fetch_txns: d.u64()?,
            encoded: d.bool()?,
        },
        8 => TraceEvent::PcbInit {
            cycle: d.u64()?,
            id: dec_tb_id(d)?,
            count: d.u32()?,
            refetch: d.bool()?,
        },
        9 => TraceEvent::PcbSpill {
            cycle: d.u64()?,
            victim: dec_tb_id(d)?,
        },
        10 => TraceEvent::BufferLevels {
            cycle: d.u64()?,
            dlb: d.u32()?,
            pcb: d.u32()?,
        },
        11 => TraceEvent::AnalysisSpan {
            seq: d.u32()?,
            name: d.str()?,
            phase: match d.u8()? {
                0 => AnalysisPhase::Absint,
                1 => AnalysisPhase::Coarse,
                2 => AnalysisPhase::Trace,
                3 => AnalysisPhase::Graph,
                _ => return Err(SnapshotError::Malformed("analysis phase")),
            },
            start_tick: d.u64()?,
            end_tick: d.u64()?,
        },
        12 => TraceEvent::AffineFastPath {
            tick: d.u64()?,
            seq: d.u32()?,
            attempted: d.bool()?,
            accepted: d.bool()?,
            interpreted: d.u32()?,
            synthesized: d.u32()?,
        },
        13 => TraceEvent::CacheProbe {
            tick: d.u64()?,
            seq: d.u32()?,
            graph: d.bool()?,
            hit: d.bool()?,
        },
        14 => TraceEvent::RungTransition {
            tick: d.u64()?,
            seq: d.u32()?,
            rung: d.str()?,
            reason: d.str()?,
        },
        15 => TraceEvent::CmdqSubmit {
            pos: d.u32()?,
            orig: d.u32()?,
            kind: match d.u8()? {
                0 => CmdKind::Malloc,
                1 => CmdKind::MemcpyH2D,
                2 => CmdKind::MemcpyD2H,
                3 => CmdKind::Sync,
                4 => CmdKind::Launch,
                _ => return Err(SnapshotError::Malformed("cmd kind")),
            },
        },
        16 => TraceEvent::Pressure {
            cycle: d.u64()?,
            spill: d.u64()?,
            window_before: d.u32()?,
            window_after: d.u32()?,
        },
        17 => TraceEvent::Quarantine {
            cycle: d.u64()?,
            kernel: d.u32()?,
            round: d.u32()?,
        },
        18 => TraceEvent::DegradationStamp {
            cycle: d.u64()?,
            seq: d.u32()?,
            rung: d.str()?,
            reason: d.str()?,
        },
        19 => TraceEvent::CheckpointSave {
            cycle: d.u64()?,
            retired: d.u32()?,
            bytes: d.u64()?,
        },
        20 => TraceEvent::CheckpointLoad {
            cycle: d.u64()?,
            retired: d.u32()?,
        },
        21 => TraceEvent::CheckpointReject { reason: d.str()? },
        22 => TraceEvent::ServeAdmit {
            tick: d.u64()?,
            request: d.u64()?,
            queued: d.u32()?,
        },
        23 => TraceEvent::ServeStart {
            tick: d.u64()?,
            request: d.u64()?,
            worker: d.u32()?,
            attempt: d.u32()?,
        },
        24 => TraceEvent::ServeRetry {
            tick: d.u64()?,
            request: d.u64()?,
            attempt: d.u32()?,
            backoff: d.u64()?,
            reason: d.str()?,
        },
        25 => TraceEvent::ServeCancel {
            tick: d.u64()?,
            request: d.u64()?,
            deadline: d.bool()?,
        },
        26 => TraceEvent::ServeComplete {
            tick: d.u64()?,
            request: d.u64()?,
            outcome: d.str()?,
        },
        27 => TraceEvent::BreakerTransition {
            tick: d.u64()?,
            app_fp: d.u64()?,
            from: d.str()?,
            to: d.str()?,
        },
        28 => TraceEvent::ParallelDecision {
            tick: d.u64()?,
            seq: d.u32()?,
            tbs: d.u32()?,
            threads: d.u32()?,
            fallback: d.bool()?,
        },
        29 => TraceEvent::MultiTopology {
            devices: d.u32()?,
            sms_per_device: d.u32()?,
        },
        30 => TraceEvent::XferStart {
            cycle: d.u64()?,
            src: d.u32()?,
            dst: d.u32()?,
            id: dec_tb_id(d)?,
            bytes: d.u64()?,
        },
        31 => TraceEvent::XferDone {
            cycle: d.u64()?,
            sent: d.u64()?,
            src: d.u32()?,
            dst: d.u32()?,
            id: dec_tb_id(d)?,
            bytes: d.u64()?,
        },
        _ => return Err(SnapshotError::Malformed("unknown trace-event tag")),
    })
}

// ---------------------------------------------------------------------------
// Section codecs.
// ---------------------------------------------------------------------------

fn enc_meta(m: &SnapshotMeta) -> Vec<u8> {
    let mut e = Enc::default();
    e.u64(m.app_fp);
    e.str(&m.mode);
    e.str(&m.hazard);
    e.u32(m.n_kernels);
    e.u32(m.retired);
    e.u64(m.cycle);
    e.buf
}

fn dec_meta(d: &mut Dec) -> DecResult<SnapshotMeta> {
    Ok(SnapshotMeta {
        app_fp: d.u64()?,
        mode: d.str()?,
        hazard: d.str()?,
        n_kernels: d.u32()?,
        retired: d.u32()?,
        cycle: d.u64()?,
    })
}

fn enc_des(c: &DesCheckpoint) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(c.sms.len() as u32);
    for &(tbs, threads, shared) in &c.sms {
        e.u32(tbs);
        e.u32(threads);
        e.u32(shared);
    }
    e.u32(c.events.len() as u32);
    for &(finish, seq, sm, desc) in &c.events {
        e.u64(finish);
        e.u64(seq);
        e.u32(sm);
        e.key(desc.key);
        e.u32(desc.threads);
        e.u32(desc.shared_bytes);
        e.u64(desc.duration);
    }
    e.u64(c.seq);
    e.u64(c.now);
    e.u32(c.running);
    e.u64(c.last_t);
    e.u32(c.resident.len() as u32);
    for &r in &c.resident {
        e.u32(r);
    }
    e.u64(c.stats.total_cycles);
    e.u128(c.stats.concurrency_integral);
    e.u64(c.stats.tbs_executed);
    e.u32(c.stats.schedule.len() as u32);
    for &(key, start, finish) in &c.stats.schedule {
        e.key(key);
        e.u64(start);
        e.u64(finish);
    }
    e.buf
}

fn dec_des(d: &mut Dec) -> DecResult<DesCheckpoint> {
    let mut sms = Vec::new();
    for _ in 0..d.len()? {
        sms.push((d.u32()?, d.u32()?, d.u32()?));
    }
    let mut events = Vec::new();
    for _ in 0..d.len()? {
        let finish = d.u64()?;
        let seq = d.u64()?;
        let sm = d.u32()?;
        let desc = TbDescriptor {
            key: d.key()?,
            threads: d.u32()?,
            shared_bytes: d.u32()?,
            duration: d.u64()?,
        };
        events.push((finish, seq, sm, desc));
    }
    let seq = d.u64()?;
    let now = d.u64()?;
    let running = d.u32()?;
    let last_t = d.u64()?;
    let mut resident = Vec::new();
    for _ in 0..d.len()? {
        resident.push(d.u32()?);
    }
    let total_cycles = d.u64()?;
    let concurrency_integral = d.u128()?;
    let tbs_executed = d.u64()?;
    let mut schedule = Vec::new();
    for _ in 0..d.len()? {
        schedule.push((d.key()?, d.u64()?, d.u64()?));
    }
    Ok(DesCheckpoint {
        sms,
        events,
        seq,
        now,
        running,
        last_t,
        resident,
        stats: DesStats {
            total_cycles,
            concurrency_integral,
            tbs_executed,
            schedule,
        },
    })
}

fn enc_engine(s: &EngineSnapshot) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(s.window);
    e.u32(s.retired);
    e.u32(s.issued_count);
    e.u64(s.next_issue_floor);
    e.bool(s.consumer_toggle);
    e.u32(s.issue_cycles.len() as u32);
    for &c in &s.issue_cycles {
        e.u64(c);
    }
    e.u32(s.arrivals.len() as u32);
    for &(t, k) in &s.arrivals {
        e.u64(t);
        e.u32(k);
    }
    e.u32(s.kernels.len() as u32);
    for k in &s.kernels {
        e.u32(k.counts.len() as u32);
        for &c in &k.counts {
            e.u32(c);
        }
        e.u32(k.data_ready.len() as u32);
        for &r in &k.data_ready {
            e.opt_u64(r);
        }
        e.u32(k.done.len() as u32);
        for &b in &k.done {
            e.bool(b);
        }
        e.u32(k.ready.len() as u32);
        for &t in &k.ready {
            e.u32(t);
        }
        e.u32(k.pushed.len() as u32);
        for &b in &k.pushed {
            e.bool(b);
        }
        e.u32(k.completed);
        e.opt_u64(k.arrival);
        e.bool(k.issued);
        e.bool(k.complete);
    }
    e.u32(s.pressure.len() as u32);
    for p in &s.pressure {
        e.u64(p.cycle);
        e.u64(p.spill_traffic);
        e.u32(p.window_before);
        e.u32(p.window_after);
    }
    e.u32(s.dlb_entries.len() as u32);
    for (key, children) in &s.dlb_entries {
        e.key(*key);
        e.u32(children.len() as u32);
        for &c in children {
            e.u32(c);
        }
    }
    e.traffic(s.dlb_traffic);
    e.u32(s.dlb_high_water);
    e.u32(s.pcb_counters.len() as u32);
    for &(key, count) in &s.pcb_counters {
        e.key(key);
        e.u32(count);
    }
    e.u32(s.pcb_fifo.len() as u32);
    for &key in &s.pcb_fifo {
        e.key(key);
    }
    e.u32(s.pcb_capacity);
    e.traffic(s.pcb_traffic);
    e.u32(s.pcb_high_water);
    e.buf
}

fn dec_engine(d: &mut Dec) -> DecResult<EngineSnapshot> {
    let window = d.u32()?;
    let retired = d.u32()?;
    let issued_count = d.u32()?;
    let next_issue_floor = d.u64()?;
    let consumer_toggle = d.bool()?;
    let mut issue_cycles = Vec::new();
    for _ in 0..d.len()? {
        issue_cycles.push(d.u64()?);
    }
    let mut arrivals = Vec::new();
    for _ in 0..d.len()? {
        arrivals.push((d.u64()?, d.u32()?));
    }
    let mut kernels = Vec::new();
    for _ in 0..d.len()? {
        let mut counts = Vec::new();
        for _ in 0..d.len()? {
            counts.push(d.u32()?);
        }
        let mut data_ready = Vec::new();
        for _ in 0..d.len()? {
            data_ready.push(d.opt_u64()?);
        }
        let mut done = Vec::new();
        for _ in 0..d.len()? {
            done.push(d.bool()?);
        }
        let mut ready = Vec::new();
        for _ in 0..d.len()? {
            ready.push(d.u32()?);
        }
        let mut pushed = Vec::new();
        for _ in 0..d.len()? {
            pushed.push(d.bool()?);
        }
        kernels.push(KernelSnapshot {
            counts,
            data_ready,
            done,
            ready,
            pushed,
            completed: d.u32()?,
            arrival: d.opt_u64()?,
            issued: d.bool()?,
            complete: d.bool()?,
        });
    }
    let mut pressure = Vec::new();
    for _ in 0..d.len()? {
        pressure.push(PressureEvent {
            cycle: d.u64()?,
            spill_traffic: d.u64()?,
            window_before: d.u32()?,
            window_after: d.u32()?,
        });
    }
    let mut dlb_entries = Vec::new();
    for _ in 0..d.len()? {
        let key = d.key()?;
        let mut children = Vec::new();
        for _ in 0..d.len()? {
            children.push(d.u32()?);
        }
        dlb_entries.push((key, children));
    }
    let dlb_traffic = d.traffic()?;
    let dlb_high_water = d.u32()?;
    let mut pcb_counters = Vec::new();
    for _ in 0..d.len()? {
        pcb_counters.push((d.key()?, d.u32()?));
    }
    let mut pcb_fifo = Vec::new();
    for _ in 0..d.len()? {
        pcb_fifo.push(d.key()?);
    }
    Ok(EngineSnapshot {
        window,
        retired,
        issued_count,
        next_issue_floor,
        consumer_toggle,
        issue_cycles,
        arrivals,
        kernels,
        pressure,
        dlb_entries,
        dlb_traffic,
        dlb_high_water,
        pcb_counters,
        pcb_fifo,
        pcb_capacity: d.u32()?,
        pcb_traffic: d.traffic()?,
        pcb_high_water: d.u32()?,
    })
}

fn enc_guard(g: &GuardSnapshot) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(g.round);
    e.u64(g.report.violations_detected);
    e.u64(g.report.kernels_quarantined);
    e.u64(g.report.cycles_lost_to_fallback);
    e.u32(g.report.recovery_rounds);
    e.u32(g.quarantined.len() as u32);
    for &k in &g.quarantined {
        e.u32(k);
    }
    e.buf
}

fn dec_guard(d: &mut Dec) -> DecResult<GuardSnapshot> {
    let round = d.u32()?;
    let report = GuardReport {
        violations_detected: d.u64()?,
        kernels_quarantined: d.u64()?,
        cycles_lost_to_fallback: d.u64()?,
        recovery_rounds: d.u32()?,
    };
    let mut quarantined = Vec::new();
    for _ in 0..d.len()? {
        quarantined.push(d.u32()?);
    }
    Ok(GuardSnapshot {
        round,
        report,
        quarantined,
    })
}

fn enc_order(order: &[u32]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(order.len() as u32);
    for &i in order {
        e.u32(i);
    }
    e.buf
}

fn dec_order(d: &mut Dec) -> DecResult<Vec<u32>> {
    let mut order = Vec::new();
    for _ in 0..d.len()? {
        order.push(d.u32()?);
    }
    Ok(order)
}

fn enc_trace(events: &[TraceEvent]) -> Vec<u8> {
    let mut e = Enc::default();
    e.u32(events.len() as u32);
    for ev in events {
        encode_event(&mut e, ev);
    }
    e.buf
}

fn dec_trace(d: &mut Dec) -> DecResult<Vec<TraceEvent>> {
    let mut events = Vec::new();
    for _ in 0..d.len()? {
        events.push(decode_event(d)?);
    }
    Ok(events)
}

// ---------------------------------------------------------------------------
// Container encode/decode.
// ---------------------------------------------------------------------------

impl RunSnapshot {
    /// Serializes to the versioned, checksummed container format.
    pub fn encode(&self) -> Vec<u8> {
        let mut sections: Vec<(u32, Vec<u8>)> = vec![
            (TAG_META, enc_meta(&self.meta)),
            (TAG_DES, enc_des(&self.des)),
            (TAG_ENGINE, enc_engine(&self.engine)),
            (TAG_GUARD, enc_guard(&self.guard)),
            (TAG_ORDER, enc_order(&self.order)),
            (TAG_TRACE, enc_trace(&self.trace)),
        ];
        // Single-device snapshots omit the multi section entirely.
        if !self.multi.is_empty() {
            sections.push((TAG_MULTI, self.multi.clone()));
        }
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(sections.len() as u32).to_le_bytes());
        // Section table: tag, offset, len, crc32 — offsets relative to the
        // start of the file.
        let table_at = out.len();
        let entry_bytes = 4 + 8 + 8 + 4;
        out.resize(table_at + sections.len() * entry_bytes, 0);
        let mut offset = out.len() as u64;
        for (i, (tag, payload)) in sections.iter().enumerate() {
            let at = table_at + i * entry_bytes;
            out[at..at + 4].copy_from_slice(&tag.to_le_bytes());
            out[at + 4..at + 12].copy_from_slice(&offset.to_le_bytes());
            out[at + 12..at + 20].copy_from_slice(&(payload.len() as u64).to_le_bytes());
            out[at + 20..at + 24].copy_from_slice(&crc32(payload).to_le_bytes());
            offset += payload.len() as u64;
        }
        for (_, payload) in &sections {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Decodes and fully validates a snapshot: magic, version, section
    /// table bounds, and every section's CRC32.
    ///
    /// # Errors
    ///
    /// The precise [`SnapshotError`] for the first damage found.
    pub fn decode(bytes: &[u8]) -> Result<Self, SnapshotError> {
        let sections = section_table(bytes)?;
        let mut meta = None;
        let mut des = None;
        let mut engine = None;
        let mut guard = None;
        let mut order = None;
        let mut trace = None;
        let mut multi = Vec::new();
        for (tag, payload) in sections {
            let mut d = Dec::new(payload);
            match tag {
                TAG_META => meta = Some(dec_meta(&mut d)?),
                TAG_DES => des = Some(dec_des(&mut d)?),
                TAG_ENGINE => engine = Some(dec_engine(&mut d)?),
                TAG_GUARD => guard = Some(dec_guard(&mut d)?),
                TAG_ORDER => order = Some(dec_order(&mut d)?),
                TAG_TRACE => trace = Some(dec_trace(&mut d)?),
                TAG_MULTI => {
                    // Opaque to this layer: bm-multi validates the contents.
                    multi = payload.to_vec();
                    continue;
                }
                // Unknown sections within a supported version are not
                // possible today; reject rather than silently ignore.
                _ => return Err(SnapshotError::Malformed("unknown section tag")),
            }
            if !d.done() {
                return Err(SnapshotError::Malformed("trailing bytes in section"));
            }
        }
        Ok(RunSnapshot {
            meta: meta.ok_or(SnapshotError::Malformed("missing meta section"))?,
            des: des.ok_or(SnapshotError::Malformed("missing des section"))?,
            engine: engine.ok_or(SnapshotError::Malformed("missing engine section"))?,
            guard: guard.ok_or(SnapshotError::Malformed("missing guard section"))?,
            order: order.ok_or(SnapshotError::Malformed("missing order section"))?,
            trace: trace.ok_or(SnapshotError::Malformed("missing trace section"))?,
            multi,
        })
    }
}

/// Parses and validates the container header, returning `(tag, payload)`
/// per section with checksums verified.
fn section_table(bytes: &[u8]) -> Result<Vec<(u32, &[u8])>, SnapshotError> {
    let mut d = Dec::new(bytes);
    if d.take(8)? != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = d.u32()?;
    if version != FORMAT_VERSION {
        return Err(SnapshotError::UnsupportedVersion { found: version });
    }
    let count = d.u32()? as usize;
    if count > 64 {
        return Err(SnapshotError::Malformed("implausible section count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = d.u32()?;
        let offset = d.u64()? as usize;
        let len = d.u64()? as usize;
        let crc = d.u32()?;
        let end = offset.checked_add(len).ok_or(SnapshotError::Truncated)?;
        if end > bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let payload = &bytes[offset..end];
        if crc32(payload) != crc {
            return Err(SnapshotError::ChecksumMismatch { section: tag });
        }
        out.push((tag, payload));
    }
    Ok(out)
}

/// Human/machine-readable manifest of an encoded snapshot: header fields
/// plus one entry per section (tag, length, CRC32). Round-trips through the
/// strict JSON parser byte-identically.
///
/// # Errors
///
/// Any header/table/checksum damage, as [`RunSnapshot::decode`] would
/// report it.
pub fn manifest(bytes: &[u8]) -> Result<Json, SnapshotError> {
    let sections = section_table(bytes)?;
    let meta_payload = sections
        .iter()
        .find(|(tag, _)| *tag == TAG_META)
        .map(|(_, p)| *p)
        .ok_or(SnapshotError::Malformed("missing meta section"))?;
    let meta = dec_meta(&mut Dec::new(meta_payload))?;
    let mut doc = BTreeMap::new();
    doc.insert("magic".to_string(), Json::Str("BMSNAP02".to_string()));
    doc.insert("version".to_string(), Json::u64(FORMAT_VERSION as u64));
    doc.insert("total_bytes".to_string(), Json::u64(bytes.len() as u64));
    doc.insert("app_fingerprint".to_string(), Json::u64(meta.app_fp));
    doc.insert("mode".to_string(), Json::Str(meta.mode));
    doc.insert("hazard".to_string(), Json::Str(meta.hazard));
    doc.insert("n_kernels".to_string(), Json::u64(meta.n_kernels as u64));
    doc.insert("retired".to_string(), Json::u64(meta.retired as u64));
    doc.insert("cycle".to_string(), Json::u64(meta.cycle));
    let names = |tag: u32| match tag {
        TAG_META => "meta",
        TAG_DES => "des",
        TAG_ENGINE => "engine",
        TAG_GUARD => "guard",
        TAG_ORDER => "order",
        TAG_TRACE => "trace",
        TAG_MULTI => "multi",
        _ => "unknown",
    };
    let section_docs: Vec<Json> = sections
        .iter()
        .map(|(tag, payload)| {
            let mut s = BTreeMap::new();
            s.insert("tag".to_string(), Json::u64(*tag as u64));
            s.insert("name".to_string(), Json::Str(names(*tag).to_string()));
            s.insert("bytes".to_string(), Json::u64(payload.len() as u64));
            s.insert("crc32".to_string(), Json::u64(crc32(payload) as u64));
            Json::Obj(s)
        })
        .collect();
    doc.insert("sections".to_string(), Json::Arr(section_docs));
    Ok(Json::Obj(doc))
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_answer() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_snapshot() -> RunSnapshot {
        let key = |k: u32, tb: u32| TbKey { kernel_seq: k, tb };
        RunSnapshot {
            meta: SnapshotMeta {
                app_fp: 0xDEAD_BEEF_CAFE_F00D,
                mode: "consumer(w=2)".into(),
                hazard: "Raw".into(),
                n_kernels: 4,
                retired: 2,
                cycle: 12_345,
            },
            des: DesCheckpoint {
                sms: vec![(4, 512, 48 << 10), (3, 448, 40 << 10)],
                events: vec![(
                    100,
                    7,
                    1,
                    TbDescriptor {
                        key: key(2, 3),
                        threads: 64,
                        shared_bytes: 0,
                        duration: 90,
                    },
                )],
                seq: 9,
                now: 12_345,
                running: 1,
                last_t: 12_000,
                resident: vec![1, 0],
                stats: DesStats {
                    total_cycles: 0,
                    concurrency_integral: u128::from(u64::MAX) + 17,
                    tbs_executed: 16,
                    schedule: vec![(key(0, 0), 10, 20), (key(1, 1), 20, 40)],
                },
            },
            engine: EngineSnapshot {
                window: 2,
                retired: 2,
                issued_count: 4,
                next_issue_floor: 900,
                consumer_toggle: true,
                issue_cycles: vec![0, 200, 400, 600],
                arrivals: vec![(13_000, 3)],
                kernels: vec![
                    KernelSnapshot {
                        counts: vec![0, 0],
                        data_ready: vec![Some(0), Some(0)],
                        done: vec![true, true],
                        ready: vec![],
                        pushed: vec![true, true],
                        completed: 2,
                        arrival: Some(0),
                        issued: true,
                        complete: true,
                    },
                    KernelSnapshot {
                        counts: vec![1, 63],
                        data_ready: vec![Some(40), None],
                        done: vec![false, false],
                        ready: vec![0],
                        pushed: vec![true, false],
                        completed: 0,
                        arrival: Some(700),
                        issued: true,
                        complete: false,
                    },
                ],
                pressure: vec![PressureEvent {
                    cycle: 5_000,
                    spill_traffic: 1_000,
                    window_before: 4,
                    window_after: 2,
                }],
                dlb_entries: vec![(key(1, 0), vec![0, 1]), (key(1, 1), vec![])],
                dlb_traffic: HwTraffic {
                    dep_list_fetches: 3,
                    counter_fetches: 0,
                    counter_writebacks: 0,
                },
                dlb_high_water: 5,
                pcb_counters: vec![(key(2, 0), 1)],
                pcb_fifo: vec![key(2, 1), key(2, 0)],
                pcb_capacity: 896,
                pcb_traffic: HwTraffic {
                    dep_list_fetches: 0,
                    counter_fetches: 7,
                    counter_writebacks: 2,
                },
                pcb_high_water: 4,
            },
            guard: GuardSnapshot {
                round: 1,
                report: GuardReport {
                    violations_detected: 1,
                    kernels_quarantined: 1,
                    cycles_lost_to_fallback: 4_000,
                    recovery_rounds: 1,
                },
                quarantined: vec![2],
            },
            order: vec![0, 2, 1, 3],
            trace: vec![
                TraceEvent::KernelIssue {
                    cycle: 0,
                    seq: 0,
                    name: "k0".into(),
                    prelaunched: false,
                },
                TraceEvent::TbStall {
                    cycle: 10,
                    id: TbId { kernel: 0, tb: 0 },
                    ready_at: 5,
                    reason: StallReason::Resources,
                },
                TraceEvent::CheckpointSave {
                    cycle: 12_345,
                    retired: 2,
                    bytes: 0,
                },
            ],
            multi: Vec::new(),
        }
    }

    #[test]
    fn round_trips_bit_identically() {
        let snap = sample_snapshot();
        let bytes = snap.encode();
        let back = RunSnapshot::decode(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn every_event_variant_round_trips() {
        let id = TbId { kernel: 3, tb: 9 };
        let events = vec![
            TraceEvent::TbSpan {
                id,
                sm: 2,
                start: 1,
                finish: 2,
            },
            TraceEvent::SmOccupancy {
                cycle: 1,
                sm: 0,
                resident: 3,
            },
            TraceEvent::TbReady { cycle: 4, id },
            TraceEvent::TbStall {
                cycle: 5,
                id,
                ready_at: 4,
                reason: StallReason::KernelArrival,
            },
            TraceEvent::KernelIssue {
                cycle: 0,
                seq: 1,
                name: "k".into(),
                prelaunched: true,
            },
            TraceEvent::KernelArrive { cycle: 6, seq: 1 },
            TraceEvent::KernelRetire { cycle: 7, seq: 0 },
            TraceEvent::DlbInsert {
                cycle: 8,
                id,
                children: 4,
                fetch_txns: 1,
                encoded: false,
            },
            TraceEvent::PcbInit {
                cycle: 9,
                id,
                count: 63,
                refetch: true,
            },
            TraceEvent::PcbSpill {
                cycle: 10,
                victim: id,
            },
            TraceEvent::BufferLevels {
                cycle: 11,
                dlb: 1,
                pcb: 2,
            },
            TraceEvent::AnalysisSpan {
                seq: 0,
                name: "k".into(),
                phase: AnalysisPhase::Coarse,
                start_tick: 1,
                end_tick: 5,
            },
            TraceEvent::AffineFastPath {
                tick: 2,
                seq: 0,
                attempted: true,
                accepted: false,
                interpreted: 8,
                synthesized: 0,
            },
            TraceEvent::CacheProbe {
                tick: 3,
                seq: 1,
                graph: true,
                hit: false,
            },
            TraceEvent::RungTransition {
                tick: 4,
                seq: 2,
                rung: "barrier".into(),
                reason: "non-static access pattern".into(),
            },
            TraceEvent::CmdqSubmit {
                pos: 1,
                orig: 2,
                kind: CmdKind::MemcpyD2H,
            },
            TraceEvent::Pressure {
                cycle: 12,
                spill: 999,
                window_before: 4,
                window_after: 2,
            },
            TraceEvent::Quarantine {
                cycle: 13,
                kernel: 1,
                round: 0,
            },
            TraceEvent::DegradationStamp {
                cycle: 14,
                seq: 3,
                rung: "coarse".into(),
                reason: "precise analysis over budget".into(),
            },
            TraceEvent::CheckpointSave {
                cycle: 15,
                retired: 2,
                bytes: u64::MAX,
            },
            TraceEvent::CheckpointLoad {
                cycle: 15,
                retired: 2,
            },
            TraceEvent::CheckpointReject {
                reason: "snapshot truncated".into(),
            },
            TraceEvent::MultiTopology {
                devices: 4,
                sms_per_device: 28,
            },
            TraceEvent::XferStart {
                cycle: 16,
                src: 0,
                dst: 3,
                id,
                bytes: 256,
            },
            TraceEvent::XferDone {
                cycle: 116,
                sent: 16,
                src: 0,
                dst: 3,
                id,
                bytes: 256,
            },
        ];
        let payload = enc_trace(&events);
        let back = dec_trace(&mut Dec::new(&payload)).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn bad_magic_version_truncation_and_bitflips_are_typed() {
        let bytes = sample_snapshot().encode();

        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            RunSnapshot::decode(&wrong_magic).unwrap_err(),
            SnapshotError::BadMagic
        );

        let mut wrong_version = bytes.clone();
        wrong_version[8] = 99;
        assert_eq!(
            RunSnapshot::decode(&wrong_version).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );

        for cut in [3, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = RunSnapshot::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated | SnapshotError::Malformed(_)),
                "cut at {cut}: {err:?}"
            );
        }

        // Flip one bit in every payload byte position: decode must fail
        // with a typed error (checksum catches payload damage) and must
        // never panic.
        let payload_start = 8 + 4 + 4 + 6 * 24;
        for pos in payload_start..bytes.len() {
            let mut dam = bytes.clone();
            dam[pos] ^= 0x01;
            let err = RunSnapshot::decode(&dam).unwrap_err();
            assert!(
                matches!(err, SnapshotError::ChecksumMismatch { .. }),
                "flip at {pos}: {err:?}"
            );
        }
        assert!(RunSnapshot::decode(&bytes).is_ok(), "pristine still loads");
    }

    #[test]
    fn empty_sections_round_trip() {
        let snap = RunSnapshot::default();
        let bytes = snap.encode();
        assert_eq!(RunSnapshot::decode(&bytes).unwrap(), snap);
    }

    #[test]
    fn policy_triggers() {
        assert!(!CheckpointPolicy::disabled().is_enabled());
        let p = CheckpointPolicy::every_kernels(2);
        assert!(p.is_enabled());
        assert!(!p.due(1, 1_000_000));
        assert!(p.due(2, 0));
        let c = CheckpointPolicy {
            every_n_kernels: None,
            every_n_cycles: Some(500),
        };
        assert!(!c.due(3, 499));
        assert!(c.due(0, 500));
    }

    #[test]
    fn mem_store_keeps_every_save() {
        let mut store = MemStore::default();
        assert_eq!(store.load().unwrap(), None);
        store.save(b"one").unwrap();
        store.save(b"two").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"two");
        assert_eq!(store.snaps.len(), 2);
    }

    #[test]
    fn dir_store_atomic_save_load() {
        let dir = std::env::temp_dir().join(format!("bmsnap-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirStore::new(&dir);
        assert_eq!(store.load().unwrap(), None);
        store.save(b"payload").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"payload");
        // No temp residue after a completed save.
        let residue: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(residue.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_write_fsyncs_the_file_and_its_directory() {
        let dir = std::env::temp_dir().join(format!("bmsync-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let stats = atomic_write_counted(&dir.join("a.bin"), b"data").unwrap();
        assert_eq!(stats.file_syncs, 1, "temp file must be fsynced pre-rename");
        assert_eq!(stats.dir_syncs, 1, "directory must be fsynced post-rename");
        // The counting store accumulates across saves.
        let mut store = DirStore::new(&dir);
        store.save(b"one").unwrap();
        store.save(b"two").unwrap();
        assert_eq!(store.syncs.file_syncs, 2);
        assert_eq!(store.syncs.dir_syncs, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn dir_store_environmental_failures_are_typed_never_panics() {
        let dir = std::env::temp_dir().join(format!("bmenv-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        // A regular file where a directory is needed: creation of the
        // snapshot's parent fails with a typed Io error (this holds even
        // for root, unlike permission-bit failures).
        let blocker = dir.join("not-a-dir");
        std::fs::write(&blocker, b"x").unwrap();
        let mut store = DirStore::new(blocker.join("sub"));
        assert!(matches!(
            store.save(b"payload").unwrap_err(),
            SnapshotError::Io(_)
        ));
        // Same for a path whose final component can't be created.
        let mut store = DirStore::at_file(blocker.join("latest.bmsnap"));
        assert!(matches!(
            store.save(b"payload").unwrap_err(),
            SnapshotError::Io(_)
        ));
        // A path with no file name is rejected up front.
        assert!(atomic_write(Path::new("/"), b"x").is_err());
        // A read-only directory: typed Io when the OS enforces it (a root
        // test runner bypasses permission bits, so Ok is tolerated — the
        // assertion is "typed error or success, never a panic").
        #[cfg(unix)]
        {
            use std::os::unix::fs::PermissionsExt;
            let ro = dir.join("ro");
            std::fs::create_dir_all(&ro).unwrap();
            std::fs::set_permissions(&ro, std::fs::Permissions::from_mode(0o555)).unwrap();
            let mut store = DirStore::new(&ro);
            match store.save(b"payload") {
                Ok(()) => {}
                Err(SnapshotError::Io(_)) => {}
                Err(other) => panic!("read-only dir must yield Io, got {other:?}"),
            }
            std::fs::set_permissions(&ro, std::fs::Permissions::from_mode(0o755)).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn interrupted_writer_leaves_no_partial_file_visible_to_resume() {
        let dir = std::env::temp_dir().join(format!("bmpartial-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = DirStore::new(&dir);
        store.save(b"full-snapshot").unwrap();
        // Simulate a writer that died mid-write (ENOSPC, kill -9): a
        // partial temp file next to the snapshot. Resume must never see
        // it — load() reads only the committed name.
        std::fs::write(dir.join("latest.bmsnap.tmp"), b"par").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"full-snapshot");
        // And the next save commits right over the residue.
        store.save(b"newer-snapshot").unwrap();
        assert_eq!(store.load().unwrap().unwrap(), b"newer-snapshot");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_writers_never_interleave() {
        let dir = std::env::temp_dir().join(format!("bmconc-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let writers: Vec<_> = (0..4u8)
            .map(|w| {
                let path = path.clone();
                std::thread::spawn(move || {
                    let payload = vec![b'a' + w; 4096];
                    for _ in 0..25 {
                        atomic_write(&path, &payload).unwrap();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        // Whatever write won, the reader sees one complete payload —
        // 4096 copies of a single byte, never a mix.
        let bytes = std::fs::read(&path).unwrap();
        assert_eq!(bytes.len(), 4096);
        assert!(
            bytes.windows(2).all(|w| w[0] == w[1]),
            "interleaved payloads observed"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_reports_sections_and_round_trips() {
        let bytes = sample_snapshot().encode();
        let doc = manifest(&bytes).unwrap();
        let text = doc.to_string();
        assert!(text.contains("\"magic\":\"BMSNAP02\""));
        assert!(text.contains("\"name\":\"engine\""));
        let reparsed = bm_trace::json::parse(&text).unwrap();
        assert_eq!(reparsed.to_string(), text);
        let mut dam = bytes;
        dam[200] ^= 0x10;
        assert!(matches!(
            manifest(&dam).unwrap_err(),
            SnapshotError::ChecksumMismatch { .. }
        ));
    }
}
