//! Execution modes evaluated in the paper (Fig. 9).

use std::fmt;

/// How the GPU executes a multi-kernel application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Serialized kernels, full 5 µs launch overhead on the critical path.
    Baseline,
    /// Serialized kernels with zero launch overhead (the "ideal baseline"
    /// reference bars of Fig. 9).
    IdealBaseline,
    /// CUDA-Graphs-style execution ("Tasks as Kernels", §V): the whole
    /// kernel graph is instantiated and launched once — a single launch
    /// overhead up front, then serialized kernels with no per-kernel
    /// launch cost and no thread-block overlap.
    GraphLaunch,
    /// Kernel pre-launching only: launch overheads are masked, but a
    /// dependent kernel's TBs wait until the *whole* producer kernel
    /// completes (Fig. 2b).
    PreLaunch {
        /// Concurrently-active kernels (pre-launched + 1).
        window: u32,
    },
    /// Fine-grain TB-level dependency resolution with scheduling priority
    /// for the producing kernel's TBs (Fig. 2c).
    ProducerPriority {
        /// Concurrently-active kernels.
        window: u32,
    },
    /// Fine-grain resolution with priority for the consuming kernel's TBs
    /// ("run-ahead").
    ConsumerPriority {
        /// Concurrently-active kernels (2, 3, 4 ⇒ 1–3 pre-launched).
        window: u32,
    },
}

impl ExecMode {
    /// The Fig. 9 variant set, in presentation order.
    pub fn figure9_variants() -> Vec<ExecMode> {
        vec![
            ExecMode::PreLaunch { window: 2 },
            ExecMode::ProducerPriority { window: 2 },
            ExecMode::ConsumerPriority { window: 2 },
            ExecMode::ConsumerPriority { window: 3 },
            ExecMode::ConsumerPriority { window: 4 },
            ExecMode::IdealBaseline,
        ]
    }

    /// Number of concurrently-active kernels.
    pub fn window(&self) -> u32 {
        match self {
            ExecMode::Baseline | ExecMode::IdealBaseline | ExecMode::GraphLaunch => 1,
            ExecMode::PreLaunch { window }
            | ExecMode::ProducerPriority { window }
            | ExecMode::ConsumerPriority { window } => (*window).max(1),
        }
    }

    /// Whether TB-level dependencies are resolved (vs whole-kernel
    /// barriers).
    pub fn fine_grain(&self) -> bool {
        matches!(
            self,
            ExecMode::ProducerPriority { .. } | ExecMode::ConsumerPriority { .. }
        )
    }

    /// Whether the consuming kernel's TBs get scheduling priority.
    pub fn consumer_priority(&self) -> bool {
        matches!(self, ExecMode::ConsumerPriority { .. })
    }

    /// Whether per-kernel launch overhead is charged (everything except
    /// the ideal baseline and whole-graph launching).
    pub fn has_launch_overhead(&self) -> bool {
        !matches!(self, ExecMode::IdealBaseline | ExecMode::GraphLaunch)
    }

    /// Whether kernels may be pre-launched (window > 1 semantics plus
    /// command reordering and non-blocking memory APIs).
    pub fn prelaunches(&self) -> bool {
        !matches!(
            self,
            ExecMode::Baseline | ExecMode::IdealBaseline | ExecMode::GraphLaunch
        )
    }
}

impl fmt::Display for ExecMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecMode::Baseline => f.write_str("baseline"),
            ExecMode::IdealBaseline => f.write_str("ideal-baseline"),
            ExecMode::GraphLaunch => f.write_str("cuda-graph"),
            ExecMode::PreLaunch { window } => write!(f, "prelaunch(w={window})"),
            ExecMode::ProducerPriority { window } => write!(f, "producer(w={window})"),
            ExecMode::ConsumerPriority { window } => write!(f, "consumer(w={window})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_and_flags() {
        assert_eq!(ExecMode::Baseline.window(), 1);
        assert_eq!(ExecMode::ConsumerPriority { window: 4 }.window(), 4);
        assert!(!ExecMode::PreLaunch { window: 2 }.fine_grain());
        assert!(ExecMode::ProducerPriority { window: 2 }.fine_grain());
        assert!(ExecMode::ConsumerPriority { window: 2 }.consumer_priority());
        assert!(!ExecMode::IdealBaseline.has_launch_overhead());
        assert!(!ExecMode::Baseline.prelaunches());
        assert!(ExecMode::PreLaunch { window: 2 }.prelaunches());
        assert_eq!(ExecMode::GraphLaunch.window(), 1);
        assert!(!ExecMode::GraphLaunch.has_launch_overhead());
        assert!(!ExecMode::GraphLaunch.prelaunches());
        assert_eq!(ExecMode::GraphLaunch.to_string(), "cuda-graph");
    }

    #[test]
    fn figure9_set_is_complete() {
        let v = ExecMode::figure9_variants();
        assert_eq!(v.len(), 6);
        assert_eq!(v[0], ExecMode::PreLaunch { window: 2 });
        assert_eq!(*v.last().unwrap(), ExecMode::IdealBaseline);
    }
}
