//! Structural properties of the Fig. 14 comparison models, checked
//! directly against the schedules they produce.

use blockmaestro::compare::{run_task_graph, CompareModel, TaskGraph, WIREFRAME_RUNAHEAD};
use bm_simt::des::TbKey;
use bm_simt::GpuConfig;
use std::collections::HashMap;

fn level_finish_times(schedule: &[(TbKey, u64, u64)]) -> HashMap<u32, u64> {
    let mut out: HashMap<u32, u64> = HashMap::new();
    for &(k, _, f) in schedule {
        let e = out.entry(k.kernel_seq).or_insert(0);
        *e = (*e).max(f);
    }
    out
}

#[test]
fn cdp_charges_launch_latency_per_task() {
    let cfg = GpuConfig::titan_x_pascal();
    let g = TaskGraph::diamond("t", 8, 1_000, 128);
    let stats = run_task_graph(&cfg, &g, CompareModel::Cdp);
    // Every task's start is at least launch latency after its parents'
    // finishes.
    let mut finish: HashMap<(u32, u32), u64> = HashMap::new();
    for &(k, _, f) in &stats.schedule {
        finish.insert((k.kernel_seq, k.tb), f);
    }
    for &(k, start, _) in &stats.schedule {
        let level = k.kernel_seq as usize;
        for p in g.parents(level, k.tb) {
            let pf = finish[&(level as u32 - 1, p)];
            assert!(
                start >= pf + cfg.device_launch_cycles(),
                "task ({level},{}) started {start}, parent finished {pf}",
                k.tb
            );
        }
    }
}

#[test]
fn wireframe_respects_runahead_window() {
    let cfg = GpuConfig::titan_x_pascal();
    let g = TaskGraph::diamond("t", 16, 2_000, 128);
    let stats = run_task_graph(&cfg, &g, CompareModel::Wireframe);
    let level_done = level_finish_times(&stats.schedule);
    for &(k, start, _) in &stats.schedule {
        let level = k.kernel_seq as usize;
        if level >= WIREFRAME_RUNAHEAD {
            let gate = level_done[&(level as u32 - WIREFRAME_RUNAHEAD as u32)];
            assert!(
                start >= gate,
                "level {level} ran ahead of the {WIREFRAME_RUNAHEAD}-wave window"
            );
        }
    }
}

#[test]
fn bm_window_limits_levels_in_flight() {
    let cfg = GpuConfig::titan_x_pascal();
    let g = TaskGraph::diamond("t", 16, 2_000, 128);
    for (model, window) in [
        (CompareModel::BmProducer, 2usize),
        (CompareModel::BmConsumer, 4),
    ] {
        let stats = run_task_graph(&cfg, &g, model);
        // At every task start, the set of levels with running tasks must
        // span at most `window` distinct levels.
        let mut events: Vec<(u64, i32, u32)> = Vec::new();
        for &(k, s, f) in &stats.schedule {
            events.push((s, 1, k.kernel_seq));
            events.push((f, -1, k.kernel_seq));
        }
        events.sort_by_key(|&(t, d, _)| (t, d)); // finishes before starts at ties
        let mut running: HashMap<u32, i64> = HashMap::new();
        for (_, d, level) in events {
            let e = running.entry(level).or_insert(0);
            *e += d as i64;
            if *e == 0 {
                running.remove(&level);
            }
            let levels: Vec<u32> = running.keys().copied().collect();
            if let (Some(&min), Some(&max)) = (levels.iter().min(), levels.iter().max()) {
                assert!(
                    ((max - min) as usize) < window,
                    "{}: levels {min}..{max} simultaneously running",
                    model.label()
                );
            }
        }
    }
}

#[test]
fn all_models_respect_data_dependencies() {
    let cfg = GpuConfig::titan_x_pascal();
    let g = TaskGraph::diamond("t", 12, 1_500, 128);
    for model in CompareModel::all() {
        let stats = run_task_graph(&cfg, &g, model);
        let mut finish: HashMap<(u32, u32), u64> = HashMap::new();
        for &(k, _, f) in &stats.schedule {
            finish.insert((k.kernel_seq, k.tb), f);
        }
        for &(k, start, _) in &stats.schedule {
            let level = k.kernel_seq as usize;
            for p in g.parents(level, k.tb) {
                let pf = finish[&(level as u32 - 1, p)];
                assert!(
                    start >= pf,
                    "{}: task ({level},{}) started before parent finished",
                    model.label(),
                    k.tb
                );
            }
        }
    }
}
