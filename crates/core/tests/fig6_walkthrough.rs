//! Replays the paper's Fig. 6 thread-block scheduling example against the
//! hardware buffer models: a parent kernel K1 of five TBs, a pre-launched
//! child kernel K2 of four TBs, the dependency list indexed by parent TB,
//! and parent counters that release child TBs as they reach zero.

use blockmaestro::hw::{DepListBuffer, ParentCounterBuffer};
use bm_depgraph::{classify, BipartiteGraph, Pattern};
use bm_simt::des::TbKey;

fn key(k: u32, tb: u32) -> TbKey {
    TbKey { kernel_seq: k, tb }
}

/// The Fig. 6 bipartite graph: K1 has 5 TBs, K2 has 4.
/// K1:0 → {K2:0, K2:1}; K1:1 → {K2:1, K2:2}; K1:2 → {K2:2};
/// K1:3 → {K2:3}; K1:4 → {K2:3}.
fn fig6_graph() -> BipartiteGraph {
    BipartiteGraph::from_children(
        5,
        4,
        vec![vec![0, 1], vec![1, 2], vec![2], vec![3], vec![3]],
    )
}

#[test]
fn fig6_parent_counts_match_the_figure() {
    let g = fig6_graph();
    // Parent count table from the figure: TB0:1, TB1:2, TB2:2, TB3:2.
    assert_eq!(g.parent_counts(), vec![1, 2, 2, 2]);
    assert_eq!(g.num_edges(), 7);
    // Sliding windows over parents -> the overlapped pattern family.
    assert!(matches!(
        classify(&g),
        Pattern::Overlapped { .. } | Pattern::Irregular
    ));
}

#[test]
fn fig6_scheduling_sequence() {
    let g = fig6_graph();
    let mut dlb = DepListBuffer::new();
    let mut pcb = ParentCounterBuffer::default();
    let counts = g.parent_counts();
    // (a) K1 launched, K2 pre-launched: counters initialized.
    for (tb, &c) in counts.iter().enumerate() {
        pcb.init(key(2, tb as u32), c);
    }
    // (b) The device schedules K1's TBs 0..3 (4 concurrent slots); each
    // buffers its dependency-list entry.
    for tb in 0..4u32 {
        dlb.insert(key(1, tb), g.children_of(tb), false);
    }
    // TB0 finishes: children K2:0, K2:1 decremented; K2:0 becomes ready.
    let children = dlb.take(key(1, 0));
    assert_eq!(children, vec![0, 1]);
    let mut ready: Vec<u32> = Vec::new();
    for c in children {
        if pcb.decrement(key(2, c)) {
            ready.push(c);
        }
    }
    assert_eq!(ready, vec![0], "K2:0 is the first child released");
    // The freed slot lets K1:4 start.
    dlb.insert(key(1, 4), g.children_of(4), false);
    // (c) K1 TBs 1..3 finish, releasing K2:1 and K2:2.
    let mut released = Vec::new();
    for tb in 1..4u32 {
        for c in dlb.take(key(1, tb)) {
            if pcb.decrement(key(2, c)) {
                released.push(c);
            }
        }
    }
    assert_eq!(released, vec![1, 2]);
    // (d) K1:4 finishes: K2:3's two parents were K1:3 (done) and K1:4.
    let mut last = Vec::new();
    for c in dlb.take(key(1, 4)) {
        if pcb.decrement(key(2, c)) {
            last.push(c);
        }
    }
    assert_eq!(last, vec![3], "K2:3 released when both parents complete");
    // Parent-counter entries deallocate as children get scheduled.
    for tb in 0..4u32 {
        pcb.release(key(2, tb));
        assert_eq!(pcb.get(key(2, tb)), None);
    }
    // All dependency-list entries were consumed.
    assert_eq!(dlb.take(key(1, 0)), Vec::<u32>::new());
}

#[test]
fn fig6_storage_fits_buffer_entry_width() {
    // Every parent in the figure has at most 2 children, comfortably
    // within the 4-children-per-entry hardware width (§IV-C).
    let g = fig6_graph();
    for p in 0..5 {
        assert!(g.children_of(p).len() <= blockmaestro::hw::CHILDREN_PER_ENTRY);
    }
    // Degrees stay within the 6-bit counter.
    assert!(g.max_child_degree() <= blockmaestro::hw::MAX_COUNTER);
}
