//! Property test: the canonical printer and the parser are exact inverses
//! over randomly-generated kernels.

use bm_ptx::isa::*;
use bm_ptx::kernel::{Kernel, Param};
use bm_ptx::parser::parse_kernel;
use bm_testkit::{check_cases, Rng};

fn gen_reg(rng: &mut Rng, class: RegClass) -> Reg {
    Reg {
        class,
        idx: rng.range_u32(0, 12) as u16,
    }
}

fn gen_int_operand(rng: &mut Rng) -> Operand {
    match rng.range_u32(0, 3) {
        0 => Operand::Reg(gen_reg(rng, RegClass::R32)),
        1 => Operand::ImmI(rng.range_i64(-1000, 1000)),
        _ => Operand::Special(*rng.pick(&[
            Special::TidX,
            Special::CtaidX,
            Special::NtidX,
            Special::NctaidX,
            Special::TidY,
            Special::CtaidY,
        ])),
    }
}

fn gen_float_operand(rng: &mut Rng) -> Operand {
    if rng.flip() {
        Operand::Reg(gen_reg(rng, RegClass::F32))
    } else {
        Operand::ImmF(rng.range_i64(-100, 100) as f32 * 0.5)
    }
}

fn gen_int_op(rng: &mut Rng) -> IntOp {
    *rng.pick(&[
        IntOp::Add,
        IntOp::Sub,
        IntOp::Mul,
        IntOp::Div,
        IntOp::Rem,
        IntOp::Min,
        IntOp::Max,
        IntOp::And,
        IntOp::Or,
        IntOp::Xor,
        IntOp::Shl,
        IntOp::Shr,
    ])
}

fn gen_cmp_op(rng: &mut Rng) -> CmpOp {
    *rng.pick(&[
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ])
}

fn gen_op(rng: &mut Rng, nparams: u16, body_len: usize) -> Op {
    match rng.range_u32(0, 20) {
        0 => Op::Mov {
            dst: gen_reg(rng, RegClass::R32),
            src: gen_int_operand(rng),
        },
        1 => Op::Mov {
            dst: gen_reg(rng, RegClass::F32),
            src: gen_float_operand(rng),
        },
        2 => Op::Cvt {
            dst: gen_reg(rng, RegClass::R64),
            src: Operand::Reg(gen_reg(rng, RegClass::R32)),
        },
        3 => Op::Int {
            op: gen_int_op(rng),
            ty: IntTy::U32,
            dst: gen_reg(rng, RegClass::R32),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
        },
        4 => Op::Int {
            op: gen_int_op(rng),
            ty: IntTy::U64,
            dst: gen_reg(rng, RegClass::R64),
            a: Operand::Reg(gen_reg(rng, RegClass::R64)),
            b: Operand::Reg(gen_reg(rng, RegClass::R64)),
        },
        5 => Op::Mad {
            ty: IntTy::U32,
            dst: gen_reg(rng, RegClass::R32),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
            c: gen_int_operand(rng),
        },
        6 => Op::MulWide {
            dst: gen_reg(rng, RegClass::R64),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
        },
        7 => Op::MadWide {
            dst: gen_reg(rng, RegClass::R64),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
            c: Operand::Reg(gen_reg(rng, RegClass::R64)),
        },
        8 => Op::Float {
            op: FloatOp::Add,
            dst: gen_reg(rng, RegClass::F32),
            a: gen_float_operand(rng),
            b: gen_float_operand(rng),
        },
        9 => Op::Fma {
            dst: gen_reg(rng, RegClass::F32),
            a: gen_float_operand(rng),
            b: gen_float_operand(rng),
            c: gen_float_operand(rng),
        },
        10 => Op::Sqrt {
            dst: gen_reg(rng, RegClass::F32),
            a: gen_float_operand(rng),
        },
        11 => Op::Setp {
            cmp: gen_cmp_op(rng),
            ty: IntTy::U32,
            dst: gen_reg(rng, RegClass::Pred),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
        },
        12 => Op::SetpF {
            cmp: gen_cmp_op(rng),
            dst: gen_reg(rng, RegClass::Pred),
            a: gen_float_operand(rng),
            b: gen_float_operand(rng),
        },
        13 => Op::Selp {
            dst: gen_reg(rng, RegClass::R32),
            a: gen_int_operand(rng),
            b: gen_int_operand(rng),
            p: gen_reg(rng, RegClass::Pred),
        },
        14 => Op::Ld {
            space: MemSpace::Global,
            ty: MemTy::F32,
            dst: gen_reg(rng, RegClass::F32),
            addr: Addr {
                base: gen_reg(rng, RegClass::R64),
                offset: rng.range_i64(-64, 64) * 4,
            },
        },
        15 => Op::St {
            space: MemSpace::Global,
            ty: MemTy::F32,
            src: gen_float_operand(rng),
            addr: Addr {
                base: gen_reg(rng, RegClass::R64),
                offset: rng.range_i64(-64, 64) * 4,
            },
        },
        16 => Op::Ld {
            space: MemSpace::Shared,
            ty: MemTy::U32,
            dst: gen_reg(rng, RegClass::R32),
            addr: Addr {
                base: gen_reg(rng, RegClass::R32),
                offset: 0,
            },
        },
        17 => Op::LdParam {
            dst: gen_reg(rng, RegClass::R64),
            param: rng.range_u32(0, nparams.max(1) as u32) as u16,
        },
        18 => Op::Bra {
            target: rng.range_usize(0, body_len),
        },
        _ => Op::Bar,
    }
}

fn gen_kernel(rng: &mut Rng) -> Kernel {
    let nparams = rng.range_usize(1, 4);
    let body_len = rng.range_usize(1, 40);
    let mut body: Vec<Inst> = (0..body_len)
        .map(|_| {
            let op = gen_op(rng, nparams as u16, body_len);
            let guard = if rng.chance(1, 3) {
                Some(Guard {
                    pred: gen_reg(rng, RegClass::Pred),
                    negated: rng.flip(),
                })
            } else {
                None
            };
            Inst { guard, op }
        })
        .collect();
    body.push(Inst::new(Op::Ret));
    Kernel {
        name: "prop".into(),
        params: (0..nparams)
            .map(|i| Param {
                name: format!("p{i}"),
                ty: ParamTy::U64,
            })
            .collect(),
        body,
        shared_bytes: 256,
    }
}

#[test]
fn print_then_parse_is_identity() {
    check_cases(0x9A1B, 256, |rng| {
        let kernel = gen_kernel(rng);
        let text = kernel.to_string();
        let reparsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("printed kernel failed to parse: {e}\n{text}"));
        bm_testkit::prop_ensure!(
            kernel == reparsed,
            "roundtrip mismatch:\n{text}\nparsed back as:\n{reparsed}"
        );
        Ok(())
    });
}
