//! Property test: the canonical printer and the parser are exact inverses
//! over randomly-generated kernels.

use bm_ptx::isa::*;
use bm_ptx::kernel::{Kernel, Param};
use bm_ptx::parser::parse_kernel;
use proptest::prelude::*;

fn reg_strategy(class: RegClass) -> impl Strategy<Value = Reg> {
    (0u16..12).prop_map(move |idx| Reg { class, idx })
}

fn int_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy(RegClass::R32).prop_map(Operand::Reg),
        (-1000i64..1000).prop_map(Operand::ImmI),
        prop_oneof![
            Just(Special::TidX),
            Just(Special::CtaidX),
            Just(Special::NtidX),
            Just(Special::NctaidX),
            Just(Special::TidY),
            Just(Special::CtaidY),
        ]
        .prop_map(Operand::Special),
    ]
}

fn float_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg_strategy(RegClass::F32).prop_map(Operand::Reg),
        (-100i32..100).prop_map(|v| Operand::ImmF(v as f32 * 0.5)),
    ]
}

fn int_op() -> impl Strategy<Value = IntOp> {
    prop_oneof![
        Just(IntOp::Add),
        Just(IntOp::Sub),
        Just(IntOp::Mul),
        Just(IntOp::Div),
        Just(IntOp::Rem),
        Just(IntOp::Min),
        Just(IntOp::Max),
        Just(IntOp::And),
        Just(IntOp::Or),
        Just(IntOp::Xor),
        Just(IntOp::Shl),
        Just(IntOp::Shr),
    ]
}

fn cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn op_strategy(nparams: u16, body_len: usize) -> impl Strategy<Value = Op> {
    let r32 = || reg_strategy(RegClass::R32);
    let r64 = || reg_strategy(RegClass::R64);
    let f32r = || reg_strategy(RegClass::F32);
    let pred = || reg_strategy(RegClass::Pred);
    prop_oneof![
        (r32(), int_operand()).prop_map(|(dst, src)| Op::Mov { dst, src }),
        (f32r(), float_operand()).prop_map(|(dst, src)| Op::Mov { dst, src }),
        (r64(), r32()).prop_map(|(dst, src)| Op::Cvt {
            dst,
            src: Operand::Reg(src)
        }),
        (int_op(), r32(), int_operand(), int_operand()).prop_map(|(op, dst, a, b)| Op::Int {
            op,
            ty: IntTy::U32,
            dst,
            a,
            b
        }),
        (int_op(), r64(), r64().prop_map(Operand::Reg), r64().prop_map(Operand::Reg))
            .prop_map(|(op, dst, a, b)| Op::Int {
                op,
                ty: IntTy::U64,
                dst,
                a,
                b
            }),
        (r32(), int_operand(), int_operand(), int_operand()).prop_map(|(dst, a, b, c)| {
            Op::Mad {
                ty: IntTy::U32,
                dst,
                a,
                b,
                c,
            }
        }),
        (r64(), int_operand(), int_operand()).prop_map(|(dst, a, b)| Op::MulWide { dst, a, b }),
        (r64(), int_operand(), int_operand(), r64().prop_map(Operand::Reg))
            .prop_map(|(dst, a, b, c)| Op::MadWide { dst, a, b, c }),
        (f32r(), float_operand(), float_operand()).prop_map(|(dst, a, b)| Op::Float {
            op: FloatOp::Add,
            dst,
            a,
            b
        }),
        (f32r(), float_operand(), float_operand(), float_operand())
            .prop_map(|(dst, a, b, c)| Op::Fma { dst, a, b, c }),
        (f32r(), float_operand()).prop_map(|(dst, a)| Op::Sqrt { dst, a }),
        (cmp_op(), pred(), int_operand(), int_operand()).prop_map(|(cmp, dst, a, b)| Op::Setp {
            cmp,
            ty: IntTy::U32,
            dst,
            a,
            b
        }),
        (cmp_op(), pred(), float_operand(), float_operand())
            .prop_map(|(cmp, dst, a, b)| Op::SetpF { cmp, dst, a, b }),
        (r32(), int_operand(), int_operand(), pred())
            .prop_map(|(dst, a, b, p)| Op::Selp { dst, a, b, p }),
        (f32r(), r64(), -64i64..64).prop_map(|(dst, base, offset)| Op::Ld {
            space: MemSpace::Global,
            ty: MemTy::F32,
            dst,
            addr: Addr { base, offset: offset * 4 },
        }),
        (float_operand(), r64(), -64i64..64).prop_map(|(src, base, offset)| Op::St {
            space: MemSpace::Global,
            ty: MemTy::F32,
            src,
            addr: Addr { base, offset: offset * 4 },
        }),
        (r32(), r32()).prop_map(|(dst, base)| Op::Ld {
            space: MemSpace::Shared,
            ty: MemTy::U32,
            dst,
            addr: Addr { base, offset: 0 },
        }),
        (r64(), 0..nparams.max(1)).prop_map(|(dst, param)| Op::LdParam { dst, param }),
        (0..body_len).prop_map(|target| Op::Bra { target }),
        Just(Op::Bar),
    ]
}

fn kernel_strategy() -> impl Strategy<Value = Kernel> {
    (1usize..4, 1usize..40).prop_flat_map(|(nparams, body_len)| {
        let ops = prop::collection::vec(
            (
                op_strategy(nparams as u16, body_len),
                prop::option::of((reg_strategy(RegClass::Pred), any::<bool>())),
            ),
            body_len,
        );
        ops.prop_map(move |ops| {
            let mut body: Vec<Inst> = ops
                .into_iter()
                .map(|(op, guard)| Inst {
                    guard: guard.map(|(pred, negated)| Guard { pred, negated }),
                    op,
                })
                .collect();
            body.push(Inst::new(Op::Ret));
            Kernel {
                name: "prop".into(),
                params: (0..nparams)
                    .map(|i| Param {
                        name: format!("p{i}"),
                        ty: ParamTy::U64,
                    })
                    .collect(),
                body,
                shared_bytes: 256,
            }
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn print_then_parse_is_identity(kernel in kernel_strategy()) {
        let text = kernel.to_string();
        let reparsed = parse_kernel(&text)
            .unwrap_or_else(|e| panic!("printed kernel failed to parse: {e}\n{text}"));
        prop_assert_eq!(kernel, reparsed);
    }
}
