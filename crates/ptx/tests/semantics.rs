//! Cross-cutting semantic tests of the mini-PTX toolchain: 2-D grids,
//! selection/division/conversion semantics, and agreement between the
//! functional interpreter and the value-range analysis on 2-D kernels.

use bm_ptx::absint::analyze_launch;
use bm_ptx::interp::execute_launch;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::mem::{AddressSpace, GlobalMem};
use bm_ptx::parser::parse_kernel;
use std::sync::Arc;

/// 2-D kernel: each thread writes `OUT[gy * W + gx] = gy * 1000 + gx`
/// where `gx`/`gy` come from 2-D tid/ctaid.
const GRID2D: &str = r#"
.entry grid2d(.param .u64 OUT, .param .u32 w)
{
  ld.param.u64 %rd1, [OUT];
  ld.param.u32 %r9, [w];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mov.u32 %r5, %ctaid.y;
  mov.u32 %r6, %ntid.y;
  mov.u32 %r7, %tid.y;
  mad.lo.u32 %r8, %r5, %r6, %r7;
  mad.lo.u32 %r10, %r8, %r9, %r4;
  mul.lo.u32 %r11, %r8, 1000;
  add.u32 %r12, %r11, %r4;
  cvt.rn.f32.u32 %f1, %r12;
  mul.wide.u32 %rd2, %r10, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f1;
  ret;
}
"#;

#[test]
fn two_dimensional_grids_execute_and_analyze() {
    let k = Arc::new(parse_kernel(GRID2D).unwrap());
    let (w, h) = (32u32, 16u32);
    let mut sp = AddressSpace::new();
    let out = sp.alloc(4 * (w * h) as u64);
    let mut mem = GlobalMem::for_space(&sp);
    // 4x4 blocks of 8x4 threads.
    let launch = Launch::new(
        k,
        Dim3::xy(4, 4),
        Dim3::xy(8, 4),
        vec![ArgValue::Ptr(out.base), ArgValue::U32(w)],
    );
    execute_launch(&launch, &mut mem).unwrap();
    for gy in 0..h {
        for gx in 0..w {
            let got = mem.read_f32(out.base + 4 * (gy * w + gx) as u64);
            assert_eq!(got, (gy * 1000 + gx) as f32, "({gx},{gy})");
        }
    }
    // Analysis: every block writes a bounded 2-D tile footprint.
    let acc = analyze_launch(&launch);
    assert!(!acc.non_static);
    assert_eq!(acc.per_tb.len(), 16);
    // Block (0,0): rows 0..4, cols 0..8 -> addresses within the first
    // 4 rows of the surface.
    let t00 = &acc.per_tb[0];
    let (lo, hi) = t00.writes.bounds().unwrap();
    assert!(lo >= out.base && hi <= out.base + 4 * (4 * w) as u64);
    // Distinct blocks in the same row band touch disjoint column ranges
    // only per row; hulls may overlap row-wise but the union must cover
    // the whole surface.
    let mut union = bm_ptx::access::RangeSet::new();
    for t in &acc.per_tb {
        union.union_with(&t.writes);
    }
    assert!(union.contains(out.base));
    assert!(union.contains(out.base + 4 * (w * h - 1) as u64));
}

#[test]
fn selp_division_and_conversion_semantics() {
    let src = r#"
.entry semantics(.param .u64 OUT)
{
  ld.param.u64 %rd1, [OUT];
  mov.u32 %r1, %tid.x;
  // r2 = r1 / 3, r3 = r1 % 3
  div.u32 %r2, %r1, 3;
  rem.u32 %r3, %r1, 3;
  // p1 = (r3 == 0); r4 = p1 ? 100 : 200
  setp.eq.u32 %p1, %r3, 0;
  selp.b32 %r4, 100, 200, %p1;
  // Value = r2 * 1000 + r4, through a float round-trip.
  mad.lo.u32 %r5, %r2, 1000, %r4;
  cvt.rn.f32.u32 %f1, %r5;
  cvt.rzi.u32.f32 %r6, %f1;
  cvt.rn.f32.u32 %f2, %r6;
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f2;
  ret;
}
"#;
    let k = Arc::new(parse_kernel(src).unwrap());
    let mut sp = AddressSpace::new();
    let out = sp.alloc(4 * 32);
    let mut mem = GlobalMem::for_space(&sp);
    let launch = Launch::new(k, Dim3::x(1), Dim3::x(32), vec![ArgValue::Ptr(out.base)]);
    execute_launch(&launch, &mut mem).unwrap();
    for t in 0..32u32 {
        let expect = (t / 3) * 1000 + if t % 3 == 0 { 100 } else { 200 };
        assert_eq!(
            mem.read_f32(out.base + 4 * t as u64),
            expect as f32,
            "thread {t}"
        );
    }
}

#[test]
fn signed_arithmetic_and_negated_guards() {
    let src = r#"
.entry signed(.param .u64 OUT)
{
  ld.param.u64 %rd1, [OUT];
  mov.u32 %r1, %tid.x;
  // r2 = tid - 8 as signed; p1 = (r2 < 0)
  sub.u32 %r2, %r1, 8;
  setp.lt.s32 %p1, %r2, 0;
  // Negative lanes store 1.0, others store 2.0 via negated guard.
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  @%p1 st.global.f32 [%rd3], 0f3F800000;
  @!%p1 st.global.f32 [%rd3], 0f40000000;
  ret;
}
"#;
    let k = Arc::new(parse_kernel(src).unwrap());
    let mut sp = AddressSpace::new();
    let out = sp.alloc(4 * 16);
    let mut mem = GlobalMem::for_space(&sp);
    let launch = Launch::new(k, Dim3::x(1), Dim3::x(16), vec![ArgValue::Ptr(out.base)]);
    execute_launch(&launch, &mut mem).unwrap();
    for t in 0..16u64 {
        let expect = if t < 8 { 1.0 } else { 2.0 };
        assert_eq!(mem.read_f32(out.base + 4 * t), expect, "thread {t}");
    }
}

#[test]
fn predicated_memory_access_is_analyzed_conservatively() {
    // The guarded stores above must both appear in the write set (the
    // analysis cannot prove which lanes take which path, so both ranges
    // are included).
    let src = r#"
.entry guarded(.param .u64 A, .param .u64 B)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  mov.u32 %r1, %tid.x;
  setp.lt.u32 %p1, %r1, 16;
  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  add.u64 %rd5, %rd2, %rd3;
  @%p1 st.global.f32 [%rd4], 0f00000000;
  @!%p1 st.global.f32 [%rd5], 0f00000000;
  ret;
}
"#;
    let k = Arc::new(parse_kernel(src).unwrap());
    let a_base = 0x100000u64;
    let b_base = 0x200000u64;
    let launch = Launch::new(
        k,
        Dim3::x(1),
        Dim3::x(32),
        vec![ArgValue::Ptr(a_base), ArgValue::Ptr(b_base)],
    );
    let acc = analyze_launch(&launch);
    assert!(!acc.non_static);
    let w = &acc.per_tb[0].writes;
    assert!(w.contains(a_base), "guarded A store must be in the set");
    assert!(
        w.contains(b_base + 64),
        "negated-guard B store must be in the set"
    );
}
