//! Soundness property tests for the interval domain: for every concrete
//! pair `x ∈ A, y ∈ B`, the concrete result of each operation must lie in
//! the abstract result — the property the whole value-range analysis
//! rests on.

use bm_ptx::interval::Interval;
use bm_ptx::isa::CmpOp;
use proptest::prelude::*;

/// Strategy: an interval plus a member of it.
fn interval_with_member() -> impl Strategy<Value = (Interval, i128)> {
    (-10_000i128..10_000, 0i128..200).prop_flat_map(|(lo, width)| {
        let hi = lo + width;
        (Just(Interval::new(lo, hi)), lo..=hi)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn add_sub_mul_are_sound(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        prop_assert!(a.add(&b).contains(x + y));
        prop_assert!(a.sub(&b).contains(x - y));
        prop_assert!(a.mul(&b).contains(x * y));
    }

    #[test]
    fn min_max_are_sound(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        prop_assert!(a.min_op(&b).contains(x.min(y)));
        prop_assert!(a.max_op(&b).contains(x.max(y)));
    }

    #[test]
    fn div_rem_by_positive_constant_are_sound(
        (a, x) in interval_with_member(),
        d in 1i128..64,
    ) {
        let div = a.div(&Interval::point(d));
        prop_assert!(div.contains(x.div_euclid(d)), "{a} / {d}: {} not in {div}", x.div_euclid(d));
        let rem = a.rem(&Interval::point(d));
        prop_assert!(rem.contains(x.rem_euclid(d)), "{a} % {d}: {} not in {rem}", x.rem_euclid(d));
    }

    #[test]
    fn shifts_by_constant_are_sound(
        (a, x) in interval_with_member(),
        s in 0i128..8,
    ) {
        prop_assert!(a.shl(&Interval::point(s)).contains(x << s));
        if x >= 0 {
            prop_assert!(a.shr(&Interval::point(s)).contains(x >> s));
        }
    }

    #[test]
    fn bitwise_ops_are_sound_for_nonnegative(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        // The analysis only relies on bitwise precision for non-negative
        // values (thread/block indices); negatives fall back to TOP.
        let (x, y) = (x.abs(), y.abs());
        let a = Interval::new(a.lo().abs().min(x), a.hi().abs().max(x));
        let b = Interval::new(b.lo().abs().min(y), b.hi().abs().max(y));
        prop_assert!(a.and(&b).contains(x & y), "{a} & {b} missing {}", x & y);
        prop_assert!(a.or(&b).contains(x | y), "{a} | {b} missing {}", x | y);
        prop_assert!(a.xor(&b).contains(x ^ y), "{a} ^ {b} missing {}", x ^ y);
    }

    #[test]
    fn hull_and_intersect_are_lattice_ops(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        let h = a.hull(&b);
        prop_assert!(h.contains(x) && h.contains(y));
        let i = a.intersect(&b);
        if a.contains(y) {
            prop_assert!(i.contains(y));
        }
        if b.contains(x) {
            prop_assert!(i.contains(x));
        }
    }

    #[test]
    fn widen_only_grows(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        let w = a.widen(&b);
        prop_assert!(w.contains(x), "widen lost old member");
        prop_assert!(w.contains(y), "widen lost new member");
    }

    #[test]
    fn refine_keeps_satisfying_members(
        (a, x) in interval_with_member(),
        (b, y) in interval_with_member(),
    ) {
        for cmp in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            let holds = match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
            if holds {
                let r = a.refine(cmp, &b);
                prop_assert!(
                    r.contains(x),
                    "refine({a}, {cmp:?}, {b}) dropped {x} (witness y={y})"
                );
            }
        }
    }
}
