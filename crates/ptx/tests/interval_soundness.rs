//! Soundness property tests for the interval domain: for every concrete
//! pair `x ∈ A, y ∈ B`, the concrete result of each operation must lie in
//! the abstract result — the property the whole value-range analysis
//! rests on.

use bm_ptx::interval::Interval;
use bm_ptx::isa::CmpOp;
use bm_testkit::{check_cases, prop_ensure, Rng};

/// An interval plus a member of it.
fn interval_with_member(rng: &mut Rng) -> (Interval, i128) {
    let lo = rng.range_i128(-10_000, 10_000);
    let width = rng.range_i128(0, 200);
    let hi = lo + width;
    let x = rng.range_i128(lo, hi + 1);
    (Interval::new(lo, hi), x)
}

#[test]
fn add_sub_mul_are_sound() {
    check_cases(0xADD, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        prop_ensure!(a.add(&b).contains(x + y), "{a} + {b} missing {}", x + y);
        prop_ensure!(a.sub(&b).contains(x - y), "{a} - {b} missing {}", x - y);
        prop_ensure!(a.mul(&b).contains(x * y), "{a} * {b} missing {}", x * y);
        Ok(())
    });
}

#[test]
fn min_max_are_sound() {
    check_cases(0x313, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        prop_ensure!(a.min_op(&b).contains(x.min(y)));
        prop_ensure!(a.max_op(&b).contains(x.max(y)));
        Ok(())
    });
}

#[test]
fn div_rem_by_positive_constant_are_sound() {
    check_cases(0xD1F, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let d = rng.range_i128(1, 64);
        let div = a.div(&Interval::point(d));
        prop_ensure!(
            div.contains(x.div_euclid(d)),
            "{a} / {d}: {} not in {div}",
            x.div_euclid(d)
        );
        let rem = a.rem(&Interval::point(d));
        prop_ensure!(
            rem.contains(x.rem_euclid(d)),
            "{a} % {d}: {} not in {rem}",
            x.rem_euclid(d)
        );
        Ok(())
    });
}

#[test]
fn shifts_by_constant_are_sound() {
    check_cases(0x547, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let s = rng.range_i128(0, 8);
        prop_ensure!(a.shl(&Interval::point(s)).contains(x << s));
        if x >= 0 {
            prop_ensure!(a.shr(&Interval::point(s)).contains(x >> s));
        }
        Ok(())
    });
}

#[test]
fn bitwise_ops_are_sound_for_nonnegative() {
    check_cases(0xB17, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        // The analysis only relies on bitwise precision for non-negative
        // values (thread/block indices); negatives fall back to TOP.
        let (x, y) = (x.abs(), y.abs());
        let a = Interval::new(a.lo().abs().min(x), a.hi().abs().max(x));
        let b = Interval::new(b.lo().abs().min(y), b.hi().abs().max(y));
        prop_ensure!(a.and(&b).contains(x & y), "{a} & {b} missing {}", x & y);
        prop_ensure!(a.or(&b).contains(x | y), "{a} | {b} missing {}", x | y);
        prop_ensure!(a.xor(&b).contains(x ^ y), "{a} ^ {b} missing {}", x ^ y);
        Ok(())
    });
}

#[test]
fn hull_and_intersect_are_lattice_ops() {
    check_cases(0x411, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        let h = a.hull(&b);
        prop_ensure!(h.contains(x) && h.contains(y));
        let i = a.intersect(&b);
        if a.contains(y) {
            prop_ensure!(i.contains(y));
        }
        if b.contains(x) {
            prop_ensure!(i.contains(x));
        }
        Ok(())
    });
}

#[test]
fn widen_only_grows() {
    check_cases(0x31D, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        let w = a.widen(&b);
        prop_ensure!(w.contains(x), "widen lost old member");
        prop_ensure!(w.contains(y), "widen lost new member");
        Ok(())
    });
}

#[test]
fn refine_keeps_satisfying_members() {
    check_cases(0x8EF, 512, |rng| {
        let (a, x) = interval_with_member(rng);
        let (b, y) = interval_with_member(rng);
        for cmp in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            let holds = match cmp {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Lt => x < y,
                CmpOp::Le => x <= y,
                CmpOp::Gt => x > y,
                CmpOp::Ge => x >= y,
            };
            if holds {
                let r = a.refine(cmp, &b);
                prop_ensure!(
                    r.contains(x),
                    "refine({a}, {cmp:?}, {b}) dropped {x} (witness y={y})"
                );
            }
        }
        Ok(())
    });
}
