//! Accept/reject tests for the affine per-TB memoization fast path.
//!
//! The fast path must be *transparent*: whatever it decides, the resulting
//! `KernelAccess` must be bit-identical to the reference pipeline
//! (`ParallelConfig::reference()`, which interprets every TB). These tests
//! pin down both sides:
//!
//! * accept — contiguous per-TB laws (vecadd, multi-array, clamped
//!   stencils) synthesize most TBs and still match the reference exactly;
//! * reject — gapped unions, guarded "liar" TBs, data-dependent
//!   addresses, small grids, and 2-D grids all fall back to full
//!   interpretation (and still match the reference exactly).

use bm_ptx::absint::try_analyze_launch_fueled_par;
use bm_ptx::kernel::{ArgValue, Dim3, Launch};
use bm_ptx::par::ParallelConfig;
use bm_ptx::parser::parse_kernel;
use std::sync::Arc;

const VECADD: &str = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;

/// `OUT[i] = IN[min(i + s, n - 1)]`: interior TBs follow one affine law,
/// the last TBs clamp (which is why boundary TBs are always interpreted).
const SHIFT_CLAMP: &str = r#"
.entry shift(.param .u64 IN, .param .u64 OUT, .param .u32 n, .param .u32 s)
{
  ld.param.u64 %rd1, [IN];
  ld.param.u64 %rd2, [OUT];
  ld.param.u32 %r9, [n];
  ld.param.u32 %r10, [s];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra $DONE;
  add.u32 %r5, %r4, %r10;
  sub.u32 %r6, %r9, 1;
  min.u32 %r5, %r5, %r6;
  mul.wide.u32 %rd3, %r5, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  mul.wide.u32 %rd5, %r4, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.f32 [%rd6], %f1;
$DONE:
  ret;
}
"#;

/// Every TB writes block `2 * ctaid`, leaving every odd block untouched:
/// the per-TB law is affine but the interior union has gaps, so the
/// span-certificate rejects it.
const STRIDED_GAPS: &str = r#"
.entry strided(.param .u64 OUT)
{
  ld.param.u64 %rd1, [OUT];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mul.lo.u32 %r5, %r1, 2;
  mad.lo.u32 %r4, %r5, %r2, %r3;
  mul.wide.u32 %rd2, %r4, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.u32 [%rd3], %r3;
  ret;
}
"#;

/// Vecadd plus a store guarded on `ctaid == 37`. Under the interval
/// domain a per-TB analysis cannot prune a predicated branch, so the
/// guarded store joins into *every* TB's write set — making it
/// translation-uniform (delta 0) and therefore honestly predictable.
const GUARDED: &str = r#"
.entry guarded(.param .u64 A, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mul.wide.u32 %rd4, %r4, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f1;
  setp.eq.u32 %p2, %r1, 37;
  @%p2 bra $EXTRA;
  ret;
$EXTRA:
  mul.wide.u32 %rd8, %r9, 8;
  add.u64 %rd9, %rd3, %rd8;
  st.global.u32 [%rd9], %r3;
  ret;
}
"#;

/// Each TB writes block `ctaid * ctaid`: the anchor TBs 1, 2, 3 see
/// deltas of 3 and 5 blocks, so the affine model fails at derivation.
const QUADRATIC: &str = r#"
.entry quadratic(.param .u64 OUT)
{
  ld.param.u64 %rd1, [OUT];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mul.lo.u32 %r5, %r1, %r1;
  mad.lo.u32 %r4, %r5, %r2, %r3;
  mul.wide.u32 %rd2, %r4, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.u32 [%rd3], %r3;
  ret;
}
"#;

/// Each TB writes block `min(ctaid, 400)`: the deviation starts above the
/// largest sampled TB (384 for a 512-TB grid), so sampling misses it and
/// the span certificate — which guarantees the *union*, not per-TB
/// attribution — accepts. This is the documented residual gap (DESIGN §8):
/// per-TB sets may be approximate, but the kernel-level union must remain
/// an over-approximation, and the runtime soundness guard backstops the
/// per-TB attribution.
const INTERIOR_CLAMP: &str = r#"
.entry clamp400(.param .u64 OUT)
{
  ld.param.u64 %rd1, [OUT];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  min.u32 %r5, %r1, 400;
  mad.lo.u32 %r4, %r5, %r2, %r3;
  mul.wide.u32 %rd2, %r4, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.u32 [%rd3], %r3;
  ret;
}
"#;

/// Store address loaded from memory: non-static in any configuration.
const GATHER: &str = r#"
.entry gather(.param .u64 IDX, .param .u64 OUT)
{
  ld.param.u64 %rd1, [IDX];
  ld.param.u64 %rd2, [OUT];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mul.wide.u32 %rd3, %r4, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.u32 %r5, [%rd4];
  mul.wide.u32 %rd5, %r5, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.u32 [%rd6], %r3;
  ret;
}
"#;

fn vecadd_launch(tbs: u32) -> Launch {
    let kernel = Arc::new(parse_kernel(VECADD).unwrap());
    Launch::new(
        kernel,
        Dim3::x(tbs),
        Dim3::x(256),
        vec![
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x200000),
            ArgValue::Ptr(0x400000),
            ArgValue::U32(tbs * 256),
        ],
    )
}

/// Analyzes `launch` under `par` with effectively unlimited fuel.
fn analyze(launch: &Launch, par: &ParallelConfig) -> (bm_ptx::access::KernelAccess, AbsintStats) {
    let mut fuel = u64::MAX;
    try_analyze_launch_fueled_par(launch, &mut fuel, par)
        .expect("valid launch")
        .expect("enough fuel")
}

use bm_ptx::absint::AbsintStats;

/// Runs the reference and the affine pipeline on `launch`, asserts the
/// access sets are bit-identical, and returns the affine-side stats.
fn assert_transparent(launch: &Launch) -> AbsintStats {
    let (reference, ref_stats) = analyze(launch, &ParallelConfig::reference());
    assert!(!ref_stats.affine_attempted);
    let (affine, stats) = analyze(launch, &ParallelConfig::serial());
    assert_eq!(
        affine, reference,
        "affine pipeline diverged from the reference"
    );
    stats
}

#[test]
fn accepts_contiguous_vecadd() {
    let stats = assert_transparent(&vecadd_launch(512));
    assert!(stats.affine_attempted);
    assert!(stats.affine_accepted);
    assert!(stats.tbs_synthesized > 0);
    // Anchors, boundaries, and sample TBs are interpreted; the bulk is not.
    assert!(stats.tbs_interpreted < 40, "{stats:?}");
    assert_eq!(stats.tbs_interpreted + stats.tbs_synthesized, 512);
}

#[test]
fn accepts_multi_array_different_bases() {
    // Same kernel, three arrays at unrelated bases: deltas are derived per
    // range, so mixed bases must not confuse the model.
    let stats = assert_transparent(&vecadd_launch(96));
    assert!(stats.affine_accepted);
    assert!(stats.tbs_synthesized > 0);
}

#[test]
fn accepts_boundary_clamped_stencil() {
    let kernel = Arc::new(parse_kernel(SHIFT_CLAMP).unwrap());
    let tbs = 64u32;
    let launch = Launch::new(
        kernel,
        Dim3::x(tbs),
        Dim3::x(64),
        vec![
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x800000),
            ArgValue::U32(tbs * 64),
            ArgValue::U32(17),
        ],
    );
    let stats = assert_transparent(&launch);
    assert!(stats.affine_accepted, "{stats:?}");
    assert!(stats.tbs_synthesized > 0);
}

#[test]
fn rejects_strided_gapped_union() {
    let kernel = Arc::new(parse_kernel(STRIDED_GAPS).unwrap());
    let launch = Launch::new(
        kernel,
        Dim3::x(128),
        Dim3::x(64),
        vec![ArgValue::Ptr(0x10000)],
    );
    let stats = assert_transparent(&launch);
    assert!(stats.affine_attempted);
    assert!(
        !stats.affine_accepted,
        "gapped union must fail the certificate"
    );
    assert_eq!(stats.tbs_interpreted, 128);
    assert_eq!(stats.tbs_synthesized, 0);
}

#[test]
fn guarded_store_is_uniform_and_accepted() {
    let kernel = Arc::new(parse_kernel(GUARDED).unwrap());
    let tbs = 512u32;
    let launch = Launch::new(
        kernel,
        Dim3::x(tbs),
        Dim3::x(256),
        vec![
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x400000),
            ArgValue::U32(tbs * 256),
        ],
    );
    // The guarded store lands in every TB's write set under the interval
    // domain (with delta 0), so the model stays bit-exact.
    let stats = assert_transparent(&launch);
    assert!(stats.affine_accepted, "{stats:?}");
    assert!(stats.tbs_synthesized > 0);
}

#[test]
fn rejects_nonlinear_address_at_derivation() {
    let kernel = Arc::new(parse_kernel(QUADRATIC).unwrap());
    let launch = Launch::new(
        kernel,
        Dim3::x(64),
        Dim3::x(64),
        vec![ArgValue::Ptr(0x10000)],
    );
    let stats = assert_transparent(&launch);
    assert!(stats.affine_attempted);
    assert!(!stats.affine_accepted, "quadratic law must fail derivation");
    assert_eq!(stats.tbs_interpreted, 64);
}

#[test]
fn residual_gap_union_remains_sound() {
    let kernel = Arc::new(parse_kernel(INTERIOR_CLAMP).unwrap());
    let launch = Launch::new(
        kernel,
        Dim3::x(512),
        Dim3::x(64),
        vec![ArgValue::Ptr(0x10000)],
    );
    let (reference, _) = analyze(&launch, &ParallelConfig::reference());
    let (affine, stats) = analyze(&launch, &ParallelConfig::serial());
    if stats.affine_accepted {
        // Sampling missed the interior clamp: per-TB attribution may be
        // approximate, but the kernel-level unions must still cover the
        // reference's (the span certificate's actual guarantee).
        assert!(reference.kernel_reads.is_subset_of(&affine.kernel_reads));
        assert!(reference.kernel_writes.is_subset_of(&affine.kernel_writes));
        assert_eq!(affine.non_static, reference.non_static);
    } else {
        // If a future sampling scheme catches the clamp, the fallback must
        // be bit-exact.
        assert_eq!(affine, reference);
    }
}

#[test]
fn non_static_gather_matches_reference() {
    let kernel = Arc::new(parse_kernel(GATHER).unwrap());
    let launch = Launch::new(
        kernel,
        Dim3::x(64),
        Dim3::x(64),
        vec![ArgValue::Ptr(0x10000), ArgValue::Ptr(0x800000)],
    );
    let (reference, _) = analyze(&launch, &ParallelConfig::reference());
    assert!(reference.non_static);
    let (affine, stats) = analyze(&launch, &ParallelConfig::serial());
    assert_eq!(affine, reference);
    assert!(!stats.affine_accepted);
}

#[test]
fn skips_small_grids() {
    let stats = assert_transparent(&vecadd_launch(16));
    assert!(!stats.affine_attempted, "below AFFINE_MIN_TBS");
    assert_eq!(stats.tbs_interpreted, 16);
}

#[test]
fn skips_2d_grids() {
    let kernel = Arc::new(parse_kernel(VECADD).unwrap());
    let launch = Launch::new(
        kernel,
        Dim3::xy(32, 2),
        Dim3::x(64),
        vec![
            ArgValue::Ptr(0x10000),
            ArgValue::Ptr(0x200000),
            ArgValue::Ptr(0x400000),
            ArgValue::U32(32 * 2 * 64),
        ],
    );
    let stats = assert_transparent(&launch);
    assert!(!stats.affine_attempted, "affine law is 1-D only");
}
