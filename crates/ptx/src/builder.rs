//! Programmatic kernel construction — a typed alternative to writing
//! mini-PTX text, with label resolution and the common address-arithmetic
//! idioms as one-call helpers.
//!
//! ```
//! use bm_ptx::builder::KernelBuilder;
//! use bm_ptx::isa::{IntOp, ParamTy, Reg};
//!
//! # fn main() -> Result<(), bm_ptx::builder::BuildError> {
//! let mut b = KernelBuilder::new("scale");
//! let a = b.param("A", ParamTy::U64);
//! let gid = b.global_id();
//! let base = b.ld_param_u64(a);
//! let addr = b.elem_addr(base, gid, 4);
//! let v = b.ld_global_f32(addr, 0);
//! let doubled = b.fmul(v, 2.0f32);
//! b.st_global_f32(addr, 0, doubled);
//! b.ret();
//! let kernel = b.finish()?;
//! assert_eq!(kernel.name, "scale");
//! # Ok(())
//! # }
//! ```

use crate::isa::*;
use crate::kernel::{Kernel, Param};
use std::collections::HashMap;
use std::fmt;

/// Error from [`KernelBuilder::finish`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A branch referenced a label that was never placed.
    UnresolvedLabel(String),
    /// The same label was placed twice.
    DuplicateLabel(String),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnresolvedLabel(l) => write!(f, "unresolved label `{l}`"),
            BuildError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Handle to a declared kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamHandle(u16);

/// Incremental kernel builder with automatic register allocation.
#[derive(Debug, Default)]
pub struct KernelBuilder {
    name: String,
    params: Vec<Param>,
    body: Vec<Inst>,
    labels: HashMap<String, usize>,
    fixups: Vec<(usize, String)>,
    next_reg: [u16; 4],
    shared_bytes: u32,
}

impl KernelBuilder {
    /// Starts a kernel named `name`.
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            ..KernelBuilder::default()
        }
    }

    /// Declares a parameter and returns its handle.
    pub fn param(&mut self, name: impl Into<String>, ty: ParamTy) -> ParamHandle {
        self.params.push(Param {
            name: name.into(),
            ty,
        });
        ParamHandle(self.params.len() as u16 - 1)
    }

    /// Declares static shared memory.
    pub fn shared(&mut self, bytes: u32) -> &mut Self {
        self.shared_bytes = bytes;
        self
    }

    fn fresh(&mut self, class: RegClass) -> Reg {
        let i = match class {
            RegClass::R32 => 0,
            RegClass::R64 => 1,
            RegClass::F32 => 2,
            RegClass::Pred => 3,
        };
        let idx = self.next_reg[i];
        self.next_reg[i] += 1;
        Reg { class, idx }
    }

    /// Appends a raw instruction.
    pub fn inst(&mut self, op: Op) -> &mut Self {
        self.body.push(Inst::new(op));
        self
    }

    /// Appends a guarded instruction (`@%p` / `@!%p`).
    pub fn guarded(&mut self, pred: Reg, negated: bool, op: Op) -> &mut Self {
        self.body.push(Inst::guarded(pred, negated, op));
        self
    }

    /// Places a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        let name = name.into();
        if self.labels.insert(name.clone(), self.body.len()).is_some() {
            // Deferred to finish() so the builder stays chainable.
            self.fixups.push((usize::MAX, name));
        }
        self
    }

    /// Unconditional branch to `label`.
    pub fn bra(&mut self, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.body.len(), label.into()));
        self.body.push(Inst::new(Op::Bra { target: usize::MAX }));
        self
    }

    /// Branch to `label` when `pred` is true (or false with `negated`).
    pub fn bra_if(&mut self, pred: Reg, negated: bool, label: impl Into<String>) -> &mut Self {
        self.fixups.push((self.body.len(), label.into()));
        self.body
            .push(Inst::guarded(pred, negated, Op::Bra { target: usize::MAX }));
        self
    }

    /// Block-wide barrier.
    pub fn bar(&mut self) -> &mut Self {
        self.inst(Op::Bar)
    }

    /// Thread exit.
    pub fn ret(&mut self) -> &mut Self {
        self.inst(Op::Ret)
    }

    /// Emits the canonical global-thread-id computation
    /// (`ctaid.x * ntid.x + tid.x`) into a fresh register.
    pub fn global_id(&mut self) -> Reg {
        let bx = self.mov_u32(Special::CtaidX);
        let nt = self.mov_u32(Special::NtidX);
        let tx = self.mov_u32(Special::TidX);
        let dst = self.fresh(RegClass::R32);
        self.inst(Op::Mad {
            ty: IntTy::U32,
            dst,
            a: bx.into(),
            b: nt.into(),
            c: tx.into(),
        });
        dst
    }

    /// `mov.u32` of any operand into a fresh register.
    pub fn mov_u32(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh(RegClass::R32);
        self.inst(Op::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// `mov.f32` of any operand into a fresh register.
    pub fn mov_f32(&mut self, src: impl Into<Operand>) -> Reg {
        let dst = self.fresh(RegClass::F32);
        self.inst(Op::Mov {
            dst,
            src: src.into(),
        });
        dst
    }

    /// Loads a `u64` parameter (pointers).
    pub fn ld_param_u64(&mut self, p: ParamHandle) -> Reg {
        let dst = self.fresh(RegClass::R64);
        self.inst(Op::LdParam { dst, param: p.0 });
        dst
    }

    /// Loads a `u32` parameter.
    pub fn ld_param_u32(&mut self, p: ParamHandle) -> Reg {
        let dst = self.fresh(RegClass::R32);
        self.inst(Op::LdParam { dst, param: p.0 });
        dst
    }

    /// Integer binary op into a fresh `r32`.
    pub fn iop(&mut self, op: IntOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh(RegClass::R32);
        self.inst(Op::Int {
            op,
            ty: IntTy::U32,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// `addr = base + index * stride` (widening multiply-add).
    pub fn elem_addr(&mut self, base: Reg, index: impl Into<Operand>, stride: u32) -> Reg {
        let dst = self.fresh(RegClass::R64);
        self.inst(Op::MadWide {
            dst,
            a: index.into(),
            b: Operand::ImmI(stride as i64),
            c: base.into(),
        });
        dst
    }

    /// Global `f32` load at `[addr + offset]`.
    pub fn ld_global_f32(&mut self, addr: Reg, offset: i64) -> Reg {
        let dst = self.fresh(RegClass::F32);
        self.inst(Op::Ld {
            space: MemSpace::Global,
            ty: MemTy::F32,
            dst,
            addr: Addr { base: addr, offset },
        });
        dst
    }

    /// Global `f32` store at `[addr + offset]`.
    pub fn st_global_f32(&mut self, addr: Reg, offset: i64, src: impl Into<Operand>) -> &mut Self {
        self.inst(Op::St {
            space: MemSpace::Global,
            ty: MemTy::F32,
            src: src.into(),
            addr: Addr { base: addr, offset },
        })
    }

    /// Float add into a fresh register.
    pub fn fadd(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FloatOp::Add, a, b)
    }

    /// Float multiply into a fresh register.
    pub fn fmul(&mut self, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        self.fop(FloatOp::Mul, a, b)
    }

    /// Float binary op into a fresh register.
    pub fn fop(&mut self, op: FloatOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh(RegClass::F32);
        self.inst(Op::Float {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Integer comparison into a fresh predicate register.
    pub fn setp(&mut self, cmp: CmpOp, a: impl Into<Operand>, b: impl Into<Operand>) -> Reg {
        let dst = self.fresh(RegClass::Pred);
        self.inst(Op::Setp {
            cmp,
            ty: IntTy::U32,
            dst,
            a: a.into(),
            b: b.into(),
        });
        dst
    }

    /// Resolves labels and produces the kernel.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError`] on unresolved or duplicate labels.
    pub fn finish(mut self) -> Result<Kernel, BuildError> {
        for (idx, label) in self.fixups {
            if idx == usize::MAX {
                return Err(BuildError::DuplicateLabel(label));
            }
            let target = *self
                .labels
                .get(&label)
                .ok_or_else(|| BuildError::UnresolvedLabel(label.clone()))?;
            if let Op::Bra { target: t } = &mut self.body[idx].op {
                *t = target;
            }
        }
        Ok(Kernel {
            name: self.name,
            params: self.params,
            body: self.body,
            shared_bytes: self.shared_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::execute_launch;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::mem::{AddressSpace, GlobalMem};
    use std::sync::Arc;

    /// Builds vecadd programmatically and checks it against functional
    /// execution.
    #[test]
    fn built_vecadd_executes_correctly() {
        let mut b = KernelBuilder::new("vecadd");
        let pa = b.param("A", ParamTy::U64);
        let pb = b.param("B", ParamTy::U64);
        let pc = b.param("C", ParamTy::U64);
        let pn = b.param("n", ParamTy::U32);
        let gid = b.global_id();
        let n = b.ld_param_u32(pn);
        let oob = b.setp(CmpOp::Ge, gid, n);
        b.bra_if(oob, false, "done");
        let a = b.ld_param_u64(pa);
        let bb = b.ld_param_u64(pb);
        let c = b.ld_param_u64(pc);
        let aa = b.elem_addr(a, gid, 4);
        let ba = b.elem_addr(bb, gid, 4);
        let ca = b.elem_addr(c, gid, 4);
        let x = b.ld_global_f32(aa, 0);
        let y = b.ld_global_f32(ba, 0);
        let s = b.fadd(x, y);
        b.st_global_f32(ca, 0, s);
        b.label("done");
        b.ret();
        let kernel = Arc::new(b.finish().unwrap());

        let mut sp = AddressSpace::new();
        let (a, bb, c) = (sp.alloc(256), sp.alloc(256), sp.alloc(256));
        let mut mem = GlobalMem::for_space(&sp);
        mem.copy_from_host_f32(a.base, &[1.5; 64]);
        mem.copy_from_host_f32(bb.base, &[2.5; 64]);
        let launch = Launch::new(
            kernel,
            Dim3::x(2),
            Dim3::x(32),
            vec![
                ArgValue::Ptr(a.base),
                ArgValue::Ptr(bb.base),
                ArgValue::Ptr(c.base),
                ArgValue::U32(60),
            ],
        );
        execute_launch(&launch, &mut mem).unwrap();
        let cv = mem.copy_to_host_f32(c.base, 64);
        for v in &cv[..60] {
            assert_eq!(*v, 4.0);
        }
        for v in &cv[60..64] {
            assert_eq!(*v, 0.0, "guard must mask tail threads");
        }
    }

    #[test]
    fn built_kernel_round_trips_through_text() {
        let mut b = KernelBuilder::new("loopy");
        let pa = b.param("A", ParamTy::U64);
        let base = b.ld_param_u64(pa);
        let i = b.mov_u32(0u32);
        b.label("top");
        let addr = b.elem_addr(base, i, 4);
        b.st_global_f32(addr, 0, 1.0f32);
        let i2 = b.iop(IntOp::Add, i, 1u32);
        // Loop with an explicit register copy to keep `i` stable.
        b.inst(Op::Mov {
            dst: i,
            src: i2.into(),
        });
        let p = b.setp(CmpOp::Lt, i, 8u32);
        b.bra_if(p, false, "top");
        b.ret();
        let k = b.finish().unwrap();
        let reparsed = crate::parser::parse_kernel(&k.to_string()).unwrap();
        assert_eq!(k, reparsed);
    }

    #[test]
    fn unresolved_label_is_an_error() {
        let mut b = KernelBuilder::new("bad");
        b.bra("nowhere");
        b.ret();
        assert_eq!(
            b.finish().unwrap_err(),
            BuildError::UnresolvedLabel("nowhere".into())
        );
    }

    #[test]
    fn duplicate_label_is_an_error() {
        let mut b = KernelBuilder::new("bad");
        b.label("x");
        b.ret();
        b.label("x");
        b.ret();
        assert!(matches!(b.finish(), Err(BuildError::DuplicateLabel(_))));
    }
}
