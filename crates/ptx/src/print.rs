//! Canonical textual emission of kernels (the inverse of the parser).
//!
//! `Kernel: Display` prints a form that [`crate::parser::parse_kernel`]
//! accepts and that round-trips to an identical `Kernel` (property-tested).

use crate::isa::*;
use crate::kernel::Kernel;
use std::collections::BTreeSet;
use std::fmt;

fn mnemonic(op: &Op) -> String {
    match op {
        Op::Mov { dst, .. } => match dst.class {
            RegClass::F32 => "mov.f32".into(),
            RegClass::R64 => "mov.u64".into(),
            RegClass::Pred => "mov.pred".into(),
            RegClass::R32 => "mov.u32".into(),
        },
        Op::Cvt { dst, src } => {
            let sc = match src {
                Operand::Reg(r) => r.class,
                Operand::ImmF(_) => RegClass::F32,
                _ => RegClass::R32,
            };
            match (dst.class, sc) {
                (RegClass::R64, RegClass::R32) => "cvt.u64.u32".into(),
                (RegClass::R32, RegClass::R64) => "cvt.u32.u64".into(),
                (RegClass::F32, RegClass::R32) => "cvt.rn.f32.u32".into(),
                (RegClass::R32, RegClass::F32) => "cvt.rzi.u32.f32".into(),
                (a, b) => format!("cvt.{}.{}", class_ty(a), class_ty(b)),
            }
        }
        Op::Int { op, ty, .. } => match op {
            IntOp::Mul => format!("mul.lo.{}", ty.suffix()),
            other => format!("{}.{}", other.mnemonic(), ty.suffix()),
        },
        Op::Mad { ty, .. } => format!("mad.lo.{}", ty.suffix()),
        Op::MulWide { .. } => "mul.wide.u32".into(),
        Op::MadWide { .. } => "mad.wide.u32".into(),
        Op::Float { op, .. } => format!("{}.f32", op.mnemonic()),
        Op::Fma { .. } => "fma.rn.f32".into(),
        Op::Sqrt { .. } => "sqrt.rn.f32".into(),
        Op::Setp { cmp, ty, .. } => format!("setp.{}.{}", cmp.suffix(), ty.suffix()),
        Op::SetpF { cmp, .. } => format!("setp.{}.f32", cmp.suffix()),
        Op::Selp { dst, .. } => match dst.class {
            RegClass::R64 => "selp.b64".into(),
            RegClass::F32 => "selp.f32".into(),
            _ => "selp.b32".into(),
        },
        Op::Ld { space, ty, .. } => format!("ld.{}.{}", space_name(*space), ty.suffix()),
        Op::St { space, ty, .. } => format!("st.{}.{}", space_name(*space), ty.suffix()),
        Op::LdParam { dst, .. } => match dst.class {
            RegClass::R64 => "ld.param.u64".into(),
            RegClass::F32 => "ld.param.f32".into(),
            _ => "ld.param.u32".into(),
        },
        Op::Bra { .. } => "bra".into(),
        Op::Bar => "bar.sync".into(),
        Op::Ret => "ret".into(),
    }
}

fn class_ty(c: RegClass) -> &'static str {
    match c {
        RegClass::Pred => "pred",
        RegClass::R32 => "u32",
        RegClass::R64 => "u64",
        RegClass::F32 => "f32",
    }
}

fn space_name(s: MemSpace) -> &'static str {
    match s {
        MemSpace::Global => "global",
        MemSpace::Shared => "shared",
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".entry {}(", self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, ".param .{} {}", p.ty.suffix(), p.name)?;
        }
        writeln!(f, ")")?;
        writeln!(f, "{{")?;
        if self.shared_bytes > 0 {
            writeln!(f, "  .shared {};", self.shared_bytes)?;
        }
        let targets: BTreeSet<usize> = self
            .body
            .iter()
            .filter_map(|i| match i.op {
                Op::Bra { target } => Some(target),
                _ => None,
            })
            .collect();
        for (idx, inst) in self.body.iter().enumerate() {
            if targets.contains(&idx) {
                writeln!(f, "$L{idx}:")?;
            }
            write!(f, "  ")?;
            if let Some(g) = inst.guard {
                write!(f, "@{}{} ", if g.negated { "!" } else { "" }, g.pred)?;
            }
            write!(f, "{}", mnemonic(&inst.op))?;
            write_operands(f, &inst.op, self)?;
            writeln!(f, ";")?;
        }
        // A branch may target one past the last instruction (loop exits).
        if targets.contains(&self.body.len()) {
            writeln!(f, "$L{}:", self.body.len())?;
            writeln!(f, "  ret;")?;
        }
        write!(f, "}}")
    }
}

fn write_operands(f: &mut fmt::Formatter<'_>, op: &Op, k: &Kernel) -> fmt::Result {
    match op {
        Op::Mov { dst, src } | Op::Cvt { dst, src } => write!(f, " {dst}, {src}"),
        Op::Int { dst, a, b, .. }
        | Op::MulWide { dst, a, b }
        | Op::Float { dst, a, b, .. }
        | Op::Setp { dst, a, b, .. }
        | Op::SetpF { dst, a, b, .. } => write!(f, " {dst}, {a}, {b}"),
        Op::Mad { dst, a, b, c, .. } | Op::MadWide { dst, a, b, c } | Op::Fma { dst, a, b, c } => {
            write!(f, " {dst}, {a}, {b}, {c}")
        }
        Op::Sqrt { dst, a } => write!(f, " {dst}, {a}"),
        Op::Selp { dst, a, b, p } => write!(f, " {dst}, {a}, {b}, {p}"),
        Op::Ld { dst, addr, .. } => write!(f, " {dst}, {addr}"),
        Op::St { src, addr, .. } => write!(f, " {addr}, {src}"),
        Op::LdParam { dst, param } => {
            write!(f, " {dst}, [{}]", k.params[*param as usize].name)
        }
        Op::Bra { target } => write!(f, " $L{target}"),
        Op::Bar => write!(f, " 0"),
        Op::Ret => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_kernel;

    const VECADD: &str = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r4, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r5, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r5, %r4;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r5, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;

    #[test]
    fn round_trip_vecadd() {
        let k1 = parse_kernel(VECADD).unwrap();
        let text = k1.to_string();
        let k2 = parse_kernel(&text).unwrap();
        assert_eq!(k1, k2, "printed form:\n{text}");
    }

    #[test]
    fn round_trip_with_loop_and_shared() {
        let src = r#"
.entry loopy(.param .u64 A, .param .u32 n)
{
  .shared 128;
  ld.param.u64 %rd1, [A];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, 0;
$TOP:
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f1, [%rd3];
  st.shared.f32 [%r1], %f1;
  bar.sync 0;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r9;
  @%p1 bra $TOP;
  ret;
}
"#;
        let k1 = parse_kernel(src).unwrap();
        let k2 = parse_kernel(&k1.to_string()).unwrap();
        assert_eq!(k1, k2);
        assert_eq!(k1.shared_bytes, 128);
    }

    #[test]
    fn round_trip_selp_fma_cvt() {
        let src = r#"
.entry mixed(.param .u64 A, .param .f32 alpha)
{
  ld.param.u64 %rd1, [A];
  ld.param.f32 %f9, [alpha];
  mov.u32 %r1, %tid.x;
  cvt.u64.u32 %rd2, %r1;
  setp.eq.u32 %p1, %r1, 0;
  selp.b32 %r2, 1, 2, %p1;
  cvt.rn.f32.u32 %f1, %r2;
  fma.rn.f32 %f2, %f1, %f9, 0f3F800000;
  sqrt.rn.f32 %f3, %f2;
  min.f32 %f4, %f3, %f2;
  st.global.f32 [%rd1], %f4;
  ret;
}
"#;
        let k1 = parse_kernel(src).unwrap();
        let k2 = parse_kernel(&k1.to_string()).unwrap();
        assert_eq!(k1, k2);
    }
}
