//! Cooperative cancellation for long-running analysis and simulation.
//!
//! A [`CancelToken`] is a shared flag set *once* by an external controller
//! (a serving layer's deadline reaper, a client disconnect) and observed
//! at safe boundaries by the launch-time analysis pipeline and the DES
//! engine. Observation is pure: a token that never fires changes no
//! output bit anywhere in the stack, and checking it costs one relaxed
//! atomic load — there is no cycle accounting attached to the check, so
//! cancellation support adds zero drift to simulated time.
//!
//! The token distinguishes *why* it fired ([`CancelCause::Cancelled`] for
//! an explicit request, [`CancelCause::DeadlineExceeded`] for a deadline),
//! so callers can surface typed errors. The first cause to land wins;
//! later firings are ignored.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Why a [`CancelToken`] fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// The controller explicitly cancelled the work.
    Cancelled,
    /// The work's deadline passed before it completed.
    DeadlineExceeded,
}

impl std::fmt::Display for CancelCause {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CancelCause::Cancelled => "cancelled",
            CancelCause::DeadlineExceeded => "deadline exceeded",
        })
    }
}

const LIVE: u8 = 0;
const CANCELLED: u8 = 1;
const DEADLINE: u8 = 2;

/// A shared, clonable cancellation flag.
///
/// Clones observe the same underlying state; equality compares identity
/// (two tokens are equal iff they share state), which keeps containers of
/// tokens (`ParallelConfig` among them) derivable.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    state: Arc<AtomicU8>,
}

impl CancelToken {
    /// A fresh, un-fired token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// Fires the token with [`CancelCause::Cancelled`]. No-op if the token
    /// already fired (the first cause wins).
    pub fn cancel(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, CANCELLED, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Fires the token with [`CancelCause::DeadlineExceeded`]. No-op if the
    /// token already fired.
    pub fn expire(&self) {
        let _ = self
            .state
            .compare_exchange(LIVE, DEADLINE, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// The cause the token fired with, or `None` while it is live.
    pub fn fired(&self) -> Option<CancelCause> {
        match self.state.load(Ordering::Relaxed) {
            CANCELLED => Some(CancelCause::Cancelled),
            DEADLINE => Some(CancelCause::DeadlineExceeded),
            _ => None,
        }
    }

    /// Whether the token has fired (for either cause).
    pub fn is_fired(&self) -> bool {
        self.fired().is_some()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

impl Eq for CancelToken {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_cause_wins() {
        let t = CancelToken::new();
        assert!(!t.is_fired());
        assert_eq!(t.fired(), None);
        t.expire();
        assert_eq!(t.fired(), Some(CancelCause::DeadlineExceeded));
        t.cancel();
        assert_eq!(t.fired(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn clones_share_state_and_compare_by_identity() {
        let a = CancelToken::new();
        let b = a.clone();
        let c = CancelToken::new();
        assert_eq!(a, b);
        assert_ne!(a, c);
        b.cancel();
        assert_eq!(a.fired(), Some(CancelCause::Cancelled));
        assert!(!c.is_fired());
        assert_eq!(CancelCause::Cancelled.to_string(), "cancelled");
        assert_eq!(
            CancelCause::DeadlineExceeded.to_string(),
            "deadline exceeded"
        );
    }
}
