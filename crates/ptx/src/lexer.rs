//! Tokenizer for the mini-PTX textual form.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier-like word: mnemonics (`mad.lo.u32`), registers (`%rd3`),
    /// special registers (`%ctaid.x`), labels, directives (`.entry`).
    Word(String),
    /// Integer literal.
    Int(i64),
    /// Float literal (from `0fXXXXXXXX` bit form or a decimal with a point).
    Float(f32),
    /// Single punctuation character: `, ; ( ) { } [ ] + - : @ !`.
    Punct(char),
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Word(w) => write!(f, "`{w}`"),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Punct(c) => write!(f, "`{c}`"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based line number for diagnostics.
    pub line: u32,
}

/// Error produced while tokenizing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Description of the bad input.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

fn is_word_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '%' || c == '.' || c == '$'
}

fn is_word_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

/// Tokenizes mini-PTX source. `//` comments run to end of line.
///
/// # Errors
///
/// Returns [`LexError`] on unexpected characters or malformed numeric
/// literals.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    return Err(LexError {
                        message: "unexpected `/` (only `//` comments are supported)".into(),
                        line,
                    });
                }
            }
            ',' | ';' | '(' | ')' | '{' | '}' | '[' | ']' | '+' | '-' | ':' | '@' | '!' => {
                out.push(SpannedTok {
                    tok: Tok::Punct(c),
                    line,
                });
                chars.next();
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let tok = parse_number(&s).ok_or_else(|| LexError {
                    message: format!("malformed numeric literal `{s}`"),
                    line,
                })?;
                out.push(SpannedTok { tok, line });
            }
            c if is_word_start(c) => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if is_word_continue(c) || (s.is_empty() && is_word_start(c)) || c == '%' {
                        if c == '%' && !s.is_empty() {
                            break;
                        }
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(SpannedTok {
                    tok: Tok::Word(s),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character `{other}`"),
                    line,
                });
            }
        }
    }
    Ok(out)
}

fn parse_number(s: &str) -> Option<Tok> {
    if let Some(hex) = s.strip_prefix("0f").or_else(|| s.strip_prefix("0F")) {
        let bits = u32::from_str_radix(hex, 16).ok()?;
        return Some(Tok::Float(f32::from_bits(bits)));
    }
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return Some(Tok::Int(i64::from_str_radix(hex, 16).ok()?));
    }
    if s.contains('.') {
        return Some(Tok::Float(s.parse::<f32>().ok()?));
    }
    Some(Tok::Int(s.parse::<i64>().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn words_keep_dots_and_percent() {
        assert_eq!(
            toks("mad.lo.u32 %r4, %ctaid.x;"),
            vec![
                Tok::Word("mad.lo.u32".into()),
                Tok::Word("%r4".into()),
                Tok::Punct(','),
                Tok::Word("%ctaid.x".into()),
                Tok::Punct(';'),
            ]
        );
    }

    #[test]
    fn numbers_and_floats() {
        assert_eq!(toks("42"), vec![Tok::Int(42)]);
        assert_eq!(toks("0x10"), vec![Tok::Int(16)]);
        assert_eq!(toks("0f3F800000"), vec![Tok::Float(1.0)]);
        assert_eq!(toks("2.5"), vec![Tok::Float(2.5)]);
    }

    #[test]
    fn comments_skipped_and_lines_counted() {
        let ts = lex("a // hi\nb").unwrap();
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn address_brackets() {
        assert_eq!(
            toks("[%rd3+8]"),
            vec![
                Tok::Punct('['),
                Tok::Word("%rd3".into()),
                Tok::Punct('+'),
                Tok::Int(8),
                Tok::Punct(']'),
            ]
        );
    }

    #[test]
    fn bad_char_reports_line() {
        let err = lex("ok\n  ^bad").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn guard_tokens() {
        assert_eq!(
            toks("@!%p1 bra $L0;"),
            vec![
                Tok::Punct('@'),
                Tok::Punct('!'),
                Tok::Word("%p1".into()),
                Tok::Word("bra".into()),
                Tok::Word("$L0".into()),
                Tok::Punct(';'),
            ]
        );
    }
}
