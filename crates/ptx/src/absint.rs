//! Kernel-launch-time value-range analysis (paper §III-B2).
//!
//! For every thread block of a launch, all registers are evaluated over an
//! interval domain with `ctaid` pinned to the block's coordinates and `tid`
//! ranging over `[0, ntid-1]`. Loops reach a fixpoint via widening followed
//! by narrowing passes with branch-guard refinement. Every global load and
//! store then yields a byte range, producing the per-TB read/write sets the
//! thread-block scheduler enforces at run time.
//!
//! Addresses that derive from the *result of another load* carry a taint
//! bit; a tainted address reproduces Algorithm 1's conservative bail-out:
//! the whole kernel is treated as dependent on its predecessor.

use crate::access::{KernelAccess, RangeSet, TbAccess};
use crate::cfg::Cfg;
use crate::error::PtxError;
use crate::interval::Interval;
use crate::isa::*;
use crate::kernel::{ArgValue, Launch};
use crate::par::{chunk_ranges, ParallelConfig};
use std::collections::BTreeMap;

/// Joins applied to a block's in-state before widening kicks in.
const WIDEN_AFTER: u32 = 4;
/// Narrowing passes after the widened fixpoint.
const NARROW_PASSES: usize = 2;
/// Safety cap on worklist pops, per thread block.
const MAX_POPS_FACTOR: usize = 128;
/// Address intervals wider than this are treated as unbounded.
const MAX_ACCESS_SPAN: i128 = 1 << 42;
/// Minimum 1-D grid size before the affine fast path is worth attempting
/// (below this, the anchor/sample/certificate overhead exceeds the saving,
/// and the sample set would not be meaningfully sparser than the grid).
const AFFINE_MIN_TBS: u32 = 24;

/// An abstract register value: an interval plus a "derived from a loaded
/// value" taint bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbsVal {
    /// Possible integer values.
    pub iv: Interval,
    /// Whether the value (possibly) derives from a memory load.
    pub taint: bool,
}

impl AbsVal {
    /// Unknown, untainted value.
    pub const TOP: AbsVal = AbsVal {
        iv: Interval::TOP,
        taint: false,
    };

    /// Unknown value derived from a load.
    pub const TAINTED: AbsVal = AbsVal {
        iv: Interval::TOP,
        taint: true,
    };

    /// Exact launch-time-known value.
    pub fn point(v: i128) -> Self {
        AbsVal {
            iv: Interval::point(v),
            taint: false,
        }
    }

    fn hull(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.hull(&o.iv),
            taint: self.taint || o.taint,
        }
    }

    fn widen(&self, o: &AbsVal) -> AbsVal {
        AbsVal {
            iv: self.iv.widen(&o.iv),
            taint: self.taint || o.taint,
        }
    }

    fn binop(f: impl Fn(&Interval, &Interval) -> Interval, a: &AbsVal, b: &AbsVal) -> AbsVal {
        AbsVal {
            iv: f(&a.iv, &b.iv),
            taint: a.taint || b.taint,
        }
    }
}

/// Most recent `setp` feeding a predicate register, used to refine operand
/// intervals along branch edges. Invalidated when any referenced register
/// is overwritten.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PredDef {
    cmp: CmpOp,
    a: Operand,
    b: Operand,
}

#[derive(Debug, Clone, PartialEq)]
struct AbsState {
    r32: Vec<AbsVal>,
    r64: Vec<AbsVal>,
    f32_taint: Vec<bool>,
    pred: Vec<AbsVal>,
    pred_defs: Vec<Option<PredDef>>,
}

impl AbsState {
    fn new(counts: [usize; 4]) -> Self {
        AbsState {
            r32: vec![AbsVal::TOP; counts[0]],
            r64: vec![AbsVal::TOP; counts[1]],
            f32_taint: vec![false; counts[2]],
            pred: vec![AbsVal::TOP; counts[3]],
            pred_defs: vec![None; counts[3]],
        }
    }

    /// Joins `other` into `self`; returns whether anything changed.
    fn join(&mut self, other: &AbsState, widen: bool) -> bool {
        let mut changed = false;
        let comb = |a: &AbsVal, b: &AbsVal| if widen { a.widen(b) } else { a.hull(b) };
        for (a, b) in self.r32.iter_mut().zip(&other.r32) {
            let n = comb(a, b);
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        for (a, b) in self.r64.iter_mut().zip(&other.r64) {
            let n = comb(a, b);
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        for (a, b) in self.f32_taint.iter_mut().zip(&other.f32_taint) {
            if *b && !*a {
                *a = true;
                changed = true;
            }
        }
        for (a, b) in self.pred.iter_mut().zip(&other.pred) {
            let n = comb(a, b);
            if n != *a {
                *a = n;
                changed = true;
            }
        }
        for (a, b) in self.pred_defs.iter_mut().zip(&other.pred_defs) {
            if *a != *b && a.is_some() {
                *a = None;
                changed = true;
            }
        }
        changed
    }

    fn get(&self, r: Reg) -> AbsVal {
        match r.class {
            RegClass::R32 => self.r32[r.idx as usize],
            RegClass::R64 => self.r64[r.idx as usize],
            RegClass::F32 => AbsVal {
                iv: Interval::TOP,
                taint: self.f32_taint[r.idx as usize],
            },
            RegClass::Pred => self.pred[r.idx as usize],
        }
    }

    fn set(&mut self, r: Reg, v: AbsVal, weak: bool) {
        // Any write invalidates predicate definitions that mention `r`.
        for d in self.pred_defs.iter_mut() {
            if let Some(def) = d {
                let mentions = |o: &Operand| matches!(o, Operand::Reg(x) if *x == r);
                if mentions(&def.a) || mentions(&def.b) {
                    *d = None;
                }
            }
        }
        let slot = match r.class {
            RegClass::R32 => &mut self.r32[r.idx as usize],
            RegClass::R64 => &mut self.r64[r.idx as usize],
            RegClass::Pred => {
                self.pred_defs[r.idx as usize] = None;
                &mut self.pred[r.idx as usize]
            }
            RegClass::F32 => {
                let t = if weak {
                    self.f32_taint[r.idx as usize] || v.taint
                } else {
                    v.taint
                };
                self.f32_taint[r.idx as usize] = t;
                return;
            }
        };
        *slot = if weak { slot.hull(&v) } else { v };
    }
}

/// Launch-time environment for one thread block — or, for the coarse
/// group-level analysis, for a *range* of thread blocks: `bx`/`by` are
/// intervals, a point interval for the precise per-TB analysis and a span
/// covering a whole block group for the degraded analysis rung.
#[derive(Debug, Clone, Copy)]
struct Env<'a> {
    launch: &'a Launch,
    bx: Interval,
    by: Interval,
}

impl Env<'_> {
    fn special(&self, s: Special) -> Interval {
        let b = self.launch.block;
        let g = self.launch.grid;
        match s {
            Special::TidX => Interval::new(0, b.x as i128 - 1),
            Special::TidY => Interval::new(0, b.y as i128 - 1),
            Special::NtidX => Interval::point(b.x as i128),
            Special::NtidY => Interval::point(b.y as i128),
            Special::CtaidX => self.bx,
            Special::CtaidY => self.by,
            Special::NctaidX => Interval::point(g.x as i128),
            Special::NctaidY => Interval::point(g.y as i128),
        }
    }

    fn eval(&self, st: &AbsState, o: &Operand) -> AbsVal {
        match o {
            Operand::Reg(r) => st.get(*r),
            Operand::ImmI(v) => AbsVal::point(*v as i128),
            Operand::ImmF(_) => AbsVal::TOP,
            Operand::Special(s) => AbsVal {
                iv: self.special(*s),
                taint: false,
            },
        }
    }
}

fn transfer(env: &Env, st: &mut AbsState, inst: &Inst) {
    let weak = inst.guard.is_some();
    let ev = |st: &AbsState, o: &Operand| env.eval(st, o);
    match &inst.op {
        Op::Mov { dst, src } | Op::Cvt { dst, src } => {
            let v = ev(st, src);
            st.set(*dst, v, weak);
        }
        Op::Int { op, dst, a, b, .. } => {
            let (x, y) = (ev(st, a), ev(st, b));
            let iv = match op {
                IntOp::Add => AbsVal::binop(Interval::add, &x, &y),
                IntOp::Sub => AbsVal::binop(Interval::sub, &x, &y),
                IntOp::Mul => AbsVal::binop(Interval::mul, &x, &y),
                IntOp::Div => AbsVal::binop(Interval::div, &x, &y),
                IntOp::Rem => AbsVal::binop(Interval::rem, &x, &y),
                IntOp::Min => AbsVal::binop(Interval::min_op, &x, &y),
                IntOp::Max => AbsVal::binop(Interval::max_op, &x, &y),
                IntOp::And => AbsVal::binop(Interval::and, &x, &y),
                IntOp::Or => AbsVal::binop(Interval::or, &x, &y),
                IntOp::Xor => AbsVal::binop(Interval::xor, &x, &y),
                IntOp::Shl => AbsVal::binop(Interval::shl, &x, &y),
                IntOp::Shr => AbsVal::binop(Interval::shr, &x, &y),
            };
            st.set(*dst, iv, weak);
        }
        Op::Mad { dst, a, b, c, .. } | Op::MadWide { dst, a, b, c } => {
            let v = AbsVal::binop(
                Interval::add,
                &AbsVal::binop(Interval::mul, &ev(st, a), &ev(st, b)),
                &ev(st, c),
            );
            st.set(*dst, v, weak);
        }
        Op::MulWide { dst, a, b } => {
            let v = AbsVal::binop(Interval::mul, &ev(st, a), &ev(st, b));
            st.set(*dst, v, weak);
        }
        Op::Float { dst, a, b, .. } => {
            let t = ev(st, a).taint || ev(st, b).taint;
            st.set(
                *dst,
                AbsVal {
                    iv: Interval::TOP,
                    taint: t,
                },
                weak,
            );
        }
        Op::Fma { dst, a, b, c } => {
            let t = ev(st, a).taint || ev(st, b).taint || ev(st, c).taint;
            st.set(
                *dst,
                AbsVal {
                    iv: Interval::TOP,
                    taint: t,
                },
                weak,
            );
        }
        Op::Sqrt { dst, a } => {
            let t = ev(st, a).taint;
            st.set(
                *dst,
                AbsVal {
                    iv: Interval::TOP,
                    taint: t,
                },
                weak,
            );
        }
        Op::Setp { cmp, dst, a, b, .. } => {
            let t = ev(st, a).taint || ev(st, b).taint;
            st.set(
                *dst,
                AbsVal {
                    iv: Interval::new(0, 1),
                    taint: t,
                },
                weak,
            );
            if !weak && !t {
                st.pred_defs[dst.idx as usize] = Some(PredDef {
                    cmp: *cmp,
                    a: *a,
                    b: *b,
                });
            }
        }
        Op::SetpF { dst, a, b, .. } => {
            let t = ev(st, a).taint || ev(st, b).taint;
            st.set(
                *dst,
                AbsVal {
                    iv: Interval::new(0, 1),
                    taint: t,
                },
                weak,
            );
        }
        Op::Selp { dst, a, b, .. } => {
            let v = ev(st, a).hull(&ev(st, b));
            st.set(*dst, v, weak);
        }
        Op::Ld { dst, .. } => {
            st.set(*dst, AbsVal::TAINTED, weak);
        }
        Op::St { .. } => {}
        Op::LdParam { dst, param } => {
            let v = match env.launch.args[*param as usize] {
                ArgValue::U32(v) => AbsVal::point(v as i128),
                ArgValue::U64(v) => AbsVal::point(v as i128),
                ArgValue::Ptr(v) => AbsVal::point(v as i128),
                ArgValue::F32(_) => AbsVal::TOP,
            };
            st.set(*dst, v, weak);
        }
        Op::Bra { .. } | Op::Bar | Op::Ret => {}
    }
}

/// Refines `st` assuming predicate `pred` evaluates to `holds`.
fn refine_by_pred(env: &Env, st: &mut AbsState, pred: Reg, holds: bool) {
    // The predicate value itself is now known.
    let pv = AbsVal {
        iv: Interval::point(holds as i128),
        taint: st.pred[pred.idx as usize].taint,
    };
    st.pred[pred.idx as usize] = pv;
    let Some(def) = st.pred_defs[pred.idx as usize] else {
        return;
    };
    let cmp = if holds { def.cmp } else { def.cmp.negated() };
    let bv = env.eval(st, &def.b);
    let av = env.eval(st, &def.a);
    if let Operand::Reg(r) = def.a {
        if matches!(r.class, RegClass::R32 | RegClass::R64) {
            let refined = AbsVal {
                iv: av.iv.refine(cmp, &bv.iv),
                taint: av.taint,
            };
            set_no_invalidate(st, r, refined);
        }
    }
    if let Operand::Reg(r) = def.b {
        if matches!(r.class, RegClass::R32 | RegClass::R64) {
            let refined = AbsVal {
                iv: bv.iv.refine(cmp.swapped(), &av.iv),
                taint: bv.taint,
            };
            set_no_invalidate(st, r, refined);
        }
    }
}

/// Writes a refined value without invalidating predicate definitions
/// (refinement only shrinks the set of possible values).
fn set_no_invalidate(st: &mut AbsState, r: Reg, v: AbsVal) {
    match r.class {
        RegClass::R32 => st.r32[r.idx as usize] = v,
        RegClass::R64 => st.r64[r.idx as usize] = v,
        _ => {}
    }
}

/// Why a launch could not be statically analyzed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NonStaticReason {
    /// An address derives from a loaded value (Algorithm 1 bail-out).
    TaintedAddress,
    /// The fixpoint did not converge within the iteration budget.
    NoConvergence,
}

impl std::fmt::Display for NonStaticReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NonStaticReason::TaintedAddress => f.write_str("address derives from a loaded value"),
            NonStaticReason::NoConvergence => f.write_str("value-range fixpoint did not converge"),
        }
    }
}

/// Why a *budgeted* analysis stopped before producing per-TB sets.
///
/// Distinguishes running out of the caller's fuel budget (the analysis
/// could have succeeded with more time — retrying at a coarser granularity
/// is worthwhile) from a genuine non-static verdict (no amount of fuel
/// helps).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisCut {
    /// The caller-supplied fuel budget was exhausted mid-analysis.
    OutOfFuel,
    /// The launch is non-static; more fuel would not change the verdict.
    NonStatic(NonStaticReason),
}

impl std::fmt::Display for AnalysisCut {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalysisCut::OutOfFuel => f.write_str("analysis fuel budget exhausted"),
            AnalysisCut::NonStatic(r) => r.fmt(f),
        }
    }
}

/// How a launch analysis was carried out — how many thread blocks were
/// fully interpreted versus synthesized by the affine fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbsintStats {
    /// Thread blocks run through the full fixpoint interpretation
    /// (anchors, boundary blocks, and verification samples included).
    pub tbs_interpreted: u32,
    /// Thread blocks whose access sets were synthesized by translating the
    /// affine model instead of interpreting them.
    pub tbs_synthesized: u32,
    /// Whether the affine hypothesis was attempted for this launch
    /// (1-D grid, enough blocks, fast path enabled).
    pub affine_attempted: bool,
    /// Whether the affine hypothesis survived sampling and the span-union
    /// certificate; `attempted && !accepted` means the launch fell back to
    /// full per-TB interpretation.
    pub affine_accepted: bool,
    /// Worker threads the per-TB interpretation loop actually used
    /// (0 when the affine path answered without reaching the loop).
    pub threads_used: u32,
    /// Whether the adaptive heuristic forced the loop serial because the
    /// grid fell below `ParallelConfig::serial_tb_threshold`.
    pub serial_fallback: bool,
}

/// The affine per-TB hypothesis: thread block `i`'s access ranges are the
/// ranges of block 1 translated by `(i - 1) * delta`, with an independent
/// delta per range (different arrays may advance at different strides).
struct AffineModel {
    base_reads: Vec<(u64, u64)>,
    read_deltas: Vec<i128>,
    base_writes: Vec<(u64, u64)>,
    write_deltas: Vec<i128>,
}

/// Per-range translation distances from `a` to `b`, or `None` when the two
/// sets are not translates of each other (different range counts or
/// lengths).
fn range_deltas(a: &RangeSet, b: &RangeSet) -> Option<Vec<i128>> {
    let (ar, br) = (a.ranges(), b.ranges());
    if ar.len() != br.len() {
        return None;
    }
    ar.iter()
        .zip(br)
        .map(|(&(s1, e1), &(s2, e2))| {
            if e1 - s1 == e2 - s2 {
                Some(s2 as i128 - s1 as i128)
            } else {
                None
            }
        })
        .collect()
}

/// Translates each `base` range by `k` times its delta; `None` on address
/// overflow (which rejects the affine hypothesis).
fn translate_ranges(base: &[(u64, u64)], deltas: &[i128], k: i128) -> Option<RangeSet> {
    let mut out = Vec::with_capacity(base.len());
    for (&(s, e), &d) in base.iter().zip(deltas) {
        let off = d.checked_mul(k)?;
        let ns = (s as i128).checked_add(off)?;
        let ne = (e as i128).checked_add(off)?;
        if ns < 0 || ne > u64::MAX as i128 {
            return None;
        }
        out.push((ns as u64, ne as u64));
    }
    Some(RangeSet::from_unsorted(out))
}

impl AffineModel {
    /// Fits the model to three consecutive anchor blocks: the 1→2 deltas
    /// must reproduce block 3 exactly, otherwise there is no single affine
    /// law and the hypothesis is rejected.
    fn derive(t1: &TbAccess, t2: &TbAccess, t3: &TbAccess) -> Option<Self> {
        let read_deltas = range_deltas(&t1.reads, &t2.reads)?;
        if range_deltas(&t2.reads, &t3.reads)? != read_deltas {
            return None;
        }
        let write_deltas = range_deltas(&t1.writes, &t2.writes)?;
        if range_deltas(&t2.writes, &t3.writes)? != write_deltas {
            return None;
        }
        Some(AffineModel {
            base_reads: t1.reads.ranges().to_vec(),
            read_deltas,
            base_writes: t1.writes.ranges().to_vec(),
            write_deltas,
        })
    }

    /// Predicted access sets of thread block `tb`.
    fn predict(&self, tb: u32) -> Option<TbAccess> {
        let k = tb as i128 - 1;
        Some(TbAccess {
            reads: translate_ranges(&self.base_reads, &self.read_deltas, k)?,
            writes: translate_ranges(&self.base_writes, &self.write_deltas, k)?,
        })
    }
}

/// Interior thread blocks whose interpreted sets must match the model
/// exactly before it is trusted: powers of two plus the quartile blocks,
/// all within `[4, n-3]` (anchors and boundary blocks are interpreted
/// unconditionally).
fn affine_check_tbs(n: u32) -> Vec<u32> {
    let mut v = vec![n / 4, n / 2, 3 * (n / 4)];
    let mut p = 4u32;
    while p < n - 2 {
        v.push(p);
        p = p.saturating_mul(2);
    }
    v.retain(|&i| i >= 4 && i + 3 <= n);
    v.sort_unstable();
    v.dedup();
    v
}

enum AffineOutcome {
    /// Per-TB sets for all `n` blocks (interpreted + synthesized).
    Accepted(Vec<TbAccess>),
    /// Hypothesis failed — fall back to full interpretation.
    Rejected,
    NonStatic,
    OutOfFuel,
}

/// Interprets one thread block, memoizing the result so the full-fallback
/// path can reuse anchors and samples already paid for.
fn interp_tb_memo(
    launch: &Launch,
    cfg: &Cfg,
    counts: [usize; 4],
    tb: u32,
    fuel: &mut u64,
    memo: &mut BTreeMap<u32, TbAccess>,
) -> Result<TbAccess, AnalysisCut> {
    if let Some(a) = memo.get(&tb) {
        return Ok(a.clone());
    }
    let (bx, by) = launch.block_coords(tb);
    let env = Env {
        launch,
        bx: Interval::point(bx as i128),
        by: Interval::point(by as i128),
    };
    let acc = analyze_span(&env, cfg, counts, fuel)?;
    memo.insert(tb, acc.clone());
    Ok(acc)
}

/// Attempts the affine fast path for a 1-D launch of `n >=
/// [`AFFINE_MIN_TBS`] blocks.
///
/// Protocol: interpret anchors {1,2,3} and boundary blocks {0, n-2, n-1}
/// (boundary blocks commonly deviate — clamped stencil edges); fit
/// per-range deltas from the anchors; interpret a logarithmic sample of
/// interior blocks and require bit-exact agreement with the prediction;
/// finally run one *span* analysis with `ctaid.x = [1, n-2]` and require
/// its (sound, over-approximate) union to be contained in the predicted
/// union — a certificate that catches kernels special-casing unsampled
/// blocks, since the span analysis cannot prune their accesses.
///
/// The residual gap is per-TB *attribution* within the certified union
/// (two unsampled blocks swapping their slices would pass); the runtime
/// soundness guard backstops exactly that class.
fn try_affine(
    launch: &Launch,
    cfg: &Cfg,
    counts: [usize; 4],
    n: u32,
    fuel: &mut u64,
    memo: &mut BTreeMap<u32, TbAccess>,
) -> AffineOutcome {
    let interp = |tb: u32, fuel: &mut u64, memo: &mut BTreeMap<u32, TbAccess>| match interp_tb_memo(
        launch, cfg, counts, tb, fuel, memo,
    ) {
        Ok(acc) => Ok(acc),
        Err(AnalysisCut::OutOfFuel) => Err(AffineOutcome::OutOfFuel),
        Err(AnalysisCut::NonStatic(_)) => Err(AffineOutcome::NonStatic),
    };
    for tb in [0, 1, 2, 3, n - 2, n - 1] {
        if let Err(out) = interp(tb, fuel, memo) {
            return out;
        }
    }
    let model = match AffineModel::derive(&memo[&1], &memo[&2], &memo[&3]) {
        Some(m) => m,
        None => return AffineOutcome::Rejected,
    };
    for tb in affine_check_tbs(n) {
        let got = match interp(tb, fuel, memo) {
            Ok(acc) => acc,
            Err(out) => return out,
        };
        match model.predict(tb) {
            Some(want) if want == got => {}
            _ => return AffineOutcome::Rejected,
        }
    }
    // Materialize all blocks: memoized where interpreted, synthesized
    // elsewhere (sampled blocks are bit-equal either way).
    let mut per_tb = Vec::with_capacity(n as usize);
    for tb in 0..n {
        match memo.get(&tb) {
            Some(acc) => per_tb.push(acc.clone()),
            None => match model.predict(tb) {
                Some(acc) => per_tb.push(acc),
                None => return AffineOutcome::Rejected,
            },
        }
    }
    // Span-union certificate over the interior blocks.
    let env = Env {
        launch,
        bx: Interval::new(1, n as i128 - 2),
        by: Interval::point(0),
    };
    let u_span = match analyze_span(&env, cfg, counts, fuel) {
        Ok(acc) => acc,
        Err(AnalysisCut::OutOfFuel) => return AffineOutcome::OutOfFuel,
        // Span hulls can lose convergence where per-TB points do not;
        // that discredits the certificate, not the kernel.
        Err(AnalysisCut::NonStatic(_)) => return AffineOutcome::Rejected,
    };
    let interior = &per_tb[1..=(n as usize - 2)];
    let union_reads = RangeSet::from_unsorted(
        interior
            .iter()
            .flat_map(|t| t.reads.ranges().to_vec())
            .collect(),
    );
    let union_writes = RangeSet::from_unsorted(
        interior
            .iter()
            .flat_map(|t| t.writes.ranges().to_vec())
            .collect(),
    );
    if !u_span.reads.is_subset_of(&union_reads) || !u_span.writes.is_subset_of(&union_writes) {
        return AffineOutcome::Rejected;
    }
    AffineOutcome::Accepted(per_tb)
}

/// Analyzes every thread block of `launch`, producing per-TB read/write
/// sets, or the conservative non-static verdict.
///
/// This is the paper's kernel-launch-time just-in-time analysis: it runs
/// when the kernel command is processed (masked by pre-launching) and its
/// output feeds the bipartite dependency-graph builder.
///
/// # Examples
///
/// ```
/// # use bm_ptx::{parser::parse_kernel, kernel::*, absint::analyze_launch};
/// # use std::sync::Arc;
/// let k = Arc::new(parse_kernel(
///     ".entry w(.param .u64 A) {
///        ld.param.u64 %rd1, [A];
///        mov.u32 %r1, %tid.x;
///        mad.wide.u32 %rd2, %r1, 4, %rd1;
///        st.global.f32 [%rd2], 0f00000000;
///        ret;
///      }",
/// ).unwrap());
/// let launch = Launch::new(k, Dim3::x(2), Dim3::x(32), vec![ArgValue::Ptr(0x1000)]);
/// let acc = analyze_launch(&launch);
/// assert!(!acc.non_static);
/// assert_eq!(acc.per_tb[0].writes.ranges(), &[(0x1000, 0x1000 + 128)]);
/// ```
pub fn analyze_launch(launch: &Launch) -> KernelAccess {
    try_analyze_launch(launch)
        .unwrap_or_else(|e| panic!("launch-time analysis rejected the launch: {e}"))
}

/// Fallible variant of [`analyze_launch`]: validates the launch structure
/// first and returns [`PtxError::BadLaunch`] instead of analyzing a launch
/// whose argument list cannot bind to the kernel's parameters.
///
/// Note the distinction from the `non_static` verdict: a kernel whose
/// addresses cannot be bounded statically is a *valid* launch with a
/// conservative analysis result, while a malformed launch is an error.
///
/// # Errors
///
/// [`PtxError::BadLaunch`] for argument-arity mismatches or zero-thread
/// blocks.
pub fn try_analyze_launch(launch: &Launch) -> Result<KernelAccess, PtxError> {
    crate::error::validate_launch(launch)?;
    Ok(analyze_launch_unchecked(launch))
}

/// Budgeted variant of [`try_analyze_launch`]: every worklist pop of the
/// fixpoint iteration consumes one unit of `fuel`, shared across all thread
/// blocks of the launch. `Ok(None)` means the budget ran out before the
/// analysis finished — the caller should degrade to the coarse group-level
/// analysis ([`try_analyze_launch_grouped`]) or a whole-kernel barrier
/// rather than blocking the launch path.
///
/// # Errors
///
/// [`PtxError::BadLaunch`] for structurally invalid launches, exactly as
/// [`try_analyze_launch`].
pub fn try_analyze_launch_fueled(
    launch: &Launch,
    fuel: &mut u64,
) -> Result<Option<KernelAccess>, PtxError> {
    crate::error::validate_launch(launch)?;
    Ok(analyze_launch_fueled_unchecked(launch, fuel))
}

/// [`try_analyze_launch_fueled`] under an explicit [`ParallelConfig`]:
/// the per-TB interpretation loop fans out across `par.threads` workers
/// (fuel split evenly between them, results collected in thread-block
/// order) and, when `par.affine_fastpath` is set, the affine memoization
/// fast path may synthesize most per-TB sets from a verified model instead
/// of interpreting every block.
///
/// `ParallelConfig::reference()` runs the exact sequential code path of
/// [`try_analyze_launch_fueled`], bit for bit. Other configurations
/// produce identical `KernelAccess` values for launches that complete
/// within budget; the only behavioral difference under *fuel pressure* is
/// which degradation outcome is reached, because each worker owns only its
/// share of the budget.
///
/// # Errors
///
/// [`PtxError::BadLaunch`] for structurally invalid launches;
/// [`PtxError::Cancelled`] when `par.cancel` has fired before the launch
/// is analyzed (the check sits at the phase boundary, so a token that
/// never fires leaves the analysis bit-identical).
pub fn try_analyze_launch_fueled_par(
    launch: &Launch,
    fuel: &mut u64,
    par: &ParallelConfig,
) -> Result<Option<(KernelAccess, AbsintStats)>, PtxError> {
    crate::error::validate_launch(launch)?;
    if let Some(cause) = par.cancel_fired() {
        return Err(PtxError::Cancelled(cause));
    }
    Ok(analyze_launch_fueled_par_unchecked(launch, fuel, par))
}

/// Coarse group-level analysis: the grid is partitioned into at most
/// `groups` contiguous block ranges and each range is analyzed *once* with
/// `ctaid` spanning the whole range. Every member TB inherits the group's
/// (over-approximate) access sets, so the result is sound but yields a
/// pattern-level graph (group-to-group edges) instead of a per-TB graph —
/// the second rung of the degradation ladder, costing `groups` abstract
/// runs instead of `num_blocks`.
///
/// `Ok(None)` again means even the coarse analysis exhausted `fuel`.
///
/// # Errors
///
/// [`PtxError::BadLaunch`] for structurally invalid launches.
pub fn try_analyze_launch_grouped(
    launch: &Launch,
    groups: u32,
    fuel: &mut u64,
) -> Result<Option<KernelAccess>, PtxError> {
    crate::error::validate_launch(launch)?;
    Ok(analyze_launch_grouped_unchecked(
        launch,
        groups.max(1),
        fuel,
    ))
}

fn analyze_launch_unchecked(launch: &Launch) -> KernelAccess {
    let mut fuel = u64::MAX;
    // One thread, affine fast path on: `analyze_launch` is the convenience
    // entry point, so it gets the memoized pipeline (and the soundness
    // suite exercises the affine path through it).
    match analyze_launch_fueled_par_unchecked(launch, &mut fuel, &ParallelConfig::serial()) {
        Some((acc, _)) => acc,
        // Unreachable with unbounded fuel; fall back conservatively.
        None => conservative_access(launch.num_blocks()),
    }
}

/// The all-TBs-default, `non_static` verdict: usable by every consumer but
/// carrying no information — forces whole-kernel barrier semantics.
fn conservative_access(n_tbs: u32) -> KernelAccess {
    KernelAccess::from_per_tb(vec![TbAccess::default(); n_tbs as usize], true)
}

fn analyze_launch_fueled_unchecked(launch: &Launch, fuel: &mut u64) -> Option<KernelAccess> {
    analyze_launch_fueled_par_unchecked(launch, fuel, &ParallelConfig::reference())
        .map(|(acc, _)| acc)
}

fn analyze_launch_fueled_par_unchecked(
    launch: &Launch,
    fuel: &mut u64,
    par: &ParallelConfig,
) -> Option<(KernelAccess, AbsintStats)> {
    let cfg = Cfg::build(&launch.kernel);
    let counts = max_reg_counts(&launch.kernel.body);
    let n = launch.num_blocks();
    let mut stats = AbsintStats::default();
    // Anchors/samples interpreted by a rejected affine attempt are kept so
    // the fallback does not pay for them twice.
    let mut memo: BTreeMap<u32, TbAccess> = BTreeMap::new();

    if par.affine_fastpath && launch.grid.y == 1 && n >= AFFINE_MIN_TBS {
        stats.affine_attempted = true;
        match try_affine(launch, &cfg, counts, n, fuel, &mut memo) {
            AffineOutcome::Accepted(per_tb) => {
                stats.affine_accepted = true;
                stats.tbs_interpreted = memo.len() as u32;
                stats.tbs_synthesized = n - memo.len() as u32;
                return Some((KernelAccess::from_per_tb(per_tb, false), stats));
            }
            AffineOutcome::NonStatic => {
                stats.tbs_interpreted = memo.len() as u32;
                return Some((conservative_access(n), stats));
            }
            AffineOutcome::OutOfFuel => return None,
            AffineOutcome::Rejected => {}
        }
    }

    stats.tbs_interpreted = n;
    let threads = par.tb_threads_work(n as usize, launch.kernel.body.len());
    stats.threads_used = threads as u32;
    stats.serial_fallback = threads == 1 && par.effective_threads(n as usize) > 1;
    if threads <= 1 {
        // The sequential loop — with an empty memo and the fast path off,
        // this is the pre-parallel pipeline bit for bit.
        let mut per_tb = Vec::with_capacity(n as usize);
        for tb in 0..n {
            if let Some(acc) = memo.get(&tb) {
                per_tb.push(acc.clone());
                continue;
            }
            let (bx, by) = launch.block_coords(tb);
            let env = Env {
                launch,
                bx: Interval::point(bx as i128),
                by: Interval::point(by as i128),
            };
            match analyze_span(&env, &cfg, counts, fuel) {
                Ok(acc) => per_tb.push(acc),
                Err(AnalysisCut::OutOfFuel) => return None,
                Err(AnalysisCut::NonStatic(_)) => {
                    // Conservative: the kernel is fully dependent on its
                    // predecessor; access sets are unusable.
                    return Some((conservative_access(n), stats));
                }
            }
        }
        return Some((KernelAccess::from_per_tb(per_tb, false), stats));
    }

    // Fan out across workers: contiguous TB chunks, each owning an even
    // share of the fuel. Workers stop at their chunk's first cut; the
    // merge takes the first cut in thread-block order, so the outcome is a
    // pure function of the launch, the budget, and the thread count.
    let chunks = chunk_ranges(n as usize, threads);
    let base_share = *fuel / chunks.len() as u64;
    let extra = *fuel % chunks.len() as u64;
    let memo_ref = &memo;
    let cfg_ref = &cfg;
    let mut outs: Vec<(Vec<TbAccess>, Option<AnalysisCut>, u64)> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .enumerate()
            .map(|(i, r)| {
                let r = r.clone();
                let share = base_share + u64::from((i as u64) < extra);
                scope.spawn(move || {
                    let mut local_fuel = share;
                    let mut done = Vec::with_capacity(r.len());
                    let mut cut = None;
                    for tb in r {
                        let tb = tb as u32;
                        if let Some(acc) = memo_ref.get(&tb) {
                            done.push(acc.clone());
                            continue;
                        }
                        let (bx, by) = launch.block_coords(tb);
                        let env = Env {
                            launch,
                            bx: Interval::point(bx as i128),
                            by: Interval::point(by as i128),
                        };
                        match analyze_span(&env, cfg_ref, counts, &mut local_fuel) {
                            Ok(acc) => done.push(acc),
                            Err(c) => {
                                cut = Some(c);
                                break;
                            }
                        }
                    }
                    (done, cut, local_fuel)
                })
            })
            .collect();
        for h in handles {
            outs.push(h.join().expect("absint worker panicked"));
        }
    });
    *fuel = outs.iter().map(|(_, _, left)| *left).sum();
    let mut per_tb = Vec::with_capacity(n as usize);
    for (done, cut, _) in outs {
        per_tb.extend(done);
        match cut {
            None => {}
            Some(AnalysisCut::OutOfFuel) => return None,
            Some(AnalysisCut::NonStatic(_)) => return Some((conservative_access(n), stats)),
        }
    }
    Some((KernelAccess::from_per_tb(per_tb, false), stats))
}

fn analyze_launch_grouped_unchecked(
    launch: &Launch,
    groups: u32,
    fuel: &mut u64,
) -> Option<KernelAccess> {
    let cfg = Cfg::build(&launch.kernel);
    let counts = max_reg_counts(&launch.kernel.body);
    let n = launch.num_blocks();
    if n == 0 {
        return Some(KernelAccess::from_per_tb(Vec::new(), false));
    }
    let groups = groups.min(n);
    let group_size = n.div_ceil(groups);
    let mut per_tb = Vec::with_capacity(n as usize);
    let mut lo = 0u32;
    while lo < n {
        let hi = (lo + group_size).min(n) - 1; // inclusive
        let (bx, by) = span_coords(launch, lo, hi);
        let env = Env { launch, bx, by };
        match analyze_span(&env, &cfg, counts, fuel) {
            Ok(acc) => {
                for _ in lo..=hi {
                    per_tb.push(acc.clone());
                }
            }
            Err(AnalysisCut::OutOfFuel) => return None,
            Err(AnalysisCut::NonStatic(_)) => return Some(conservative_access(n)),
        }
        lo = hi + 1;
    }
    Some(KernelAccess::from_per_tb(per_tb, false))
}

/// `ctaid` intervals covering linear block ids `lo..=hi`. For 2D grids a
/// range spanning several rows widens `ctaid.x` to the full row — a sound
/// over-approximation of the rectangular hull.
fn span_coords(launch: &Launch, lo: u32, hi: u32) -> (Interval, Interval) {
    let (bx_lo, by_lo) = launch.block_coords(lo);
    let (bx_hi, by_hi) = launch.block_coords(hi);
    if by_lo == by_hi {
        (
            Interval::new(bx_lo as i128, bx_hi as i128),
            Interval::point(by_lo as i128),
        )
    } else {
        (
            Interval::new(0, launch.grid.x as i128 - 1),
            Interval::new(by_lo as i128, by_hi as i128),
        )
    }
}

/// Analyzes a single thread block.
///
/// # Errors
///
/// Returns [`NonStaticReason`] if any global access address is tainted or
/// the fixpoint iteration budget is exhausted.
pub fn analyze_block(
    launch: &Launch,
    cfg: &Cfg,
    counts: [usize; 4],
    tb: u32,
) -> Result<TbAccess, NonStaticReason> {
    let (bx, by) = launch.block_coords(tb);
    let env = Env {
        launch,
        bx: Interval::point(bx as i128),
        by: Interval::point(by as i128),
    };
    let mut fuel = u64::MAX;
    analyze_span(&env, cfg, counts, &mut fuel).map_err(|cut| match cut {
        AnalysisCut::NonStatic(r) => r,
        // Unreachable with unbounded fuel.
        AnalysisCut::OutOfFuel => NonStaticReason::NoConvergence,
    })
}

/// Fixpoint analysis of one `ctaid` span (a single TB when the env holds
/// point intervals, a block group for the coarse rung). Consumes one unit
/// of `fuel` per worklist pop.
fn analyze_span(
    env: &Env,
    cfg: &Cfg,
    counts: [usize; 4],
    fuel: &mut u64,
) -> Result<TbAccess, AnalysisCut> {
    let launch = env.launch;
    let body = &launch.kernel.body;
    let nb = cfg.blocks.len();
    if nb == 0 {
        return Ok(TbAccess::default());
    }
    let mut in_states: Vec<Option<AbsState>> = vec![None; nb];
    let mut out_states: Vec<Option<AbsState>> = vec![None; nb];
    in_states[0] = Some(AbsState::new(counts));
    let mut join_count = vec![0u32; nb];
    let mut queued = vec![false; nb];
    let mut work: Vec<usize> = vec![0];
    queued[0] = true;
    let mut pops = 0usize;
    let max_pops = nb * MAX_POPS_FACTOR;
    while let Some(b) = work.pop() {
        queued[b] = false;
        pops += 1;
        if pops > max_pops {
            return Err(AnalysisCut::NonStatic(NonStaticReason::NoConvergence));
        }
        if *fuel == 0 {
            return Err(AnalysisCut::OutOfFuel);
        }
        *fuel -= 1;
        let mut st = in_states[b].clone().expect("queued block has in-state");
        for inst in &body[cfg.blocks[b].start..cfg.blocks[b].end] {
            transfer(env, &mut st, inst);
        }
        let term = &body[cfg.blocks[b].end - 1];
        out_states[b] = Some(st.clone());
        for e in &cfg.blocks[b].succs {
            let mut es = st.clone();
            if let (Some(taken), Some(g)) = (e.taken, term.guard) {
                // Branch taken <=> guard passed <=> pred == !negated.
                let holds = taken != g.negated;
                refine_by_pred(env, &mut es, g.pred, holds);
            }
            let changed = match &mut in_states[e.to] {
                Some(cur) => {
                    let widen = join_count[e.to] > WIDEN_AFTER;
                    cur.join(&es, widen)
                }
                slot @ None => {
                    *slot = Some(es);
                    true
                }
            };
            if changed {
                join_count[e.to] += 1;
                if !queued[e.to] {
                    queued[e.to] = true;
                    work.push(e.to);
                }
            }
        }
    }
    // Narrowing: recompute in-states from predecessor outs (with edge
    // refinement) a bounded number of times; this claws back precision the
    // widening gave up, e.g. loop-counter upper bounds.
    for _ in 0..NARROW_PASSES {
        for &b in &cfg.rpo {
            if b != 0 {
                let mut acc: Option<AbsState> = None;
                for &p in &cfg.blocks[b].preds {
                    let Some(po) = &out_states[p] else { continue };
                    let term = &body[cfg.blocks[p].end - 1];
                    let edge = cfg.blocks[p].succs.iter().find(|e| e.to == b);
                    let mut es = po.clone();
                    if let (Some(e), Some(g)) = (edge, term.guard) {
                        if let Some(t) = e.taken {
                            let holds = t != g.negated;
                            refine_by_pred(env, &mut es, g.pred, holds);
                        }
                    }
                    match &mut acc {
                        Some(a) => {
                            a.join(&es, false);
                        }
                        None => acc = Some(es),
                    }
                }
                if let Some(a) = acc {
                    in_states[b] = Some(a);
                }
            }
            if let Some(ins) = &in_states[b] {
                let mut st = ins.clone();
                for inst in &body[cfg.blocks[b].start..cfg.blocks[b].end] {
                    transfer(env, &mut st, inst);
                }
                out_states[b] = Some(st);
            }
        }
    }
    // Collection pass: record every global access range.
    let mut acc = TbAccess::default();
    for &b in &cfg.rpo {
        let Some(ins) = &in_states[b] else { continue };
        let mut st = ins.clone();
        for inst in &body[cfg.blocks[b].start..cfg.blocks[b].end] {
            if let Op::Ld {
                space: MemSpace::Global,
                addr,
                ty,
                ..
            }
            | Op::St {
                space: MemSpace::Global,
                addr,
                ty,
                ..
            } = &inst.op
            {
                // If the access is guarded and the guard has a known setp,
                // refine a copy of the state first for a tighter range.
                let mut view = st.clone();
                if let Some(g) = inst.guard {
                    refine_by_pred(env, &mut view, g.pred, !g.negated);
                }
                let base = view.get(addr.base);
                if base.taint {
                    return Err(AnalysisCut::NonStatic(NonStaticReason::TaintedAddress));
                }
                let range = base.iv.add(&Interval::point(addr.offset as i128));
                let (lo, hi) = if range.is_empty() {
                    continue; // guard proves the access never executes
                } else if range.is_unbounded()
                    || range.lo() < 0
                    || range.hi() - range.lo() > MAX_ACCESS_SPAN
                {
                    // Static but unboundable: cover all of device memory.
                    (0u64, u64::MAX)
                } else {
                    (range.lo() as u64, range.hi() as u64 + ty.bytes())
                };
                let is_store = matches!(inst.op, Op::St { .. });
                if is_store {
                    acc.writes.insert(lo, hi);
                } else {
                    acc.reads.insert(lo, hi);
                }
            }
            transfer(env, &mut st, inst);
        }
    }
    Ok(acc)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::parser::parse_kernel;
    use std::sync::Arc;

    fn launch_1d(src: &str, grid: u32, block: u32, args: Vec<ArgValue>) -> Launch {
        let k = Arc::new(parse_kernel(src).unwrap());
        Launch::new(k, Dim3::x(grid), Dim3::x(block), args)
    }

    const VECADD: &str = r#"
.entry vecadd(.param .u64 A, .param .u64 B, .param .u64 C, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  ld.param.u64 %rd3, [C];
  ld.param.u32 %r4, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r5, %r1, %r2, %r3;
  setp.ge.u32 %p1, %r5, %r4;
  @%p1 bra $DONE;
  mul.wide.u32 %rd4, %r5, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f1, [%rd5];
  add.u64 %rd6, %rd2, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  add.u64 %rd7, %rd3, %rd4;
  st.global.f32 [%rd7], %f3;
$DONE:
  ret;
}
"#;

    #[test]
    fn vecadd_per_tb_ranges_are_disjoint_slices() {
        let (a, b, c) = (0x10000u64, 0x20000u64, 0x30000u64);
        let launch = launch_1d(
            VECADD,
            4,
            64,
            vec![
                ArgValue::Ptr(a),
                ArgValue::Ptr(b),
                ArgValue::Ptr(c),
                ArgValue::U32(256),
            ],
        );
        let acc = analyze_launch(&launch);
        assert!(!acc.non_static);
        assert_eq!(acc.per_tb.len(), 4);
        for (tb, t) in acc.per_tb.iter().enumerate() {
            let lo = tb as u64 * 64 * 4;
            let hi = lo + 64 * 4;
            assert_eq!(t.writes.ranges(), &[(c + lo, c + hi)], "tb{tb}");
            assert_eq!(t.reads.ranges(), &[(a + lo, a + hi), (b + lo, b + hi)]);
        }
        // Neighbouring blocks don't overlap in writes.
        assert!(!acc.per_tb[0].writes.intersects(&acc.per_tb[1].writes));
    }

    #[test]
    fn guard_prunes_out_of_range_tail_block() {
        // n=100, 2 blocks of 64: block 1 covers indices 64..99 only.
        let c = 0x30000u64;
        let launch = launch_1d(
            VECADD,
            2,
            64,
            vec![
                ArgValue::Ptr(0x10000),
                ArgValue::Ptr(0x20000),
                ArgValue::Ptr(c),
                ArgValue::U32(100),
            ],
        );
        let acc = analyze_launch(&launch);
        assert!(!acc.non_static);
        assert_eq!(acc.per_tb[1].writes.ranges(), &[(c + 256, c + 400)]);
    }

    #[test]
    fn indirect_gather_is_non_static() {
        let src = r#"
.entry gather(.param .u64 A, .param .u64 B)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [B];
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd3, %r1, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.u32 %r2, [%rd4];
  mul.wide.u32 %rd5, %r2, 4;
  add.u64 %rd6, %rd2, %rd5;
  ld.global.f32 %f1, [%rd6];
  ret;
}
"#;
        let launch = launch_1d(
            src,
            1,
            32,
            vec![ArgValue::Ptr(0x1000), ArgValue::Ptr(0x2000)],
        );
        let acc = analyze_launch(&launch);
        assert!(acc.non_static);
    }

    #[test]
    fn loop_over_row_yields_row_range() {
        // Each thread sums row `gid` of an NxN matrix: reads the whole row
        // A[gid*N .. gid*N+N) via a loop — narrowing must recover the bound.
        let src = r#"
.entry rowsum(.param .u64 A, .param .u64 O, .param .u32 n)
{
  ld.param.u64 %rd1, [A];
  ld.param.u64 %rd2, [O];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  mul.lo.u32 %r5, %r4, %r9;
  mov.u32 %r6, 0;
  mov.f32 %f1, 0f00000000;
$TOP:
  setp.ge.u32 %p1, %r6, %r9;
  @%p1 bra $OUT;
  add.u32 %r7, %r5, %r6;
  mul.wide.u32 %rd3, %r7, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f2, [%rd4];
  add.f32 %f1, %f1, %f2;
  add.u32 %r6, %r6, 1;
  bra $TOP;
$OUT:
  mul.wide.u32 %rd5, %r4, 4;
  add.u64 %rd6, %rd2, %rd5;
  st.global.f32 [%rd6], %f1;
  ret;
}
"#;
        let a = 0x100000u64;
        let o = 0x200000u64;
        let n = 16u32;
        // 2 blocks x 8 threads: block 0 handles rows 0..8.
        let launch = launch_1d(
            src,
            2,
            8,
            vec![ArgValue::Ptr(a), ArgValue::Ptr(o), ArgValue::U32(n)],
        );
        let acc = analyze_launch(&launch);
        assert!(!acc.non_static, "loop kernel should stay static");
        // Block 0: rows 0..8 -> elements 0 .. 8*16 => bytes a .. a+512.
        let r0 = &acc.per_tb[0].reads;
        assert_eq!(r0.bounds(), Some((a, a + 8 * 16 * 4)));
        // Block 1: rows 8..16.
        let r1 = &acc.per_tb[1].reads;
        assert_eq!(r1.bounds(), Some((a + 8 * 16 * 4, a + 16 * 16 * 4)));
        assert_eq!(acc.per_tb[0].writes.ranges(), &[(o, o + 32)]);
    }

    #[test]
    fn stencil_reads_extend_one_past_block() {
        // out[i] = in[i-1] + in[i+1] with interior guard.
        let src = r#"
.entry stencil(.param .u64 I, .param .u64 O, .param .u32 n)
{
  ld.param.u64 %rd1, [I];
  ld.param.u64 %rd2, [O];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %ctaid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %tid.x;
  mad.lo.u32 %r4, %r1, %r2, %r3;
  setp.eq.u32 %p1, %r4, 0;
  @%p1 bra $DONE;
  sub.u32 %r8, %r9, 1;
  setp.ge.u32 %p2, %r4, %r8;
  @%p2 bra $DONE;
  sub.u32 %r5, %r4, 1;
  mul.wide.u32 %rd3, %r5, 4;
  add.u64 %rd4, %rd1, %rd3;
  ld.global.f32 %f1, [%rd4];
  add.u32 %r6, %r4, 1;
  mul.wide.u32 %rd5, %r6, 4;
  add.u64 %rd6, %rd1, %rd5;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  mul.wide.u32 %rd7, %r4, 4;
  add.u64 %rd8, %rd2, %rd7;
  st.global.f32 [%rd8], %f3;
$DONE:
  ret;
}
"#;
        let i = 0x10000u64;
        let o = 0x20000u64;
        let launch = launch_1d(
            src,
            4,
            32,
            vec![ArgValue::Ptr(i), ArgValue::Ptr(o), ArgValue::U32(128)],
        );
        let acc = analyze_launch(&launch);
        assert!(!acc.non_static);
        // Interior block 1 (indices 32..63): reads 31..65 elements.
        let t1 = &acc.per_tb[1];
        assert_eq!(t1.reads.bounds(), Some((i + 31 * 4, i + 65 * 4)));
        assert_eq!(t1.writes.bounds(), Some((o + 32 * 4, o + 64 * 4)));
        // Inter-kernel view: a second stencil launch ping-pongs the buffers
        // (reads O, writes I). Its block 1 reads must overlap the writes of
        // blocks 0, 1, and 2 of the first launch — the halo that makes
        // stencils an "overlapped" dependency pattern (Fig. 8f).
        let launch2 = launch_1d(
            src,
            4,
            32,
            vec![ArgValue::Ptr(o), ArgValue::Ptr(i), ArgValue::U32(128)],
        );
        let acc2 = analyze_launch(&launch2);
        let child = &acc2.per_tb[1];
        for parent_tb in [0usize, 1, 2] {
            assert!(
                child.reads.intersects(&acc.per_tb[parent_tb].writes),
                "child TB1 should depend on parent TB{parent_tb}"
            );
        }
        assert!(!child.reads.intersects(&acc.per_tb[3].writes));
    }
}
