//! Deterministic parallelism for the launch-time analysis pipeline.
//!
//! BlockMaestro's premise is that TB-level dependency analysis is cheap
//! enough to run at kernel-launch time; the work is embarrassingly parallel
//! across thread blocks, child-TB queries, and kernels. This module holds
//! the knob every stage shares — [`ParallelConfig`] — and a scoped-thread
//! fork/join helper with *deterministic output ordering*: results are
//! always collected in item order, so the only thing the thread count
//! changes is wall-clock time, never bytes of output.
//!
//! `ParallelConfig::reference()` (one thread, affine fast path off)
//! reproduces the pre-parallel pipeline bit-for-bit and is the baseline
//! every other configuration is property-tested against.

use crate::cancel::{CancelCause, CancelToken};
use std::ops::Range;

/// Below this many thread blocks per kernel, multi-threaded per-TB
/// interpretation is a net loss: fork/join overhead dominates the work
/// (BENCH_analysis.json: `parallel8` vs `reference` is 0.75x on AlexNet
/// and 0.50x on BICG, whose kernels have few TBs). [`ParallelConfig`]
/// constructors meant for production use seed this as the default
/// serial-fallback threshold.
pub const DEFAULT_SERIAL_TB_THRESHOLD: u32 = 64;

/// Work-based serial-admission floor: a fan-out is only admitted when the
/// kernel's approximate work (items × body length) clears this bar, so a
/// *large grid of trivial kernels* — the FFT pattern, where `parallel8`
/// absint ran at 0.23x of reference in BENCH v1 — stays serial even though
/// its TB count clears [`DEFAULT_SERIAL_TB_THRESHOLD`]. Like the TB
/// threshold this is purely a wall-clock knob: outputs are identical
/// whichever way the decision goes.
pub const DEFAULT_SERIAL_WORK_THRESHOLD: u64 = 4096;

/// Configuration of the launch-time analysis pipeline: worker threads and
/// the affine per-TB memoization fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for per-TB interpretation, per-child-TB graph
    /// queries, and per-kernel analysis. `1` runs every stage on the
    /// calling thread over the exact sequential code path.
    pub threads: usize,
    /// Whether the affine-access fast path may synthesize per-TB access
    /// sets by translation instead of interpreting every thread block
    /// (see `bm_ptx::absint`). Verified per launch; rejection falls back
    /// to full interpretation, so disabling this only costs time.
    pub affine_fastpath: bool,
    /// Per-TB interpretation falls back to one thread for kernels with
    /// fewer than this many thread blocks — small grids lose more to
    /// fork/join than they gain from concurrency. `0` disables the
    /// heuristic. Outputs are thread-count invariant either way (the
    /// fork/join helper collects in item order), so this is purely a
    /// wall-clock knob.
    pub serial_tb_threshold: u32,
    /// Work-based serial admission: fan-outs whose items × kernel-body
    /// length fall below this stay serial even past the TB threshold, so
    /// many-TB kernels with near-empty bodies never pay fork/join. `0`
    /// disables the heuristic. Purely a wall-clock knob, like
    /// [`ParallelConfig::serial_tb_threshold`].
    pub serial_work_threshold: u64,
    /// Whether the launch-time trace phase may use the representative-TB
    /// trace law: per-warp lane subsets with affine address synthesis
    /// (`bm_ptx::trace::trace_block_law`) and cross-launch trace
    /// memoization in `bm-core`. Validated per warp and per launch;
    /// rejection falls back to full interpretation, so disabling this only
    /// costs time.
    pub trace_memo: bool,
    /// Allow more workers than the machine has cores. Analysis fan-outs
    /// are CPU-bound, so oversubscription is pure spawn/switch overhead
    /// and [`ParallelConfig::effective_threads`] normally clamps to
    /// [`hardware_threads`]; tests of the parallel machinery set this to
    /// exercise multi-worker code paths on small machines. Like every
    /// thread knob, purely wall-clock: outputs are identical either way.
    pub oversubscribe: bool,
    /// Cooperative cancellation observed at analysis phase boundaries.
    /// `None` (the default everywhere outside `bm-serve`) means no check
    /// ever fires. Only the `try_*` analysis entry points honor the
    /// token — infallible wrappers have no error channel to surface it.
    pub cancel: Option<CancelToken>,
}

/// The machine's available hardware parallelism, sampled once.
pub fn hardware_threads() -> usize {
    use std::sync::OnceLock;
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

impl ParallelConfig {
    /// All available cores plus the affine fast path — the production
    /// configuration.
    pub fn max_parallel() -> Self {
        ParallelConfig {
            threads: hardware_threads(),
            affine_fastpath: true,
            serial_tb_threshold: DEFAULT_SERIAL_TB_THRESHOLD,
            serial_work_threshold: DEFAULT_SERIAL_WORK_THRESHOLD,
            trace_memo: true,
            oversubscribe: false,
            cancel: None,
        }
    }

    /// One thread, affine fast path on: sequential but memoized.
    pub fn serial() -> Self {
        ParallelConfig {
            threads: 1,
            affine_fastpath: true,
            serial_tb_threshold: 0,
            serial_work_threshold: 0,
            trace_memo: true,
            oversubscribe: false,
            cancel: None,
        }
    }

    /// The bit-for-bit pre-parallel pipeline: one thread, every TB fully
    /// interpreted. This is the behavior all other configurations are
    /// checked against.
    pub fn reference() -> Self {
        ParallelConfig {
            threads: 1,
            affine_fastpath: false,
            serial_tb_threshold: 0,
            serial_work_threshold: 0,
            trace_memo: false,
            oversubscribe: false,
            cancel: None,
        }
    }

    /// `threads` workers with the affine fast path enabled.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            affine_fastpath: true,
            serial_tb_threshold: DEFAULT_SERIAL_TB_THRESHOLD,
            serial_work_threshold: DEFAULT_SERIAL_WORK_THRESHOLD,
            trace_memo: true,
            oversubscribe: false,
            cancel: None,
        }
    }

    /// The same configuration with `cancel` installed.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The same configuration with the hardware-core clamp lifted — used
    /// by tests that must exercise multi-worker code paths regardless of
    /// the machine they run on.
    pub fn oversubscribed(mut self) -> Self {
        self.oversubscribe = true;
        self
    }

    /// The cause of a fired cancellation token, if one is installed and
    /// has fired. Analysis stages call this at phase boundaries.
    pub fn cancel_fired(&self) -> Option<CancelCause> {
        self.cancel.as_ref().and_then(|t| t.fired())
    }

    /// Worker count actually used for `items` work items: the requested
    /// count, clamped to the item count and — unless
    /// [`ParallelConfig::oversubscribe`] is set — to the machine's cores,
    /// since a CPU-bound fan-out wider than the hardware only adds spawn
    /// and context-switch overhead (the BENCH v1 `parallel8` regressions).
    pub fn effective_threads(&self, items: usize) -> usize {
        let cap = if self.oversubscribe {
            usize::MAX
        } else {
            hardware_threads()
        };
        self.threads.max(1).min(cap).min(items.max(1))
    }

    /// Worker count for per-TB interpretation of an `n_tbs`-block kernel:
    /// [`ParallelConfig::effective_threads`], except grids below
    /// [`ParallelConfig::serial_tb_threshold`] run serial. Stages that
    /// fan out across *kernels* rather than TBs keep using
    /// `effective_threads` — the threshold is a per-grid heuristic.
    pub fn tb_threads(&self, n_tbs: usize) -> usize {
        if self.serial_tb_threshold > 0 && n_tbs < self.serial_tb_threshold as usize {
            1
        } else {
            self.effective_threads(n_tbs)
        }
    }

    /// [`ParallelConfig::tb_threads`] with the work-based admission bar on
    /// top: `n_tbs × body_len` must clear
    /// [`ParallelConfig::serial_work_threshold`] for the fan-out to be
    /// admitted, so trivial-body kernels stay serial however many TBs they
    /// launch.
    pub fn tb_threads_work(&self, n_tbs: usize, body_len: usize) -> usize {
        if self.serial_work_threshold > 0
            && (n_tbs as u64).saturating_mul(body_len as u64) < self.serial_work_threshold
        {
            1
        } else {
            self.tb_threads(n_tbs)
        }
    }

    /// Worker count for the trace phase's per-warp fan-out over the
    /// representative thread block: admitted only when the block's
    /// approximate work (`n_warps × body_len`) clears the work threshold.
    /// Outputs are warp-thread invariant (each warp is traced as a pure
    /// function of the incoming memory), so this too is wall-clock only.
    pub fn trace_warp_threads(&self, n_warps: usize, body_len: usize) -> usize {
        if self.threads <= 1 {
            return 1;
        }
        if self.serial_work_threshold > 0
            && (n_warps as u64).saturating_mul(body_len as u64) < self.serial_work_threshold
        {
            1
        } else {
            self.effective_threads(n_warps)
        }
    }
}

impl Default for ParallelConfig {
    /// Defaults to [`ParallelConfig::max_parallel`].
    fn default() -> Self {
        ParallelConfig::max_parallel()
    }
}

/// Splits `0..n` into at most `threads` contiguous chunks (sizes differing
/// by at most one), runs `work` on each chunk — concurrently when
/// `threads > 1` — and concatenates the per-chunk outputs *in chunk
/// order*. The output is therefore identical for every thread count as
/// long as `work` is a pure function of its range.
pub fn par_chunks<T, F>(threads: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n == 0 {
        return work(0..n);
    }
    let ranges = chunk_ranges(n, threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(|| work(r)))
            .collect();
        for h in handles {
            out.push(h.join().expect("analysis worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// The contiguous chunk decomposition used by [`par_chunks`]: `threads`
/// ranges covering `0..n` in order.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let rem = n % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut lo = 0usize;
    for i in 0..threads {
        let len = base + usize::from(i < rem);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for t in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(n, t);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                if let (Some(&mx), Some(&mn)) = (sizes.iter().max(), sizes.iter().min()) {
                    assert!(mx - mn <= 1, "n={n} t={t} sizes {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_chunks_order_is_thread_count_invariant() {
        let work = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
        let serial = par_chunks(1, 37, work);
        for t in [2usize, 3, 8, 16] {
            assert_eq!(par_chunks(t, 37, work), serial, "threads={t}");
        }
        assert_eq!(serial.len(), 37);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ParallelConfig::reference().threads, 1);
        assert!(!ParallelConfig::reference().affine_fastpath);
        assert!(!ParallelConfig::reference().trace_memo);
        assert!(ParallelConfig::serial().affine_fastpath);
        assert!(ParallelConfig::serial().trace_memo);
        assert!(ParallelConfig::max_parallel().threads >= 1);
        assert!(ParallelConfig::with_threads(8).trace_memo);
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
        let p8 = ParallelConfig::with_threads(8).oversubscribed();
        assert_eq!(p8.effective_threads(3), 3);
        let p2 = ParallelConfig::with_threads(2).oversubscribed();
        assert_eq!(p2.effective_threads(100), 2);
    }

    #[test]
    fn effective_threads_clamps_to_hardware_unless_oversubscribed() {
        let requested = hardware_threads() + 4;
        let par = ParallelConfig::with_threads(requested);
        assert_eq!(par.effective_threads(1000), hardware_threads());
        assert_eq!(
            par.clone().oversubscribed().effective_threads(1000),
            requested
        );
        // The item clamp still applies either way.
        assert_eq!(par.oversubscribed().effective_threads(1), 1);
    }

    #[test]
    fn work_threshold_keeps_trivial_kernels_serial() {
        let par = ParallelConfig::with_threads(8).oversubscribed();
        assert_eq!(par.serial_work_threshold, DEFAULT_SERIAL_WORK_THRESHOLD);
        // 128 TBs clears the TB threshold, but a 10-instruction body does
        // not clear the work bar (128 × 10 < 4096).
        assert_eq!(par.tb_threads(128), 8);
        assert_eq!(par.tb_threads_work(128, 10), 1);
        assert_eq!(par.tb_threads_work(128, 40), 8);
        // Trace-phase warp fan-out obeys the same bar.
        assert_eq!(par.trace_warp_threads(8, 10), 1);
        assert_eq!(par.trace_warp_threads(8, 600), 8);
        // A single-threaded config never fans out, thresholds or not.
        assert_eq!(ParallelConfig::serial().trace_warp_threads(64, 600), 1);
        // Disabled heuristic (threshold 0) admits everything.
        let mut open = ParallelConfig::with_threads(4).oversubscribed();
        open.serial_work_threshold = 0;
        open.serial_tb_threshold = 0;
        assert_eq!(open.tb_threads_work(2, 1), 2);
        assert_eq!(open.trace_warp_threads(2, 1), 2);
    }

    #[test]
    fn tb_threads_falls_back_to_serial_below_threshold() {
        let par = ParallelConfig::with_threads(8).oversubscribed();
        assert_eq!(par.serial_tb_threshold, DEFAULT_SERIAL_TB_THRESHOLD);
        // Small grids run serial; at or above the threshold they fan out.
        assert_eq!(par.tb_threads(8), 1);
        assert_eq!(par.tb_threads(63), 1);
        assert_eq!(par.tb_threads(64), 8);
        assert_eq!(par.tb_threads(1000), 8);
        // Reference/serial configs disable the heuristic entirely.
        assert_eq!(ParallelConfig::reference().serial_tb_threshold, 0);
        assert_eq!(ParallelConfig::serial().serial_tb_threshold, 0);
        let mut custom = ParallelConfig::with_threads(4).oversubscribed();
        custom.serial_tb_threshold = 0;
        assert_eq!(custom.tb_threads(2), 2);
    }

    #[test]
    fn cancel_plumbs_through_config() {
        let token = crate::cancel::CancelToken::new();
        let par = ParallelConfig::reference().with_cancel(token.clone());
        assert_eq!(par.cancel_fired(), None);
        token.expire();
        assert_eq!(
            par.cancel_fired(),
            Some(crate::cancel::CancelCause::DeadlineExceeded)
        );
        assert_eq!(ParallelConfig::reference().cancel_fired(), None);
    }
}
