//! Deterministic parallelism for the launch-time analysis pipeline.
//!
//! BlockMaestro's premise is that TB-level dependency analysis is cheap
//! enough to run at kernel-launch time; the work is embarrassingly parallel
//! across thread blocks, child-TB queries, and kernels. This module holds
//! the knob every stage shares — [`ParallelConfig`] — and a scoped-thread
//! fork/join helper with *deterministic output ordering*: results are
//! always collected in item order, so the only thing the thread count
//! changes is wall-clock time, never bytes of output.
//!
//! `ParallelConfig::reference()` (one thread, affine fast path off)
//! reproduces the pre-parallel pipeline bit-for-bit and is the baseline
//! every other configuration is property-tested against.

use crate::cancel::{CancelCause, CancelToken};
use std::ops::Range;

/// Below this many thread blocks per kernel, multi-threaded per-TB
/// interpretation is a net loss: fork/join overhead dominates the work
/// (BENCH_analysis.json: `parallel8` vs `reference` is 0.75x on AlexNet
/// and 0.50x on BICG, whose kernels have few TBs). [`ParallelConfig`]
/// constructors meant for production use seed this as the default
/// serial-fallback threshold.
pub const DEFAULT_SERIAL_TB_THRESHOLD: u32 = 64;

/// Configuration of the launch-time analysis pipeline: worker threads and
/// the affine per-TB memoization fast path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads for per-TB interpretation, per-child-TB graph
    /// queries, and per-kernel analysis. `1` runs every stage on the
    /// calling thread over the exact sequential code path.
    pub threads: usize,
    /// Whether the affine-access fast path may synthesize per-TB access
    /// sets by translation instead of interpreting every thread block
    /// (see `bm_ptx::absint`). Verified per launch; rejection falls back
    /// to full interpretation, so disabling this only costs time.
    pub affine_fastpath: bool,
    /// Per-TB interpretation falls back to one thread for kernels with
    /// fewer than this many thread blocks — small grids lose more to
    /// fork/join than they gain from concurrency. `0` disables the
    /// heuristic. Outputs are thread-count invariant either way (the
    /// fork/join helper collects in item order), so this is purely a
    /// wall-clock knob.
    pub serial_tb_threshold: u32,
    /// Cooperative cancellation observed at analysis phase boundaries.
    /// `None` (the default everywhere outside `bm-serve`) means no check
    /// ever fires. Only the `try_*` analysis entry points honor the
    /// token — infallible wrappers have no error channel to surface it.
    pub cancel: Option<CancelToken>,
}

impl ParallelConfig {
    /// All available cores plus the affine fast path — the production
    /// configuration.
    pub fn max_parallel() -> Self {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            affine_fastpath: true,
            serial_tb_threshold: DEFAULT_SERIAL_TB_THRESHOLD,
            cancel: None,
        }
    }

    /// One thread, affine fast path on: sequential but memoized.
    pub fn serial() -> Self {
        ParallelConfig {
            threads: 1,
            affine_fastpath: true,
            serial_tb_threshold: 0,
            cancel: None,
        }
    }

    /// The bit-for-bit pre-parallel pipeline: one thread, every TB fully
    /// interpreted. This is the behavior all other configurations are
    /// checked against.
    pub fn reference() -> Self {
        ParallelConfig {
            threads: 1,
            affine_fastpath: false,
            serial_tb_threshold: 0,
            cancel: None,
        }
    }

    /// `threads` workers with the affine fast path enabled.
    pub fn with_threads(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            affine_fastpath: true,
            serial_tb_threshold: DEFAULT_SERIAL_TB_THRESHOLD,
            cancel: None,
        }
    }

    /// The same configuration with `cancel` installed.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// The cause of a fired cancellation token, if one is installed and
    /// has fired. Analysis stages call this at phase boundaries.
    pub fn cancel_fired(&self) -> Option<CancelCause> {
        self.cancel.as_ref().and_then(|t| t.fired())
    }

    /// Worker count actually used for `items` work items.
    pub fn effective_threads(&self, items: usize) -> usize {
        self.threads.max(1).min(items.max(1))
    }

    /// Worker count for per-TB interpretation of an `n_tbs`-block kernel:
    /// [`ParallelConfig::effective_threads`], except grids below
    /// [`ParallelConfig::serial_tb_threshold`] run serial. Stages that
    /// fan out across *kernels* rather than TBs keep using
    /// `effective_threads` — the threshold is a per-grid heuristic.
    pub fn tb_threads(&self, n_tbs: usize) -> usize {
        if self.serial_tb_threshold > 0 && n_tbs < self.serial_tb_threshold as usize {
            1
        } else {
            self.effective_threads(n_tbs)
        }
    }
}

impl Default for ParallelConfig {
    /// Defaults to [`ParallelConfig::max_parallel`].
    fn default() -> Self {
        ParallelConfig::max_parallel()
    }
}

/// Splits `0..n` into at most `threads` contiguous chunks (sizes differing
/// by at most one), runs `work` on each chunk — concurrently when
/// `threads > 1` — and concatenates the per-chunk outputs *in chunk
/// order*. The output is therefore identical for every thread count as
/// long as `work` is a pure function of its range.
pub fn par_chunks<T, F>(threads: usize, n: usize, work: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads <= 1 || n == 0 {
        return work(0..n);
    }
    let ranges = chunk_ranges(n, threads);
    let mut out: Vec<Vec<T>> = Vec::with_capacity(ranges.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|r| scope.spawn(|| work(r)))
            .collect();
        for h in handles {
            out.push(h.join().expect("analysis worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// The contiguous chunk decomposition used by [`par_chunks`]: `threads`
/// ranges covering `0..n` in order.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<Range<usize>> {
    let threads = threads.max(1).min(n.max(1));
    let base = n / threads;
    let rem = n % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut lo = 0usize;
    for i in 0..threads {
        let len = base + usize::from(i < rem);
        ranges.push(lo..lo + len);
        lo += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 8, 9, 100] {
            for t in [1usize, 2, 3, 8, 64] {
                let ranges = chunk_ranges(n, t);
                let flat: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..n).collect::<Vec<_>>(), "n={n} t={t}");
                // Balanced: sizes differ by at most one.
                let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
                if let (Some(&mx), Some(&mn)) = (sizes.iter().max(), sizes.iter().min()) {
                    assert!(mx - mn <= 1, "n={n} t={t} sizes {sizes:?}");
                }
            }
        }
    }

    #[test]
    fn par_chunks_order_is_thread_count_invariant() {
        let work = |r: Range<usize>| r.map(|i| i * i).collect::<Vec<_>>();
        let serial = par_chunks(1, 37, work);
        for t in [2usize, 3, 8, 16] {
            assert_eq!(par_chunks(t, 37, work), serial, "threads={t}");
        }
        assert_eq!(serial.len(), 37);
        assert_eq!(serial[6], 36);
    }

    #[test]
    fn config_constructors() {
        assert_eq!(ParallelConfig::reference().threads, 1);
        assert!(!ParallelConfig::reference().affine_fastpath);
        assert!(ParallelConfig::serial().affine_fastpath);
        assert!(ParallelConfig::max_parallel().threads >= 1);
        assert_eq!(ParallelConfig::with_threads(0).threads, 1);
        assert_eq!(ParallelConfig::with_threads(8).effective_threads(3), 3);
        assert_eq!(ParallelConfig::with_threads(2).effective_threads(100), 2);
    }

    #[test]
    fn tb_threads_falls_back_to_serial_below_threshold() {
        let par = ParallelConfig::with_threads(8);
        assert_eq!(par.serial_tb_threshold, DEFAULT_SERIAL_TB_THRESHOLD);
        // Small grids run serial; at or above the threshold they fan out.
        assert_eq!(par.tb_threads(8), 1);
        assert_eq!(par.tb_threads(63), 1);
        assert_eq!(par.tb_threads(64), 8);
        assert_eq!(par.tb_threads(1000), 8);
        // Reference/serial configs disable the heuristic entirely.
        assert_eq!(ParallelConfig::reference().serial_tb_threshold, 0);
        assert_eq!(ParallelConfig::serial().serial_tb_threshold, 0);
        let mut custom = ParallelConfig::with_threads(4);
        custom.serial_tb_threshold = 0;
        assert_eq!(custom.tb_threads(2), 2);
    }

    #[test]
    fn cancel_plumbs_through_config() {
        let token = crate::cancel::CancelToken::new();
        let par = ParallelConfig::reference().with_cancel(token.clone());
        assert_eq!(par.cancel_fired(), None);
        token.expire();
        assert_eq!(
            par.cancel_fired(),
            Some(crate::cancel::CancelCause::DeadlineExceeded)
        );
        assert_eq!(ParallelConfig::reference().cancel_fired(), None);
    }
}
