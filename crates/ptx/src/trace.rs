//! Dynamic warp traces: the interface between functional execution and the
//! timing model.
//!
//! A [`TbTrace`] summarizes one thread block's execution as per-warp event
//! streams (compute bursts, coalesced global-memory transactions, barriers).
//! The SM timing model in `bm-simt` replays these streams under GTO warp
//! scheduling to derive thread-block durations and memory-request counts.

use crate::interp::{
    execute_block_limited, ExecError, ExecObserver, ThreadId, MAX_STEPS_PER_THREAD,
};
use crate::isa::{MemSpace, Op};
use crate::kernel::Launch;
use crate::mem::GlobalMem;
use std::collections::HashMap;

/// Size of a coalesced memory transaction in bytes (one cache sector line).
pub const SEGMENT_BYTES: u64 = 128;

/// One event in a warp's dynamic execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEv {
    /// `n` back-to-back non-memory instructions.
    Compute(u32),
    /// A global-memory instruction generating `segments` transactions.
    Mem {
        /// Number of 128-byte segments touched by the warp.
        segments: u32,
        /// Whether the access is a store.
        store: bool,
    },
    /// A block-wide barrier.
    Bar,
}

/// Dynamic event stream of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpTrace {
    /// Events in execution order.
    pub events: Vec<TraceEv>,
}

impl WarpTrace {
    /// Total dynamic instructions represented.
    pub fn dyn_instrs(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEv::Compute(n) => *n as u64,
                TraceEv::Mem { .. } => 1,
                TraceEv::Bar => 1,
            })
            .sum()
    }
}

/// Trace of one thread block: per-warp streams plus summary counters.
#[derive(Debug, Clone, Default)]
pub struct TbTrace {
    /// Per-warp event streams.
    pub warps: Vec<WarpTrace>,
    /// Dynamic instructions across all threads.
    pub dyn_instrs: u64,
    /// Coalesced global-memory transactions across all warps.
    pub global_transactions: u64,
    /// Raw global accesses (per thread).
    pub global_accesses: u64,
}

#[derive(Default)]
struct TraceObserver {
    // Per-thread event streams: (inst_idx, is_mem, is_store).
    streams: Vec<Vec<(u32, bool, bool)>>,
    // (warp, inst_idx, occurrence) -> segment set for the current access.
    segs: HashMap<(u32, u32, u32), Vec<u64>>,
    // Per-thread per-inst occurrence counters for grouping lanes.
    occ: Vec<HashMap<u32, u32>>,
    accesses: u64,
}

impl TraceObserver {
    fn ensure(&mut self, tid: usize) {
        if self.streams.len() <= tid {
            self.streams.resize_with(tid + 1, Vec::new);
            self.occ.resize_with(tid + 1, HashMap::new);
        }
    }
}

impl ExecObserver for TraceObserver {
    fn on_inst(&mut self, t: ThreadId, inst_idx: usize, op: &Op) {
        let tid = t.tid as usize;
        self.ensure(tid);
        let is_mem = matches!(
            op,
            Op::Ld {
                space: MemSpace::Global,
                ..
            } | Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        let is_store = matches!(
            op,
            Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        let kind_bar = matches!(op, Op::Bar);
        // Encode barriers as inst_idx with is_mem=false; the rebuild pass
        // re-detects them by index, so we only need the ordered stream.
        let _ = kind_bar;
        self.streams[tid].push((inst_idx as u32, is_mem, is_store));
    }

    fn on_global_access(&mut self, t: ThreadId, inst_idx: usize, addr: u64, _store: bool) {
        self.accesses += 1;
        let tid = t.tid as usize;
        self.ensure(tid);
        let occ = self.occ[tid].entry(inst_idx as u32).or_insert(0);
        let key = (t.warp(), inst_idx as u32, *occ);
        *occ += 1;
        let seg = addr / SEGMENT_BYTES;
        let v = self.segs.entry(key).or_default();
        if !v.contains(&seg) {
            v.push(seg);
        }
    }
}

/// Functionally executes block `tb` of `launch`, producing its trace.
///
/// Memory *is* mutated (the trace run is a real execution); callers that
/// only want timing typically pass a scratch [`GlobalMem`].
///
/// # Errors
///
/// Propagates [`ExecError`] from the underlying execution.
pub fn trace_block(launch: &Launch, tb: u32, mem: &mut GlobalMem) -> Result<TbTrace, ExecError> {
    trace_block_limited(launch, tb, mem, MAX_STEPS_PER_THREAD)
}

/// [`trace_block`] under an explicit per-thread step budget. The launch-time
/// profiler uses this so a pathological kernel cannot stall the launch path:
/// exceeding the budget surfaces as [`ExecError::StepLimit`] and the caller
/// degrades to an estimated profile.
///
/// # Errors
///
/// As [`trace_block`], plus [`ExecError::StepLimit`] once `max_steps` is
/// exceeded by any thread.
pub fn trace_block_limited(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    max_steps: u64,
) -> Result<TbTrace, ExecError> {
    let mut obs = TraceObserver::default();
    let stats = execute_block_limited(launch, tb, mem, &mut obs, max_steps)?;
    let nthreads = launch.threads_per_block();
    let nwarps = launch.warps_per_block();
    let body = &launch.kernel.body;
    let mut warps = Vec::with_capacity(nwarps as usize);
    let mut total_segments = 0u64;
    for w in 0..nwarps {
        // Representative lane: the one with the longest stream (divergent
        // warps are approximated by their longest path).
        let lanes = (w * 32)..((w * 32 + 32).min(nthreads));
        let rep = lanes
            .clone()
            .filter(|&t| (t as usize) < obs.streams.len())
            .max_by_key(|&t| obs.streams[t as usize].len());
        let mut wt = WarpTrace::default();
        let Some(rep) = rep else {
            warps.push(wt);
            continue;
        };
        let mut occ_count: HashMap<u32, u32> = HashMap::new();
        let mut run = 0u32;
        for &(inst_idx, is_mem, is_store) in &obs.streams[rep as usize] {
            let is_bar = matches!(body[inst_idx as usize].op, Op::Bar);
            if is_mem {
                if run > 0 {
                    wt.events.push(TraceEv::Compute(run));
                    run = 0;
                }
                let occ = occ_count.entry(inst_idx).or_insert(0);
                let key = (w, inst_idx, *occ);
                *occ += 1;
                let segments = obs.segs.get(&key).map_or(1, |v| v.len() as u32);
                total_segments += segments as u64;
                wt.events.push(TraceEv::Mem {
                    segments,
                    store: is_store,
                });
            } else if is_bar {
                if run > 0 {
                    wt.events.push(TraceEv::Compute(run));
                    run = 0;
                }
                wt.events.push(TraceEv::Bar);
            } else {
                run += 1;
            }
        }
        if run > 0 {
            wt.events.push(TraceEv::Compute(run));
        }
        warps.push(wt);
    }
    Ok(TbTrace {
        warps,
        dyn_instrs: stats.instructions,
        global_transactions: total_segments,
        global_accesses: obs.accesses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::mem::AddressSpace;
    use crate::parser::parse_kernel;
    use std::sync::Arc;

    fn copy_kernel() -> Arc<crate::kernel::Kernel> {
        Arc::new(
            parse_kernel(
                r#".entry copy(.param .u64 A, .param .u64 B) {
                     ld.param.u64 %rd1, [A];
                     ld.param.u64 %rd2, [B];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn coalesced_copy_one_segment_per_warp_access() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 128);
        let b = sp.alloc(4 * 128);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(
            copy_kernel(),
            Dim3::x(2),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        assert_eq!(tr.warps.len(), 2);
        // 32 consecutive f32 = 128 bytes = exactly 1 segment per warp access.
        for w in &tr.warps {
            let mems: Vec<_> = w
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEv::Mem { segments, store } => Some((*segments, *store)),
                    _ => None,
                })
                .collect();
            assert_eq!(mems.len(), 2); // one load + one store
            assert_eq!(mems[0], (1, false));
            assert_eq!(mems[1], (1, true));
        }
        // 2 warps x (1 load + 1 store) = 4 transactions.
        assert_eq!(tr.global_transactions, 4);
        assert_eq!(tr.global_accesses, 64 * 2);
        assert!(tr.dyn_instrs > 0);
    }

    #[test]
    fn strided_access_generates_many_segments() {
        // Each thread accesses A[tid * 32] — 32 lanes hit 32 segments.
        let src = r#"
.entry strided(.param .u64 A) {
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 5;
  mul.wide.u32 %rd2, %r2, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], 0f00000000;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 32 * 32);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(32), vec![ArgValue::Ptr(a.base)]);
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        assert_eq!(tr.global_transactions, 32);
    }

    #[test]
    fn barrier_appears_in_stream() {
        let src = r#"
.entry b(.param .u64 A) {
  .shared 256;
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 2;
  st.shared.f32 [%r2], 0f00000000;
  bar.sync 0;
  ld.shared.f32 %f1, [%r2];
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f1;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(64), vec![ArgValue::Ptr(a.base)]);
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        for w in &tr.warps {
            assert!(w.events.contains(&TraceEv::Bar));
        }
    }
}
