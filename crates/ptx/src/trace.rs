//! Dynamic warp traces: the interface between functional execution and the
//! timing model.
//!
//! A [`TbTrace`] summarizes one thread block's execution as per-warp event
//! streams (compute bursts, coalesced global-memory transactions, barriers).
//! The SM timing model in `bm-simt` replays these streams under GTO warp
//! scheduling to derive thread-block durations and memory-request counts.

use crate::interp::{
    execute_block_limited, execute_block_subset, ExecError, ExecObserver, ThreadId,
    MAX_STEPS_PER_THREAD,
};
use crate::isa::{MemSpace, Op};
use crate::kernel::Launch;
use crate::mem::GlobalMem;
use crate::par::par_chunks;
use std::collections::HashMap;

/// Size of a coalesced memory transaction in bytes (one cache sector line).
pub const SEGMENT_BYTES: u64 = 128;

/// One event in a warp's dynamic execution stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEv {
    /// `n` back-to-back non-memory instructions.
    Compute(u32),
    /// A global-memory instruction generating `segments` transactions.
    Mem {
        /// Number of 128-byte segments touched by the warp.
        segments: u32,
        /// Whether the access is a store.
        store: bool,
    },
    /// A block-wide barrier.
    Bar,
}

/// Dynamic event stream of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpTrace {
    /// Events in execution order.
    pub events: Vec<TraceEv>,
}

impl WarpTrace {
    /// Total dynamic instructions represented.
    pub fn dyn_instrs(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                TraceEv::Compute(n) => *n as u64,
                TraceEv::Mem { .. } => 1,
                TraceEv::Bar => 1,
            })
            .sum()
    }
}

/// Trace of one thread block: per-warp streams plus summary counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TbTrace {
    /// Per-warp event streams.
    pub warps: Vec<WarpTrace>,
    /// Dynamic instructions across all threads.
    pub dyn_instrs: u64,
    /// Coalesced global-memory transactions across all warps.
    pub global_transactions: u64,
    /// Raw global accesses (per thread).
    pub global_accesses: u64,
}

#[derive(Default)]
struct TraceObserver {
    // Per-thread event streams: (inst_idx, is_mem, is_store).
    streams: Vec<Vec<(u32, bool, bool)>>,
    // (warp, inst_idx, occurrence) -> segment set for the current access.
    segs: HashMap<(u32, u32, u32), Vec<u64>>,
    // Per-thread per-inst occurrence counters for grouping lanes.
    occ: Vec<HashMap<u32, u32>>,
    accesses: u64,
}

impl TraceObserver {
    fn ensure(&mut self, tid: usize) {
        if self.streams.len() <= tid {
            self.streams.resize_with(tid + 1, Vec::new);
            self.occ.resize_with(tid + 1, HashMap::new);
        }
    }
}

impl ExecObserver for TraceObserver {
    fn on_inst(&mut self, t: ThreadId, inst_idx: usize, op: &Op) {
        let tid = t.tid as usize;
        self.ensure(tid);
        let is_mem = matches!(
            op,
            Op::Ld {
                space: MemSpace::Global,
                ..
            } | Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        let is_store = matches!(
            op,
            Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        let kind_bar = matches!(op, Op::Bar);
        // Encode barriers as inst_idx with is_mem=false; the rebuild pass
        // re-detects them by index, so we only need the ordered stream.
        let _ = kind_bar;
        self.streams[tid].push((inst_idx as u32, is_mem, is_store));
    }

    fn on_global_access(&mut self, t: ThreadId, inst_idx: usize, addr: u64, _store: bool) {
        self.accesses += 1;
        let tid = t.tid as usize;
        self.ensure(tid);
        let occ = self.occ[tid].entry(inst_idx as u32).or_insert(0);
        let key = (t.warp(), inst_idx as u32, *occ);
        *occ += 1;
        let seg = addr / SEGMENT_BYTES;
        let v = self.segs.entry(key).or_default();
        if !v.contains(&seg) {
            v.push(seg);
        }
    }
}

/// Functionally executes block `tb` of `launch`, producing its trace.
///
/// Memory *is* mutated (the trace run is a real execution); callers that
/// only want timing typically pass a scratch [`GlobalMem`].
///
/// # Errors
///
/// Propagates [`ExecError`] from the underlying execution.
pub fn trace_block(launch: &Launch, tb: u32, mem: &mut GlobalMem) -> Result<TbTrace, ExecError> {
    trace_block_limited(launch, tb, mem, MAX_STEPS_PER_THREAD)
}

/// [`trace_block`] under an explicit per-thread step budget. The launch-time
/// profiler uses this so a pathological kernel cannot stall the launch path:
/// exceeding the budget surfaces as [`ExecError::StepLimit`] and the caller
/// degrades to an estimated profile.
///
/// # Errors
///
/// As [`trace_block`], plus [`ExecError::StepLimit`] once `max_steps` is
/// exceeded by any thread.
pub fn trace_block_limited(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    max_steps: u64,
) -> Result<TbTrace, ExecError> {
    let mut obs = TraceObserver::default();
    let stats = execute_block_limited(launch, tb, mem, &mut obs, max_steps)?;
    let nthreads = launch.threads_per_block();
    let nwarps = launch.warps_per_block();
    let body = &launch.kernel.body;
    let mut warps = Vec::with_capacity(nwarps as usize);
    let mut total_segments = 0u64;
    for w in 0..nwarps {
        // Representative lane: the one with the longest stream (divergent
        // warps are approximated by their longest path).
        let lanes = (w * 32)..((w * 32 + 32).min(nthreads));
        let rep = lanes
            .clone()
            .filter(|&t| (t as usize) < obs.streams.len())
            .max_by_key(|&t| obs.streams[t as usize].len());
        let mut wt = WarpTrace::default();
        let Some(rep) = rep else {
            warps.push(wt);
            continue;
        };
        let mut occ_count: HashMap<u32, u32> = HashMap::new();
        let mut run = 0u32;
        for &(inst_idx, is_mem, is_store) in &obs.streams[rep as usize] {
            let is_bar = matches!(body[inst_idx as usize].op, Op::Bar);
            if is_mem {
                if run > 0 {
                    wt.events.push(TraceEv::Compute(run));
                    run = 0;
                }
                let occ = occ_count.entry(inst_idx).or_insert(0);
                let key = (w, inst_idx, *occ);
                *occ += 1;
                let segments = obs.segs.get(&key).map_or(1, |v| v.len() as u32);
                total_segments += segments as u64;
                wt.events.push(TraceEv::Mem {
                    segments,
                    store: is_store,
                });
            } else if is_bar {
                if run > 0 {
                    wt.events.push(TraceEv::Compute(run));
                    run = 0;
                }
                wt.events.push(TraceEv::Bar);
            } else {
                run += 1;
            }
        }
        if run > 0 {
            wt.events.push(TraceEv::Compute(run));
        }
        warps.push(wt);
    }
    Ok(TbTrace {
        warps,
        dyn_instrs: stats.instructions,
        global_transactions: total_segments,
        global_accesses: obs.accesses,
    })
}

/// Counters from one [`trace_block_law`] call: how much of the block was
/// synthesized from the lane law versus functionally interpreted.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceLawStats {
    /// Full-width warps whose lane law validated (interior lanes synthesized).
    pub law_warps: u32,
    /// Full-width warps that failed validation and were fully interpreted.
    pub rejected_warps: u32,
    /// Partial-width boundary warps, always fully interpreted.
    pub boundary_warps: u32,
    /// Lanes functionally executed.
    pub lanes_interpreted: u64,
    /// Lanes reconstructed from the affine law instead of being executed.
    pub lanes_synthesized: u64,
}

impl TraceLawStats {
    /// Accumulates another call's counters into this one.
    pub fn merge(&mut self, o: &TraceLawStats) {
        self.law_warps += o.law_warps;
        self.rejected_warps += o.rejected_warps;
        self.boundary_warps += o.boundary_warps;
        self.lanes_interpreted += o.lanes_interpreted;
        self.lanes_synthesized += o.lanes_synthesized;
    }
}

/// Anchor and validation lanes of a full-width warp: lanes 0–2 derive the
/// law (two equal deltas), powers of two sample the interior, and lane 31
/// is the always-interpreted boundary that catches guard-masked tails.
const LAW_LANES: [u32; 7] = [0, 1, 2, 4, 8, 16, 31];

/// Whether `launch`'s kernel may use the lane-law fast path at all: the law
/// executes a lane *subset* per warp, which is only faithful when threads
/// cannot communicate within the block — no barriers, no shared memory.
pub fn law_admissible(launch: &Launch) -> bool {
    launch.kernel.shared_bytes == 0
        && !launch.kernel.body.iter().any(|i| {
            matches!(
                i.op,
                Op::Bar
                    | Op::Ld {
                        space: MemSpace::Shared,
                        ..
                    }
                    | Op::St {
                        space: MemSpace::Shared,
                        ..
                    }
            )
        })
}

/// Per-lane observer for one warp: event stream and global-access address
/// stream per lane, indexed by lane id relative to the warp start.
struct LaneObs {
    start: u32,
    streams: Vec<Vec<(u32, bool, bool)>>,
    addrs: Vec<Vec<u64>>,
}

impl LaneObs {
    fn new(start: u32, width: usize) -> Self {
        LaneObs {
            start,
            streams: vec![Vec::new(); width],
            addrs: vec![Vec::new(); width],
        }
    }
}

impl ExecObserver for LaneObs {
    fn on_inst(&mut self, t: ThreadId, inst_idx: usize, op: &Op) {
        let is_mem = matches!(
            op,
            Op::Ld {
                space: MemSpace::Global,
                ..
            } | Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        let is_store = matches!(
            op,
            Op::St {
                space: MemSpace::Global,
                ..
            }
        );
        self.streams[(t.tid - self.start) as usize].push((inst_idx as u32, is_mem, is_store));
    }

    fn on_global_access(&mut self, t: ThreadId, _inst_idx: usize, addr: u64, _store: bool) {
        self.addrs[(t.tid - self.start) as usize].push(addr);
    }
}

/// Rebuilds one warp's trace from explicit per-lane streams with the exact
/// semantics of [`trace_block_limited`]'s rebuild: segment sets are
/// accumulated over lanes in tid order under per-lane occurrence counters,
/// the representative lane is the *last* longest stream, and missing
/// segment sets default to one transaction.
fn rebuild_warp(
    body: &[crate::isa::Inst],
    streams: &[Vec<(u32, bool, bool)>],
    addrs: &[Vec<u64>],
) -> (WarpTrace, u64) {
    let mut segs: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
    for (lane, stream) in streams.iter().enumerate() {
        let mut occ: HashMap<u32, u32> = HashMap::new();
        let mut next_addr = 0usize;
        for &(inst_idx, is_mem, _) in stream {
            if !is_mem {
                continue;
            }
            let o = occ.entry(inst_idx).or_insert(0);
            let key = (inst_idx, *o);
            *o += 1;
            let seg = addrs[lane][next_addr] / SEGMENT_BYTES;
            next_addr += 1;
            let v = segs.entry(key).or_default();
            if !v.contains(&seg) {
                v.push(seg);
            }
        }
    }
    let rep = (0..streams.len()).max_by_key(|&l| streams[l].len());
    let mut wt = WarpTrace::default();
    let mut total_segments = 0u64;
    let Some(rep) = rep else {
        return (wt, 0);
    };
    let mut occ_count: HashMap<u32, u32> = HashMap::new();
    let mut run = 0u32;
    for &(inst_idx, is_mem, is_store) in &streams[rep] {
        let is_bar = matches!(body[inst_idx as usize].op, Op::Bar);
        if is_mem {
            if run > 0 {
                wt.events.push(TraceEv::Compute(run));
                run = 0;
            }
            let occ = occ_count.entry(inst_idx).or_insert(0);
            let key = (inst_idx, *occ);
            *occ += 1;
            let segments = segs.get(&key).map_or(1, |v| v.len() as u32);
            total_segments += segments as u64;
            wt.events.push(TraceEv::Mem {
                segments,
                store: is_store,
            });
        } else if is_bar {
            if run > 0 {
                wt.events.push(TraceEv::Compute(run));
                run = 0;
            }
            wt.events.push(TraceEv::Bar);
        } else {
            run += 1;
        }
    }
    if run > 0 {
        wt.events.push(TraceEv::Compute(run));
    }
    (wt, total_segments)
}

/// Traces one warp of `tb` as a pure function of the incoming memory: the
/// warp's lanes (a 7-lane law subset for full warps, every lane otherwise)
/// execute on a private copy-on-write clone of `base`, so the result does
/// not depend on which other warps or launches ran before it. That purity
/// is what makes the law path bit-identical at any worker count.
fn trace_warp_law(
    launch: &Launch,
    tb: u32,
    base: &GlobalMem,
    max_steps: u64,
    w: u32,
) -> Result<(WarpTrace, u64, ExecStatsLite, TraceLawStats), ExecError> {
    let nthreads = launch.threads_per_block();
    let lo = w * 32;
    let hi = (lo + 32).min(nthreads);
    let width = (hi - lo) as usize;
    let mut law = TraceLawStats::default();
    if width == 0 {
        return Ok((WarpTrace::default(), 0, ExecStatsLite::default(), law));
    }
    let body = &launch.kernel.body;
    let full = width == 32;
    let tids: Vec<u32> = if full {
        LAW_LANES.iter().map(|&l| lo + l).collect()
    } else {
        (lo..hi).collect()
    };
    let mut mem = base.clone();
    let mut obs = LaneObs::new(lo, width);
    execute_block_subset(launch, tb, &mut mem, &mut obs, max_steps, &tids)?;

    if full {
        let anchor = &obs.streams[0];
        let uniform = LAW_LANES[1..]
            .iter()
            .all(|&l| &obs.streams[l as usize] == anchor);
        let affine = uniform
            && (0..obs.addrs[0].len()).all(|k| {
                let a0 = obs.addrs[0][k];
                let s = obs.addrs[1][k].wrapping_sub(a0);
                LAW_LANES[2..]
                    .iter()
                    .all(|&l| obs.addrs[l as usize][k] == a0.wrapping_add(s.wrapping_mul(l as u64)))
            });
        if affine {
            // Law accepted: all 32 lanes share the anchor's event stream
            // and their k-th access address is `a0 + s·lane`, so the warp
            // trace is computed directly from the anchor stream — O(stream
            // + accesses) with no per-lane stream materialization. Each
            // mem event in one lane's stream is a distinct (inst,
            // occurrence) key of the reference rebuild, and its segment
            // set accumulates the 32 lanes' addresses in lane order —
            // [`affine_segment_count`] reproduces that distinct count
            // exactly. Barriers cannot appear here ([`law_admissible`]
            // excluded them).
            let mut wt = WarpTrace::default();
            let mut total_segments = 0u64;
            let mut run = 0u32;
            let mut k = 0usize;
            for &(_, is_mem, is_store) in anchor {
                if !is_mem {
                    run += 1;
                    continue;
                }
                if run > 0 {
                    wt.events.push(TraceEv::Compute(run));
                    run = 0;
                }
                let a0 = obs.addrs[0][k];
                let s = obs.addrs[1][k].wrapping_sub(a0);
                k += 1;
                let nseg = affine_segment_count(a0, s);
                total_segments += u64::from(nseg);
                wt.events.push(TraceEv::Mem {
                    segments: nseg,
                    store: is_store,
                });
            }
            if run > 0 {
                wt.events.push(TraceEv::Compute(run));
            }
            law.law_warps = 1;
            law.lanes_interpreted = LAW_LANES.len() as u64;
            law.lanes_synthesized = 32 - LAW_LANES.len() as u64;
            let lite = ExecStatsLite {
                instructions: anchor.len() as u64 * 32,
                accesses: obs.addrs[0].len() as u64 * 32,
            };
            return Ok((wt, total_segments, lite, law));
        }
        // Rejected: execute the remaining lanes on a fresh clone and
        // rebuild from all 32 real streams.
        let rest: Vec<u32> = (0..32u32)
            .filter(|l| !LAW_LANES.contains(l))
            .map(|l| lo + l)
            .collect();
        let mut mem2 = base.clone();
        let mut obs2 = LaneObs::new(lo, width);
        execute_block_subset(launch, tb, &mut mem2, &mut obs2, max_steps, &rest)?;
        for l in 0..32u32 {
            if !LAW_LANES.contains(&l) {
                obs.streams[l as usize] = std::mem::take(&mut obs2.streams[l as usize]);
                obs.addrs[l as usize] = std::mem::take(&mut obs2.addrs[l as usize]);
            }
        }
        law.rejected_warps = 1;
        law.lanes_interpreted = 32;
    } else {
        law.boundary_warps = 1;
        law.lanes_interpreted = width as u64;
    }
    let lite = ExecStatsLite {
        instructions: obs.streams.iter().map(|s| s.len() as u64).sum(),
        accesses: obs.addrs.iter().map(|a| a.len() as u64).sum(),
    };
    let (wt, segments) = rebuild_warp(body, &obs.streams, &obs.addrs);
    Ok((wt, segments, lite, law))
}

/// Per-warp instruction/access tallies reconstructed by the law path
/// (equal, under a validated law, to the interpreter's `ExecStats`).
#[derive(Debug, Clone, Copy, Default)]
struct ExecStatsLite {
    instructions: u64,
    accesses: u64,
}

/// Number of distinct `SEGMENT_BYTES` segments touched by the 32 affine
/// lane addresses `a0 + s·l` (`l = 0..32`, wrapping arithmetic) — the
/// closed form of the in-order dedup the reference rebuild performs per
/// access. A monotone non-wrapping stride covers every segment between
/// the first and last lane when `|s| < SEGMENT_BYTES`, and hits 32
/// distinct segments when `|s| >= SEGMENT_BYTES`; strides that wrap the
/// address space fall back to the literal 32-lane dedup.
fn affine_segment_count(a0: u64, s: u64) -> u32 {
    if s == 0 {
        return 1;
    }
    let si = s as i64;
    let mag = si.unsigned_abs();
    if mag <= u64::MAX / 31 {
        // `31·|s|` cannot overflow, so a wrapped endpoint shows up as an
        // inverted comparison against `a0`.
        let a_last = a0.wrapping_add(s.wrapping_mul(31));
        if si > 0 && a_last > a0 {
            return if mag >= SEGMENT_BYTES {
                32
            } else {
                (a_last / SEGMENT_BYTES - a0 / SEGMENT_BYTES + 1) as u32
            };
        }
        if si < 0 && a_last < a0 {
            return if mag >= SEGMENT_BYTES {
                32
            } else {
                (a0 / SEGMENT_BYTES - a_last / SEGMENT_BYTES + 1) as u32
            };
        }
    }
    let mut segset: Vec<u64> = Vec::with_capacity(32);
    for l in 0..32u64 {
        let seg = a0.wrapping_add(s.wrapping_mul(l)) / SEGMENT_BYTES;
        if !segset.contains(&seg) {
            segset.push(seg);
        }
    }
    segset.len() as u32
}

/// The lane-law trace fast path: [`trace_block_limited`] semantics at a
/// fraction of the interpretation cost.
///
/// For every full 32-lane warp, only the anchor lanes (0–2), sampled
/// validation lanes (4, 8, 16) and the boundary lane (31) execute; if all
/// seven observe identical event streams and per-access addresses affine in
/// the lane id, the interior lanes are synthesized from that law. Any
/// mismatch rejects the warp, which is then fully interpreted — so a
/// rejection only costs time, never fidelity. Partial-width boundary warps
/// are always fully interpreted.
///
/// For admissible launches each warp is traced as a pure function of the
/// *incoming* `mem` (on a private copy-on-write clone): `mem` is not
/// mutated, and the result is bit-identical for every `warp_threads`
/// value, which is what lets the trace phase fan out across warps safely.
/// This differs from [`trace_block_limited`], whose lanes observe earlier
/// lanes' global stores while tracing — a visibility difference that can
/// only reach the trace through loaded *values* steering control flow or
/// addressing, the same residual gap the parallel analysis pipeline
/// already accepts for workers tracing on scratch clones (see `bm-core`'s
/// jit module).
///
/// Law-*inadmissible* launches (barriers / shared memory) take the exact
/// [`trace_block_limited`] path directly on `mem`, mutating it like the
/// reference pipeline does. Cloning a large memory per launch just to
/// discard it costs O(resident chunks) in `Arc` bumps — for barrier-heavy
/// apps (NW: 255 launches over two ~16 MiB arrays) that clone tax was the
/// whole fast-path deficit.
///
/// # Errors
///
/// As [`trace_block_limited`]; the first failing warp in warp order wins.
pub fn trace_block_law(
    launch: &Launch,
    tb: u32,
    mem: &mut GlobalMem,
    max_steps: u64,
    warp_threads: usize,
) -> Result<(TbTrace, TraceLawStats), ExecError> {
    if !law_admissible(launch) {
        // Threads may communicate through barriers/shared memory: the lane
        // subset would not be faithful. Interpret every lane directly on
        // `mem` — the reference path, with no per-launch clone.
        let trace = trace_block_limited(launch, tb, mem, max_steps)?;
        return Ok((trace, TraceLawStats::default()));
    }
    let mem = &*mem;
    let nwarps = launch.warps_per_block() as usize;
    let results = par_chunks(warp_threads, nwarps, |range| {
        range
            .map(|w| trace_warp_law(launch, tb, mem, max_steps, w as u32))
            .collect()
    });
    let mut warps = Vec::with_capacity(nwarps);
    let mut stats = TraceLawStats::default();
    let mut dyn_instrs = 0u64;
    let mut total_segments = 0u64;
    let mut accesses = 0u64;
    for r in results {
        let (wt, segments, lite, law) = r?;
        warps.push(wt);
        total_segments += segments;
        dyn_instrs += lite.instructions;
        accesses += lite.accesses;
        stats.merge(&law);
    }
    Ok((
        TbTrace {
            warps,
            dyn_instrs,
            global_transactions: total_segments,
            global_accesses: accesses,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{ArgValue, Dim3, Launch};
    use crate::mem::AddressSpace;
    use crate::parser::parse_kernel;
    use std::sync::Arc;

    fn copy_kernel() -> Arc<crate::kernel::Kernel> {
        Arc::new(
            parse_kernel(
                r#".entry copy(.param .u64 A, .param .u64 B) {
                     ld.param.u64 %rd1, [A];
                     ld.param.u64 %rd2, [B];
                     mov.u32 %r1, %ctaid.x;
                     mov.u32 %r2, %ntid.x;
                     mov.u32 %r3, %tid.x;
                     mad.lo.u32 %r4, %r1, %r2, %r3;
                     mul.wide.u32 %rd3, %r4, 4;
                     add.u64 %rd4, %rd1, %rd3;
                     ld.global.f32 %f1, [%rd4];
                     add.u64 %rd5, %rd2, %rd3;
                     st.global.f32 [%rd5], %f1;
                     ret;
                   }"#,
            )
            .unwrap(),
        )
    }

    #[test]
    fn coalesced_copy_one_segment_per_warp_access() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 128);
        let b = sp.alloc(4 * 128);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(
            copy_kernel(),
            Dim3::x(2),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        assert_eq!(tr.warps.len(), 2);
        // 32 consecutive f32 = 128 bytes = exactly 1 segment per warp access.
        for w in &tr.warps {
            let mems: Vec<_> = w
                .events
                .iter()
                .filter_map(|e| match e {
                    TraceEv::Mem { segments, store } => Some((*segments, *store)),
                    _ => None,
                })
                .collect();
            assert_eq!(mems.len(), 2); // one load + one store
            assert_eq!(mems[0], (1, false));
            assert_eq!(mems[1], (1, true));
        }
        // 2 warps x (1 load + 1 store) = 4 transactions.
        assert_eq!(tr.global_transactions, 4);
        assert_eq!(tr.global_accesses, 64 * 2);
        assert!(tr.dyn_instrs > 0);
    }

    #[test]
    fn strided_access_generates_many_segments() {
        // Each thread accesses A[tid * 32] — 32 lanes hit 32 segments.
        let src = r#"
.entry strided(.param .u64 A) {
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 5;
  mul.wide.u32 %rd2, %r2, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], 0f00000000;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 32 * 32);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(32), vec![ArgValue::Ptr(a.base)]);
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        assert_eq!(tr.global_transactions, 32);
    }

    #[test]
    fn barrier_appears_in_stream() {
        let src = r#"
.entry b(.param .u64 A) {
  .shared 256;
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 2;
  st.shared.f32 [%r2], 0f00000000;
  bar.sync 0;
  ld.shared.f32 %f1, [%r2];
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f1;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let mut mem = GlobalMem::for_space(&sp);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(64), vec![ArgValue::Ptr(a.base)]);
        let tr = trace_block(&launch, 0, &mut mem).unwrap();
        for w in &tr.warps {
            assert!(w.events.contains(&TraceEv::Bar));
        }
    }

    #[test]
    fn lane_law_matches_full_interpretation() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 256);
        let b = sp.alloc(4 * 256);
        let launch = Launch::new(
            copy_kernel(),
            Dim3::x(4),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        assert!(law_admissible(&launch));
        for tb in 0..4 {
            let mut mem = GlobalMem::for_space(&sp);
            let want = trace_block(&launch, tb, &mut mem).unwrap();
            let mut base = GlobalMem::for_space(&sp);
            let (got, stats) =
                trace_block_law(&launch, tb, &mut base, MAX_STEPS_PER_THREAD, 1).unwrap();
            assert_eq!(got, want, "tb {tb}");
            assert_eq!(stats.law_warps, 2);
            assert_eq!(stats.rejected_warps, 0);
            assert_eq!(stats.lanes_interpreted, 14);
            assert_eq!(stats.lanes_synthesized, 50);
        }
    }

    #[test]
    fn lane_law_is_warp_thread_invariant() {
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 512);
        let b = sp.alloc(4 * 512);
        let launch = Launch::new(
            copy_kernel(),
            Dim3::x(2),
            Dim3::x(256),
            vec![ArgValue::Ptr(a.base), ArgValue::Ptr(b.base)],
        );
        let mut base = GlobalMem::for_space(&sp);
        let (serial, _) = trace_block_law(&launch, 1, &mut base, MAX_STEPS_PER_THREAD, 1).unwrap();
        for t in [2usize, 4, 8] {
            let (par, _) = trace_block_law(&launch, 1, &mut base, MAX_STEPS_PER_THREAD, t).unwrap();
            assert_eq!(par, serial, "warp_threads={t}");
        }
        // The caller's memory is never mutated by the law path.
        assert_eq!(base.fingerprint(), GlobalMem::for_space(&sp).fingerprint());
    }

    #[test]
    fn non_affine_lanes_reject_and_fall_back_exactly() {
        // addr = A + 4*(tid & 7): lanes 0,1,2 and 4 look affine (stride 4),
        // but lane 8 wraps back to offset 0 — the sampled check must catch
        // it and the fully-interpreted fallback must match the reference.
        let src = r#"
.entry wrap(.param .u64 A) {
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  and.b32 %r2, %r1, 7;
  mul.wide.u32 %rd2, %r2, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], 0f40400000;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(64), vec![ArgValue::Ptr(a.base)]);
        let mut mem = GlobalMem::for_space(&sp);
        let want = trace_block(&launch, 0, &mut mem).unwrap();
        let mut base = GlobalMem::for_space(&sp);
        let (got, stats) = trace_block_law(&launch, 0, &mut base, MAX_STEPS_PER_THREAD, 1).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.law_warps, 0);
        assert_eq!(stats.rejected_warps, 2);
        assert_eq!(stats.lanes_interpreted, 64);
    }

    #[test]
    fn barrier_kernels_are_inadmissible_but_exact() {
        let src = r#"
.entry b(.param .u64 A) {
  .shared 256;
  ld.param.u64 %rd1, [A];
  mov.u32 %r1, %tid.x;
  shl.b32 %r2, %r1, 2;
  st.shared.f32 [%r2], 0f00000000;
  bar.sync 0;
  ld.shared.f32 %f1, [%r2];
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], %f1;
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let launch = Launch::new(k, Dim3::x(1), Dim3::x(64), vec![ArgValue::Ptr(a.base)]);
        assert!(!law_admissible(&launch));
        let mut mem = GlobalMem::for_space(&sp);
        let want = trace_block(&launch, 0, &mut mem).unwrap();
        let mut base = GlobalMem::for_space(&sp);
        let (got, stats) = trace_block_law(&launch, 0, &mut base, MAX_STEPS_PER_THREAD, 4).unwrap();
        assert_eq!(got, want);
        assert_eq!(stats, TraceLawStats::default());
    }

    #[test]
    fn guard_masked_tail_warp_rejects_safely() {
        // Guard `gid < 40` kills lanes 8..32 of warp 1: the boundary lane
        // (31) sees a shorter stream than the anchors, rejecting the law.
        let src = r#"
.entry g(.param .u64 A, .param .u32 n) {
  ld.param.u64 %rd1, [A];
  ld.param.u32 %r9, [n];
  mov.u32 %r1, %tid.x;
  setp.ge.u32 %p1, %r1, %r9;
  @%p1 bra $DONE;
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  st.global.f32 [%rd3], 0f3F800000;
$DONE:
  ret;
}
"#;
        let k = Arc::new(parse_kernel(src).unwrap());
        let mut sp = AddressSpace::new();
        let a = sp.alloc(4 * 64);
        let launch = Launch::new(
            k,
            Dim3::x(1),
            Dim3::x(64),
            vec![ArgValue::Ptr(a.base), ArgValue::U32(40)],
        );
        let mut mem = GlobalMem::for_space(&sp);
        let want = trace_block(&launch, 0, &mut mem).unwrap();
        let mut base = GlobalMem::for_space(&sp);
        let (got, stats) = trace_block_law(&launch, 0, &mut base, MAX_STEPS_PER_THREAD, 1).unwrap();
        assert_eq!(got, want);
        // Warp 0 is uniform (all lanes pass the guard); warp 1 diverges.
        assert_eq!(stats.law_warps, 1);
        assert_eq!(stats.rejected_warps, 1);
    }

    #[test]
    fn affine_segment_count_matches_literal_dedup() {
        let brute = |a0: u64, s: u64| {
            let mut segset: Vec<u64> = Vec::new();
            for l in 0..32u64 {
                let seg = a0.wrapping_add(s.wrapping_mul(l)) / SEGMENT_BYTES;
                if !segset.contains(&seg) {
                    segset.push(seg);
                }
            }
            segset.len() as u32
        };
        let mut cases: Vec<(u64, u64)> = vec![
            (0, 0),
            (4096, 0),
            (3, 4),
            (4095, 4),
            (0, SEGMENT_BYTES),
            (7, SEGMENT_BYTES - 1),
            (1, SEGMENT_BYTES + 1),
            (u64::MAX - 100, 4),
            (50, (-4i64) as u64),
            (u64::MAX / 2, (-(129i64)) as u64),
            (10, (-1i64) as u64),
            (0, u64::MAX),
            (123, i64::MIN as u64),
            (1 << 40, 1 << 40),
            (u64::MAX - 5, u64::MAX / 31),
        ];
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        let mut rnd = move || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        for _ in 0..4000 {
            let a0 = rnd();
            let s = match rnd() % 4 {
                0 => rnd() % (SEGMENT_BYTES * 2),
                1 => (-((rnd() % (SEGMENT_BYTES * 2)) as i64)) as u64,
                2 => rnd(),
                _ => rnd() % 8,
            };
            cases.push((a0, s));
        }
        for (a0, s) in cases {
            assert_eq!(
                affine_segment_count(a0, s),
                brute(a0, s),
                "a0={a0:#x} s={s:#x}"
            );
        }
    }
}
