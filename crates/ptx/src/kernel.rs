//! Kernel objects and launch descriptors.

use crate::isa::{Inst, ParamTy};
use std::fmt;
use std::sync::Arc;

/// A named kernel parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Parameter name as written in the `.entry` signature.
    pub name: String,
    /// Parameter type.
    pub ty: ParamTy,
}

/// A compiled mini-PTX kernel: signature plus a flat instruction body with
/// branch targets resolved to instruction indices.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Kernel (entry) name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Flat instruction list; `Bra` targets index into this vector.
    pub body: Vec<Inst>,
    /// Statically-declared shared memory in bytes (`.shared` directive).
    pub shared_bytes: u32,
}

impl Kernel {
    /// Index of a parameter by name.
    pub fn param_index(&self, name: &str) -> Option<u16> {
        self.params
            .iter()
            .position(|p| p.name == name)
            .map(|i| i as u16)
    }
}

/// Grid or block dimensions. `z` is accepted but the toolchain only models
/// x/y indexing (all evaluation workloads are 1-D or 2-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    pub x: u32,
    pub y: u32,
    pub z: u32,
}

impl Dim3 {
    /// A 1-D extent.
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A 2-D extent.
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements (threads or blocks).
    pub fn count(&self) -> u64 {
        self.x as u64 * self.y as u64 * self.z as u64
    }
}

impl Default for Dim3 {
    fn default() -> Self {
        Dim3 { x: 1, y: 1, z: 1 }
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{},{})", self.x, self.y, self.z)
    }
}

/// A concrete kernel argument value.
///
/// Pointer arguments carry the *virtual device address* of the allocation
/// (see [`crate::mem::AddressSpace`]); this is what makes launch-time
/// value-range analysis possible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// 32-bit scalar.
    U32(u32),
    /// 64-bit scalar.
    U64(u64),
    /// Float scalar.
    F32(f32),
    /// Device pointer (virtual address into the flat device address space).
    Ptr(u64),
}

impl ArgValue {
    /// The raw 64-bit representation loaded by `ld.param.u64`.
    pub fn as_u64(&self) -> u64 {
        match self {
            ArgValue::U32(v) => *v as u64,
            ArgValue::U64(v) => *v,
            ArgValue::F32(v) => v.to_bits() as u64,
            ArgValue::Ptr(v) => *v,
        }
    }
}

/// A kernel launch: the kernel plus its launch-time-known configuration.
///
/// This is the unit the paper's just-in-time analysis operates on — grid and
/// block dimensions and argument values are exactly the quantities that are
/// unknown at compile time but known at kernel-launch time (paper §III-B2).
#[derive(Debug, Clone)]
pub struct Launch {
    /// The kernel being launched.
    pub kernel: Arc<Kernel>,
    /// Grid dimensions (blocks).
    pub grid: Dim3,
    /// Block dimensions (threads per block).
    pub block: Dim3,
    /// Argument values in parameter order.
    pub args: Vec<ArgValue>,
}

impl Launch {
    /// Creates a launch descriptor.
    ///
    /// # Panics
    ///
    /// Panics if the number of arguments differs from the kernel's
    /// parameter count.
    pub fn new(kernel: Arc<Kernel>, grid: Dim3, block: Dim3, args: Vec<ArgValue>) -> Self {
        assert_eq!(
            kernel.params.len(),
            args.len(),
            "kernel `{}` expects {} arguments, got {}",
            kernel.name,
            kernel.params.len(),
            args.len()
        );
        Launch {
            kernel,
            grid,
            block,
            args,
        }
    }

    /// Fallible counterpart of [`Launch::new`]: returns a typed error for
    /// malformed launches instead of panicking.
    ///
    /// # Errors
    ///
    /// [`crate::error::PtxError::BadLaunch`] on argument-arity mismatch or
    /// zero-thread blocks.
    pub fn try_new(
        kernel: Arc<Kernel>,
        grid: Dim3,
        block: Dim3,
        args: Vec<ArgValue>,
    ) -> Result<Self, crate::error::PtxError> {
        let launch = Launch {
            kernel,
            grid,
            block,
            args,
        };
        crate::error::validate_launch(&launch)?;
        Ok(launch)
    }

    /// Number of thread blocks in the grid.
    pub fn num_blocks(&self) -> u32 {
        self.grid.count() as u32
    }

    /// Number of threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block.count() as u32
    }

    /// Number of 32-wide warps per block (rounded up).
    pub fn warps_per_block(&self) -> u32 {
        self.threads_per_block().div_ceil(32)
    }

    /// Converts a linear block id to `(ctaid.x, ctaid.y)`.
    pub fn block_coords(&self, tb: u32) -> (u32, u32) {
        (tb % self.grid.x, tb / self.grid.x)
    }

    /// Converts `(ctaid.x, ctaid.y)` to a linear block id.
    pub fn block_id(&self, bx: u32, by: u32) -> u32 {
        by * self.grid.x + bx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;

    fn dummy_kernel(nparams: usize) -> Arc<Kernel> {
        Arc::new(Kernel {
            name: "k".into(),
            params: (0..nparams)
                .map(|i| Param {
                    name: format!("p{i}"),
                    ty: ParamTy::U64,
                })
                .collect(),
            body: vec![Inst::new(Op::Ret)],
            shared_bytes: 0,
        })
    }

    #[test]
    fn dim3_counts() {
        assert_eq!(Dim3::x(7).count(), 7);
        assert_eq!(Dim3::xy(3, 4).count(), 12);
        assert_eq!(Dim3::default().count(), 1);
    }

    #[test]
    fn launch_block_coords_round_trip() {
        let l = Launch::new(dummy_kernel(0), Dim3::xy(5, 3), Dim3::x(64), vec![]);
        for tb in 0..l.num_blocks() {
            let (bx, by) = l.block_coords(tb);
            assert_eq!(l.block_id(bx, by), tb);
            assert!(bx < 5 && by < 3);
        }
        assert_eq!(l.num_blocks(), 15);
        assert_eq!(l.warps_per_block(), 2);
    }

    #[test]
    #[should_panic(expected = "expects 2 arguments")]
    fn launch_arg_count_mismatch_panics() {
        Launch::new(dummy_kernel(2), Dim3::x(1), Dim3::x(32), vec![]);
    }

    #[test]
    fn param_index_lookup() {
        let k = dummy_kernel(3);
        assert_eq!(k.param_index("p1"), Some(1));
        assert_eq!(k.param_index("zzz"), None);
    }

    #[test]
    fn arg_value_raw_bits() {
        assert_eq!(ArgValue::U32(7).as_u64(), 7);
        assert_eq!(ArgValue::Ptr(0x1000).as_u64(), 0x1000);
        assert_eq!(ArgValue::F32(1.0).as_u64(), 1.0f32.to_bits() as u64);
    }
}
