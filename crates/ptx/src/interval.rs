//! Saturating integer interval arithmetic for value-range analysis.
//!
//! Bounds are `i128` so that 64-bit address arithmetic never overflows the
//! analysis domain. Unbounded ends are represented by large sentinels and
//! every operation saturates into them.

use std::fmt;

/// Sentinel for "unbounded below". Kept far from `i128::MIN` so arithmetic
/// on sentinels cannot wrap.
pub const NEG_INF: i128 = i128::MIN / 4;
/// Sentinel for "unbounded above".
pub const POS_INF: i128 = i128::MAX / 4;

fn sat(v: i128) -> i128 {
    v.clamp(NEG_INF, POS_INF)
}

/// A closed integer interval `[lo, hi]`, or the empty interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interval {
    lo: i128,
    hi: i128,
}

impl Interval {
    /// The interval containing every representable value.
    pub const TOP: Interval = Interval {
        lo: NEG_INF,
        hi: POS_INF,
    };

    /// The empty interval.
    pub const EMPTY: Interval = Interval { lo: 1, hi: 0 };

    /// The interval `[lo, hi]`. Returns [`Interval::EMPTY`] if `lo > hi`.
    pub fn new(lo: i128, hi: i128) -> Self {
        if lo > hi {
            Interval::EMPTY
        } else {
            Interval {
                lo: sat(lo),
                hi: sat(hi),
            }
        }
    }

    /// The singleton interval `[v, v]`.
    pub fn point(v: i128) -> Self {
        Interval::new(v, v)
    }

    /// Lower bound. Meaningless for the empty interval.
    pub fn lo(&self) -> i128 {
        self.lo
    }

    /// Upper bound. Meaningless for the empty interval.
    pub fn hi(&self) -> i128 {
        self.hi
    }

    /// Whether the interval contains no values.
    pub fn is_empty(&self) -> bool {
        self.lo > self.hi
    }

    /// Whether either end is unbounded.
    pub fn is_unbounded(&self) -> bool {
        !self.is_empty() && (self.lo <= NEG_INF || self.hi >= POS_INF)
    }

    /// Whether this is a single value, and which.
    pub fn as_point(&self) -> Option<i128> {
        (!self.is_empty() && self.lo == self.hi).then_some(self.lo)
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(&self, v: i128) -> bool {
        !self.is_empty() && self.lo <= v && v <= self.hi
    }

    /// Smallest interval containing both operands.
    pub fn hull(&self, other: &Interval) -> Interval {
        if self.is_empty() {
            *other
        } else if other.is_empty() {
            *self
        } else {
            Interval::new(self.lo.min(other.lo), self.hi.max(other.hi))
        }
    }

    /// Set intersection.
    pub fn intersect(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            Interval::EMPTY
        } else {
            Interval::new(self.lo.max(other.lo), self.hi.min(other.hi))
        }
    }

    /// Standard widening: any bound that grew jumps to infinity.
    pub fn widen(&self, next: &Interval) -> Interval {
        if self.is_empty() {
            return *next;
        }
        if next.is_empty() {
            return *self;
        }
        let lo = if next.lo < self.lo { NEG_INF } else { self.lo };
        let hi = if next.hi > self.hi { POS_INF } else { self.hi };
        Interval::new(lo, hi)
    }

    /// Interval addition.
    pub fn add(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(
            sat(self.lo.saturating_add(other.lo)),
            sat(self.hi.saturating_add(other.hi)),
        )
    }

    /// Interval subtraction.
    pub fn sub(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(
            sat(self.lo.saturating_sub(other.hi)),
            sat(self.hi.saturating_sub(other.lo)),
        )
    }

    /// Interval multiplication (four-corner rule).
    pub fn mul(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        if self.is_unbounded() || other.is_unbounded() {
            // Multiplying by an exact zero still yields zero.
            if self.as_point() == Some(0) || other.as_point() == Some(0) {
                return Interval::point(0);
            }
            return Interval::TOP;
        }
        let corners = [
            self.lo.saturating_mul(other.lo),
            self.lo.saturating_mul(other.hi),
            self.hi.saturating_mul(other.lo),
            self.hi.saturating_mul(other.hi),
        ];
        Interval::new(
            sat(*corners.iter().min().unwrap()),
            sat(*corners.iter().max().unwrap()),
        )
    }

    /// Division by an interval; exact only for constant positive divisors.
    pub fn div(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        match other.as_point() {
            Some(d) if d > 0 && !self.is_unbounded() => {
                Interval::new(self.lo.div_euclid(d), self.hi.div_euclid(d))
            }
            _ => Interval::TOP,
        }
    }

    /// Remainder; exact bounds only for constant positive divisors.
    pub fn rem(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        match other.as_point() {
            Some(d) if d > 0 => {
                if !self.is_unbounded()
                    && self.hi - self.lo < d
                    && self.lo.rem_euclid(d) <= self.hi.rem_euclid(d)
                {
                    // The whole interval maps into one residue window.
                    Interval::new(self.lo.rem_euclid(d), self.hi.rem_euclid(d))
                } else {
                    Interval::new(0, d - 1)
                }
            }
            _ => Interval::TOP,
        }
    }

    /// Left shift by a constant amount.
    pub fn shl(&self, other: &Interval) -> Interval {
        match other.as_point() {
            Some(s) if (0..=63).contains(&s) => self.mul(&Interval::point(1i128 << s)),
            _ => Interval::TOP,
        }
    }

    /// Logical/arithmetic right shift by a constant (exact for non-negative).
    pub fn shr(&self, other: &Interval) -> Interval {
        match other.as_point() {
            Some(s) if (0..=63).contains(&s) => {
                if self.is_empty() {
                    Interval::EMPTY
                } else if self.lo >= 0 && !self.is_unbounded() {
                    Interval::new(self.lo >> s, self.hi >> s)
                } else {
                    Interval::TOP
                }
            }
            _ => Interval::TOP,
        }
    }

    /// Bitwise AND; precise only against constant non-negative masks.
    pub fn and(&self, other: &Interval) -> Interval {
        let mask = |m: i128, v: &Interval| -> Interval {
            if m >= 0 {
                if v.is_empty() {
                    Interval::EMPTY
                } else if v.lo >= 0
                    && !v.is_unbounded()
                    && v.hi & m == v.hi
                    && v.lo & m == v.lo
                    && {
                        // If all values in [lo,hi] keep their masked bits (mask is
                        // a suffix of ones covering hi), the AND is the identity.
                        (m + 1) & m == 0 && v.hi < m + 1 // m+1 is a power of two
                    }
                {
                    *v
                } else {
                    Interval::new(0, m)
                }
            } else {
                Interval::TOP
            }
        };
        match (self.as_point(), other.as_point()) {
            (Some(a), Some(b)) => Interval::point(a & b),
            (Some(m), None) => mask(m, other),
            (None, Some(m)) => mask(m, self),
            (None, None) => {
                if !self.is_empty() && !other.is_empty() && self.lo >= 0 && other.lo >= 0 {
                    Interval::new(0, self.hi.min(other.hi).max(0))
                } else {
                    Interval::TOP
                }
            }
        }
    }

    /// Upper bound for OR/XOR of non-negative values bounded by `hi`:
    /// the next power of two above `hi`, minus one.
    fn pow2_bound(hi: i128) -> i128 {
        if hi <= 0 {
            0
        } else {
            let bits = 128 - (hi as u128).leading_zeros();
            if bits >= 126 {
                POS_INF
            } else {
                (1i128 << bits) - 1
            }
        }
    }

    /// Bitwise OR; bounded above for non-negative operands.
    pub fn or(&self, other: &Interval) -> Interval {
        match (self.as_point(), other.as_point()) {
            (Some(a), Some(b)) => Interval::point(a | b),
            _ => {
                if !self.is_empty()
                    && !other.is_empty()
                    && self.lo >= 0
                    && other.lo >= 0
                    && !self.is_unbounded()
                    && !other.is_unbounded()
                {
                    // OR never clears bits, so the larger minimum is a
                    // valid lower bound.
                    Interval::new(
                        self.lo.max(other.lo),
                        Self::pow2_bound(self.hi.max(other.hi)),
                    )
                } else {
                    Interval::TOP
                }
            }
        }
    }

    /// Bitwise XOR; precise only for points. Unlike OR, XOR can clear
    /// bits, so the lower bound for non-point operands is zero.
    pub fn xor(&self, other: &Interval) -> Interval {
        match (self.as_point(), other.as_point()) {
            (Some(a), Some(b)) => Interval::point(a ^ b),
            _ => {
                if !self.is_empty()
                    && !other.is_empty()
                    && self.lo >= 0
                    && other.lo >= 0
                    && !self.is_unbounded()
                    && !other.is_unbounded()
                {
                    Interval::new(0, Self::pow2_bound(self.hi.max(other.hi)))
                } else {
                    Interval::TOP
                }
            }
        }
    }

    /// Elementwise minimum.
    pub fn min_op(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.min(other.lo), self.hi.min(other.hi))
    }

    /// Elementwise maximum.
    pub fn max_op(&self, other: &Interval) -> Interval {
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        Interval::new(self.lo.max(other.lo), self.hi.max(other.hi))
    }

    /// Refines `self` assuming `self cmp other` holds (for branch pruning).
    pub fn refine(&self, cmp: crate::isa::CmpOp, other: &Interval) -> Interval {
        use crate::isa::CmpOp;
        if self.is_empty() || other.is_empty() {
            return Interval::EMPTY;
        }
        match cmp {
            CmpOp::Eq => self.intersect(other),
            CmpOp::Ne => {
                // Only shave exact endpoints.
                if let Some(p) = other.as_point() {
                    if self.as_point() == Some(p) {
                        Interval::EMPTY
                    } else if self.lo == p {
                        Interval::new(self.lo + 1, self.hi)
                    } else if self.hi == p {
                        Interval::new(self.lo, self.hi - 1)
                    } else {
                        *self
                    }
                } else {
                    *self
                }
            }
            CmpOp::Lt => self.intersect(&Interval::new(NEG_INF, other.hi.saturating_sub(1))),
            CmpOp::Le => self.intersect(&Interval::new(NEG_INF, other.hi)),
            CmpOp::Gt => self.intersect(&Interval::new(other.lo.saturating_add(1), POS_INF)),
            CmpOp::Ge => self.intersect(&Interval::new(other.lo, POS_INF)),
        }
    }
}

impl Default for Interval {
    fn default() -> Self {
        Interval::TOP
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return f.write_str("⊥");
        }
        match (self.lo <= NEG_INF, self.hi >= POS_INF) {
            (true, true) => f.write_str("⊤"),
            (true, false) => write!(f, "[-∞, {}]", self.hi),
            (false, true) => write!(f, "[{}, +∞]", self.lo),
            (false, false) => write!(f, "[{}, {}]", self.lo, self.hi),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::CmpOp;

    #[test]
    fn basic_arith() {
        let a = Interval::new(1, 3);
        let b = Interval::new(10, 20);
        assert_eq!(a.add(&b), Interval::new(11, 23));
        assert_eq!(b.sub(&a), Interval::new(7, 19));
        assert_eq!(a.mul(&b), Interval::new(10, 60));
        let n = Interval::new(-2, 3);
        assert_eq!(n.mul(&b), Interval::new(-40, 60));
    }

    #[test]
    fn mul_by_zero_point_is_zero_even_when_unbounded() {
        assert_eq!(Interval::TOP.mul(&Interval::point(0)), Interval::point(0));
    }

    #[test]
    fn shifts_and_div() {
        let a = Interval::new(4, 12);
        assert_eq!(a.shl(&Interval::point(2)), Interval::new(16, 48));
        assert_eq!(a.shr(&Interval::point(2)), Interval::new(1, 3));
        assert_eq!(a.div(&Interval::point(4)), Interval::new(1, 3));
        assert_eq!(a.rem(&Interval::point(4)), Interval::new(0, 3));
    }

    #[test]
    fn rem_one_window() {
        // [32,35] % 64 fits in one residue window -> [32,35].
        let a = Interval::new(32, 35);
        assert_eq!(a.rem(&Interval::point(64)), Interval::new(32, 35));
    }

    #[test]
    fn hull_intersect_widen() {
        let a = Interval::new(0, 10);
        let b = Interval::new(5, 20);
        assert_eq!(a.hull(&b), Interval::new(0, 20));
        assert_eq!(a.intersect(&b), Interval::new(5, 10));
        assert!(a.intersect(&Interval::new(11, 12)).is_empty());
        let w = a.widen(&Interval::new(0, 11));
        assert_eq!(w.lo(), 0);
        assert!(w.hi() >= POS_INF);
        // Widening against a smaller interval keeps the original.
        assert_eq!(a.widen(&Interval::new(2, 8)), a);
    }

    #[test]
    fn refinement_rules() {
        let a = Interval::new(0, 100);
        let n = Interval::point(50);
        assert_eq!(a.refine(CmpOp::Lt, &n), Interval::new(0, 49));
        assert_eq!(a.refine(CmpOp::Le, &n), Interval::new(0, 50));
        assert_eq!(a.refine(CmpOp::Gt, &n), Interval::new(51, 100));
        assert_eq!(a.refine(CmpOp::Ge, &n), Interval::new(50, 100));
        assert_eq!(a.refine(CmpOp::Eq, &n), Interval::point(50));
        assert_eq!(Interval::point(50).refine(CmpOp::Ne, &n), Interval::EMPTY);
    }

    #[test]
    fn empty_propagates() {
        assert!(Interval::EMPTY.add(&Interval::point(1)).is_empty());
        assert!(Interval::new(5, 2).is_empty());
        assert!(Interval::EMPTY.hull(&Interval::point(3)).as_point() == Some(3));
    }

    #[test]
    fn and_with_pow2_mask() {
        // tid in [0,255] & 0xFF is the identity.
        let tid = Interval::new(0, 255);
        assert_eq!(tid.and(&Interval::point(0xFF)), tid);
        // tid in [0,255] & 0x1F is bounded by the mask.
        assert_eq!(tid.and(&Interval::point(0x1F)), Interval::new(0, 0x1F));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Interval::new(1, 2).to_string(), "[1, 2]");
        assert_eq!(Interval::TOP.to_string(), "⊤");
        assert_eq!(Interval::EMPTY.to_string(), "⊥");
    }
}
