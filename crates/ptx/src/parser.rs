//! Parser turning mini-PTX text into [`Kernel`] objects.

use crate::isa::*;
use crate::kernel::{Kernel, Param};
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use std::collections::HashMap;
use std::fmt;

/// Error produced while parsing mini-PTX source.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line, 0 for end-of-input.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

/// Parses a source file containing one or more `.entry` kernels.
///
/// # Errors
///
/// Returns [`ParseError`] with the offending line on any syntactic or
/// semantic problem (unknown mnemonic, undefined label, bad register class).
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), bm_ptx::parser::ParseError> {
/// let kernels = bm_ptx::parser::parse_kernels(
///     ".entry noop() { ret; }",
/// )?;
/// assert_eq!(kernels[0].name, "noop");
/// # Ok(())
/// # }
/// ```
pub fn parse_kernels(src: &str) -> Result<Vec<Kernel>, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut kernels = Vec::new();
    while !p.at_end() {
        kernels.push(p.kernel()?);
    }
    Ok(kernels)
}

/// Parses a source expected to contain exactly one kernel.
///
/// # Errors
///
/// Returns [`ParseError`] if parsing fails or the source does not contain
/// exactly one `.entry`.
pub fn parse_kernel(src: &str) -> Result<Kernel, ParseError> {
    let mut ks = parse_kernels(src)?;
    if ks.len() != 1 {
        return Err(ParseError {
            message: format!("expected exactly one kernel, found {}", ks.len()),
            line: 0,
        });
    }
    Ok(ks.pop().unwrap())
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn line(&self) -> u32 {
        self.toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.tok)
    }

    fn next(&mut self) -> Result<Tok, ParseError> {
        let t = self.toks.get(self.pos).cloned().ok_or_else(|| ParseError {
            message: "unexpected end of input".into(),
            line: 0,
        })?;
        self.pos += 1;
        Ok(t.tok)
    }

    fn expect_punct(&mut self, c: char) -> Result<(), ParseError> {
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => self.err(format!("expected `{c}`, found {other}")),
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Tok::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_word(&mut self) -> Result<String, ParseError> {
        match self.next()? {
            Tok::Word(w) => Ok(w),
            other => self.err(format!("expected identifier, found {other}")),
        }
    }

    fn expect_int(&mut self) -> Result<i64, ParseError> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => self.err(format!("expected integer, found {other}")),
        }
    }

    fn kernel(&mut self) -> Result<Kernel, ParseError> {
        let kw = self.expect_word()?;
        if kw != ".entry" {
            return self.err(format!("expected `.entry`, found `{kw}`"));
        }
        let name = self.expect_word()?;
        self.expect_punct('(')?;
        let mut params = Vec::new();
        if !self.eat_punct(')') {
            loop {
                let d = self.expect_word()?;
                if d != ".param" {
                    return self.err(format!("expected `.param`, found `{d}`"));
                }
                let ty = match self.expect_word()?.as_str() {
                    ".u32" => ParamTy::U32,
                    ".u64" => ParamTy::U64,
                    ".f32" => ParamTy::F32,
                    other => return self.err(format!("unknown param type `{other}`")),
                };
                let pname = self.expect_word()?;
                params.push(Param { name: pname, ty });
                if self.eat_punct(')') {
                    break;
                }
                self.expect_punct(',')?;
            }
        }
        self.expect_punct('{')?;
        let mut shared_bytes = 0u32;
        let mut body: Vec<Inst> = Vec::new();
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut fixups: Vec<(usize, String, u32)> = Vec::new(); // (inst idx, label, line)
        loop {
            if self.eat_punct('}') {
                break;
            }
            // Guard?
            let guard = if self.eat_punct('@') {
                let negated = self.eat_punct('!');
                let w = self.expect_word()?;
                let pred = self.reg(&w)?;
                if pred.class != RegClass::Pred {
                    return self.err(format!("guard register `{w}` is not a predicate"));
                }
                Some(Guard { pred, negated })
            } else {
                None
            };
            let w = self.expect_word()?;
            // Label?
            if guard.is_none() && self.eat_punct(':') {
                if labels.insert(w.clone(), body.len()).is_some() {
                    return self.err(format!("duplicate label `{w}`"));
                }
                continue;
            }
            // Directive?
            if w == ".shared" {
                shared_bytes = self.expect_int()? as u32;
                self.expect_punct(';')?;
                continue;
            }
            let line = self.line();
            let op = self.instruction(&w, &params, &mut fixups, body.len(), line)?;
            self.expect_punct(';')?;
            body.push(Inst { guard, op });
        }
        // Resolve branch targets.
        for (idx, label, line) in fixups {
            let target = *labels.get(&label).ok_or_else(|| ParseError {
                message: format!("undefined label `{label}`"),
                line,
            })?;
            if let Op::Bra { target: t } = &mut body[idx].op {
                *t = target;
            }
        }
        Ok(Kernel {
            name,
            params,
            body,
            shared_bytes,
        })
    }

    fn reg(&self, w: &str) -> Result<Reg, ParseError> {
        let (class, rest) = if let Some(r) = w.strip_prefix("%rd") {
            (RegClass::R64, r)
        } else if let Some(r) = w.strip_prefix("%r") {
            (RegClass::R32, r)
        } else if let Some(r) = w.strip_prefix("%f") {
            (RegClass::F32, r)
        } else if let Some(r) = w.strip_prefix("%p") {
            (RegClass::Pred, r)
        } else {
            return Err(ParseError {
                message: format!("expected register, found `{w}`"),
                line: self.line(),
            });
        };
        let idx: u16 = rest.parse().map_err(|_| ParseError {
            message: format!("bad register index in `{w}`"),
            line: self.line(),
        })?;
        Ok(Reg { class, idx })
    }

    fn special(w: &str) -> Option<Special> {
        Special::ALL.iter().copied().find(|s| s.name() == w)
    }

    fn operand(&mut self) -> Result<Operand, ParseError> {
        match self.next()? {
            Tok::Word(w) => {
                if let Some(s) = Self::special(&w) {
                    Ok(Operand::Special(s))
                } else {
                    Ok(Operand::Reg(self.reg(&w)?))
                }
            }
            Tok::Int(v) => Ok(Operand::ImmI(v)),
            Tok::Float(v) => Ok(Operand::ImmF(v)),
            Tok::Punct('-') => match self.next()? {
                Tok::Int(v) => Ok(Operand::ImmI(-v)),
                Tok::Float(v) => Ok(Operand::ImmF(-v)),
                other => self.err(format!("expected number after `-`, found {other}")),
            },
            other => self.err(format!("expected operand, found {other}")),
        }
    }

    fn dst_reg(&mut self) -> Result<Reg, ParseError> {
        let w = self.expect_word()?;
        self.reg(&w)
    }

    fn addr(&mut self) -> Result<Addr, ParseError> {
        self.expect_punct('[')?;
        let w = self.expect_word()?;
        let base = self.reg(&w)?;
        let mut offset = 0i64;
        if self.eat_punct('+') {
            offset = self.expect_int()?;
        } else if self.eat_punct('-') {
            offset = -self.expect_int()?;
        }
        self.expect_punct(']')?;
        Ok(Addr { base, offset })
    }

    fn int_ty(&self, s: &str) -> Result<IntTy, ParseError> {
        match s {
            "u32" | "b32" => Ok(IntTy::U32),
            "s32" => Ok(IntTy::S32),
            "u64" | "b64" | "s64" => Ok(IntTy::U64),
            other => Err(ParseError {
                message: format!("unknown integer type `{other}`"),
                line: self.line(),
            }),
        }
    }

    fn mem_ty(&self, s: &str) -> Result<MemTy, ParseError> {
        match s {
            "u32" | "b32" | "s32" => Ok(MemTy::U32),
            "f32" => Ok(MemTy::F32),
            other => Err(ParseError {
                message: format!("unsupported memory access type `{other}`"),
                line: self.line(),
            }),
        }
    }

    fn cmp_op(&self, s: &str) -> Result<CmpOp, ParseError> {
        Ok(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "lt" => CmpOp::Lt,
            "le" => CmpOp::Le,
            "gt" => CmpOp::Gt,
            "ge" => CmpOp::Ge,
            other => {
                return Err(ParseError {
                    message: format!("unknown comparison `{other}`"),
                    line: self.line(),
                })
            }
        })
    }

    fn bin3(&mut self) -> Result<(Reg, Operand, Operand), ParseError> {
        let dst = self.dst_reg()?;
        self.expect_punct(',')?;
        let a = self.operand()?;
        self.expect_punct(',')?;
        let b = self.operand()?;
        Ok((dst, a, b))
    }

    fn instruction(
        &mut self,
        mnemonic: &str,
        params: &[Param],
        fixups: &mut Vec<(usize, String, u32)>,
        inst_idx: usize,
        line: u32,
    ) -> Result<Op, ParseError> {
        let parts: Vec<&str> = mnemonic.split('.').collect();
        let int_bin = |op: IntOp| op;
        match parts.as_slice() {
            ["mov", _ty] => {
                let dst = self.dst_reg()?;
                self.expect_punct(',')?;
                let src = self.operand()?;
                Ok(Op::Mov { dst, src })
            }
            ["cvt", ..] => {
                let dst = self.dst_reg()?;
                self.expect_punct(',')?;
                let src = self.operand()?;
                Ok(Op::Cvt { dst, src })
            }
            ["mul", "wide", "u32"] => {
                let (dst, a, b) = self.bin3()?;
                Ok(Op::MulWide { dst, a, b })
            }
            ["mad", "wide", "u32"] => {
                let (dst, a, b) = self.bin3()?;
                self.expect_punct(',')?;
                let c = self.operand()?;
                Ok(Op::MadWide { dst, a, b, c })
            }
            ["mad", "lo", ty] => {
                let ty = self.int_ty(ty)?;
                let (dst, a, b) = self.bin3()?;
                self.expect_punct(',')?;
                let c = self.operand()?;
                Ok(Op::Mad { ty, dst, a, b, c })
            }
            ["fma", "rn", "f32"] => {
                let (dst, a, b) = self.bin3()?;
                self.expect_punct(',')?;
                let c = self.operand()?;
                Ok(Op::Fma { dst, a, b, c })
            }
            ["sqrt", "rn", "f32"] | ["sqrt", "approx", "f32"] => {
                let dst = self.dst_reg()?;
                self.expect_punct(',')?;
                let a = self.operand()?;
                Ok(Op::Sqrt { dst, a })
            }
            [op @ ("add" | "sub" | "mul" | "min" | "max"), "f32"]
            | [op @ "div", "rn", "f32"]
            | [op @ "mul", "rn", "f32"] => {
                let fop = match *op {
                    "add" => FloatOp::Add,
                    "sub" => FloatOp::Sub,
                    "mul" => FloatOp::Mul,
                    "div" => FloatOp::Div,
                    "min" => FloatOp::Min,
                    "max" => FloatOp::Max,
                    _ => unreachable!(),
                };
                let (dst, a, b) = self.bin3()?;
                Ok(Op::Float { op: fop, dst, a, b })
            }
            [op, "lo", ty] if *op == "mul" => {
                let ty = self.int_ty(ty)?;
                let (dst, a, b) = self.bin3()?;
                Ok(Op::Int {
                    op: int_bin(IntOp::Mul),
                    ty,
                    dst,
                    a,
                    b,
                })
            }
            [op, ty]
                if matches!(
                    *op,
                    "add"
                        | "sub"
                        | "div"
                        | "rem"
                        | "min"
                        | "max"
                        | "and"
                        | "or"
                        | "xor"
                        | "shl"
                        | "shr"
                        | "mul"
                ) =>
            {
                let iop = match *op {
                    "add" => IntOp::Add,
                    "sub" => IntOp::Sub,
                    "mul" => IntOp::Mul,
                    "div" => IntOp::Div,
                    "rem" => IntOp::Rem,
                    "min" => IntOp::Min,
                    "max" => IntOp::Max,
                    "and" => IntOp::And,
                    "or" => IntOp::Or,
                    "xor" => IntOp::Xor,
                    "shl" => IntOp::Shl,
                    "shr" => IntOp::Shr,
                    _ => unreachable!(),
                };
                let ty = self.int_ty(ty)?;
                let (dst, a, b) = self.bin3()?;
                Ok(Op::Int {
                    op: iop,
                    ty,
                    dst,
                    a,
                    b,
                })
            }
            ["setp", cmp, "f32"] => {
                let cmp = self.cmp_op(cmp)?;
                let (dst, a, b) = self.bin3()?;
                Ok(Op::SetpF { cmp, dst, a, b })
            }
            ["setp", cmp, ty] => {
                let cmp = self.cmp_op(cmp)?;
                let ty = self.int_ty(ty)?;
                let (dst, a, b) = self.bin3()?;
                Ok(Op::Setp { cmp, ty, dst, a, b })
            }
            ["selp", _ty] => {
                let (dst, a, b) = self.bin3()?;
                self.expect_punct(',')?;
                let w = self.expect_word()?;
                let p = self.reg(&w)?;
                Ok(Op::Selp { dst, a, b, p })
            }
            ["ld", "param", _ty] => {
                let dst = self.dst_reg()?;
                self.expect_punct(',')?;
                self.expect_punct('[')?;
                let pname = self.expect_word()?;
                self.expect_punct(']')?;
                let param = params
                    .iter()
                    .position(|p| p.name == pname)
                    .ok_or(ParseError {
                        message: format!("unknown parameter `{pname}`"),
                        line,
                    })? as u16;
                Ok(Op::LdParam { dst, param })
            }
            ["ld", space @ ("global" | "shared"), ty] => {
                let ty = self.mem_ty(ty)?;
                let space = if *space == "global" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                };
                let dst = self.dst_reg()?;
                self.expect_punct(',')?;
                let addr = self.addr()?;
                Ok(Op::Ld {
                    space,
                    ty,
                    dst,
                    addr,
                })
            }
            ["st", space @ ("global" | "shared"), ty] => {
                let ty = self.mem_ty(ty)?;
                let space = if *space == "global" {
                    MemSpace::Global
                } else {
                    MemSpace::Shared
                };
                let addr = self.addr()?;
                self.expect_punct(',')?;
                let src = self.operand()?;
                Ok(Op::St {
                    space,
                    ty,
                    src,
                    addr,
                })
            }
            ["bra"] => {
                let label = self.expect_word()?;
                fixups.push((inst_idx, label, line));
                Ok(Op::Bra { target: usize::MAX })
            }
            ["bar", "sync"] => {
                let _ = self.expect_int()?;
                Ok(Op::Bar)
            }
            ["ret"] => Ok(Op::Ret),
            _ => self.err(format!("unknown mnemonic `{mnemonic}`")),
        }
    }
}
