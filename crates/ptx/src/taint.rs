//! Algorithm 1 of the paper: the backward slice over load/store address
//! operands that decides whether a kernel's memory accesses are *static*
//! (derivable from kernel-launch-time values) or *non-static* (derived from
//! another memory load, e.g. `A[B[i]]`).
//!
//! This is the literal backward pass of the paper's pseudo-code, operating
//! on the linearized instruction list. The flow-sensitive abstract
//! interpreter in [`crate::absint`] reaches the same verdicts on structured
//! kernels; a unit test pins their agreement on representative programs.

use crate::isa::{MemSpace, Op, Operand, Reg};
use crate::kernel::Kernel;
use std::collections::HashSet;

/// Verdict for a single global load/store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Staticness {
    /// All address sources derive from launch-time-known values.
    Static,
    /// The address (possibly) derives from a loaded value — the paper's
    /// "possible non-static dependency" bail-out (Algorithm 1 lines 7–9).
    NonStatic,
}

/// Result of running Algorithm 1 over a kernel.
#[derive(Debug, Clone)]
pub struct SliceReport {
    /// `(instruction index, verdict)` for every global load/store.
    pub per_access: Vec<(usize, Staticness)>,
}

impl SliceReport {
    /// Whether every global access in the kernel is static.
    pub fn all_static(&self) -> bool {
        self.per_access
            .iter()
            .all(|(_, s)| *s == Staticness::Static)
    }
}

/// Runs the backward address-origin slice on every global load/store.
///
/// For each access, the source set `S` starts with the address base
/// register; walking backwards, any instruction defining a register in `S`
/// replaces it with that instruction's register sources. Encountering a
/// memory load that defines a register in `S` yields
/// [`Staticness::NonStatic`].
pub fn slice_kernel(kernel: &Kernel) -> SliceReport {
    let mut per_access = Vec::new();
    for (i, inst) in kernel.body.iter().enumerate() {
        let addr = match &inst.op {
            Op::Ld {
                space: MemSpace::Global,
                addr,
                ..
            }
            | Op::St {
                space: MemSpace::Global,
                addr,
                ..
            } => addr,
            _ => continue,
        };
        per_access.push((i, slice_from(kernel, i, addr.base)));
    }
    SliceReport { per_access }
}

fn slice_from(kernel: &Kernel, access_idx: usize, base: Reg) -> Staticness {
    let mut s: HashSet<Reg> = HashSet::new();
    s.insert(base);
    for j in (0..access_idx).rev() {
        if s.is_empty() {
            break;
        }
        let op = &kernel.body[j].op;
        let Some(dst) = op.dst() else { continue };
        if !s.contains(&dst) {
            continue;
        }
        // The address derives from a loaded value: bail out conservatively.
        // (Shared-memory loads count too: their contents ultimately come
        // from memory and are not launch-time-known.)
        if matches!(op, Op::Ld { .. }) {
            return Staticness::NonStatic;
        }
        s.remove(&dst);
        for src in op.srcs() {
            if let Operand::Reg(r) = src {
                s.insert(r);
            }
        }
    }
    Staticness::Static
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    #[test]
    fn affine_addressing_is_static() {
        let k = parse_kernel(
            r#".entry k(.param .u64 A) {
                 ld.param.u64 %rd1, [A];
                 mov.u32 %r1, %tid.x;
                 mov.u32 %r2, %ctaid.x;
                 mov.u32 %r3, %ntid.x;
                 mad.lo.u32 %r4, %r2, %r3, %r1;
                 mul.wide.u32 %rd2, %r4, 4;
                 add.u64 %rd3, %rd1, %rd2;
                 ld.global.f32 %f1, [%rd3];
                 st.global.f32 [%rd3], %f1;
                 ret;
               }"#,
        )
        .unwrap();
        let rep = slice_kernel(&k);
        assert_eq!(rep.per_access.len(), 2);
        assert!(rep.all_static());
    }

    #[test]
    fn indirect_access_is_non_static() {
        // B[A[i]] — the second access's address derives from the first load.
        let k = parse_kernel(
            r#".entry gather(.param .u64 A, .param .u64 B) {
                 ld.param.u64 %rd1, [A];
                 ld.param.u64 %rd2, [B];
                 mov.u32 %r1, %tid.x;
                 mul.wide.u32 %rd3, %r1, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.u32 %r2, [%rd4];
                 mul.wide.u32 %rd5, %r2, 4;
                 add.u64 %rd6, %rd2, %rd5;
                 ld.global.f32 %f1, [%rd6];
                 ret;
               }"#,
        )
        .unwrap();
        let rep = slice_kernel(&k);
        assert_eq!(rep.per_access.len(), 2);
        assert_eq!(rep.per_access[0].1, Staticness::Static);
        assert_eq!(rep.per_access[1].1, Staticness::NonStatic);
        assert!(!rep.all_static());
    }

    #[test]
    fn shared_load_taints_addresses() {
        let k = parse_kernel(
            r#".entry s(.param .u64 A) {
                 .shared 64;
                 ld.param.u64 %rd1, [A];
                 mov.u32 %r1, 0;
                 ld.shared.u32 %r2, [%r1];
                 cvt.u64.u32 %rd2, %r2;
                 add.u64 %rd3, %rd1, %rd2;
                 st.global.f32 [%rd3], 0f00000000;
                 ret;
               }"#,
        )
        .unwrap();
        let rep = slice_kernel(&k);
        assert_eq!(rep.per_access.len(), 1);
        assert_eq!(rep.per_access[0].1, Staticness::NonStatic);
    }

    #[test]
    fn loaded_data_not_used_for_address_stays_static() {
        // The loaded float flows to the stored *value*, not the address.
        let k = parse_kernel(
            r#".entry copy(.param .u64 A, .param .u64 B) {
                 ld.param.u64 %rd1, [A];
                 ld.param.u64 %rd2, [B];
                 mov.u32 %r1, %tid.x;
                 mul.wide.u32 %rd3, %r1, 4;
                 add.u64 %rd4, %rd1, %rd3;
                 ld.global.f32 %f1, [%rd4];
                 add.u64 %rd5, %rd2, %rd3;
                 st.global.f32 [%rd5], %f1;
                 ret;
               }"#,
        )
        .unwrap();
        assert!(slice_kernel(&k).all_static());
    }
}
