//! Instruction-set definition for the mini-PTX IR.
//!
//! The ISA mirrors the subset of NVIDIA PTX that matters for
//! kernel-launch-time dependency analysis: integer address arithmetic over
//! the SIMT special registers (`%tid`, `%ctaid`, `%ntid`, `%nctaid`),
//! parameter loads, predicated branches, and global/shared memory accesses.

use std::fmt;

/// Register class of the mini-PTX register file.
///
/// Matches PTX virtual register conventions: `%p` predicates, `%r` 32-bit
/// integers, `%rd` 64-bit integers (addresses), `%f` 32-bit floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RegClass {
    /// One-bit predicate register (`%p`).
    Pred,
    /// 32-bit integer register (`%r`).
    R32,
    /// 64-bit integer register (`%rd`), used for addresses.
    R64,
    /// 32-bit floating-point register (`%f`).
    F32,
}

impl RegClass {
    /// Printable PTX prefix for this class.
    pub fn prefix(self) -> &'static str {
        match self {
            RegClass::Pred => "%p",
            RegClass::R32 => "%r",
            RegClass::R64 => "%rd",
            RegClass::F32 => "%f",
        }
    }
}

/// A virtual register: a class plus an index within that class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Reg {
    /// Register class.
    pub class: RegClass,
    /// Index within the class's register file.
    pub idx: u16,
}

impl Reg {
    /// Creates a register of `class` with index `idx`.
    pub fn new(class: RegClass, idx: u16) -> Self {
        Reg { class, idx }
    }

    /// Shorthand for a 32-bit integer register.
    pub fn r32(idx: u16) -> Self {
        Reg::new(RegClass::R32, idx)
    }

    /// Shorthand for a 64-bit integer register.
    pub fn r64(idx: u16) -> Self {
        Reg::new(RegClass::R64, idx)
    }

    /// Shorthand for a float register.
    pub fn f32(idx: u16) -> Self {
        Reg::new(RegClass::F32, idx)
    }

    /// Shorthand for a predicate register.
    pub fn pred(idx: u16) -> Self {
        Reg::new(RegClass::Pred, idx)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.class.prefix(), self.idx)
    }
}

/// SIMT special registers readable by `mov`.
///
/// These are the kernel-launch-time-known quantities that value-range
/// analysis exploits (paper §III-B2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Special {
    /// Thread index within the block, x dimension (`%tid.x`).
    TidX,
    /// Thread index within the block, y dimension (`%tid.y`).
    TidY,
    /// Block dimension, x (`%ntid.x`).
    NtidX,
    /// Block dimension, y (`%ntid.y`).
    NtidY,
    /// Block index within the grid, x (`%ctaid.x`).
    CtaidX,
    /// Block index within the grid, y (`%ctaid.y`).
    CtaidY,
    /// Grid dimension, x (`%nctaid.x`).
    NctaidX,
    /// Grid dimension, y (`%nctaid.y`).
    NctaidY,
}

impl Special {
    /// All special registers, for iteration in tests.
    pub const ALL: [Special; 8] = [
        Special::TidX,
        Special::TidY,
        Special::NtidX,
        Special::NtidY,
        Special::CtaidX,
        Special::CtaidY,
        Special::NctaidX,
        Special::NctaidY,
    ];

    /// PTX spelling, e.g. `%tid.x`.
    pub fn name(self) -> &'static str {
        match self {
            Special::TidX => "%tid.x",
            Special::TidY => "%tid.y",
            Special::NtidX => "%ntid.x",
            Special::NtidY => "%ntid.y",
            Special::CtaidX => "%ctaid.x",
            Special::CtaidY => "%ctaid.y",
            Special::NctaidX => "%nctaid.x",
            Special::NctaidY => "%nctaid.y",
        }
    }
}

impl fmt::Display for Special {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An instruction operand.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Operand {
    /// A virtual register.
    Reg(Reg),
    /// A signed integer immediate.
    ImmI(i64),
    /// A float immediate.
    ImmF(f32),
    /// A SIMT special register.
    Special(Special),
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl From<Special> for Operand {
    fn from(s: Special) -> Self {
        Operand::Special(s)
    }
}

impl From<i64> for Operand {
    fn from(v: i64) -> Self {
        Operand::ImmI(v)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Self {
        Operand::ImmI(v as i64)
    }
}

impl From<u32> for Operand {
    fn from(v: u32) -> Self {
        Operand::ImmI(v as i64)
    }
}

impl From<f32> for Operand {
    fn from(v: f32) -> Self {
        Operand::ImmF(v)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::ImmI(v) => write!(f, "{v}"),
            Operand::ImmF(v) => write!(f, "0f{:08X}", v.to_bits()),
            Operand::Special(s) => write!(f, "{s}"),
        }
    }
}

/// Integer operation type qualifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntTy {
    /// Unsigned 32-bit.
    U32,
    /// Signed 32-bit.
    S32,
    /// Unsigned 64-bit.
    U64,
}

impl IntTy {
    /// PTX type suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            IntTy::U32 => "u32",
            IntTy::S32 => "s32",
            IntTy::U64 => "u64",
        }
    }

    /// Register class that holds values of this type.
    pub fn reg_class(self) -> RegClass {
        match self {
            IntTy::U32 | IntTy::S32 => RegClass::R32,
            IntTy::U64 => RegClass::R64,
        }
    }
}

/// Binary integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Min,
    Max,
    And,
    Or,
    Xor,
    Shl,
    Shr,
}

impl IntOp {
    /// PTX mnemonic stem (without type suffix).
    pub fn mnemonic(self) -> &'static str {
        match self {
            IntOp::Add => "add",
            IntOp::Sub => "sub",
            IntOp::Mul => "mul.lo",
            IntOp::Div => "div",
            IntOp::Rem => "rem",
            IntOp::Min => "min",
            IntOp::Max => "max",
            IntOp::And => "and",
            IntOp::Or => "or",
            IntOp::Xor => "xor",
            IntOp::Shl => "shl",
            IntOp::Shr => "shr",
        }
    }
}

/// Binary floating-point operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FloatOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
}

impl FloatOp {
    /// PTX mnemonic stem.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FloatOp::Add => "add",
            FloatOp::Sub => "sub",
            FloatOp::Mul => "mul",
            FloatOp::Div => "div.rn",
            FloatOp::Min => "min",
            FloatOp::Max => "max",
        }
    }
}

/// Comparison operators for `setp`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// PTX comparison suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// The comparison with operands swapped (`a op b` == `b op.swap a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the comparison.
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// State space of a memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Device global memory — the state space dependency analysis tracks.
    Global,
    /// Per-block shared memory (scratchpad).
    Shared,
}

/// Access width/type of a memory operation. All accesses are 4 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTy {
    /// 32-bit unsigned integer.
    U32,
    /// 32-bit float.
    F32,
}

impl MemTy {
    /// Width of the access in bytes.
    pub const fn bytes(self) -> u64 {
        4
    }

    /// PTX type suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            MemTy::U32 => "u32",
            MemTy::F32 => "f32",
        }
    }

    /// Register class that holds loaded values of this type.
    pub fn reg_class(self) -> RegClass {
        match self {
            MemTy::U32 => RegClass::R32,
            MemTy::F32 => RegClass::F32,
        }
    }
}

/// A register-plus-immediate memory address, e.g. `[%rd3+8]`.
///
/// Global addresses use an `R64` base; shared-memory addresses use `R32`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Addr {
    /// Base address register.
    pub base: Reg,
    /// Byte offset added to the base.
    pub offset: i64,
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.offset == 0 {
            write!(f, "[{}]", self.base)
        } else if self.offset > 0 {
            write!(f, "[{}+{}]", self.base, self.offset)
        } else {
            write!(f, "[{}{}]", self.base, self.offset)
        }
    }
}

/// Type of a kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ParamTy {
    /// 32-bit scalar.
    U32,
    /// 64-bit scalar — by convention, global-memory pointers.
    U64,
    /// 32-bit float scalar.
    F32,
}

impl ParamTy {
    /// PTX type suffix.
    pub fn suffix(self) -> &'static str {
        match self {
            ParamTy::U32 => "u32",
            ParamTy::U64 => "u64",
            ParamTy::F32 => "f32",
        }
    }

    /// Register class holding a loaded parameter of this type.
    pub fn reg_class(self) -> RegClass {
        match self {
            ParamTy::U32 => RegClass::R32,
            ParamTy::U64 => RegClass::R64,
            ParamTy::F32 => RegClass::F32,
        }
    }
}

/// The operation part of an instruction (without the optional guard).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `mov.<ty> dst, src` — also reads special registers.
    Mov { dst: Reg, src: Operand },
    /// `cvt.<dty>.<sty> dst, src` — width/kind conversion between classes.
    Cvt { dst: Reg, src: Operand },
    /// Binary integer ALU op: `add.u32 dst, a, b` etc.
    Int {
        op: IntOp,
        ty: IntTy,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `mad.lo.<ty> dst, a, b, c` — dst = lo(a*b) + c.
    Mad {
        ty: IntTy,
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `mul.wide.u32 dst(rd), a(r), b(r)` — 32x32 -> 64-bit product.
    MulWide { dst: Reg, a: Operand, b: Operand },
    /// `mad.wide.u32 dst(rd), a(r), b(r), c(rd)` — widening multiply-add.
    MadWide {
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// Binary float op: `add.f32 dst, a, b` etc.
    Float {
        op: FloatOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `fma.rn.f32 dst, a, b, c`.
    Fma {
        dst: Reg,
        a: Operand,
        b: Operand,
        c: Operand,
    },
    /// `sqrt.rn.f32 dst, a`.
    Sqrt { dst: Reg, a: Operand },
    /// Integer compare: `setp.<cmp>.<ty> p, a, b`.
    Setp {
        cmp: CmpOp,
        ty: IntTy,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// Float compare: `setp.<cmp>.f32 p, a, b`.
    SetpF {
        cmp: CmpOp,
        dst: Reg,
        a: Operand,
        b: Operand,
    },
    /// `selp.<ty> dst, a, b, p` — dst = p ? a : b.
    Selp {
        dst: Reg,
        a: Operand,
        b: Operand,
        p: Reg,
    },
    /// Memory load (`ld.global`/`ld.shared`).
    Ld {
        space: MemSpace,
        ty: MemTy,
        dst: Reg,
        addr: Addr,
    },
    /// Memory store (`st.global`/`st.shared`).
    St {
        space: MemSpace,
        ty: MemTy,
        src: Operand,
        addr: Addr,
    },
    /// `ld.param.<ty> dst, [name]` — parameter index resolved at parse.
    LdParam { dst: Reg, param: u16 },
    /// Branch to an instruction index (label resolved at parse time).
    Bra { target: usize },
    /// `bar.sync 0` — block-wide barrier.
    Bar,
    /// `ret` — thread exit.
    Ret,
}

impl Op {
    /// The destination register written by this op, if any.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Op::Mov { dst, .. }
            | Op::Cvt { dst, .. }
            | Op::Int { dst, .. }
            | Op::Mad { dst, .. }
            | Op::MulWide { dst, .. }
            | Op::MadWide { dst, .. }
            | Op::Float { dst, .. }
            | Op::Fma { dst, .. }
            | Op::Sqrt { dst, .. }
            | Op::Setp { dst, .. }
            | Op::SetpF { dst, .. }
            | Op::Selp { dst, .. }
            | Op::Ld { dst, .. }
            | Op::LdParam { dst, .. } => Some(*dst),
            Op::St { .. } | Op::Bra { .. } | Op::Bar | Op::Ret => None,
        }
    }

    /// Source operands read by this op (not counting address base registers).
    pub fn srcs(&self) -> Vec<Operand> {
        match self {
            Op::Mov { src, .. } | Op::Cvt { src, .. } | Op::Sqrt { a: src, .. } => vec![*src],
            Op::Int { a, b, .. }
            | Op::MulWide { a, b, .. }
            | Op::Float { a, b, .. }
            | Op::Setp { a, b, .. }
            | Op::SetpF { a, b, .. } => vec![*a, *b],
            Op::Mad { a, b, c, .. } | Op::MadWide { a, b, c, .. } | Op::Fma { a, b, c, .. } => {
                vec![*a, *b, *c]
            }
            Op::Selp { a, b, p, .. } => vec![*a, *b, Operand::Reg(*p)],
            Op::Ld { addr, .. } => vec![Operand::Reg(addr.base)],
            Op::St { src, addr, .. } => vec![*src, Operand::Reg(addr.base)],
            Op::LdParam { .. } | Op::Bra { .. } | Op::Bar | Op::Ret => vec![],
        }
    }

    /// Whether this is a global-memory load (Algorithm 1's bail-out trigger).
    pub fn is_global_load(&self) -> bool {
        matches!(
            self,
            Op::Ld {
                space: MemSpace::Global,
                ..
            }
        )
    }

    /// Whether this op is a memory access (any space).
    pub fn is_mem(&self) -> bool {
        matches!(self, Op::Ld { .. } | Op::St { .. })
    }
}

/// Register-file sizes required by an instruction body, indexed as
/// `[r32, r64, f32, pred]`.
pub fn max_reg_counts(body: &[Inst]) -> [usize; 4] {
    let mut sizes = [0usize; 4];
    let mut see = |r: Reg| {
        let i = match r.class {
            RegClass::R32 => 0,
            RegClass::R64 => 1,
            RegClass::F32 => 2,
            RegClass::Pred => 3,
        };
        sizes[i] = sizes[i].max(r.idx as usize + 1);
    };
    for inst in body {
        if let Some(d) = inst.op.dst() {
            see(d);
        }
        for s in inst.op.srcs() {
            if let Operand::Reg(r) = s {
                see(r);
            }
        }
        if let Some(g) = inst.guard {
            see(g.pred);
        }
        match &inst.op {
            Op::Ld { addr, .. } | Op::St { addr, .. } => see(addr.base),
            _ => {}
        }
    }
    sizes
}

/// A guard predicate attached to an instruction: `@%p` or `@!%p`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Guard {
    /// The predicate register tested.
    pub pred: Reg,
    /// If true, the instruction executes when the predicate is *false*.
    pub negated: bool,
}

/// A full instruction: an optional guard plus the operation.
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// Optional `@%p` / `@!%p` guard.
    pub guard: Option<Guard>,
    /// The operation.
    pub op: Op,
}

impl Inst {
    /// An unguarded instruction.
    pub fn new(op: Op) -> Self {
        Inst { guard: None, op }
    }

    /// A guarded instruction.
    pub fn guarded(pred: Reg, negated: bool, op: Op) -> Self {
        Inst {
            guard: Some(Guard { pred, negated }),
            op,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_matches_ptx_spelling() {
        assert_eq!(Reg::r32(4).to_string(), "%r4");
        assert_eq!(Reg::r64(1).to_string(), "%rd1");
        assert_eq!(Reg::f32(2).to_string(), "%f2");
        assert_eq!(Reg::pred(7).to_string(), "%p7");
    }

    #[test]
    fn cmp_swapped_is_involutive() {
        for cmp in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(cmp.swapped().swapped(), cmp);
            assert_eq!(cmp.negated().negated(), cmp);
        }
    }

    #[test]
    fn op_dst_and_srcs_cover_arithmetic() {
        let op = Op::Mad {
            ty: IntTy::U32,
            dst: Reg::r32(5),
            a: Operand::Reg(Reg::r32(1)),
            b: Operand::Reg(Reg::r32(2)),
            c: Operand::ImmI(3),
        };
        assert_eq!(op.dst(), Some(Reg::r32(5)));
        assert_eq!(op.srcs().len(), 3);
    }

    #[test]
    fn global_load_detection() {
        let ld = Op::Ld {
            space: MemSpace::Global,
            ty: MemTy::F32,
            dst: Reg::f32(0),
            addr: Addr {
                base: Reg::r64(0),
                offset: 0,
            },
        };
        assert!(ld.is_global_load());
        assert!(ld.is_mem());
        let lds = Op::Ld {
            space: MemSpace::Shared,
            ty: MemTy::F32,
            dst: Reg::f32(0),
            addr: Addr {
                base: Reg::r32(0),
                offset: 0,
            },
        };
        assert!(!lds.is_global_load());
    }

    #[test]
    fn addr_display_includes_offset_sign() {
        let a = Addr {
            base: Reg::r64(2),
            offset: 8,
        };
        assert_eq!(a.to_string(), "[%rd2+8]");
        let b = Addr {
            base: Reg::r64(2),
            offset: -4,
        };
        assert_eq!(b.to_string(), "[%rd2-4]");
        let c = Addr {
            base: Reg::r64(2),
            offset: 0,
        };
        assert_eq!(c.to_string(), "[%rd2]");
    }
}
