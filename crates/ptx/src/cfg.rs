//! Control-flow graph construction over the flat instruction body.

use crate::isa::Op;
use crate::kernel::Kernel;

/// A basic block: a maximal straight-line instruction range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// First instruction index (inclusive).
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor edges.
    pub succs: Vec<Edge>,
    /// Predecessor block ids.
    pub preds: Vec<usize>,
}

/// A control-flow edge with its branch polarity for guard refinement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Target block id.
    pub to: usize,
    /// Polarity: `Some(true)` = the terminating guarded branch was taken,
    /// `Some(false)` = fell through a guarded branch, `None` = unconditional.
    pub taken: Option<bool>,
}

/// The control-flow graph of a kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Basic blocks; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Reverse post-order over blocks (entry first).
    pub rpo: Vec<usize>,
    /// For each instruction, which block contains it.
    pub block_of: Vec<usize>,
}

impl Cfg {
    /// Builds the CFG of `kernel`.
    pub fn build(kernel: &Kernel) -> Cfg {
        let n = kernel.body.len();
        let mut leaders = vec![false; n + 1];
        if n > 0 {
            leaders[0] = true;
        }
        for (i, inst) in kernel.body.iter().enumerate() {
            if let Op::Bra { target } = inst.op {
                if target <= n {
                    leaders[target] = true;
                }
                if i < n {
                    leaders[i + 1] = true;
                }
            }
            if matches!(inst.op, Op::Ret) && i < n {
                leaders[i + 1] = true;
            }
        }
        // Collect block boundaries.
        let starts: Vec<usize> = (0..n).filter(|&i| leaders[i]).collect();
        let mut blocks: Vec<Block> = Vec::with_capacity(starts.len());
        let mut block_of = vec![0usize; n];
        for (b, &s) in starts.iter().enumerate() {
            let e = if b + 1 < starts.len() {
                starts[b + 1]
            } else {
                n
            };
            for slot in &mut block_of[s..e] {
                *slot = b;
            }
            blocks.push(Block {
                start: s,
                end: e,
                succs: Vec::new(),
                preds: Vec::new(),
            });
        }
        // A target one past the end exits the kernel (no successor edge).
        let block_at = |idx: usize| -> Option<usize> { (idx < n).then(|| block_of[idx]) };
        // Successor edges.
        for block in &mut blocks {
            let last = block.end - 1;
            let inst = &kernel.body[last];
            let mut succs = Vec::new();
            match &inst.op {
                Op::Ret => {}
                Op::Bra { target } => {
                    let guarded = inst.guard.is_some();
                    if let Some(t) = block_at(*target) {
                        succs.push(Edge {
                            to: t,
                            taken: guarded.then_some(true),
                        });
                    }
                    if guarded {
                        if let Some(f) = block_at(last + 1) {
                            succs.push(Edge {
                                to: f,
                                taken: Some(false),
                            });
                        }
                    }
                }
                _ => {
                    if let Some(f) = block_at(last + 1) {
                        succs.push(Edge { to: f, taken: None });
                    }
                }
            }
            block.succs = succs;
        }
        // Predecessors.
        for b in 0..blocks.len() {
            for e in blocks[b].succs.clone() {
                blocks[e.to].preds.push(b);
            }
        }
        // Reverse post-order from entry.
        let mut rpo = Vec::with_capacity(blocks.len());
        let mut visited = vec![false; blocks.len()];
        let mut post = Vec::with_capacity(blocks.len());
        if !blocks.is_empty() {
            // Iterative DFS with an explicit stack.
            let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
            visited[0] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < blocks[b].succs.len() {
                    let nxt = blocks[b].succs[*i].to;
                    *i += 1;
                    if !visited[nxt] {
                        visited[nxt] = true;
                        stack.push((nxt, 0));
                    }
                } else {
                    post.push(b);
                    stack.pop();
                }
            }
        }
        rpo.extend(post.into_iter().rev());
        Cfg {
            blocks,
            rpo,
            block_of,
        }
    }

    /// Whether the CFG contains a back edge (i.e. a loop) w.r.t. RPO order.
    pub fn has_loop(&self) -> bool {
        let mut order = vec![usize::MAX; self.blocks.len()];
        for (i, &b) in self.rpo.iter().enumerate() {
            order[b] = i;
        }
        self.blocks.iter().enumerate().any(|(b, blk)| {
            blk.succs
                .iter()
                .any(|e| order[e.to] != usize::MAX && order[e.to] <= order[b])
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_kernel;

    #[test]
    fn straight_line_is_one_block() {
        let k = parse_kernel(
            ".entry k(.param .u64 A) { ld.param.u64 %rd1, [A]; st.global.f32 [%rd1], 0f00000000; ret; }",
        )
        .unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
        assert!(!cfg.has_loop());
        assert_eq!(cfg.rpo, vec![0]);
    }

    #[test]
    fn guarded_branch_splits_blocks() {
        let k = parse_kernel(
            r#".entry k(.param .u32 n) {
                 ld.param.u32 %r1, [n];
                 setp.ge.u32 %p1, %r1, 10;
                 @%p1 bra $OUT;
                 add.u32 %r1, %r1, 1;
               $OUT:
                 ret;
               }"#,
        )
        .unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.blocks.len(), 3);
        let b0 = &cfg.blocks[0];
        assert_eq!(b0.succs.len(), 2);
        assert!(b0.succs.iter().any(|e| e.taken == Some(true)));
        assert!(b0.succs.iter().any(|e| e.taken == Some(false)));
        assert!(!cfg.has_loop());
    }

    #[test]
    fn loop_detected() {
        let k = parse_kernel(
            r#".entry k(.param .u32 n) {
                 ld.param.u32 %r9, [n];
                 mov.u32 %r1, 0;
               $TOP:
                 add.u32 %r1, %r1, 1;
                 setp.lt.u32 %p1, %r1, %r9;
                 @%p1 bra $TOP;
                 ret;
               }"#,
        )
        .unwrap();
        let cfg = Cfg::build(&k);
        assert!(cfg.has_loop());
        // Loop head has two predecessors: entry and itself (the latch).
        let head = cfg.block_of[2];
        assert_eq!(cfg.blocks[head].preds.len(), 2);
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let k = parse_kernel(
            r#".entry k(.param .u32 n) {
                 ld.param.u32 %r9, [n];
                 setp.lt.u32 %p1, %r9, 5;
                 @%p1 bra $A;
                 mov.u32 %r1, 1;
                 bra $B;
               $A:
                 mov.u32 %r1, 2;
               $B:
                 ret;
               }"#,
        )
        .unwrap();
        let cfg = Cfg::build(&k);
        assert_eq!(cfg.rpo[0], 0);
        assert_eq!(cfg.rpo.len(), cfg.blocks.len());
    }
}
